"""Table 2: per-SM source statistics in each batch.

Paper: synthetic Regular/Random sit at the ~3.2 faults/SM/batch ceiling
(batch cap 256 / 80 SMs); application kernels sit well below (0.41-0.91).
Reproduced shape: the ceiling is exact; apps fall below the synthetics.
"""

from repro.analysis.experiments import tab02_sm_stats


def bench_tab02_sm_stats(run_once, record_result):
    result = run_once(tab02_sm_stats)
    record_result(result)
    data = result.data
    ceiling = 256 / 80
    for name, stats in data.items():
        assert stats.max <= ceiling + 1e-9, name
    # Synthetic saturators approach the ceiling.
    assert data["Regular"].mean > 2.5
    # Application kernels sit below the synthetic streams.
    for app in ("stream", "gauss-seidel", "hpgmg"):
        assert data[app].mean < data["Regular"].mean, app
    # HPGMG is the least fault-dense app, as in the paper.
    assert data["hpgmg"].mean < 1.0
