"""Figure 8: batch sizes in time series, raw vs duplicates removed.

Paper: sgemm is far more complex than stream — its batching shows "phases"
over time — and filtering duplicates greatly alters the average batch size
for both applications.
"""

import numpy as np

def bench_fig08_dedup_timeseries(run_cached, record_result):
    result = run_cached("fig08")
    record_result(result)
    for name in ("stream", "sgemm"):
        raw = np.array(result.data[name]["raw"])
        uniq = np.array(result.data[name]["unique"])
        # Dedup shrinks batches materially.
        assert uniq.mean() < 0.8 * raw.mean(), name
    # sgemm's dedup impact exceeds stream's (panel sharing).
    assert (
        result.data["sgemm"]["summary"].dup_fraction
        > result.data["stream"]["summary"].dup_fraction
    )
    # sgemm's batch-size series swings over a wider absolute range
    # ("phases") than stream's steady profile.
    spread = lambda xs: np.std(xs)
    assert spread(result.data["sgemm"]["unique"]) > spread(result.data["stream"]["unique"])
