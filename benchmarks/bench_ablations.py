"""Ablations for the design directions discussed in paper §6.

* duplicate-adaptive batch sizing ("tune batch size based on duplicates");
* per-VABlock driver parallelism (predicted to be workload-imbalanced);
* asynchronous CPU unmapping off the fault path;
* enlarged prefetch scope beyond one VABlock.
"""

from repro.analysis.experiments import (
    ablation_async_unmap,
    ablation_driver_parallel,
    ablation_dup_adaptive,
    ablation_prefetch_scope,
)


def bench_ablation_dup_adaptive(run_once, record_result):
    result = run_once(ablation_dup_adaptive)
    record_result(result)
    fixed = result.data["fixed 256"]
    adaptive = result.data["duplicate-adaptive"]
    # The naive §6 policy backfires: shrinking batches on duplicates costs
    # more batches (Fig 9's lesson) — a negative result worth keeping.
    assert adaptive["batches"] != fixed["batches"]


def bench_ablation_driver_parallel(run_once, record_result):
    result = run_once(ablation_driver_parallel)
    record_result(result)
    gs = result.data["gauss-seidel (2.3 blk/batch)"]
    rnd = result.data["Random (many blk/batch)"]
    # §6's prediction: block-local workloads can't use VABlock parallelism;
    # block-spread workloads can.
    assert gs[8] < 2.5
    assert rnd[8] > gs[8]
    assert rnd[8] > 2.0


def bench_ablation_async_unmap(run_once, record_result):
    result = run_once(ablation_async_unmap)
    record_result(result)
    assert result.data["speedup"] > 1.3


def bench_ablation_prefetch_scope(run_once, record_result):
    result = run_once(ablation_prefetch_scope)
    record_result(result)
    # Wider scope eliminates further batches...
    assert result.data[4]["batches"] < result.data[1]["batches"]
    # ...but cannot remove the compulsory per-block costs (modest time gain).
    assert result.data[4]["batch_time"] > 0.5 * result.data[1]["batch_time"]
