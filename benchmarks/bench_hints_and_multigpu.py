"""Extensions: memory hints (cudaMemAdvise/cudaMemPrefetchAsync) and the
multi-GPU foundation the paper names as future work (§1).

* hints: hinted bulk migration vs demand faulting vs zero-copy accessed-by
  on a streaming read — the comparison Chien et al. [10] run on hardware;
* multi-GPU: domain-decomposed stream across 1/2/4 devices (parallel
  speedup), plus the peer-vs-bounce migration cost for a halo exchange.
"""

from repro import UvmSystem, default_config, KernelLaunch, Phase, WarpProgram
from repro.analysis.report import ascii_table
from repro.multigpu import MultiGpuSystem
from repro.units import MB, fmt_usec


def read_kernel(alloc, start, stop, name="read"):
    pages = list(alloc.pages(start, stop))
    phases = [Phase.of(pages[i : i + 64], compute_usec=2.0) for i in range(0, len(pages), 64)]
    return KernelLaunch(name, [WarpProgram(phases)])


def bench_hints_vs_faulting(benchmark, record_result):
    def run_all():
        times = {}
        for mode in ("demand faulting", "mem_prefetch hint", "accessed-by (zero-copy)"):
            cfg = default_config(prefetch_enabled=True)
            system = UvmSystem(cfg)
            alloc = system.managed_alloc(16 * MB, "data")
            system.host_touch(alloc)
            t0 = system.clock.now
            if mode == "mem_prefetch hint":
                system.mem_prefetch(alloc)
            elif mode == "accessed-by (zero-copy)":
                system.mem_advise_accessed_by(alloc)
            system.launch(read_kernel(alloc, 0, alloc.num_pages))
            times[mode] = system.clock.now - t0
        return times

    times = benchmark.pedantic(run_all, rounds=1, iterations=1)
    base = times["demand faulting"]
    rows = [[m, fmt_usec(t), f"{base / t:.2f}x"] for m, t in times.items()]
    text = ascii_table(["memory mode", "end-to-end time", "speedup"], rows)

    class R:
        exp_id = "hints_vs_faulting"
        def render(self):
            return f"== {self.exp_id}: hinted vs faulted data placement ==\n{text}\n"

    record_result(R())
    # Hinted bulk migration skips fault servicing entirely.
    assert times["mem_prefetch hint"] < times["demand faulting"]
    # Setup-only zero-copy is cheapest end-to-end here (no migration at all;
    # its recurring cost — remote access latency — hits kernels, which this
    # placement-focused comparison excludes).
    assert times["accessed-by (zero-copy)"] < times["demand faulting"]


def bench_multigpu_scaling(benchmark, record_result):
    total_mb = 32

    def run(num_devices):
        cfg = default_config(prefetch_enabled=True)
        mg = MultiGpuSystem(num_devices=num_devices, config=cfg)
        alloc = mg.managed_alloc(total_mb * MB, "domain")
        mg.host_touch(alloc)
        per = alloc.num_pages // num_devices
        launches = [
            (d, read_kernel(alloc, d * per, (d + 1) * per, f"dom{d}"))
            for d in range(num_devices)
        ]
        t0 = mg.clock.now
        mg.parallel_launch(launches)
        return mg.clock.now - t0

    def run_all():
        return {n: run(n) for n in (1, 2, 4)}

    times = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [[n, fmt_usec(t), f"{times[1] / t:.2f}x"] for n, t in times.items()]
    text = ascii_table(["devices", "makespan", "speedup"], rows)

    class R:
        exp_id = "multigpu_scaling"
        def render(self):
            return f"== {self.exp_id}: domain-decomposed stream across devices ==\n{text}\n"

    record_result(R())
    assert times[2] < times[1]
    assert times[4] < times[2]
    assert times[1] / times[4] > 2.0  # decent scaling on disjoint domains


def bench_multigpu_peer_vs_bounce(benchmark, record_result):
    def run(peer):
        cfg = default_config(prefetch_enabled=True)
        mg = MultiGpuSystem(num_devices=2, config=cfg, peer_enabled=peer)
        alloc = mg.managed_alloc(8 * MB, "halo")
        mg.host_touch(alloc)
        mg.launch(0, read_kernel(alloc, 0, alloc.num_pages, "own"))
        t0 = mg.clock.now
        mg.launch(1, read_kernel(alloc, 0, alloc.num_pages, "steal"))
        return mg.clock.now - t0, mg.peer_stats

    def run_all():
        return {peer: run(peer) for peer in (True, False)}

    outcomes = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        ["peer (P2P)", fmt_usec(outcomes[True][0]), outcomes[True][1].peer_pages],
        ["bounce via host", fmt_usec(outcomes[False][0]), outcomes[False][1].bounce_pages],
    ]
    text = ascii_table(["migration path", "exchange time", "pages moved"], rows)

    class R:
        exp_id = "multigpu_peer_vs_bounce"
        def render(self):
            return f"== {self.exp_id}: cross-device migration path ==\n{text}\n"

    record_result(R())
    assert outcomes[True][0] < outcomes[False][0]
    assert outcomes[True][1].peer_pages == outcomes[False][1].bounce_pages
