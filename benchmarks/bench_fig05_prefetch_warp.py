"""Figure 5: a single warp generates faults up to the batch size limit
using prefetching.

Paper: PTX prefetch instructions bypass the register scoreboard, the µTLB
outstanding cap, and the SM throttle; one warp fills a 256-fault batch, and
faults beyond the batch size limit are dropped by the driver (footnote 1).
"""


def bench_fig05_prefetch_warp(run_cached, record_result):
    result = run_cached("fig05")
    record_result(result)
    assert result.data["max_batch"] == 256
    assert result.data["dropped"] == 44  # 300 prefetches - 256 cap
