"""Irregular-workload benches: BFS and SpMV (the related-work problem space).

The paper's related work ([17, 26, 28]) studies graph traversal under UVM
because irregular gathers are the fault path's worst case.  These benches
pin the qualitative relationships:

* BFS/SpMV spread their batches over more VABlocks than dense stencils;
* prefetching helps them *less* than it helps dense sweeps (the §5.3 story
  at in-core scale).
"""

from repro import UvmSystem, default_config
from repro.analysis.report import ascii_table
from repro.analysis.stats import vablock_stats
from repro.units import MB, fmt_usec
from repro.workloads import BfsWorkload, GaussSeidel, SpmvWorkload


def run(workload_factory, prefetch):
    system = UvmSystem(default_config(prefetch_enabled=prefetch))
    return workload_factory().run(system)


def bench_graph_irregularity(benchmark, record_result):
    def run_all():
        out = {}
        for name, factory in [
            ("bfs", lambda: BfsWorkload(num_nodes=1 << 14, num_programs=16)),
            ("spmv", lambda: SpmvWorkload(n=1 << 15, num_programs=16)),
            ("gauss-seidel", lambda: GaussSeidel(n=1024)),
        ]:
            res = run(factory, prefetch=False)
            out[name] = vablock_stats(res.records)
        return out

    stats = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [name, f"{s.vablocks_per_batch:.2f}", f"{s.faults_per_vablock.mean:.2f}"]
        for name, s in stats.items()
    ]
    text = ascii_table(["workload", "VABlocks/batch", "faults/VABlock"], rows)

    class R:
        exp_id = "graph_irregularity"
        def render(self):
            return f"== {self.exp_id}: irregular vs dense block spread ==\n{text}\n"

    record_result(R())
    # The x-gather spreads SpMV's batches over more blocks than the
    # stencil's narrow row frontier (its streaming matrix reads keep the
    # per-block fault counts high at the same time).
    assert stats["spmv"].vablocks_per_batch > stats["gauss-seidel"].vablocks_per_batch
    assert stats["bfs"].vablocks_per_batch > 1.0


def bench_graph_prefetch_gain(benchmark, record_result):
    def run_all():
        out = {}
        for name, factory in [
            ("spmv", lambda: SpmvWorkload(n=1 << 15, num_programs=16)),
            ("gauss-seidel", lambda: GaussSeidel(n=1024)),
        ]:
            times = {pf: run(factory, pf).kernel_time_usec for pf in (False, True)}
            out[name] = times[False] / times[True]
        return out

    gains = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [[name, f"{g:.2f}x"] for name, g in gains.items()]
    text = ascii_table(["workload", "prefetch speedup"], rows)

    class R:
        exp_id = "graph_prefetch_gain"
        def render(self):
            return f"== {self.exp_id}: prefetch gain, irregular vs dense ==\n{text}\n"

    record_result(R())
    # Prefetching helps the dense stencil more than the sparse gather.
    assert gains["gauss-seidel"] > gains["spmv"]
    assert gains["gauss-seidel"] > 1.3
