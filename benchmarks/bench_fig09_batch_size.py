"""Figure 9: batch-size policy evaluation (sgemm).

Paper: performance correlates strongly with batch size — larger caps mean
fewer batches and better runtime despite higher duplicate rates — with
diminishing returns past ~1024 (the per-window fault-generation ceiling).
"""


def bench_fig09_batch_size(run_cached, record_result):
    result = run_cached("fig09")
    record_result(result)
    data = result.data
    # Fewer batches at every size step.
    assert data[512]["batches"] < data[256]["batches"]
    assert data[1024]["batches"] <= data[512]["batches"]
    # Better (or equal) time despite more duplicates per batch.
    assert data[2048]["batch_time"] < data[256]["batch_time"]
    assert data[2048]["dup_fraction"] >= data[256]["dup_fraction"] - 0.05
    # Diminishing returns: the 1024→2048 gain is smaller than 256→512.
    gain_small = data[256]["batch_time"] - data[512]["batch_time"]
    gain_large = data[1024]["batch_time"] - data[2048]["batch_time"]
    assert gain_large < gain_small * 1.5
    # Unique faults per batch are generation-limited, far below the cap.
    assert data[2048]["unique_per_batch"] < 2048 / 4
