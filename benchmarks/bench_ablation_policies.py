"""Policy ablations beyond the paper: eviction and prefetch policy variants.

The paper observes that the driver's LRU "is essentially 'earliest
allocated'" because hits are invisible (§5.4), and that the GPU's access
counters are "sparsely utilized" (§2.3, citing Ganguly et al. [15]).  These
benches quantify what the alternatives would buy:

* eviction: lru (driver) vs fifo vs random vs access-counter, on a
  hot-set + cold-stream workload where hit visibility matters;
* prefetch: density-tree (driver) vs region-only vs sequential vs
  full-block, on a dense sweep.
"""

from repro import UvmSystem, default_config, KernelLaunch, Phase, WarpProgram
from repro.analysis.report import ascii_table
from repro.units import MB, fmt_usec
from repro.workloads import StreamTriad


def hot_cold_workload(system):
    """A hot 4 MiB range re-read between strides of a 24 MiB cold stream.

    With 16 MiB of device memory the cold stream forces evictions; policies
    that cannot see the hot set's hits evict it repeatedly.
    """
    hot = system.managed_alloc(4 * MB, "hot")
    cold = system.managed_alloc(24 * MB, "cold")
    system.host_touch(hot)
    system.host_touch(cold)
    hot_pages = list(hot.pages())
    phases = []
    stride = 64
    for start in range(0, cold.num_pages, stride):
        phases.append(Phase.of(list(cold.pages(start, start + stride)), compute_usec=5.0))
        # Re-read a slice of the hot set (hits if it stayed resident).
        slice_start = (start // stride * 37) % (len(hot_pages) - 64)
        phases.append(
            Phase.of(hot_pages[slice_start : slice_start + 64], compute_usec=5.0)
        )
    return KernelLaunch("hot-cold", [WarpProgram(phases)])


def run_eviction_policy(policy: str) -> float:
    cfg = default_config(prefetch_enabled=True, eviction_policy=policy)
    cfg.gpu.memory_bytes = 16 * MB
    system = UvmSystem(cfg)
    kernel = hot_cold_workload(system)
    result = system.launch(kernel)
    return result.kernel_time_usec


def bench_ablation_eviction_policies(benchmark, record_result):
    def run_all():
        return {p: run_eviction_policy(p) for p in ("lru", "fifo", "random", "access-counter")}

    times = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [[p, fmt_usec(t), f"{times['lru'] / t:.2f}x"] for p, t in times.items()]
    text = ascii_table(["eviction policy", "kernel time", "speedup vs lru"], rows)

    class R:
        exp_id = "ablation_eviction_policies"
        def render(self):
            return f"== {self.exp_id}: hot-set + cold-stream eviction ==\n{text}\n"

    record_result(R())
    # Hit-aware eviction protects the hot set; fault-blind LRU cannot.
    assert times["access-counter"] < times["lru"]
    # FIFO ≈ LRU for this pattern (the §5.4 degeneration).
    assert abs(times["fifo"] - times["lru"]) < 0.35 * times["lru"]


def run_prefetch_policy(policy: str) -> tuple:
    cfg = default_config(prefetch_enabled=True, prefetch_policy=policy)
    system = UvmSystem(cfg)
    result = StreamTriad(nbytes=8 * MB).run(system)
    return result.num_batches, result.batch_time_usec


def bench_ablation_prefetch_policies(benchmark, record_result):
    policies = ("density-tree", "region-only", "sequential", "full-block")

    def run_all():
        return {p: run_prefetch_policy(p) for p in policies}

    outcomes = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [p, batches, fmt_usec(usec)] for p, (batches, usec) in outcomes.items()
    ]
    text = ascii_table(["prefetch policy", "batches", "batch time"], rows)

    class R:
        exp_id = "ablation_prefetch_policies"
        def render(self):
            return f"== {self.exp_id}: prefetch policy on a dense sweep ==\n{text}\n"

    record_result(R())
    # On a dense sweep: more aggressive policies mean fewer batches.
    assert outcomes["full-block"][0] <= outcomes["density-tree"][0]
    assert outcomes["density-tree"][0] < outcomes["region-only"][0]
    # The density tree removes most of the region-only batches reactively,
    # without full-block's speculative risk on sparse patterns.
    assert outcomes["density-tree"][0] <= 0.6 * outcomes["region-only"][0]
