"""Figure 16: Gauss-Seidel case study at ~16 % oversubscription.

Paper: eviction creates new opportunities for prefetching (freshly paged-in
VABlocks re-trigger it); fault behaviour shows contiguous batches allocating
and evicting similar large page ranges; LRU evicts the earliest-allocated
pages first.
"""


def bench_fig16_gauss_seidel_case(run_cached, record_result):
    result = run_cached("fig16")
    record_result(result)
    assert result.data["evictions"] > 10
    assert sum(result.data["prefetch_series"]) > 0
    # LRU banding: the first quarter of evictions target early-allocated
    # blocks (small allocation ranks).
    assert result.data["lru_median_rank_fraction"] < 0.6
    # Prefetching keeps occurring after evictions begin (the interplay).
    evicts = result.data["evict_series"]
    prefetch = result.data["prefetch_series"]
    first_evict = next(i for i, e in enumerate(evicts) if e > 0)
    assert any(p > 0 for p in prefetch[first_evict:])
