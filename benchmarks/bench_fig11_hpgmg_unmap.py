"""Figure 11: HPGMG with single- vs multithreaded host initialization.

Paper: disabling host multithreading roughly doubles performance; the
difference is CPU page unmapping on the fault path, whose cost is inflated
by first-touch mappings spread across many cores (TLB shootdowns).
"""


def bench_fig11_hpgmg_unmap(run_cached, record_result):
    result = run_cached("fig11")
    record_result(result)
    assert result.data["slowdown"] > 1.5
    assert (
        result.data[64]["unmap_fraction_mean"]
        > 2 * result.data[1]["unmap_fraction_mean"]
    )
    assert result.data[64]["unmap_fraction_max"] > 0.4
