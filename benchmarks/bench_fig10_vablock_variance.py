"""Figure 10: batch time vs migration size, coloured by VABlock count.

Paper: for batches with similar migration sizes, touching more VABlocks
incurs higher cost — each block in a batch is a distinct processing step.
"""


def bench_fig10_vablock_variance(run_cached, record_result):
    result = run_cached("fig10")
    record_result(result)
    # The multi-block workloads show a positive per-block cost residual.
    positive = [name for name, fit in result.data.items() if fit.slope > 0]
    assert "Regular" in positive or "Random" in positive
    assert len(positive) >= len(result.data) / 2
