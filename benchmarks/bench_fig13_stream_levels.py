"""Figure 13: stream under oversubscription — cost "levels".

Paper: batches with the same eviction count land on multiple cost levels;
the lower level has near-zero CPU-unmapping time because a block that was
evicted and paged back in is not CPU-mapped and skips
unmap_mapping_range().
"""


def bench_fig13_stream_levels(run_cached, record_result):
    result = run_cached("fig13")
    record_result(result)
    data = result.data
    # The level mechanism: evicting batches split into an unmap-free
    # population (blocks paged back in after eviction) and an unmap-paying
    # one (first GPU touch of CPU-mapped blocks).
    assert data["unmap_free_evicting"] > 0
    assert data["unmap_paying_evicting"] > 0
    # Where an eviction count shows multiple duration levels, they are
    # clearly separated.
    for k, levels in data.items():
        if isinstance(k, int) and len(levels) >= 2:
            assert levels[-1][0] > 1.5 * levels[0][0]
