"""Benchmark harness helpers.

Each ``bench_*.py`` regenerates one of the paper's tables or figures: the
benchmark measures the end-to-end experiment (simulation + analysis), the
rendered rows/series are printed and archived under ``benchmarks/results/``,
and shape assertions pin the paper's qualitative findings.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def record_result():
    """Print an ExperimentResult and archive it under benchmarks/results/."""

    def _record(result):
        RESULTS_DIR.mkdir(exist_ok=True)
        text = result.render()
        (RESULTS_DIR / f"{result.exp_id}.txt").write_text(text)
        print("\n" + text)
        return result

    return _record


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under the benchmark timer."""

    def _run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
