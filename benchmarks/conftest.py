"""Benchmark harness helpers.

Each ``bench_*.py`` regenerates one of the paper's tables or figures: the
benchmark measures the end-to-end experiment (simulation + analysis), the
rendered rows/series are printed and archived under ``benchmarks/results/``,
and shape assertions pin the paper's qualitative findings.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.campaign import run_experiment_cached

RESULTS_DIR = Path(__file__).parent / "results"
#: On-disk experiment result cache (keyed on exp id + kwargs + code version,
#: so any source change recomputes).  Override the location with
#: ``UVM_BENCH_CACHE_DIR``; set ``UVM_BENCH_NO_CACHE=1`` to always recompute.
CACHE_DIR = Path(__file__).parent / ".cache"


def _cache_dir() -> str | None:
    if os.environ.get("UVM_BENCH_NO_CACHE"):
        return None
    return os.environ.get("UVM_BENCH_CACHE_DIR", str(CACHE_DIR))


@pytest.fixture
def record_result():
    """Print an ExperimentResult and archive it under benchmarks/results/."""

    def _record(result):
        RESULTS_DIR.mkdir(exist_ok=True)
        text = result.render()
        (RESULTS_DIR / f"{result.exp_id}.txt").write_text(text)
        print("\n" + text)
        return result

    return _record


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under the benchmark timer."""

    def _run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run


@pytest.fixture
def run_cached(benchmark):
    """Run a registered experiment by id under the benchmark timer, memoized
    through the campaign result cache (cold run simulates, warm run loads the
    pickled :class:`ExperimentResult` — the timer reports whichever happened).
    """

    def _run(exp_id, **kwargs):
        kwargs.setdefault("cache_dir", _cache_dir())
        return benchmark.pedantic(
            run_experiment_cached, args=(exp_id,), kwargs=kwargs, rounds=1, iterations=1
        )

    return _run
