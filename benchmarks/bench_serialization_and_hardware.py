"""§6 claim benches: driver serialization and hardware (in)sensitivity.

* ``ablation_faster_interconnect`` — "improvements to basic hardware ...
  would still improve performance but would not resolve the underlying
  issues": even a free wire recovers only a few percent of batch time.
* ``fig_pointer_chase`` — the serialization endpoint: dependent accesses
  ship one fault per batch and pay a full driver round trip per page.
"""

from repro.analysis.experiments import (
    ablation_faster_interconnect,
    fig_pointer_chase,
)


def bench_ablation_faster_interconnect(run_once, record_result):
    result = run_once(ablation_faster_interconnect)
    record_result(result)
    ideal = result.data["ideal-interconnect"]["speedup"]
    nvlink = result.data["power9-nvlink2"]["speedup"]
    # Faster links help a little...
    assert 1.0 < nvlink <= ideal
    # ...but even a free wire cannot fix the fault path (§6).
    assert ideal < 1.4


def bench_fig_pointer_chase(run_once, record_result):
    result = run_once(fig_pointer_chase)
    record_result(result)
    # Fully dependent chase: exactly one fault per batch.
    assert result.data["chase_batches"] == 256
    # Per-page cost is an order of magnitude above the streaming case.
    assert result.data["serialization_penalty"] > 5
