"""Figure 14: batch profiles of sgemm with prefetching enabled.

Paper: prefetching reduces the number of batches by ~93 %; the remaining
high-cost outliers are the compulsory VABlock DMA-state batches (per-page
DMA mappings plus radix-tree inserts), up to ~64 % of batch time.
"""


def bench_fig14_prefetch_sgemm(run_cached, record_result):
    result = run_cached("fig14")
    record_result(result)
    assert result.data["batch_reduction"] > 0.75
    assert result.data[True]["batch_time"] < result.data[False]["batch_time"]
    # DMA-state creation dominates some prefetch-era batches.
    assert result.data[True]["dma_fraction_max"] > 0.3
