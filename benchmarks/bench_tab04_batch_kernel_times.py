"""Table 4: batch and kernel execution times with/without prefetching.

Paper: with modest oversubscription, prefetching improves kernel time by
3.39x (Gauss-Seidel, ~16 %) and 2.72x (HPGMG, ~25 %); aggregate batch time
is always below kernel time (GPU compute on resident data is excluded).
"""

from repro.analysis.experiments import tab04_batch_kernel_times


def bench_tab04_batch_kernel_times(run_once, record_result):
    result = run_once(tab04_batch_kernel_times)
    record_result(result)
    for name in ("Gauss-Seidel", "HPGMG"):
        entry = result.data[name]
        assert entry["speedup"] > 1.5, name
        for prefetch in (False, True):
            assert entry[prefetch]["batch"] < entry[prefetch]["kernel"], name
    # HPGMG's batch time is the dominant share of its kernel time.
    hp = result.data["HPGMG"][False]
    assert hp["batch"] > 0.5 * hp["kernel"]
