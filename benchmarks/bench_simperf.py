"""Wall-clock microbenchmarks for the simulator's hot paths.

Unlike the ``bench_fig*`` suite (which times whole experiments), this file
times the *mechanics* the campaign runner leans on, pairing each optimized
hot path with a faithful re-creation of its previous implementation:

- ``checkpoint``: one pickle round trip (capture + restore) vs the two
  recursive ``copy.deepcopy`` passes the old capture/restore cost.
- ``advise_grouping``: one-pass ``setdefault`` grouping of hinted pages by
  VABlock vs the old per-block rescan of the whole page list.
- ``replay_target``: ``sorted(faulted)`` on the already-unique fault list
  vs the old unconditional ``sorted(set(faulted) | prefetched)`` rebuild.
- ``metric_labels``: cached label-handle ``inc()`` vs per-call
  ``family.labels(...).inc()`` lookup.

Results (plus an end-to-end workload timing, a UVMSan timeline-identity
check, and the whole-program lint's per-pass wall time) are written to
``BENCH_perf.json`` at the repo root.  The suite
asserts at least one pair shows a >= 1.2x speedup, and that the sanitizer
observes a bit-identical timeline around every optimisation.

Run either way::

    python benchmarks/bench_simperf.py
    pytest benchmarks/bench_simperf.py --benchmark-disable
"""

from __future__ import annotations

import copy
import json
import pickle
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # script mode without an installed package
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import UvmSystem
from repro.config import default_config
from repro.obs.metrics import MetricsRegistry
from repro.sim.checkpoint import _build_state
from repro.units import vablock_of_page
from repro.workloads import WORKLOAD_REGISTRY

PERF_PATH = Path(__file__).resolve().parent.parent / "BENCH_perf.json"

#: Minimum speedup at least one timed pair must demonstrate.
SPEEDUP_FLOOR = 1.2


def _best_usec(fn, number: int, repeats: int = 3) -> float:
    """Best-of-``repeats`` mean wall time per call, in microseconds."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(number):
            fn()
        best = min(best, (time.perf_counter() - t0) / number)
    return best * 1e6


def _fresh_system(check_enabled: bool = False, check_mode: str = "raise") -> UvmSystem:
    cfg = default_config()
    cfg.gpu.memory_bytes = 32 << 20
    cfg.obs = cfg.obs.disabled()
    cfg.check.enabled = check_enabled
    cfg.check.mode = check_mode
    return UvmSystem(cfg)


def _warmed_engine():
    """An engine with real post-run state (page table, VABlocks, batch log)."""
    system = _fresh_system()
    WORKLOAD_REGISTRY["stream"]().run(system)
    return system.engine


# ------------------------------------------------------------- timed pairs


def _pair_checkpoint(engine) -> dict:
    state = _build_state(engine)

    def baseline():
        # Old capture + old restore: one deepcopy pass each.
        copy.deepcopy(state)
        copy.deepcopy(state)

    def optimized():
        pickle.loads(pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL))

    return {
        "baseline_usec": _best_usec(baseline, number=3),
        "optimized_usec": _best_usec(optimized, number=3),
    }


def _pair_advise_grouping() -> dict:
    pages = list(range(0, 8192))  # 16 VABlocks' worth, sorted

    def baseline():
        # Old shape: rescan the whole page list once per touched block.
        block_ids = sorted({vablock_of_page(p) for p in pages})
        return {
            block_id: [p for p in pages if vablock_of_page(p) == block_id]
            for block_id in block_ids
        }

    def optimized():
        by_block: dict = {}
        for page in pages:
            by_block.setdefault(vablock_of_page(page), []).append(page)
        return by_block

    assert baseline() == optimized()
    return {
        "baseline_usec": _best_usec(baseline, number=20),
        "optimized_usec": _best_usec(optimized, number=20),
    }


def _pair_replay_target() -> dict:
    faulted = list(range(0, 1024, 2))  # unique + sorted, as the dedup stage emits
    prefetched: set = set()

    def baseline():
        return sorted(set(faulted) | prefetched)

    def optimized():
        return sorted(faulted)

    assert baseline() == optimized()
    return {
        "baseline_usec": _best_usec(baseline, number=200),
        "optimized_usec": _best_usec(optimized, number=200),
    }


def _pair_metric_labels() -> dict:
    registry = MetricsRegistry(enabled=True)
    family = registry.counter("bench_retries_total", "bench", labels=("site",))
    handle = family.labels("dma")

    def baseline():
        family.labels("dma").inc()

    def optimized():
        handle.inc()

    return {
        "baseline_usec": _best_usec(baseline, number=5000),
        "optimized_usec": _best_usec(optimized, number=5000),
    }


# ------------------------------------------------------------ whole-suite


def _end_to_end() -> dict:
    t0 = time.perf_counter()
    system = _fresh_system()
    result = WORKLOAD_REGISTRY["stream"]().run(system)
    wall = time.perf_counter() - t0
    return {
        "workload": "stream",
        "wall_sec": round(wall, 4),
        "batches": result.num_batches,
        "clock_usec": system.clock.now,
    }


def _lint_timing() -> dict:
    """Time the whole-program analysis over ``src/repro`` using the
    engine's own per-pass timings, so the gate can hold a wall ceiling on
    the interprocedural fixpoints (sim-taint, dimensions)."""
    from repro.check.program import run_analysis

    src = Path(__file__).resolve().parent.parent / "src" / "repro"
    report = run_analysis([str(src)])
    return {
        "total_sec": round(report.timings.get("total", 0.0), 3),
        "ir_sec": round(report.timings.get("ir", 0.0), 3),
        "dimensions_sec": round(report.timings.get("dimensions", 0.0), 3),
        "raw_findings": sum(report.raw_by_pass.values()),
    }


def _uvmsan_identity() -> dict:
    """The optimized paths must be invisible to UVMSan: the same workload
    with the sanitizer off and on (report mode) yields the identical
    simulated timeline and zero violations."""
    plain = _fresh_system()
    plain_result = WORKLOAD_REGISTRY["stream"]().run(plain)
    checked = _fresh_system(check_enabled=True, check_mode="report")
    checked_result = WORKLOAD_REGISTRY["stream"]().run(checked)
    summary = checked.engine.sanitizer.summary()
    return {
        "timeline_identical": (
            plain.clock.now == checked.clock.now
            and plain_result.num_batches == checked_result.num_batches
            and plain_result.total_faults == checked_result.total_faults
        ),
        "clock_usec": plain.clock.now,
        "batches": plain_result.num_batches,
        "violations": summary["violations"],
    }


def run_suite() -> dict:
    engine = _warmed_engine()
    hot_paths = {
        "checkpoint": _pair_checkpoint(engine),
        "advise_grouping": _pair_advise_grouping(),
        "replay_target": _pair_replay_target(),
        "metric_labels": _pair_metric_labels(),
    }
    for stats in hot_paths.values():
        stats["speedup"] = round(stats["baseline_usec"] / stats["optimized_usec"], 3)
        stats["baseline_usec"] = round(stats["baseline_usec"], 3)
        stats["optimized_usec"] = round(stats["optimized_usec"], 3)
    report = {
        "suite": "simperf",
        "hot_paths": hot_paths,
        "end_to_end": _end_to_end(),
        "uvmsan": _uvmsan_identity(),
        "lint": _lint_timing(),
    }
    PERF_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def _check(report: dict) -> None:
    speedups = {
        name: stats["speedup"] for name, stats in report["hot_paths"].items()
    }
    assert max(speedups.values()) >= SPEEDUP_FLOOR, speedups
    assert report["uvmsan"]["timeline_identical"], report["uvmsan"]
    assert report["uvmsan"]["violations"] == 0, report["uvmsan"]


def bench_simperf_hot_paths():
    report = run_suite()
    _check(report)


def main() -> int:
    report = run_suite()
    print(json.dumps(report, indent=2, sort_keys=True))
    _check(report)
    print(f"\nwrote {PERF_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
