"""Wall-clock microbenchmarks for the simulator's hot paths.

Unlike the ``bench_fig*`` suite (which times whole experiments), this file
times the *mechanics* the campaign runner leans on, pairing each optimized
hot path with a faithful re-creation of its previous implementation:

- ``checkpoint``: one pickle round trip (capture + restore) vs the two
  recursive ``copy.deepcopy`` passes the old capture/restore cost.
- ``advise_grouping``: one-pass ``setdefault`` grouping of hinted pages by
  VABlock vs the old per-block rescan of the whole page list.
- ``replay_target``: ``sorted(faulted)`` on the already-unique fault list
  vs the old unconditional ``sorted(set(faulted) | prefetched)`` rebuild.
- ``metric_labels``: cached label-handle ``inc()`` vs per-call
  ``family.labels(...).inc()`` lookup.
- ``fault_pipeline``: the structure-of-arrays fault path (bulk buffer
  append + vectorized dedup/classify/group) vs the per-fault-object scalar
  path, on a duplicate-heavy 4096-fault batch.

Results (plus an end-to-end workload timing with its ``batches_per_sec``
headline, a UVMSan timeline-identity check, and the whole-program lint's
per-pass wall time) are written to ``BENCH_perf.json`` at the repo root.
The suite asserts at least one pair shows a >= 1.2x speedup, that the SoA
fault pipeline holds its floor, and that the sanitizer observes a
bit-identical timeline around every optimisation.

Run either way::

    python benchmarks/bench_simperf.py
    pytest benchmarks/bench_simperf.py --benchmark-disable
"""

from __future__ import annotations

import copy
import json
import pickle
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # script mode without an installed package
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import UvmSystem
from repro.config import default_config
from repro.obs.metrics import MetricsRegistry
from repro.sim.checkpoint import _build_state
from repro.units import vablock_of_page
from repro.workloads import WORKLOAD_REGISTRY

PERF_PATH = Path(__file__).resolve().parent.parent / "BENCH_perf.json"

#: Minimum speedup at least one timed pair must demonstrate.
SPEEDUP_FLOOR = 1.2

#: Minimum speedup the SoA fault pipeline must hold over the scalar path.
#: Measured ~5-7x on an idle machine; the floor leaves headroom for noisy
#: CI neighbours without letting a real regression slip through.
FAULT_PIPELINE_FLOOR = 4.0


def _best_usec(fn, number: int, repeats: int = 3) -> float:
    """Best-of-``repeats`` mean wall time per call, in microseconds."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(number):
            fn()
        best = min(best, (time.perf_counter() - t0) / number)
    return best * 1e6


def _fresh_system(check_enabled: bool = False, check_mode: str = "raise") -> UvmSystem:
    cfg = default_config()
    cfg.gpu.memory_bytes = 32 << 20
    cfg.obs = cfg.obs.disabled()
    cfg.check.enabled = check_enabled
    cfg.check.mode = check_mode
    return UvmSystem(cfg)


def _warmed_engine():
    """An engine with real post-run state (page table, VABlocks, batch log)."""
    system = _fresh_system()
    WORKLOAD_REGISTRY["stream"]().run(system)
    return system.engine


# ------------------------------------------------------------- timed pairs


def _pair_checkpoint(engine) -> dict:
    state = _build_state(engine)

    def baseline():
        # Old capture + old restore: one deepcopy pass each.
        copy.deepcopy(state)
        copy.deepcopy(state)

    def optimized():
        pickle.loads(pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL))

    return {
        "baseline_usec": _best_usec(baseline, number=3),
        "optimized_usec": _best_usec(optimized, number=3),
    }


def _pair_advise_grouping() -> dict:
    pages = list(range(0, 8192))  # 16 VABlocks' worth, sorted

    def baseline():
        # Old shape: rescan the whole page list once per touched block.
        block_ids = sorted({vablock_of_page(p) for p in pages})
        return {
            block_id: [p for p in pages if vablock_of_page(p) == block_id]
            for block_id in block_ids
        }

    def optimized():
        by_block: dict = {}
        for page in pages:
            by_block.setdefault(vablock_of_page(page), []).append(page)
        return by_block

    assert baseline() == optimized()
    return {
        "baseline_usec": _best_usec(baseline, number=20),
        "optimized_usec": _best_usec(optimized, number=20),
    }


def _pair_replay_target() -> dict:
    faulted = list(range(0, 1024, 2))  # unique + sorted, as the dedup stage emits
    prefetched: set = set()

    def baseline():
        return sorted(set(faulted) | prefetched)

    def optimized():
        return sorted(faulted)

    assert baseline() == optimized()
    return {
        "baseline_usec": _best_usec(baseline, number=200),
        "optimized_usec": _best_usec(optimized, number=200),
    }


def _interleaved_pair_usec(baseline, optimized, number: int, repeats: int = 7):
    """Best-of-``repeats`` per-call wall time for two rivals, with rounds
    interleaved (A, B, A, B, ...) so slow drift in machine state — turbo
    levels, background load — hits both sides instead of biasing the ratio.
    """
    best_a = best_b = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(number):
            baseline()
        best_a = min(best_a, (time.perf_counter() - t0) / number)
        t0 = time.perf_counter()
        for _ in range(number):
            optimized()
        best_b = min(best_b, (time.perf_counter() - t0) / number)
    return best_a * 1e6, best_b * 1e6


def _pair_fault_pipeline() -> dict:
    """The tentpole pair: GMMU delivery → driver fetch → dedup/classify →
    VABlock grouping, per-fault objects vs structure-of-arrays.

    Baseline is the scalar production path (one ``deliver_ok`` — Fault
    allocation plus deque push — per fault, then the dict-churn assembler);
    optimized is the SoA production path (flat event recording, one bulk
    buffer append, strided-slice fetch, vectorized assembler).  The stream
    is duplicate-heavy like the paper's batches (§4.2, Fig 8): 4096 faults
    over a 512-page working set across 4 VABlocks, mixed access types.
    Both paths must produce identical batch contents — asserted below.
    """
    import random

    from repro.core.batch import assemble_batch
    from repro.gpu.fault import AccessType
    from repro.gpu.fault_buffer import FaultBuffer, SoaFaultBuffer
    from repro.gpu.gmmu import Gmmu

    n = 4096
    rng = random.Random(2)
    events = []
    for _ in range(n):
        sm_id = rng.randrange(80)
        events.append(
            (
                sm_id,
                sm_id // 2,
                rng.randrange(0, n // 4),
                AccessType(rng.randrange(3)),
                rng.randrange(1, 2000),
            )
        )

    def baseline():
        buffer = FaultBuffer(n + 8)
        gmmu = Gmmu(buffer, 2)
        t = 0.0
        for sm_id, _utlb_id, page, access, uid in events:
            gmmu.deliver_ok(page, access, sm_id, uid, t)
            t += 0.1
        return assemble_batch(buffer.fetch(n), 80)

    def optimized():
        buffer = SoaFaultBuffer(n + 8)
        gmmu = Gmmu(buffer, 2)
        bucket: list = []
        for event in events:
            bucket.extend(event)
        gmmu.latch_interrupt(0.0)
        buffer.extend_bulk(bucket, 0.0, 0.1)
        return assemble_batch(buffer.fetch(n), 80)

    a, b = baseline(), optimized()
    assert a.num_unique == b.num_unique
    assert a.dup_same_utlb == b.dup_same_utlb
    assert a.dup_cross_utlb == b.dup_cross_utlb
    assert [w.pages for w in a.blocks] == [w.pages for w in b.blocks]
    assert [w.write_pages for w in a.blocks] == [w.write_pages for w in b.blocks]
    assert [w.raw_faults for w in a.blocks] == [w.raw_faults for w in b.blocks]
    assert a.faults[-1].timestamp == b.faults[-1].timestamp

    base_usec, opt_usec = _interleaved_pair_usec(baseline, optimized, number=20)
    return {"baseline_usec": base_usec, "optimized_usec": opt_usec}


def _pair_metric_labels() -> dict:
    registry = MetricsRegistry(enabled=True)
    family = registry.counter("bench_retries_total", "bench", labels=("site",))
    handle = family.labels("dma")

    def baseline():
        family.labels("dma").inc()

    def optimized():
        handle.inc()

    return {
        "baseline_usec": _best_usec(baseline, number=5000),
        "optimized_usec": _best_usec(optimized, number=5000),
    }


# ------------------------------------------------------------ whole-suite


def _end_to_end() -> dict:
    t0 = time.perf_counter()
    system = _fresh_system()
    result = WORKLOAD_REGISTRY["stream"]().run(system)
    wall = time.perf_counter() - t0
    return {
        "workload": "stream",
        "wall_sec": round(wall, 4),
        "batches": result.num_batches,
        "batches_per_sec": round(result.num_batches / wall, 1),
        "clock_usec": system.clock.now,
    }


def _lint_timing() -> dict:
    """Time the whole-program analysis over ``src/repro`` using the
    engine's own per-pass timings, so the gate can hold a wall ceiling on
    the interprocedural fixpoints (sim-taint, dimensions, and the
    protocol/lifecycle family's path walks and closure comparisons)."""
    from repro.check.program import run_analysis

    src = Path(__file__).resolve().parent.parent / "src" / "repro"
    report = run_analysis([str(src)])
    return {
        "total_sec": round(report.timings.get("total", 0.0), 3),
        "ir_sec": round(report.timings.get("ir", 0.0), 3),
        "dimensions_sec": round(report.timings.get("dimensions", 0.0), 3),
        "lifecycle_sec": round(report.timings.get("lifecycle", 0.0), 3),
        "snapshot_sec": round(report.timings.get("snapshot", 0.0), 3),
        "parity_sec": round(report.timings.get("parity", 0.0), 3),
        "raw_findings": sum(report.raw_by_pass.values()),
    }


def _uvmsan_identity() -> dict:
    """The optimized paths must be invisible to UVMSan: the same workload
    with the sanitizer off and on (report mode) yields the identical
    simulated timeline and zero violations."""
    plain = _fresh_system()
    plain_result = WORKLOAD_REGISTRY["stream"]().run(plain)
    checked = _fresh_system(check_enabled=True, check_mode="report")
    checked_result = WORKLOAD_REGISTRY["stream"]().run(checked)
    summary = checked.engine.sanitizer.summary()
    return {
        "timeline_identical": (
            plain.clock.now == checked.clock.now
            and plain_result.num_batches == checked_result.num_batches
            and plain_result.total_faults == checked_result.total_faults
        ),
        "clock_usec": plain.clock.now,
        "batches": plain_result.num_batches,
        "violations": summary["violations"],
    }


def run_suite() -> dict:
    engine = _warmed_engine()
    hot_paths = {
        "checkpoint": _pair_checkpoint(engine),
        "advise_grouping": _pair_advise_grouping(),
        "replay_target": _pair_replay_target(),
        "metric_labels": _pair_metric_labels(),
        "fault_pipeline": _pair_fault_pipeline(),
    }
    for stats in hot_paths.values():
        stats["speedup"] = round(stats["baseline_usec"] / stats["optimized_usec"], 3)
        stats["baseline_usec"] = round(stats["baseline_usec"], 3)
        stats["optimized_usec"] = round(stats["optimized_usec"], 3)
    report = {
        "suite": "simperf",
        "hot_paths": hot_paths,
        "end_to_end": _end_to_end(),
        "uvmsan": _uvmsan_identity(),
        "lint": _lint_timing(),
    }
    PERF_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def _check(report: dict) -> None:
    speedups = {
        name: stats["speedup"] for name, stats in report["hot_paths"].items()
    }
    assert max(speedups.values()) >= SPEEDUP_FLOOR, speedups
    assert (
        speedups["fault_pipeline"] >= FAULT_PIPELINE_FLOOR
    ), speedups
    assert report["end_to_end"]["batches_per_sec"] > 0, report["end_to_end"]
    assert report["uvmsan"]["timeline_identical"], report["uvmsan"]
    assert report["uvmsan"]["violations"] == 0, report["uvmsan"]


def bench_simperf_hot_paths():
    report = run_suite()
    _check(report)


def main() -> int:
    report = run_suite()
    print(json.dumps(report, indent=2, sort_keys=True))
    _check(report)
    print(f"\nwrote {PERF_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
