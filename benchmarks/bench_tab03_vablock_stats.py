"""Table 3: VABlock source statistics in a batch.

Paper ordering: Random touches by far the most VABlocks per batch (~1
fault/block), Regular is next (many independent SM regions), applications
cluster low (2-7 blocks/batch) with stencils the most block-local.
"""

from repro.analysis.experiments import tab03_vablock_stats


def bench_tab03_vablock_stats(run_once, record_result):
    result = run_once(tab03_vablock_stats)
    record_result(result)
    data = result.data
    # Random >> Regular >> apps in blocks/batch.
    assert data["Random"].vablocks_per_batch > data["Regular"].vablocks_per_batch
    assert data["Regular"].vablocks_per_batch > 10
    for app in ("sgemm", "stream", "gauss-seidel", "hpgmg"):
        assert data[app].vablocks_per_batch < 8, app
    # Random has ~no locality: faults/VABlock near 1.
    assert data["Random"].faults_per_vablock.mean < 3
    # Stencils are the most block-local (many faults per block).
    assert data["gauss-seidel"].faults_per_vablock.mean > data["Random"].faults_per_vablock.mean
    # Per-block workload is highly imbalanced for apps (the §6 argument
    # against naive per-VABlock driver parallelism).
    assert data["gauss-seidel"].faults_per_vablock.std > 5
