"""Figure 15: dgemm with eviction + prefetching combined.

Paper: four batch populations coexist — prefetch-enlarged migrations,
evicting batches, CPU-unmapping batches, and intermittent DMA-state setup —
and the cost relationships from the isolated studies still hold.
"""


def bench_fig15_evict_prefetch(run_cached, record_result):
    result = run_cached("fig15")
    record_result(result)
    for population in (
        "prefetching (pages_prefetched > 0)",
        "evicting (evictions > 0)",
        "CPU unmapping (unmap_calls > 0)",
        "DMA-state setup (new_dma_blocks > 0)",
    ):
        assert result.data[population] > 0, population
    # DMA setup is intermittent, not universal.
    assert result.data["DMA-state setup (new_dma_blocks > 0)"] <= result.data["total_batches"]
