"""Figure 4: vector-add faults with real-time buffer-arrival timestamps.

Paper: faults clustered tightly vertically always indicate a batch; faults
from the same warp happen in rapid succession, and the full batch servicing
time is short relative to the inter-batch spacing.
"""


def bench_fig04_vecadd_timing(run_cached, record_result):
    result = run_cached("fig04")
    record_result(result)
    # Arrival spans are small next to servicing time (tight clusters).
    assert result.data["mean_span_over_service"] < 0.5
    spans = result.data["arrival_spans"]
    services = result.data["service_times"]
    assert all(s >= 0 for s in spans)
    assert all(sv > 0 for sv in services)
