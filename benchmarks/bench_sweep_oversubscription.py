"""Hypothesis sweep: prefetch gain vs oversubscription ratio.

Paper §5.4: "the performance gain from prefetching is expected to decrease
as the percentage of oversubscription increases and more evictions are
involved", and §5.3: "the combination of prefetching and eviction can harm
performance for applications with irregular access patterns".

Reproduced: the dense stencil's gain is ratio-insensitive (every prefetched
page is eventually needed), while the irregular pattern's gain collapses
toward 1x as the prefetcher's speculative 64 KiB upgrades waste scarce
capacity.
"""


def bench_sweep_oversubscription(run_cached, record_result):
    result = run_cached("sweep_oversubscription")
    record_result(result)
    dense = result.data["dense (gauss-seidel)"]
    irregular = result.data["irregular (random)"]
    ratios = sorted(irregular)
    # Irregular: gain decays monotonically-ish toward 1x with oversubscription.
    assert irregular[ratios[0]] > 1.5
    assert irregular[ratios[-1]] < 0.6 * irregular[ratios[0]]
    # Dense: gain stays within a narrow band across ratios.
    dense_vals = [dense[r] for r in sorted(dense)]
    assert max(dense_vals) - min(dense_vals) < 0.5
    # Prefetching keeps helping dense workloads even when oversubscribed.
    assert min(dense_vals) > 1.5
