"""Figure 3: faults of vector addition as a relative time series.

Paper: the first batch contains exactly 56 faults — all 32 vector-A reads
and 24 of the 32 vector-B reads (the per-µTLB outstanding-fault cap) — and
no write executes until all 64 prerequisite reads are fulfilled.
"""


def bench_fig03_vecadd_batches(run_cached, record_result):
    result = run_cached("fig03")
    record_result(result)
    assert result.data["first_batch_size"] == 56
    comp0 = result.data["composition"][0]
    assert comp0 == {"A": 32, "B": 24, "C": 0}
    # Writes (C pages) never appear before batch 2.
    assert result.data["composition"][1]["C"] == 0
