"""Figure 12: sgemm under oversubscription and eviction.

Paper: many batches execute before memory fills without evicting; batches
containing evictions pay to fail the allocation, migrate a VABlock back,
and restart the migration — costs stratified by the eviction count.
"""

import numpy as np

def bench_fig12_sgemm_oversub(run_cached, record_result):
    result = run_cached("fig12")
    record_result(result)
    data = result.data
    assert data["total_evictions"] > 0
    assert 0 in data, "most batches must not evict"
    evicting_counts = [k for k in data if isinstance(k, int) and k > 0]
    assert evicting_counts
    # Eviction batches cost more, monotonically in eviction count (means).
    base = data[0]["mean"]
    for k in evicting_counts:
        assert data[k]["mean"] > base
