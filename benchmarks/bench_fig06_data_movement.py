"""Figure 6: best fit of batch time vs data migrated per application.

Paper: average batch cost rises linearly with the amount of data moved for
all applications, with app-dependent slope and high variance.
"""


def bench_fig06_data_movement(run_cached, record_result):
    result = run_cached("fig06")
    record_result(result)
    for name, fit in result.data.items():
        assert fit.slope > 0, f"{name} batch cost must rise with bytes moved"
    # Slopes are app-dependent: a clear spread across applications.
    slopes = sorted(f.slope for f in result.data.values())
    assert slopes[-1] > 1.5 * slopes[0]
