"""Figure 1: access latency of the abstracted unified space.

Paper: UVM access latency is one or more orders of magnitude above explicit
direct management, and oversubscription is far worse still.
Reproduced shape: explicit < UVM in-core < UVM oversubscribed, with the UVM
rows several times the explicit baseline (see EXPERIMENTS.md for the
magnitude discussion).
"""


def bench_fig01_access_latency(run_cached, record_result):
    result = run_cached("fig01")
    record_result(result)
    assert result.data["uvm_slowdown"] > 2.0
    assert result.data["oversub_slowdown"] > result.data["uvm_slowdown"] * 1.5
