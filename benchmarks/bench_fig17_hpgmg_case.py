"""Figure 17: HPGMG case study at ~25 % oversubscription.

Paper: the setup phase produces few faults; intensive prefetching and
increasing evictions coincide in several segments; the LRU replacement
policy manifests as earliest-allocated eviction bands.
"""


def bench_fig17_hpgmg_case(run_cached, record_result):
    result = run_cached("fig17")
    record_result(result)
    assert result.data["evictions"] > 10
    assert len(result.data["segments"]) >= 1
    assert result.data["lru_median_rank_fraction"] < 0.6
    # Prefetch and eviction activity overlap in time (§5.4's coincidence).
    evicts = result.data["evict_series"]
    prefetch = result.data["prefetch_series"]
    overlap = sum(1 for e, p in zip(evicts, prefetch) if e > 0 and p > 0)
    assert overlap > 0
