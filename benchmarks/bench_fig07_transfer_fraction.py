"""Figure 7: percentage of batch time spent on data transfer (sgemm).

Paper: at most ~25 % of the total batch time is transfer, typically far
lower — most batch servicing time is *not* spent moving data.
"""


def bench_fig07_transfer_fraction(run_cached, record_result):
    result = run_cached("fig07")
    record_result(result)
    assert result.data["mean"] < 0.20
    assert result.data["max"] < 0.35
