"""Figure 7: percentage of batch time spent on data transfer (sgemm).

Paper: at most ~25 % of the total batch time is transfer, typically far
lower — most batch servicing time is *not* spent moving data.
"""

from repro.analysis.experiments import fig07_transfer_fraction


def bench_fig07_transfer_fraction(run_once, record_result):
    result = run_once(fig07_transfer_fraction)
    record_result(result)
    assert result.data["mean"] < 0.20
    assert result.data["max"] < 0.35
