"""Shared fixtures: small, fast system configurations for unit tests."""

from __future__ import annotations

import pytest

from repro.config import SystemConfig, default_config
from repro.api import UvmSystem
from repro.units import MB


@pytest.fixture
def small_config() -> SystemConfig:
    """A scaled-down system: 8 SMs, 16 MiB device memory, no jitter.

    Jitter is disabled so unit tests can assert exact component sums.
    """
    cfg = default_config()
    cfg.gpu.num_sms = 8
    cfg.gpu.memory_bytes = 16 * MB
    cfg.cost_overrides = {"jitter_frac": 0.0}
    cfg.validate()
    return cfg


@pytest.fixture
def small_system(small_config) -> UvmSystem:
    return UvmSystem(small_config)


@pytest.fixture
def system_factory():
    """Factory building a UvmSystem from keyword overrides.

    >>> system = system_factory(prefetch_enabled=False, gpu_mem_mb=8)
    """

    def make(
        gpu_mem_mb: int = 16,
        num_sms: int = 8,
        host_threads: int = 1,
        trace: bool = False,
        jitter: bool = False,
        seed: int = 0,
        **driver_kw,
    ) -> UvmSystem:
        cfg = default_config(**driver_kw)
        cfg.gpu.num_sms = num_sms
        cfg.gpu.memory_bytes = gpu_mem_mb * MB
        cfg.host.num_threads = host_threads
        cfg.seed = seed
        if not jitter:
            cfg.cost_overrides = {"jitter_frac": 0.0}
        cfg.validate()
        return UvmSystem(cfg, trace=trace)

    return make
