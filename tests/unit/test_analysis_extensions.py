"""Unit tests for breakdown, export, and trace capture/replay."""

import csv

import pytest

from repro import UvmSystem, default_config
from repro.analysis.breakdown import (
    COMPONENTS,
    cost_breakdown,
    host_os_share,
    render_breakdown,
    wire_share,
)
from repro.analysis.export import (
    export_batch_timeline,
    export_scatter,
    export_sm_histogram,
    write_csv,
)
from repro.analysis.traces import FaultTrace, TracedFault, capture_trace, replay
from repro.core.batch_record import BatchRecord
from repro.units import MB
from repro.workloads import StreamTriad


def record(batch_id=0, **kwargs):
    r = BatchRecord(batch_id=batch_id)
    for k, v in kwargs.items():
        setattr(r, k, v)
    return r


class TestBreakdown:
    def test_components_cover_all_timers(self):
        attrs = {a for a, _ in COMPONENTS}
        r = BatchRecord(batch_id=0)
        timer_fields = {
            f for f in vars(r) if f.startswith("time_")
        }
        assert attrs == timer_fields

    def test_shares_sum_to_one(self):
        recs = [record(time_fetch=10.0, time_unmap=30.0, time_dma=60.0)]
        shares = cost_breakdown(recs)
        assert sum(s.fraction for s in shares) == pytest.approx(1.0)

    def test_sorted_by_cost(self):
        recs = [record(time_fetch=10.0, time_unmap=30.0)]
        shares = cost_breakdown(recs)
        assert shares[0].attr == "time_unmap"

    def test_host_os_share(self):
        recs = [record(time_unmap=30.0, time_dma=20.0, time_fetch=50.0)]
        assert host_os_share(recs) == pytest.approx(0.5)

    def test_wire_share(self):
        recs = [record(time_transfer_h2d=25.0, time_fetch=75.0)]
        assert wire_share(recs) == pytest.approx(0.25)

    def test_render_skips_zero_components(self):
        out = render_breakdown([record(time_fetch=10.0)])
        assert "fault-buffer fetch" in out
        assert "unmap_mapping_range" not in out

    def test_empty_records(self):
        assert cost_breakdown([]) == sorted(cost_breakdown([]), key=lambda s: -s.total_usec)

    def test_real_run_host_os_significant(self, system_factory):
        """§6: host OS components are a significant share on real workloads."""
        system = system_factory(prefetch_enabled=False, gpu_mem_mb=64)
        res = StreamTriad(nbytes=8 * MB).run(system)
        assert host_os_share(res.records) > 0.05
        assert wire_share(res.records) < 0.35


class TestExport:
    def test_write_csv(self, tmp_path):
        path = write_csv(tmp_path / "x.csv", ["a", "b"], [[1, 2], [3, 4]])
        rows = list(csv.reader(path.open()))
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]

    def test_export_timeline(self, tmp_path, system_factory):
        system = system_factory(prefetch_enabled=False)
        res = StreamTriad(nbytes=2 * MB).run(system)
        path = export_batch_timeline(res.records, tmp_path / "timeline.csv")
        rows = list(csv.reader(path.open()))
        assert len(rows) == len(res.records) + 1
        assert rows[0][0] == "batch_id"

    def test_export_scatter(self, tmp_path):
        recs = [record(bytes_h2d=100, t_start=0.0, t_end=5.0)]
        path = export_scatter(recs, tmp_path / "scatter.csv")
        rows = list(csv.reader(path.open()))
        assert rows[1] == ["100", "5.0"]

    def test_export_sm_histogram(self, tmp_path):
        import numpy as np

        recs = [
            record(sm_fault_counts=np.array([1, 2])),
            record(sm_fault_counts=np.array([3, 0])),
        ]
        path = export_sm_histogram(recs, tmp_path / "sm.csv")
        rows = list(csv.reader(path.open()))
        assert rows[1:] == [["0", "4"], ["1", "2"]]


class TestTraces:
    def traced_run(self, system_factory):
        system = system_factory(prefetch_enabled=False, trace=True)
        alloc = system.managed_alloc(2 * MB)
        system.host_touch(alloc)
        from repro.gpu.warp import KernelLaunch, Phase, WarpProgram

        pages = list(alloc.pages(0, 128))
        phases = [Phase.of(pages[i : i + 16]) for i in range(0, 128, 16)]
        system.launch(KernelLaunch("t", [WarpProgram(phases)]))
        return system

    def test_capture_requires_tracing(self, system_factory):
        system = system_factory()
        with pytest.raises(ValueError):
            capture_trace(system)

    def test_capture_counts_faults(self, system_factory):
        system = self.traced_run(system_factory)
        trace = capture_trace(system)
        assert trace.num_faults == sum(r.num_faults_raw for r in system.records)
        assert len(trace.windows) == len(system.records)

    def test_jsonl_roundtrip(self, system_factory, tmp_path):
        system = self.traced_run(system_factory)
        trace = capture_trace(system)
        path = tmp_path / "trace.jsonl"
        trace.to_jsonl(path)
        loaded = FaultTrace.from_jsonl(path)
        assert loaded.allocations == trace.allocations
        assert loaded.num_faults == trace.num_faults
        assert loaded.windows[0][0] == trace.windows[0][0]

    def test_replay_same_config_same_unique_pages(self, system_factory):
        system = self.traced_run(system_factory)
        trace = capture_trace(system)
        cfg = system.config.replace()
        log = replay(trace, cfg)
        assert log.total_faults_unique == sum(
            r.num_faults_unique for r in system.records
        )

    def test_replay_bigger_batches_fewer(self, system_factory):
        system = self.traced_run(system_factory)
        trace = capture_trace(system)
        small = replay(trace, system.config.replace())
        big_cfg = system.config.replace()
        big_cfg.driver.batch_size = 4096
        big = replay(trace, big_cfg)
        assert len(big) <= len(small)

    def test_replay_with_prefetch_policy_change(self, system_factory):
        system = self.traced_run(system_factory)
        trace = capture_trace(system)
        pf_cfg = system.config.replace()
        pf_cfg.driver.prefetch_enabled = True
        log = replay(trace, pf_cfg)
        # Prefetching makes later windows' faults hit: fewer serviced batches.
        assert len(log) <= len(system.records)
