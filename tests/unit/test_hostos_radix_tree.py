"""Unit tests for the Linux-style radix tree."""

import pytest

from repro.hostos.radix_tree import MAP_SIZE, RadixTree


class TestBasics:
    def test_empty_lookup(self):
        assert RadixTree().lookup(0) is None

    def test_insert_and_lookup(self):
        t = RadixTree()
        assert t.insert(5, "x")
        assert t.lookup(5) == "x"

    def test_contains(self):
        t = RadixTree()
        t.insert(7, 1)
        assert 7 in t
        assert 8 not in t

    def test_replace_returns_false(self):
        t = RadixTree()
        t.insert(5, "a")
        assert not t.insert(5, "b")
        assert t.lookup(5) == "b"
        assert len(t) == 1

    def test_len_counts_distinct(self):
        t = RadixTree()
        for k in (1, 2, 3, 2):
            t.insert(k, k)
        assert len(t) == 3

    def test_negative_key_rejected(self):
        with pytest.raises(ValueError):
            RadixTree().insert(-1, "x")
        with pytest.raises(ValueError):
            RadixTree().lookup(-1)

    def test_none_value_rejected(self):
        with pytest.raises(ValueError):
            RadixTree().insert(0, None)

    def test_key_zero(self):
        t = RadixTree()
        t.insert(0, "zero")
        assert t.lookup(0) == "zero"


class TestHeightGrowth:
    def test_single_level(self):
        t = RadixTree()
        t.insert(MAP_SIZE - 1, "x")
        assert t.height == 1

    def test_grows_for_large_keys(self):
        t = RadixTree()
        t.insert(MAP_SIZE, "x")  # needs 2 levels
        assert t.height == 2
        assert t.lookup(MAP_SIZE) == "x"

    def test_growth_preserves_existing(self):
        t = RadixTree()
        t.insert(1, "small")
        t.insert(MAP_SIZE ** 3, "huge")
        assert t.lookup(1) == "small"
        assert t.lookup(MAP_SIZE ** 3) == "huge"
        assert t.height == 4

    def test_lookup_beyond_height(self):
        t = RadixTree()
        t.insert(1, "x")
        assert t.lookup(MAP_SIZE ** 2) is None


class TestNodeAccounting:
    def test_first_insert_allocates_one_node(self):
        t = RadixTree()
        t.insert(0, "x")
        assert t.nodes_allocated == 1
        assert t.nodes_live == 1

    def test_dense_leaf_shares_node(self):
        t = RadixTree()
        for k in range(MAP_SIZE):
            t.insert(k, k)
        assert t.nodes_allocated == 1

    def test_block_of_512_pages_node_count(self):
        # 512 consecutive keys = 8 leaves + 1 root (height 2).
        t = RadixTree()
        for k in range(512):
            t.insert(k, k)
        assert t.nodes_allocated == 9

    def test_sparse_keys_allocate_paths(self):
        t = RadixTree()
        t.insert(0, "a")
        before = t.nodes_allocated
        t.insert(MAP_SIZE * MAP_SIZE - 1, "b")  # distant key, new path
        assert t.nodes_allocated > before


class TestDelete:
    def test_delete_returns_value(self):
        t = RadixTree()
        t.insert(5, "x")
        assert t.delete(5) == "x"
        assert t.lookup(5) is None
        assert len(t) == 0

    def test_delete_missing(self):
        assert RadixTree().delete(5) is None

    def test_delete_frees_empty_nodes(self):
        t = RadixTree()
        t.insert(MAP_SIZE * 3, "x")
        live_before = t.nodes_live
        t.delete(MAP_SIZE * 3)
        assert t.nodes_live < live_before

    def test_delete_keeps_siblings(self):
        t = RadixTree()
        t.insert(1, "a")
        t.insert(2, "b")
        t.delete(1)
        assert t.lookup(2) == "b"

    def test_delete_all_empties_tree(self):
        t = RadixTree()
        keys = [0, 100, 5000]
        for k in keys:
            t.insert(k, k)
        for k in keys:
            t.delete(k)
        assert t.nodes_live == 0
        assert t.height == 0


class TestIteration:
    def test_items_sorted(self):
        t = RadixTree()
        for k in (300, 5, 70, 7000):
            t.insert(k, k * 2)
        assert list(t.items()) == [(5, 10), (70, 140), (300, 600), (7000, 14000)]

    def test_items_empty(self):
        assert list(RadixTree().items()) == []
