"""UVMSan unit tests: each invariant rule fires on deliberately corrupted
driver / µTLB / fault-buffer / VABlock state, modes behave as configured,
and the disabled path is the shared null object."""

from __future__ import annotations

import pytest

from repro.check.sanitizer import NULL_SANITIZER, Sanitizer, make_sanitizer
from repro.config import CheckConfig, default_config
from repro.core.vablock import VABlockPhase, VABlockState, legal_transition
from repro.errors import InvariantViolation
from repro.gpu.fault_buffer import FaultBuffer
from repro.gpu.utlb import UTlb
from repro.sim.clock import SimClock
from repro.units import PAGE_SIZE
from repro.workloads import VecAddPageStride


def make_san(mode: str = "raise") -> Sanitizer:
    cfg = CheckConfig(enabled=True, mode=mode)
    return Sanitizer(cfg, SimClock())


def run_system(system_factory, **kw):
    system = system_factory(**kw)
    VecAddPageStride(tsize=8).run(system)
    return system


@pytest.fixture
def sanitized_system(system_factory):
    """A small run with UVMSan attached in report mode, ready to corrupt."""
    system = system_factory(gpu_mem_mb=8)
    system.config.check.enabled = True
    system.config.check.mode = "report"
    # Rebuild so the engine wires the sanitizer through every component.
    from repro.api import UvmSystem

    system = UvmSystem(system.config)
    VecAddPageStride(tsize=8).run(system)
    assert system.sanitizer.enabled
    assert system.sanitizer.total_violations == 0
    return system


class TestPhaseMachine:
    def test_forbidden_edge_is_registered_to_resident(self):
        assert not legal_transition(VABlockPhase.REGISTERED, VABlockPhase.RESIDENT)

    @pytest.mark.parametrize("phase", list(VABlockPhase))
    def test_self_transitions_legal(self, phase):
        assert legal_transition(phase, phase)

    def test_lifecycle_edges_legal(self):
        assert legal_transition(VABlockPhase.REGISTERED, VABlockPhase.ALLOCATED)
        assert legal_transition(VABlockPhase.ALLOCATED, VABlockPhase.RESIDENT)
        assert legal_transition(VABlockPhase.RESIDENT, VABlockPhase.REGISTERED)

    def test_phase_derived_from_state(self):
        block = VABlockState(block_id=0, valid_pages={0, 1})
        assert block.phase is VABlockPhase.REGISTERED
        block.gpu_chunk = 3
        assert block.phase is VABlockPhase.ALLOCATED
        block.resident_pages = {0}
        assert block.phase is VABlockPhase.RESIDENT


class TestUtlbRule:
    def test_cap_violation_fires(self):
        san = make_san()
        utlb = UTlb(utlb_id=0, limit=56)
        utlb.attach_sanitizer(san)
        utlb.outstanding = 57
        utlb.pending_pages = set(range(57))
        with pytest.raises(InvariantViolation, match="utlb-cap"):
            san.on_utlb(utlb)

    def test_bookkeeping_mismatch_fires(self):
        san = make_san()
        utlb = UTlb(utlb_id=1, limit=56)
        utlb.outstanding = 2
        utlb.pending_pages = {7}
        with pytest.raises(InvariantViolation, match="pending pages"):
            san.on_utlb(utlb)

    def test_hooked_mutations_checked(self):
        """request/cancel/replay call the sanitizer when attached."""
        san = make_san(mode="report")
        utlb = UTlb(utlb_id=0, limit=2)
        utlb.attach_sanitizer(san)
        assert utlb.request(10) and utlb.request(11)
        utlb.cancel(10)
        utlb.replay()
        assert san.total_violations == 0

    def test_healthy_utlb_passes(self):
        san = make_san()
        utlb = UTlb(utlb_id=0, limit=56)
        utlb.request(4)
        san.on_utlb(utlb)


class TestFaultBufferRule:
    def _fault(self, page=0):
        from repro.gpu.fault import AccessType, Fault

        return Fault(page=page, access=AccessType.READ, sm_id=0, utlb_id=0,
                     warp_uid=0, timestamp=0.0)

    def test_occupancy_over_capacity_fires(self):
        san = make_san()
        buf = FaultBuffer(capacity=2)
        buf.attach_sanitizer(san)
        buf._entries.extend(self._fault(p) for p in range(3))  # bypass push
        buf.total_pushed = 3
        with pytest.raises(InvariantViolation, match="exceeds capacity"):
            san.on_fault_buffer(buf)

    def test_conservation_violation_fires(self):
        san = make_san()
        buf = FaultBuffer(capacity=8)
        buf.push(self._fault(1))
        buf.total_pushed += 5  # phantom pushes never fetched/flushed/residual
        with pytest.raises(InvariantViolation, match="conservation"):
            san.on_fault_buffer(buf)

    def test_push_fetch_flush_conserve(self):
        san = make_san()
        buf = FaultBuffer(capacity=4)
        buf.attach_sanitizer(san)
        for p in range(6):
            buf.push(self._fault(p))  # two overflow-drop
        assert buf.total_overflow_dropped == 2
        buf.fetch(2)
        buf.flush()
        assert san.total_violations == 0


class TestCopyEngineRule:
    def test_byte_mismatch_fires(self):
        san = make_san()
        with pytest.raises(InvariantViolation, match="ce-bytes"):
            san.on_ce_burst("h2d", [2, 3], nbytes=PAGE_SIZE, cost=1.0)

    def test_zero_cost_transfer_fires(self):
        san = make_san()
        with pytest.raises(InvariantViolation, match="non-positive cost"):
            san.on_ce_burst("d2h", [1], nbytes=PAGE_SIZE, cost=0.0)

    def test_healthy_burst_passes(self):
        san = make_san()
        san.on_ce_burst("h2d", [2, 0, 3], nbytes=5 * PAGE_SIZE, cost=4.2)
        san.on_ce_burst("h2d", [], nbytes=0, cost=0.0)


class TestBlockEvents:
    def _block(self, block_id=0, chunk=1, stamp=1):
        return VABlockState(
            block_id=block_id, valid_pages={0, 1}, gpu_chunk=chunk,
            alloc_stamp=stamp,
        )

    def test_alloc_without_chunk_fires(self):
        san = make_san()
        block = self._block(chunk=None)
        with pytest.raises(InvariantViolation, match="without a chunk"):
            san.on_block_allocated(block)

    def test_alloc_with_resident_pages_fires(self):
        san = make_san()
        block = self._block()
        block.resident_pages = {0}
        with pytest.raises(InvariantViolation, match="already resident"):
            san.on_block_allocated(block)

    def test_stamp_must_be_monotonic(self):
        san = make_san()
        san.on_block_allocated(self._block(block_id=0, stamp=5))
        with pytest.raises(InvariantViolation, match="not monotonic"):
            san.on_block_allocated(self._block(block_id=1, stamp=5))

    def test_evict_with_chunk_still_held_fires(self):
        san = make_san()
        block = self._block()
        block.evict_count = 1
        with pytest.raises(InvariantViolation, match="still holds chunk"):
            san.on_block_evicted(block)

    def test_evict_with_resident_pages_fires(self):
        san = make_san()
        block = self._block(chunk=None)
        block.resident_pages = {0}
        block.evict_count = 1
        with pytest.raises(InvariantViolation, match="still resident"):
            san.on_block_evicted(block)

    def test_evict_without_count_fires(self):
        san = make_san()
        block = self._block(chunk=None)
        with pytest.raises(InvariantViolation, match="evict_count"):
            san.on_block_evicted(block)

    def test_double_allocation_is_illegal_transition(self):
        san = make_san()
        san.on_block_allocated(self._block(stamp=1))
        with pytest.raises(InvariantViolation, match="illegal transition"):
            san.on_block_allocated(self._block(stamp=2))


class TestSystemScans:
    """Corrupt a real post-run system and assert the batch-boundary scan
    catches each inconsistency class."""

    def _scan(self, system):
        san = system.sanitizer
        san._scan_blocks(system.engine.driver)

    def _resident_block(self, system):
        for block in system.engine.driver.vablocks.blocks():
            if block.resident_pages:
                return block
        raise AssertionError("run left no resident block to corrupt")

    def test_clean_system_scans_clean(self, sanitized_system):
        self._scan(sanitized_system)
        assert sanitized_system.sanitizer.total_violations == 0

    def test_orphaned_page_table_entry(self, sanitized_system):
        sanitized_system.engine.device.page_table.map_pages([10_000_000])
        self._scan(sanitized_system)
        rules = {v.rule for v in sanitized_system.sanitizer.violations}
        assert "residency" in rules

    def test_tracked_page_missing_from_page_table(self, sanitized_system):
        block = self._resident_block(sanitized_system)
        page = next(iter(block.resident_pages))
        sanitized_system.engine.device.page_table.unmap_pages([page])
        self._scan(sanitized_system)
        rules = {v.rule for v in sanitized_system.sanitizer.violations}
        assert "residency" in rules

    def test_double_mapped_chunk(self, sanitized_system):
        driver = sanitized_system.engine.driver
        allocated = [b for b in driver.vablocks.blocks() if b.is_gpu_allocated]
        assert len(allocated) >= 2, "need two allocated blocks to alias"
        allocated[1].gpu_chunk = allocated[0].gpu_chunk
        self._scan(sanitized_system)
        rules = {v.rule for v in sanitized_system.sanitizer.violations}
        assert "memory" in rules

    def test_resident_page_outside_valid_range(self, sanitized_system):
        block = self._resident_block(sanitized_system)
        stray = max(block.valid_pages) + 1
        block.resident_pages.add(stray)
        sanitized_system.engine.device.page_table.map_pages([stray])
        self._scan(sanitized_system)
        rules = {v.rule for v in sanitized_system.sanitizer.violations}
        assert "residency" in rules

    def test_resident_without_chunk(self, sanitized_system):
        block = self._resident_block(sanitized_system)
        sanitized_system.engine.device.chunks.free(block.gpu_chunk)
        block.gpu_chunk = None
        self._scan(sanitized_system)
        rules = {v.rule for v in sanitized_system.sanitizer.violations}
        assert "vablock-state" in rules

    def test_clock_regression_detected(self, sanitized_system):
        san = sanitized_system.sanitizer
        san._last_clock = sanitized_system.clock.now + 100.0
        san.on_round(sanitized_system.engine)
        assert any(v.rule == "clock" for v in san.violations)


class TestRecordChecks:
    def _san_and_driver(self, sanitized_system):
        return sanitized_system.sanitizer, sanitized_system.engine.driver

    def test_count_identity_violation(self, sanitized_system):
        san, driver = self._san_and_driver(sanitized_system)
        record = sanitized_system.records[0]
        record.num_faults_unique = record.num_faults_raw + 1
        san._check_record(driver, record, None)
        assert any(v.rule == "batch-record" for v in san.violations)

    def test_bytes_pages_mismatch(self, sanitized_system):
        san, driver = self._san_and_driver(sanitized_system)
        record = sanitized_system.records[0]
        record.bytes_h2d += 1
        san._check_record(driver, record, None)
        assert any("h2d bytes" in v.detail for v in san.violations)

    def test_time_reconciliation_violation(self, sanitized_system):
        san, driver = self._san_and_driver(sanitized_system)
        record = sanitized_system.records[0]
        record.time_fetch += 5.0  # timer no longer tiles the envelope
        san._check_record(driver, record, None)
        assert any(v.rule == "time-reconcile" for v in san.violations)

    def test_records_reconcile_untouched(self, sanitized_system):
        san, driver = self._san_and_driver(sanitized_system)
        for record in sanitized_system.records:
            san._check_record(driver, record, None)
        assert san.total_violations == 0


class TestModesAndContext:
    def test_raise_mode_raises_with_context(self):
        san = make_san(mode="raise")
        utlb = UTlb(utlb_id=3, limit=56)
        utlb.outstanding = -1
        with pytest.raises(InvariantViolation) as exc:
            san.on_utlb(utlb)
        violation = exc.value
        assert violation.rule == "utlb-cap"
        assert violation.context["utlb"] == 3
        assert violation.clock_usec == 0.0
        payload = violation.to_dict()
        assert payload["rule"] == "utlb-cap"

    def test_report_mode_accumulates(self):
        san = make_san(mode="report")
        utlb = UTlb(utlb_id=0, limit=56)
        utlb.outstanding = -1
        san.on_utlb(utlb)
        san.on_utlb(utlb)
        assert san.total_violations == 4  # cap + bookkeeping, twice
        assert len(san.violations) == 4
        summary = san.summary()
        assert summary["violations"] == 4
        assert summary["by_rule"] == {"utlb-cap": 4}

    def test_report_mode_caps_stored_violations(self):
        cfg = CheckConfig(enabled=True, mode="report", max_violations=3)
        san = Sanitizer(cfg, SimClock())
        utlb = UTlb(utlb_id=0, limit=56)
        utlb.outstanding = -1
        for _ in range(5):
            san.on_utlb(utlb)
        assert len(san.violations) == 3
        assert san.total_violations == 10

    def test_make_sanitizer_disabled_is_null(self):
        assert make_sanitizer(CheckConfig(), SimClock()) is NULL_SANITIZER
        assert make_sanitizer(None, SimClock()) is NULL_SANITIZER

    def test_null_sanitizer_hooks_are_noops(self):
        n = NULL_SANITIZER
        assert not n.enabled
        n.on_batch_start(None, None)
        n.on_batch_end(None, None)
        n.on_block_allocated(None)
        n.on_block_evicted(None)
        n.on_utlb(None)
        n.on_fault_buffer(None)
        n.on_ce_burst("h2d", [], 0, 0.0)
        n.on_round(None)
        n.check_system(None)
        assert n.summary() == {"enabled": False, "violations": 0, "by_rule": {}}

    def test_violation_metric_incremented(self, sanitized_system):
        san = sanitized_system.sanitizer
        sanitized_system.engine.device.page_table.map_pages([10_000_001])
        san._scan_blocks(sanitized_system.engine.driver)
        snapshot = sanitized_system.metrics_snapshot()
        series = snapshot["uvm_san_violations_total"]["series"]
        by_rule = {s["labels"]["rule"]: s["value"] for s in series}
        assert by_rule.get("residency", 0) >= 1


class TestCheckConfig:
    def test_defaults_off(self):
        cfg = CheckConfig()
        assert not cfg.enabled and cfg.mode == "raise"

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv("UVM_REPRO_SANITIZE", raising=False)
        assert not CheckConfig.from_env().enabled
        monkeypatch.setenv("UVM_REPRO_SANITIZE", "0")
        assert not CheckConfig.from_env().enabled
        monkeypatch.setenv("UVM_REPRO_SANITIZE", "1")
        cfg = CheckConfig.from_env()
        assert cfg.enabled and cfg.mode == "raise"
        monkeypatch.setenv("UVM_REPRO_SANITIZE", "report")
        cfg = CheckConfig.from_env()
        assert cfg.enabled and cfg.mode == "report"

    def test_validate_rejects_bad_mode(self):
        cfg = CheckConfig(enabled=True, mode="explode")
        with pytest.raises(Exception):
            cfg.validate()

    def test_system_config_replace_clones_check(self):
        cfg = default_config()
        cfg.check.enabled = True
        clone = cfg.replace()
        clone.check.enabled = False
        assert cfg.check.enabled

    def test_validate_cli_reports_clean(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["validate", "vecadd", "--gpu-mb", "16"]) == 0
        out = capsys.readouterr().out
        assert "UVMSan" in out and "validation OK" in out
