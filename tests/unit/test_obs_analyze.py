"""Unit tests for the analyze report engine (:mod:`repro.obs.analyze`)."""

from __future__ import annotations

import json

import pytest

from repro.obs.analyze import (
    DEFAULT_TOLERANCE,
    PHASE_FIELDS,
    analyze_path,
    build_report,
    detect_overflow_storms,
    detect_thrashing,
    diff_reports,
    exact_percentile,
    load_batch_records,
    render_diff,
    render_report,
)

# Aliased: pytest collects bench_* names (see python_functions in
# pyproject.toml), and an imported bench_gate would look like a benchmark.
from repro.obs.analyze import bench_gate as run_bench_gate


def _record(batch_id, duration=100.0, **extra):
    """A minimal batch-record dict as the NDJSON sink would emit it."""
    rec = {
        "type": "batch_record",
        "batch_id": batch_id,
        "duration": duration,
        "num_faults_raw": 8,
        "hinted": False,
        "aborted": False,
        "dropped_at_flush": 0,
        "pages_migrated_h2d": 0,
        "pages_evicted": 0,
    }
    for name in PHASE_FIELDS:
        rec[name] = 0.0
    rec.update(extra)
    return rec


# -------------------------------------------------------------- percentiles


class TestExactPercentile:
    def test_empty_is_none(self):
        assert exact_percentile([], 0.5) is None

    def test_single_sample(self):
        assert exact_percentile([7.0], 0.99) == 7.0

    def test_interpolates(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert exact_percentile(values, 0.0) == 10.0
        assert exact_percentile(values, 1.0) == 40.0
        assert exact_percentile(values, 0.5) == pytest.approx(25.0)

    def test_order_independent(self):
        assert exact_percentile([3.0, 1.0, 2.0], 0.5) == 2.0

    def test_range_checked(self):
        with pytest.raises(ValueError):
            exact_percentile([1.0], 1.5)


# ---------------------------------------------------------------- detectors


class TestDetectors:
    def test_overflow_storm_needs_consecutive_run(self):
        records = [
            _record(0, dropped_at_flush=4),
            _record(1, dropped_at_flush=2),
            _record(2),  # run of 2 < min_batches, no storm
            _record(3, dropped_at_flush=1),
            _record(4, dropped_at_flush=1),
            _record(5, dropped_at_flush=1),
        ]
        storms = detect_overflow_storms(records, min_batches=3)
        assert storms == [
            {
                "start_batch": 3,
                "end_batch": 5,
                "batches": 3,
                "dropped_faults": 3,
            }
        ]

    def test_overflow_storm_run_ending_at_tail(self):
        records = [_record(i, dropped_at_flush=2) for i in range(3)]
        assert len(detect_overflow_storms(records, min_batches=3)) == 1

    def test_clean_records_no_storm(self):
        assert detect_overflow_storms([_record(0), _record(1)]) == []

    def test_thrashing_window(self):
        hot = [
            _record(i, pages_migrated_h2d=32, pages_evicted=30)
            for i in range(4)
        ]
        cool = [_record(4, pages_migrated_h2d=32, pages_evicted=2)]
        windows = detect_thrashing(hot + cool, min_batches=4)
        assert windows == [
            {
                "start_batch": 0,
                "end_batch": 3,
                "batches": 4,
                "pages_migrated": 128,
                "pages_evicted": 120,
            }
        ]

    def test_thrashing_needs_migration(self):
        # Evictions without inbound migration are not thrashing.
        records = [_record(i, pages_evicted=50) for i in range(6)]
        assert detect_thrashing(records) == []


# ------------------------------------------------------------------ reports


class TestBuildReport:
    def test_empty_records(self):
        report = build_report([])
        assert report["batches"] == 0
        assert report["fault_latency_usec"]["p50"] is None
        assert report["fault_latency_usec"]["mean"] is None
        assert report["gpu_stall"]["transfer_frac"] == 0.0

    def test_counts_and_percentiles(self):
        records = [
            _record(0, duration=10.0),
            _record(1, duration=20.0),
            _record(2, duration=30.0, hinted=True),
            _record(3, duration=40.0, aborted=True),
        ]
        report = build_report(records)
        assert report["batches"] == 4
        assert report["hinted"] == 1
        assert report["aborted"] == 1
        assert report["faults"] == 32
        assert report["total_batch_usec"] == 100.0
        assert report["fault_latency_usec"]["p50"] == pytest.approx(25.0)
        assert report["fault_latency_usec"]["max"] == 40.0
        # Hinted batches run before launch; only fault batches stall SMs.
        assert report["gpu_stall"]["stall_usec"] == 70.0

    def test_phase_attribution_sums_to_transfer_frac(self):
        records = [
            _record(
                0,
                duration=100.0,
                time_transfer_h2d=20.0,
                time_transfer_d2h=5.0,
                time_pagetable=60.0,
            )
        ]
        report = build_report(records)
        assert report["phases"]["transfer_h2d"]["frac"] == pytest.approx(0.2)
        assert report["gpu_stall"]["transfer_frac"] == pytest.approx(0.25)
        assert report["gpu_stall"]["management_frac"] == pytest.approx(0.75)
        assert set(report["phases"]) == {n[5:] for n in PHASE_FIELDS}

    def test_detectors_embedded(self):
        records = [_record(i, dropped_at_flush=1) for i in range(5)]
        report = build_report(records)
        assert len(report["detectors"]["overflow_storms"]) == 1
        assert report["detectors"]["thrashing"] == []


class TestLoadRecords:
    def test_filters_non_batch_lines(self, tmp_path):
        path = tmp_path / "log.ndjson"
        lines = [
            json.dumps({"type": "run_header", "kernel": "stream"}),
            json.dumps(_record(0)),
            "",
            json.dumps(_record(1)),
        ]
        path.write_text("\n".join(lines) + "\n")
        records = load_batch_records(path)
        assert [r["batch_id"] for r in records] == [0, 1]

    def test_analyze_path_dispatches_records(self, tmp_path):
        path = tmp_path / "log.ndjson"
        path.write_text(json.dumps(_record(0)) + "\n")
        kind, report = analyze_path(path)
        assert kind == "records"
        assert report["batches"] == 1


# --------------------------------------------------------------------- diff


class TestDiffReports:
    def test_identical(self):
        report = build_report([_record(0)])
        diff = diff_reports(report, report)
        assert diff["identical"]
        assert diff["within_tolerance"]
        assert diff["changes"] == []
        assert "identical" in render_diff(diff)

    def test_small_drift_within_tolerance(self):
        a = {"x": 100.0}
        b = {"x": 105.0}
        diff = diff_reports(a, b, tolerance=0.10)
        assert not diff["identical"]
        assert diff["within_tolerance"]

    def test_large_drift_reported(self):
        diff = diff_reports({"x": 100.0}, {"x": 200.0}, tolerance=0.10)
        assert not diff["within_tolerance"]
        assert diff["changes"][0]["key"] == "x"
        assert diff["changes"][0]["delta_rel"] == pytest.approx(1.0)
        assert "+100.0%" in render_diff(diff)

    def test_missing_key_reported(self):
        diff = diff_reports({"x": 1.0, "y": 2.0}, {"x": 1.0})
        assert diff["changes"][0]["only_in"] == "a"
        assert not diff["within_tolerance"]

    def test_lists_compared_by_count(self):
        a = {"detectors": {"storms": [1, 2]}}
        b = {"detectors": {"storms": [1, 2, 3]}}
        diff = diff_reports(a, b, tolerance=0.10)
        assert diff["changes"][0]["key"] == "detectors.storms.count"

    def test_zero_baseline_uses_absolute_delta(self):
        diff = diff_reports({"x": 0.0}, {"x": 0.05}, tolerance=0.10)
        assert diff["within_tolerance"]
        diff = diff_reports({"x": 0.0}, {"x": 5.0}, tolerance=0.10)
        assert not diff["within_tolerance"]

    def test_default_tolerance(self):
        assert DEFAULT_TOLERANCE == 0.10


# --------------------------------------------------------------- bench gate


def _bench_report(**overrides):
    report = {
        "end_to_end": {"batches": 42, "clock_usec": 18955.3, "wall_sec": 0.1},
        "uvmsan": {"timeline_identical": True},
        "hot_paths": {
            "checkpoint": {"speedup": 6.0},
            "metric_labels": {"speedup": 5.0},
        },
        "lint": {"total_sec": 3.0},
    }
    for key, value in overrides.items():
        section, leaf = key.split("__")
        report[section] = dict(report[section])
        report[section][leaf] = value
    return report


class TestBenchGate:
    def test_passes_against_itself(self):
        base = _bench_report()
        ok, problems = run_bench_gate(base, base, tolerance=0.10)
        assert ok and problems == []

    def test_determinism_anchor_drift_fails(self):
        ok, problems = run_bench_gate(
            _bench_report(end_to_end__batches=43), _bench_report()
        )
        assert not ok
        assert any("determinism anchor" in p for p in problems)

    def test_timeline_identity_fails(self):
        ok, problems = run_bench_gate(
            _bench_report(uvmsan__timeline_identical=False), _bench_report()
        )
        assert not ok
        assert any("timeline" in p for p in problems)

    def test_speedup_regression_fails(self):
        fresh = _bench_report(hot_paths__checkpoint={"speedup": 3.0})
        ok, problems = run_bench_gate(fresh, _bench_report(), tolerance=0.10)
        assert not ok
        assert any("hot_paths.checkpoint" in p for p in problems)

    def test_speedup_within_tolerance_passes(self):
        fresh = _bench_report(hot_paths__checkpoint={"speedup": 5.5})
        ok, _ = run_bench_gate(fresh, _bench_report(), tolerance=0.10)
        assert ok

    def test_missing_hot_path_fails(self):
        fresh = _bench_report()
        del fresh["hot_paths"]["metric_labels"]
        ok, problems = run_bench_gate(fresh, _bench_report())
        assert not ok
        assert any("missing from fresh run" in p for p in problems)

    def test_wall_time_blowup_fails(self):
        fresh = _bench_report(end_to_end__wall_sec=0.2)
        ok, problems = run_bench_gate(fresh, _bench_report())
        assert not ok
        assert any("wall_sec" in p for p in problems)

    def test_lint_slowdown_vs_baseline_fails(self):
        fresh = _bench_report(lint__total_sec=5.0)
        ok, problems = run_bench_gate(fresh, _bench_report())
        assert not ok
        assert any("lint.total_sec" in p and "1.5x" in p for p in problems)

    def test_lint_absolute_ceiling_fails(self):
        fresh = _bench_report(lint__total_sec=45.0)
        base = _bench_report(lint__total_sec=40.0)
        ok, problems = run_bench_gate(fresh, base)
        assert not ok
        assert any("ceiling" in p for p in problems)

    def test_lint_missing_from_baseline_is_tolerated(self):
        base = _bench_report()
        del base["lint"]
        ok, problems = run_bench_gate(_bench_report(), base)
        assert ok and problems == []


# ---------------------------------------------------------------- rendering


class TestRendering:
    def test_render_report_smoke(self):
        records = [
            _record(0, duration=50.0, time_pagetable=30.0),
            _record(1, duration=50.0, dropped_at_flush=3),
            _record(2, duration=50.0, dropped_at_flush=3),
            _record(3, duration=50.0, dropped_at_flush=3),
        ]
        text = render_report(build_report(records), title="t")
        assert "== t ==" in text
        assert "fault latency" in text
        assert "overflow storm: batches 1-3 dropped 9 faults" in text

    def test_render_clean_detectors(self):
        text = render_report(build_report([_record(0)]))
        assert "detectors: clean" in text
