"""Unit tests for VABlock management and the 64 KiB region upgrade."""

import numpy as np
import pytest

from repro.core.residency import (
    occupancy_vector,
    region_ids,
    region_upgrade,
    regions_touched,
)
from repro.core.vablock import VABlockManager, VABlockState
from repro.errors import AllocationError
from repro.units import PAGES_PER_REGION, PAGES_PER_VABLOCK


class TestVABlockManager:
    def test_register_single_block(self):
        mgr = VABlockManager()
        created = mgr.register_allocation(0, 100)
        assert len(created) == 1
        assert created[0].block_id == 0
        assert created[0].num_valid_pages == 100

    def test_register_spanning_blocks(self):
        mgr = VABlockManager()
        created = mgr.register_allocation(0, PAGES_PER_VABLOCK + 10)
        assert [b.block_id for b in created] == [0, 1]
        assert created[0].num_valid_pages == PAGES_PER_VABLOCK
        assert created[1].num_valid_pages == 10

    def test_register_unaligned_start(self):
        mgr = VABlockManager()
        created = mgr.register_allocation(PAGES_PER_VABLOCK + 5, 10)
        assert created[0].block_id == 1
        assert created[0].valid_pages == set(range(517, 527))

    def test_zero_pages_rejected(self):
        with pytest.raises(AllocationError):
            VABlockManager().register_allocation(0, 0)

    def test_get_for_page(self):
        mgr = VABlockManager()
        mgr.register_allocation(0, 2 * PAGES_PER_VABLOCK)
        assert mgr.get_for_page(PAGES_PER_VABLOCK).block_id == 1

    def test_contains(self):
        mgr = VABlockManager()
        mgr.register_allocation(0, 10)
        assert 0 in mgr
        assert 1 not in mgr

    def test_stamps_monotonic(self):
        mgr = VABlockManager()
        assert mgr.next_stamp() < mgr.next_stamp()

    def test_total_resident_pages(self):
        mgr = VABlockManager()
        mgr.register_allocation(0, 10)
        mgr.get(0).resident_pages.update([0, 1, 2])
        assert mgr.total_resident_pages() == 3

    def test_gpu_resident_blocks(self):
        mgr = VABlockManager()
        mgr.register_allocation(0, PAGES_PER_VABLOCK * 2)
        mgr.get(0).gpu_chunk = 5
        assert [b.block_id for b in mgr.gpu_resident_blocks()] == [0]


class TestVABlockState:
    def test_first_page(self):
        state = VABlockState(block_id=3, valid_pages=set())
        assert state.first_page == 3 * PAGES_PER_VABLOCK

    def test_page_offset(self):
        state = VABlockState(block_id=1, valid_pages=set())
        assert state.page_offset(PAGES_PER_VABLOCK + 7) == 7

    def test_is_gpu_allocated(self):
        state = VABlockState(block_id=0, valid_pages=set())
        assert not state.is_gpu_allocated
        state.gpu_chunk = 0
        assert state.is_gpu_allocated


class TestRegionUpgrade:
    def test_single_page_expands_to_region(self):
        upgraded = region_upgrade([0])
        assert upgraded == set(range(PAGES_PER_REGION))

    def test_mid_region_page(self):
        upgraded = region_upgrade([PAGES_PER_REGION + 3])
        assert upgraded == set(range(PAGES_PER_REGION, 2 * PAGES_PER_REGION))

    def test_two_pages_same_region(self):
        assert len(region_upgrade([0, 5])) == PAGES_PER_REGION

    def test_two_pages_distinct_regions(self):
        upgraded = region_upgrade([0, PAGES_PER_REGION])
        assert len(upgraded) == 2 * PAGES_PER_REGION

    def test_empty(self):
        assert region_upgrade([]) == set()


class TestOccupancyHelpers:
    def test_occupancy_vector(self):
        occ = occupancy_vector([0, 511])
        assert occ.dtype == bool
        assert occ[0] and occ[511]
        assert occ.sum() == 2

    def test_region_ids(self):
        assert region_ids([0, 15, 16, 500]) == {0, 1, 31}

    def test_regions_touched(self):
        occ = np.zeros(PAGES_PER_VABLOCK, dtype=bool)
        occ[0] = occ[100] = True
        assert regions_touched(occ) == 2
