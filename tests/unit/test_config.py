"""Unit tests for configuration validation and helpers."""

import pytest

from repro.config import (
    DriverConfig,
    GpuConfig,
    HostConfig,
    SystemConfig,
    default_config,
)
from repro.errors import ConfigError
from repro.units import MB, VABLOCK_SIZE


class TestGpuConfig:
    def test_defaults_model_titan_v(self):
        cfg = GpuConfig()
        assert cfg.num_sms == 80
        assert cfg.utlb_outstanding_limit == 56
        assert cfg.warp_size == 32

    def test_num_utlbs_pairs_sms(self):
        assert GpuConfig(num_sms=80, sms_per_utlb=2).num_utlbs == 40

    def test_num_utlbs_rounds_up(self):
        assert GpuConfig(num_sms=5, sms_per_utlb=2).num_utlbs == 3

    def test_utlb_of_sm(self):
        cfg = GpuConfig(sms_per_utlb=2)
        assert cfg.utlb_of_sm(0) == 0
        assert cfg.utlb_of_sm(1) == 0
        assert cfg.utlb_of_sm(2) == 1

    def test_num_vablocks(self):
        assert GpuConfig(memory_bytes=64 * MB).num_vablocks == 32

    @pytest.mark.parametrize(
        "field,value",
        [
            ("num_sms", 0),
            ("sms_per_utlb", 0),
            ("utlb_outstanding_limit", 0),
            ("sm_fault_rate_limit", -1),
            ("fault_buffer_entries", 0),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        cfg = GpuConfig(**{field: value})
        with pytest.raises(ConfigError):
            cfg.validate()

    def test_memory_must_hold_a_vablock(self):
        with pytest.raises(ConfigError):
            GpuConfig(memory_bytes=VABLOCK_SIZE // 2).validate()

    def test_memory_must_be_block_multiple(self):
        with pytest.raises(ConfigError):
            GpuConfig(memory_bytes=VABLOCK_SIZE + 1).validate()


class TestDriverConfig:
    def test_default_batch_size(self):
        assert DriverConfig().batch_size == 256

    def test_invalid_batch_size(self):
        with pytest.raises(ConfigError):
            DriverConfig(batch_size=0).validate()

    @pytest.mark.parametrize("threshold", [0.0, -0.5, 1.5])
    def test_invalid_threshold(self, threshold):
        with pytest.raises(ConfigError):
            DriverConfig(prefetch_threshold=threshold).validate()

    def test_threshold_one_is_valid(self):
        DriverConfig(prefetch_threshold=1.0).validate()

    def test_invalid_service_threads(self):
        with pytest.raises(ConfigError):
            DriverConfig(service_threads=0).validate()

    def test_invalid_prefetch_scope(self):
        with pytest.raises(ConfigError):
            DriverConfig(prefetch_scope_blocks=0).validate()


class TestHostConfig:
    def test_defaults(self):
        cfg = HostConfig()
        assert cfg.num_threads == 1
        assert cfg.num_cores == 64

    def test_invalid_threads(self):
        with pytest.raises(ConfigError):
            HostConfig(num_threads=0).validate()


class TestSystemConfig:
    def test_default_validates(self):
        SystemConfig().validate()

    def test_replace_copies_deeply(self):
        base = SystemConfig()
        clone = base.replace(seed=42)
        clone.gpu.num_sms = 7
        assert base.gpu.num_sms == 80
        assert clone.seed == 42
        assert base.seed == 0

    def test_replace_unknown_field(self):
        with pytest.raises(ConfigError):
            SystemConfig().replace(bogus=1)


class TestDefaultConfig:
    def test_driver_overrides(self):
        cfg = default_config(prefetch_enabled=False, batch_size=512)
        assert not cfg.driver.prefetch_enabled
        assert cfg.driver.batch_size == 512

    def test_unknown_override_rejected(self):
        with pytest.raises(ConfigError):
            default_config(nonsense=True)

    def test_returns_validated(self):
        cfg = default_config()
        cfg.validate()  # should not raise
