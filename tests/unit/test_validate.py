"""Unit tests for the run-validation module."""

import pytest

from repro.core.batch_record import BatchRecord
from repro.units import MB, PAGE_SIZE
from repro.validate import (
    Violation,
    check_fault_conservation,
    check_memory_accounting,
    check_records,
    check_residency_consistency,
    validate_system,
)
from repro.workloads import StreamTriad


def record(batch_id=0, **kwargs):
    r = BatchRecord(batch_id=batch_id)
    for k, v in kwargs.items():
        setattr(r, k, v)
    return r


class TestCleanRuns:
    def test_clean_in_core_run(self, system_factory):
        system = system_factory(prefetch_enabled=True)
        StreamTriad(nbytes=2 * MB).run(system)
        assert validate_system(system) == []

    def test_clean_oversubscribed_run(self, system_factory):
        system = system_factory(prefetch_enabled=False, gpu_mem_mb=4)
        StreamTriad(nbytes=2 * MB, sweeps=2).run(system)
        assert validate_system(system) == []

    def test_clean_hinted_run(self, system_factory):
        system = system_factory(prefetch_enabled=False)
        alloc = system.managed_alloc(2 * MB)
        system.host_touch(alloc)
        system.mem_prefetch(alloc)
        assert validate_system(system) == []

    def test_clean_read_mostly_run(self, system_factory):
        from repro.gpu.warp import KernelLaunch, Phase, WarpProgram

        system = system_factory(prefetch_enabled=False)
        alloc = system.managed_alloc(2 * MB)
        system.host_touch(alloc)
        system.mem_advise_read_mostly(alloc)
        system.launch(KernelLaunch("r", [WarpProgram([Phase.of([alloc.page(0)])])]))
        assert validate_system(system) == []


class TestDetection:
    def test_detects_orphan_page_table_entry(self, system_factory):
        system = system_factory()
        system.managed_alloc(2 * MB)
        system.engine.device.page_table.map_pages([5_000_000])
        violations = check_residency_consistency(system)
        assert any(v.rule == "residency" for v in violations)

    def test_detects_block_without_mapping(self, system_factory):
        system = system_factory()
        alloc = system.managed_alloc(2 * MB)
        block = system.driver.vablocks.get_for_page(alloc.page(0))
        block.resident_pages.add(alloc.page(0))  # no page-table entry
        violations = check_residency_consistency(system)
        assert any("page table" in v.detail for v in violations)

    def test_detects_chunk_mismatch(self, system_factory):
        system = system_factory()
        alloc = system.managed_alloc(2 * MB)
        block = system.driver.vablocks.get_for_page(alloc.page(0))
        block.gpu_chunk = 0  # never allocated from the pool
        violations = check_memory_accounting(system)
        assert any(v.rule == "memory" for v in violations)

    def test_detects_conservation_break(self, system_factory):
        system = system_factory()
        system.engine.device.fault_buffer.total_pushed += 5
        violations = check_fault_conservation(system)
        assert violations and violations[0].rule == "conservation"


class TestRecordChecks:
    def test_clean_records(self):
        recs = [
            record(0, t_start=0, t_end=5, num_faults_raw=3, num_faults_unique=2,
                   dup_same_utlb=1),
            record(1, t_start=5, t_end=9, num_faults_raw=1, num_faults_unique=1),
        ]
        assert check_records(recs) == []

    def test_negative_duration(self):
        assert any(
            v.rule == "timing" for v in check_records([record(0, t_start=5, t_end=1)])
        )

    def test_overlapping_batches(self):
        recs = [
            record(0, t_start=0, t_end=10),
            record(1, t_start=5, t_end=12),
        ]
        assert any("overlaps" in v.detail for v in check_records(recs))

    def test_unique_exceeds_raw(self):
        recs = [record(0, num_faults_raw=1, num_faults_unique=5, t_end=1.0)]
        assert any(v.rule == "counts" for v in check_records(recs))

    def test_dup_mismatch(self):
        recs = [record(0, num_faults_raw=5, num_faults_unique=2, t_end=1.0)]
        assert any("unique+dups" in v.detail for v in check_records(recs))

    def test_bytes_pages_mismatch(self):
        recs = [record(0, bytes_h2d=100, pages_migrated_h2d=1, t_end=1.0)]
        assert any("bytes/pages" in v.detail for v in check_records(recs))

    def test_violation_str(self):
        v = Violation("rule", "detail")
        assert str(v) == "[rule] detail"
