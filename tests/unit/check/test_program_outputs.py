"""Output-contract tests: JSON schema, SARIF 2.1.0, the committed
baseline, and the `uvm-repro lint` CLI exit codes."""

from __future__ import annotations

import json
from pathlib import Path

import jsonschema
import pytest

from repro.check.program import (
    DEFAULT_BASELINE_PATH,
    BaselineEntry,
    all_rules,
    apply_baseline,
    load_baseline,
    report_to_json_dict,
    run_analysis,
    save_baseline,
    to_sarif,
)
from repro.cli import main as cli_main
from repro.errors import ConfigError

HERE = Path(__file__).resolve()
FIXTURES = HERE.parent / "fixtures" / "miniproj"
REPO = HERE.parents[3]
LINT_SCHEMA = json.loads(
    (REPO / "docs" / "schemas" / "lint.schema.json").read_text()
)
SARIF_SCHEMA = json.loads(
    (REPO / "docs" / "schemas" / "sarif-2.1.0-subset.schema.json").read_text()
)


class TestJsonSchema:
    def test_real_fixture_report_validates(self):
        report = run_analysis([FIXTURES])
        assert report.findings  # the fixture is deliberately dirty
        payload = json.loads(json.dumps(report_to_json_dict(report)))
        jsonschema.validate(payload, LINT_SCHEMA)

    def test_clean_report_validates(self, tmp_path):
        target = tmp_path / "clean.py"
        target.write_text("X = sorted([3, 1, 2])\n")
        payload = report_to_json_dict(run_analysis([target]))
        jsonschema.validate(payload, LINT_SCHEMA)
        assert payload["ok"] is True and payload["count"] == 0

    def test_cli_json_output_validates(self, capsys):
        rc = cli_main(["lint", str(FIXTURES), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        jsonschema.validate(payload, LINT_SCHEMA)
        assert rc == 1
        assert payload["count"] == len(payload["findings"]) > 0

    def test_schema_rejects_malformed_finding(self):
        report = run_analysis([FIXTURES])
        payload = report_to_json_dict(report)
        payload["findings"][0]["fingerprint"] = "nope"
        with pytest.raises(jsonschema.ValidationError):
            jsonschema.validate(payload, LINT_SCHEMA)


class TestSarif:
    def test_fixture_sarif_validates_and_is_complete(self):
        report = run_analysis([FIXTURES])
        doc = to_sarif(report.findings, report.rules, tool_version="1.0.0",
                       root=FIXTURES)
        jsonschema.validate(doc, SARIF_SCHEMA)
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "uvm-repro-lint"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {r.id for r in all_rules()} <= rule_ids
        assert len(run["results"]) == len(report.findings)
        for result in run["results"]:
            assert result["partialFingerprints"]["uvmLint/v1"]
            loc = result["locations"][0]["physicalLocation"]
            assert loc["artifactLocation"]["uriBaseId"] == "SRCROOT"
            assert not loc["artifactLocation"]["uri"].startswith("/")

    def test_cli_sarif_output_validates(self, capsys):
        rc = cli_main(["lint", str(FIXTURES), "--format", "sarif"])
        doc = json.loads(capsys.readouterr().out)
        jsonschema.validate(doc, SARIF_SCHEMA)
        assert rc == 1
        assert doc["version"] == "2.1.0"

    def test_severity_maps_to_sarif_levels(self):
        report = run_analysis([FIXTURES])
        doc = to_sarif(report.findings, report.rules, root=FIXTURES)
        levels = {
            r["ruleId"]: r["level"] for r in doc["runs"][0]["results"]
        }
        assert levels["sim-taint"] == "error"
        assert levels["stale-suppression"] == "warning"


class TestBaseline:
    def test_roundtrip_absorbs_all_findings(self, tmp_path):
        report = run_analysis([FIXTURES])
        assert report.findings
        path = tmp_path / "baseline.json"
        save_baseline(path, report.findings,
                      reasons={f.fingerprint: "fixture debt"
                               for f in report.findings},
                      stable_paths=report.stable_paths)
        entries = load_baseline(path)
        again = run_analysis([FIXTURES], baseline=entries)
        assert again.ok
        assert len(again.baselined) == len(report.findings)
        assert again.stale_baseline == []

    def test_saved_paths_are_checkout_independent(self, tmp_path):
        report = run_analysis([FIXTURES])
        path = tmp_path / "baseline.json"
        save_baseline(path, report.findings,
                      stable_paths=report.stable_paths)
        doc = json.loads(path.read_text())
        for entry in doc["entries"]:
            assert not entry["path"].startswith("/")
            assert entry["path"].startswith("miniproj/")

    def test_stale_entry_surfaces(self):
        fake = BaselineEntry(fingerprint="0" * 16, rule="sim-taint",
                             path="miniproj/gone.py", reason="paid off")
        report = run_analysis([FIXTURES], baseline=[fake])
        assert report.stale_baseline == [fake]

    def test_entry_without_reason_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({
            "version": 1,
            "entries": [{"fingerprint": "a" * 16, "rule": "sim-taint",
                         "path": "x.py", "reason": "  "}],
        }))
        with pytest.raises(ConfigError, match="reason"):
            load_baseline(path)

    def test_bad_json_and_bad_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{nope")
        with pytest.raises(ConfigError, match="JSON"):
            load_baseline(path)
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ConfigError, match="version"):
            load_baseline(path)

    def test_apply_baseline_splits_three_ways(self):
        report = run_analysis([FIXTURES])
        keep = report.findings[0]
        entries = [
            BaselineEntry(keep.fingerprint, keep.rule, keep.path, "known"),
            BaselineEntry("f" * 16, "sim-taint", "gone.py", "stale"),
        ]
        new, baselined, stale = apply_baseline(report.findings, entries)
        assert keep in baselined and keep not in new
        assert len(new) == len(report.findings) - 1
        assert [e.fingerprint for e in stale] == ["f" * 16]

    def test_committed_baseline_is_valid_and_live(self):
        """The repo's own baseline: loadable, justified, and not stale."""
        entries = load_baseline(DEFAULT_BASELINE_PATH)
        assert all(e.reason for e in entries)
        report = run_analysis([REPO / "src" / "repro"], baseline=entries)
        assert report.stale_baseline == []


class TestCliContract:
    def test_exit_1_on_findings(self, capsys):
        assert cli_main(["lint", str(FIXTURES)]) == 1
        assert "sim-taint" in capsys.readouterr().out

    def test_exit_0_with_covering_baseline(self, tmp_path, capsys):
        report = run_analysis([FIXTURES])
        path = tmp_path / "baseline.json"
        save_baseline(path, report.findings,
                      reasons={f.fingerprint: "fixture debt"
                               for f in report.findings},
                      stable_paths=report.stable_paths)
        rc = cli_main(["lint", str(FIXTURES), "--baseline", str(path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "absorbing" in out

    def test_exit_2_on_corrupt_baseline(self, tmp_path, capsys):
        bad = tmp_path / "baseline.json"
        bad.write_text("{not json")
        rc = cli_main(["lint", str(FIXTURES), "--baseline", str(bad)])
        assert rc == 2

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        path = tmp_path / "baseline.json"
        rc = cli_main(["lint", str(FIXTURES), "--write-baseline",
                       "--baseline", str(path)])
        assert rc == 0
        assert path.exists()
        capsys.readouterr()
        rc = cli_main(["lint", str(FIXTURES), "--baseline", str(path)])
        assert rc == 0

    def test_write_baseline_preserves_reasons(self, tmp_path, capsys):
        report = run_analysis([FIXTURES])
        path = tmp_path / "baseline.json"
        save_baseline(path, report.findings,
                      reasons={report.findings[0].fingerprint: "keep me"},
                      stable_paths=report.stable_paths)
        cli_main(["lint", str(FIXTURES), "--write-baseline",
                  "--baseline", str(path)])
        doc = json.loads(path.read_text())
        by_fp = {e["fingerprint"]: e["reason"] for e in doc["entries"]}
        assert by_fp[report.findings[0].fingerprint] == "keep me"

    def test_no_baseline_flag_reports_everything(self, tmp_path, capsys):
        report = run_analysis([FIXTURES])
        path = tmp_path / "baseline.json"
        save_baseline(path, report.findings,
                      reasons={f.fingerprint: "debt"
                               for f in report.findings},
                      stable_paths=report.stable_paths)
        rc = cli_main(["lint", str(FIXTURES), "--baseline", str(path),
                       "--no-baseline"])
        assert rc == 1


class TestChangedOnly:
    def test_restriction_filters_by_suffix(self):
        report = run_analysis([FIXTURES],
                              changed=["miniproj/timing.py"])
        assert report.changed_only
        assert report.findings
        assert all(f.path.endswith("timing.py") for f in report.findings)

    def test_no_stale_baseline_judgement_under_restriction(self):
        fake = BaselineEntry(fingerprint="0" * 16, rule="sim-taint",
                             path="miniproj/gone.py", reason="elsewhere")
        report = run_analysis([FIXTURES], baseline=[fake],
                              changed=["miniproj/timing.py"])
        # A partial view cannot prove the entry stale.
        assert report.stale_baseline == []

    def test_changed_files_none_outside_git(self, tmp_path):
        from repro.check.program import changed_files

        assert changed_files("HEAD", cwd=tmp_path) is None
