"""Dimensions-pass tests over the dimproj fixture: every seeded violation
is detected (stable fingerprint, valid SARIF), every clean idiom stays
silent, and the lattice/annotation vocabulary behaves."""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import jsonschema
import pytest

from repro.check.program import run_analysis, report_to_json_dict, to_sarif
from repro.check.program.dims import (
    BOT,
    BYTES,
    COUNT,
    NONE,
    PAGE,
    SIM_US,
    TOP,
    WALL_S,
    DimValue,
    collect_annotations,
    join,
    parse_dim_comment,
    unit_allows,
)

REPO = Path(__file__).resolve().parents[3]
FIXTURES = Path(__file__).resolve().parent / "fixtures" / "dimproj"
LINT_SCHEMA = json.loads(
    (REPO / "docs" / "schemas" / "lint.schema.json").read_text()
)
SARIF_SCHEMA = json.loads(
    (REPO / "docs" / "schemas" / "sarif-2.1.0-subset.schema.json").read_text()
)

#: rule id → the fixture module seeded with exactly one violation of it.
SEEDED = {
    "dim-mixed-arith": "viol_arith.py",
    "dim-page-index": "viol_index.py",
    "dim-time-mix": "viol_time.py",
    "dim-metric-unit": "viol_metric.py",
    "dim-shift": "viol_shift.py",
    "dim-annotation": "viol_annot.py",
}


def analyze(path=FIXTURES, **kw):
    return run_analysis([path], **kw)


def dim_findings(report):
    return [f for f in report.findings if f.pass_name == "dimensions"]


@pytest.fixture()
def dim_copy(tmp_path):
    dest = tmp_path / "dimproj"
    shutil.copytree(FIXTURES, dest)
    return dest


class TestSeededViolations:
    def test_exactly_one_finding_per_rule_in_its_module(self):
        findings = dim_findings(analyze())
        by_rule = {}
        for f in findings:
            by_rule.setdefault(f.rule, []).append(f)
        assert set(by_rule) == set(SEEDED)
        for rule, module in SEEDED.items():
            assert len(by_rule[rule]) == 1, rule
            assert by_rule[rule][0].path.endswith(module), rule

    def test_annotation_rule_is_a_warning_the_rest_errors(self):
        for f in dim_findings(analyze()):
            expected = "warning" if f.rule == "dim-annotation" else "error"
            assert f.severity == expected, f.rule

    def test_clean_module_contributes_nothing(self):
        assert not any(
            f.path.endswith("clean.py") or f.path.endswith("units.py")
            for f in dim_findings(analyze())
        )

    def test_fixing_the_mixed_add_clears_the_finding(self, dim_copy):
        mod = dim_copy / "viol_arith.py"
        src = mod.read_text()
        mod.write_text(
            src.replace("return page + addr", "return page_base(page) + addr")
            .replace("from .units import page_of",
                     "from .units import page_base, page_of")
        )
        rules = {f.rule for f in dim_findings(analyze(dim_copy))}
        assert "dim-mixed-arith" not in rules

    def test_fingerprints_are_stable_across_runs(self):
        first = {f.fingerprint for f in dim_findings(analyze())}
        second = {f.fingerprint for f in dim_findings(analyze())}
        assert first == second
        assert all(len(fp) == 16 for fp in first)

    def test_unrelated_edit_keeps_fingerprints(self, dim_copy):
        before = {
            f.rule: f.fingerprint for f in dim_findings(analyze(dim_copy))
        }
        mod = dim_copy / "viol_arith.py"
        mod.write_text('"""Moved docstring."""\n\n\n' + mod.read_text())
        after = {
            f.rule: f.fingerprint for f in dim_findings(analyze(dim_copy))
        }
        assert before == after


class TestOutputs:
    def test_json_report_validates_and_carries_timings(self):
        payload = report_to_json_dict(analyze())
        jsonschema.validate(payload, LINT_SCHEMA)
        assert payload["timings"]["total"] >= payload["timings"]["dimensions"]
        counts = payload["pass_findings"]["dimensions"]
        assert counts["raw"] >= counts["new"] >= len(SEEDED)

    def test_sarif_includes_the_dimensions_rule_family(self):
        report = analyze()
        sarif = to_sarif(report.findings, report.rules, root=FIXTURES)
        jsonschema.validate(sarif, SARIF_SCHEMA)
        run = sarif["runs"][0]
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert set(SEEDED) <= rule_ids
        reported = {r["ruleId"] for r in run["results"]}
        assert set(SEEDED) <= reported


class TestMetricUnits:
    def test_missing_unit_fails_metric_drift(self, dim_copy):
        catalog = dim_copy / "obs_catalog.py"
        catalog.write_text(
            catalog.read_text().replace('        "unit": "bytes",\n', "")
        )
        findings = [
            f for f in analyze(dim_copy).findings if f.rule == "metric-no-unit"
        ]
        assert len(findings) == 1
        assert "declares no unit" in findings[0].message

    def test_unknown_unit_fails_metric_drift(self, dim_copy):
        catalog = dim_copy / "obs_catalog.py"
        catalog.write_text(
            catalog.read_text().replace('"unit": "bytes"', '"unit": "furlongs"')
        )
        findings = [
            f for f in analyze(dim_copy).findings if f.rule == "metric-no-unit"
        ]
        assert len(findings) == 1
        assert "furlongs" in findings[0].message

    def test_declared_units_are_checked_not_trusted(self):
        assert unit_allows("bytes", BYTES)
        assert not unit_allows("bytes", PAGE)
        assert not unit_allows("pages", PAGE)  # a page id is not a count
        assert unit_allows("pages", COUNT)
        assert unit_allows("us", SIM_US)
        assert not unit_allows("us", WALL_S)


class TestLattice:
    def test_join_is_commutative_and_absorbs_weak(self):
        assert join(PAGE, COUNT) == PAGE
        assert join(COUNT, PAGE) == PAGE
        assert join(PAGE, NONE) == PAGE
        assert join(BOT, PAGE) == PAGE
        assert join(PAGE, BYTES) == TOP
        assert join(SIM_US, WALL_S) == TOP
        assert join(TOP, COUNT) == TOP

    def test_dimvalue_join_tracks_container_slots(self):
        a = DimValue(dim=PAGE, elem=BYTES)
        b = DimValue(dim=PAGE, elem=COUNT)
        joined = a.join(b)
        assert joined.dim == PAGE
        assert joined.elem == BYTES


class TestAnnotationVocabulary:
    def test_def_line_bindings_and_return(self):
        ann = parse_dim_comment("def f(a, n):  # dim: a=bytes, n=count -> [page]")
        assert ann.bindings["a"].dim == BYTES
        assert ann.bindings["n"].dim == COUNT
        assert ann.ret.elem == PAGE
        assert ann.errors == ()

    def test_bare_container_and_key_forms(self):
        assert parse_dim_comment("x = {}  # dim: {page}").default.key == PAGE
        assert parse_dim_comment("x = []  # dim: [us]").default.elem == SIM_US
        assert parse_dim_comment("x = 0  # dim: vablock").default.dim == "vablock"

    def test_docstring_mentions_are_not_annotations(self):
        lines = [
            "def f():",
            '    """Docs may mention # dim: page freely."""',
            "    x = 1  # dim: page",
            "    return x",
        ]
        parsed, bad = collect_annotations(lines)
        assert list(parsed) == [3]
        assert bad == []

    def test_malformed_entry_is_reported_not_guessed(self):
        ann = parse_dim_comment("x = 1  # dim: pagez")
        assert ann.default is None
        assert ann.errors == ("'pagez'",)
