"""Project-IR tests: package discovery, import resolution, the call graph,
and the whole-package analysis time bound."""

from __future__ import annotations

import time
from pathlib import Path

from repro.check.program import build_project_ir, run_analysis

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "miniproj"
REPRO_SRC = Path(__file__).resolve().parents[3] / "src" / "repro"


class TestProjectIR:
    def test_package_discovery_and_module_index(self):
        ir = build_project_ir([FIXTURES])
        assert ir.package == "miniproj"
        assert set(ir.modules) == {
            "miniproj",
            "miniproj.clock",
            "miniproj.graph",
            "miniproj.hygiene_mod",
            "miniproj.metrics_use",
            "miniproj.obs_catalog",
            "miniproj.pool",
            "miniproj.timing",
        }

    def test_functions_and_methods_indexed(self):
        ir = build_project_ir([FIXTURES])
        assert "miniproj.timing.drive_tainted" in ir.functions
        assert "miniproj.clock.SimClock.advance" in ir.functions
        method = ir.functions["miniproj.clock.SimClock.advance"]
        assert method.owner_class == "SimClock"
        assert method.params == ["self", "dt_usec"]

    def test_loose_file_indexed_by_stem(self, tmp_path):
        target = tmp_path / "standalone.py"
        target.write_text("def f():\n    return 1\n")
        ir = build_project_ir([target])
        assert "standalone" in ir.modules
        assert "standalone.f" in ir.functions


class TestCallGraphResolution:
    """Every direct intra-package call form in the graph fixture resolves
    to its definition (the acceptance test for call-graph fidelity)."""

    EXPECTED_EDGES = {
        ("miniproj.graph.plain_call", "miniproj.graph.local_helper"),
        ("miniproj.graph.imported_symbol_call",
         "miniproj.clock.SimClock.__init__"),
        ("miniproj.graph.imported_symbol_call",
         "miniproj.timing.drive_clean"),
        ("miniproj.graph.module_attr_call",
         "miniproj.clock.SimClock.__init__"),
        ("miniproj.graph.Stepper._tick", "miniproj.graph.local_helper"),
        ("miniproj.graph.Stepper.step", "miniproj.graph.Stepper._tick"),
        ("miniproj.graph.method_via_instance",
         "miniproj.graph.Stepper.__init__"),
    }

    def test_all_direct_call_forms_resolve(self):
        ir = build_project_ir([FIXTURES])
        edges = {
            (caller, callee)
            for caller, callees in ir.call_graph.items()
            for callee in callees
        }
        missing = self.EXPECTED_EDGES - edges
        assert not missing, f"unresolved direct calls: {sorted(missing)}"

    def test_only_dynamic_calls_stay_unresolved_in_graph_fixture(self):
        ir = build_project_ir([FIXTURES])
        unresolved = [
            site.raw
            for qname, fn in sorted(ir.functions.items())
            if fn.module == "miniproj.graph"
            for site in fn.calls
            if site.callee is None
        ]
        # `Stepper().step()` — a call on a call result — is the one
        # documented out-of-reach form.
        assert unresolved == ["<dynamic>"]

    def test_reachability_walks_the_graph(self):
        ir = build_project_ir([FIXTURES])
        reach = ir.reachable_from(["miniproj.graph.method_via_instance"])
        assert "miniproj.graph.Stepper.__init__" in reach
        assert "miniproj.clock.SimClock.__init__" in reach  # via __init__
        assert "miniproj.pool.run_all" not in reach

    def test_stats_shape(self):
        stats = build_project_ir([FIXTURES]).stats()
        assert set(stats) == {
            "modules", "functions", "call_sites", "resolved_calls",
            "call_edges",
        }
        assert stats["resolved_calls"] <= stats["call_sites"]


class TestWholePackagePerformance:
    def test_full_repro_analysis_under_time_bound(self):
        """The acceptance bound: whole-program analysis over src/repro in
        well under 30 s (it runs on every CI push)."""
        start = time.monotonic()
        report = run_analysis([REPRO_SRC])
        elapsed = time.monotonic() - start
        assert elapsed < 30.0, f"analysis took {elapsed:.1f}s"
        assert report.stats["modules"] > 50
        assert report.stats["functions"] > 400
        assert report.stats["call_edges"] > 200
