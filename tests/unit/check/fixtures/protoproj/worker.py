"""atomic-temp protocol: a ``*.tmp`` path must reach ``os.replace`` /
``os.unlink`` on every path.  Scope matches on the module name ``worker``."""

import os


def write_state(path, blob):
    """VIOLATION lifecycle-exception-leak: a failed write strands the
    temp file (and the next writer's rename may land stale bytes)."""
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        fh.write(blob)
    os.replace(tmp, path)


def write_state_clean(path, blob):
    """Clean: the temp file is removed on the failure path."""
    tmp = path + ".tmp"
    try:
        with open(tmp, "wb") as fh:
            fh.write(blob)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
