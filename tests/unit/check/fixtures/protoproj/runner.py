"""campaign-monitor protocol: acquire via ``CampaignMonitor(...)``,
release via ``.close()``.  Scope matches on the module name ``runner``."""


class CampaignMonitor:
    def __init__(self, cells):
        self.cells = cells

    def poll(self):
        pass

    def close(self):
        pass


def forget_close(cells):
    """VIOLATION lifecycle-leak: falls off the end with the monitor open."""
    mon = CampaignMonitor(cells)
    return 0


def close_not_guarded(cells, sink):
    """VIOLATION lifecycle-exception-leak: ``sink.flush()`` raising skips
    the close."""
    mon = CampaignMonitor(cells)
    sink.flush()
    mon.close()
    return 0


def clean_finally(cells, sink):
    """Clean: the finally guarantees the close on every path."""
    mon = CampaignMonitor(cells)
    try:
        sink.flush()
    finally:
        mon.close()
    return 0


def clean_guarded_none(cells, sink):
    """Clean: conditional acquisition, close guarded on the resource."""
    mon = None
    try:
        if cells:
            mon = CampaignMonitor(cells)
        sink.flush()
    finally:
        if mon is not None:
            mon.close()
    return 0
