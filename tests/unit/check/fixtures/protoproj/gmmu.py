"""Fixture component class (named in ``SnapshotSpec.component_classes``)."""


class Gmmu:
    def __init__(self):
        self.extra_buf = []
        self._wire = None  # snapshot: skip
        # VIOLATION snapshot-skip-drift: ``_hook`` claims skip but no skip
        # set excludes it — generic capture still pickles it.
        self._hook = None  # snapshot: skip

    def translate(self, page):
        self.extra_buf.append(page)
        return page
