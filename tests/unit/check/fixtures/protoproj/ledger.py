"""sqlite-conn protocol: ``sqlite3.connect`` must reach ``.close()`` on
every path.  Scope matches on the module name ``ledger``."""

import sqlite3


def count_rows(path):
    """VIOLATION lifecycle-exception-leak: ``execute`` raising (bad SQL,
    locked database) escapes with the connection open."""
    conn = sqlite3.connect(path)
    n = conn.execute("select count(*) from runs").fetchone()[0]
    conn.close()
    return n


def count_rows_clean(path):
    """Clean: try/finally covers the risky statements."""
    conn = sqlite3.connect(path)
    try:
        return conn.execute("select count(*) from runs").fetchone()[0]
    finally:
        conn.close()
