"""Fixture package for the protocol/lifecycle pass family.

Each module seeds at least one violation of one of the new rules
(`lifecycle-leak`, `lifecycle-exception-leak`, `snapshot-uncaptured`,
`snapshot-skip-drift`, `snapshot-stale-skip`, `parity-surface`,
`parity-unpaired`, `parity-annotation`) next to a clean twin that must
NOT be flagged.  Module names matter: protocol scopes select on the last
dotted component (`runner`, `worker`, `ledger`), and the snapshot pass
activates on a module named `checkpoint` defining ``_SKIP_COMMON``.
"""
