"""Parity fixtures: an annotated pair with drifted surfaces, a lonely
variant, and a marker that does not parse."""


def push_scalar(buf, san, inj, n):  # parity: push/scalar
    buf.total += n
    san.on_push(buf)
    inj.fire("push.overflow")
    return n


def push_soa(buf, san, inj, n):  # parity: push/soa
    # VIOLATION parity-surface: misses san:on_push and inj:push.overflow.
    buf.total += n
    return n


def lonely(x):  # parity: orphan/only
    # VIOLATION parity-unpaired: no sibling variant to compare against.
    return x


def broken(x):  # parity: nonsense
    # VIOLATION parity-annotation: marker has no <group>/<variant> shape.
    return x
