"""Fixture checkpoint module: activates the snapshot-coverage pass.

``_SKIP_COMMON`` seeds one stale entry (``ghost`` is assigned nowhere in
the package — VIOLATION snapshot-stale-skip); ``_SKIP_EXTRA``'s
``extra_buf`` IS assigned (in :mod:`.gmmu`) so only one stale finding may
appear.
"""

_SKIP_COMMON = frozenset({"_wire", "ghost"})

_SKIP_EXTRA = {"gmmu": {"extra_buf"}}

_ENGINE_ATTRS = ("clock", "steps")


def capture(engine):
    return {"clock": engine.clock, "steps": engine.steps}
