"""Fixture engine: the attr-list class the snapshot pass audits."""


class Engine:
    def __init__(self):
        self.clock = 0
        self.steps = 0  # snapshot: skip
        self.drift = 0
        self._wire = None

    def step(self):
        self.clock += 1
        # VIOLATION snapshot-skip-drift: ``steps`` is annotated skip in
        # __init__ yet captured verbatim by _ENGINE_ATTRS.
        self.steps += 1
        # VIOLATION snapshot-uncaptured: ``drift`` is mutated here but is
        # in no capture list, no skip set, and carries no annotation.
        self.drift += 1
