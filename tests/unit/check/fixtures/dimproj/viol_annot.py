"""Seeded violation: a ``# dim:`` comment outside the vocabulary
(dim-annotation, warning)."""


def annotated():
    x = 5  # dim: pagez
    return x
