"""Seeded violation: a page *id* observed into a bytes-unit metric
(dim-metric-unit)."""

from .units import page_of


def emit(metrics, addr):
    page = page_of(addr)
    handle = metrics.counter("dim_bytes_total", "bytes moved to the device")
    handle.inc(page)  # VIOLATION: page id into a metric declared in bytes
