"""Seeded violation: a dimension-changing shift that matches no known
conversion constant (dim-shift)."""

from .units import page_of


def bad_shift(addr):
    page = page_of(addr)
    return page >> 3  # VIOLATION: not PAGE/REGION/VABLOCK_SHIFT or a delta
