"""Negative cases: every idiom here is dimension-correct and must stay
silent — the false-positive contract of the dimensions pass."""

from .units import PAGE_SHIFT, PAGE_SIZE, USEC, page_base, page_of, pages_spanned


def round_trip(addr):
    """units.py helpers compose without findings."""
    page = page_of(addr)
    base = page_base(page)
    npages = (addr + PAGE_SIZE - 1) // PAGE_SIZE  # byte ratio: a count
    return base + PAGE_SIZE * npages  # bytes + bytes


def shift_conversions(addr):
    """Shifts by the known conversion constants change dimension legally."""
    page = addr >> PAGE_SHIFT  # bytes -> page
    back = page << PAGE_SHIFT  # page -> bytes
    return back - addr  # bytes - bytes


def annotated_span(addr, nbytes):  # dim: addr=bytes, nbytes=bytes -> [page]
    return list(pages_spanned(addr, nbytes))


def binary_search(pages, target):  # dim: pages=[page], target=page
    """Same-dimension comparisons and id arithmetic are legal."""
    lo, hi = 0, len(pages) - 1
    while lo <= hi:
        mid = (lo + hi) // 2
        if pages[mid] < target:
            lo = mid + 1
        else:
            hi = mid - 1
    return lo


def dynamic_shift(key, shift):
    """A dynamic shift amount is not a conversion claim: silent."""
    return key >> shift


def sim_budget(n):
    """Weak dims absorb: count * us stays us, us + us stays us."""
    budget = 5.0 * USEC
    budget += n * USEC
    return budget
