"""Seeded violation: mixed-granularity addition (dim-mixed-arith)."""

from .units import page_of


def mixed_add(addr):
    page = page_of(addr)  # brands addr as bytes, page as a page id
    return page + addr  # VIOLATION: page + bytes
