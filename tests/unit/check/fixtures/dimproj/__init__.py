"""Fixture package for the ``dimensions`` pass: one seeded violation per
rule (``viol_*`` modules) plus negative cases proving units-style idioms
and ``# dim:`` annotations stay clean (``clean.py``)."""
