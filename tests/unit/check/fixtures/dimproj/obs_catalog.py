"""Metric catalog for the dimensions fixture: the declared unit is what
``viol_metric.py`` contradicts."""

METRIC_CATALOG = {
    "dim_bytes_total": {
        "kind": "counter",
        "help": "bytes moved to the device",
        "labels": (),
        "unit": "bytes",
    },
}
