"""Seeded violation: wall seconds compared against simulated µs
(dim-time-mix)."""

import time


def wall_into_sim():
    start = time.time()  # wall seconds
    sim_now = 125.0  # dim: us
    return sim_now > start  # VIOLATION: us compared against wall
