"""Seeded violation: byte-indexed page container (dim-page-index)."""


def byte_indexed(addr, page_state):  # dim: addr=bytes, page_state={page}
    return page_state[addr]  # VIOLATION: page-keyed dict indexed by bytes
