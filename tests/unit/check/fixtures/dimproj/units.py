"""Mini granularity vocabulary — the fixture's stand-in for repro.units.

The dimensions pass seeds from any module whose dotted name ends in
``units``, so these helpers carry the same pinned signatures as the real
ones: ``page_of: bytes → page``, ``page_base: page → bytes``.
"""

KB = 1024
PAGE_SIZE = 4 * KB
PAGE_SHIFT = 12
REGION_SHIFT = 16
USEC = 1.0
MSEC = 1000.0


def page_of(addr):
    return addr >> PAGE_SHIFT


def page_base(page):
    return page << PAGE_SHIFT


def pages_spanned(addr, nbytes):
    first = page_of(addr)
    last = page_of(addr + nbytes - 1)
    return range(first, last + 1)
