"""Declarative metric/span catalog for the metric-drift fixture."""

METRIC_CATALOG = {
    "mini_batches_total": {
        "kind": "counter",
        "help": "replayed fault batches",
        "labels": ("kind",),
        "unit": "batches",
    },
    "mini_faults_total": {
        "kind": "counter",
        "help": "page faults observed",
        "labels": (),
        "unit": "faults",
    },
    "mini_resident_pages": {
        "kind": "gauge",
        "help": "pages resident on device",
        "labels": (),
        "unit": "pages",
    },
}

SPAN_CATALOG = {
    "mini.batch": {"help": "one fault batch end to end", "unit": "us"},
}
