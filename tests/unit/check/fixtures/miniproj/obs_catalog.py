"""Declarative metric/span catalog for the metric-drift fixture."""

METRIC_CATALOG = {
    "mini_batches_total": {
        "kind": "counter",
        "help": "replayed fault batches",
        "labels": ("kind",),
    },
    "mini_faults_total": {
        "kind": "counter",
        "help": "page faults observed",
        "labels": (),
    },
    "mini_resident_pages": {
        "kind": "gauge",
        "help": "pages resident on device",
        "labels": (),
    },
}

SPAN_CATALOG = {
    "mini.batch": "one fault batch end to end",
}
