"""sim-taint fixture: one laundered flow (true positive), two clean uses.

The helper indirection is the point — the per-file ``wall-clock`` rule sees
only a ``time.time()`` call here; the interprocedural pass must follow the
value through ``_host_elapsed`` into ``clock.advance``.
"""

import time


def _host_elapsed(t0):
    return time.time() - t0  # repro: lint-ok[wall-clock]


def drive_tainted(clock, t0):
    # TRUE POSITIVE: host wall-clock reaches the simulated timeline.
    clock.advance(_host_elapsed(t0))


def drive_clean(clock, cost_model):
    # FP-avoidance: a deterministic model value entering the sink is fine.
    clock.advance(cost_model(4096))


def log_wall_seconds(sink):
    # FP-avoidance: the wall-clock read never reaches a sim-time sink —
    # only the per-file rule should complain (here: suppressed on purpose).
    t = time.time()  # repro: lint-ok[wall-clock]
    sink.write(str(t))
