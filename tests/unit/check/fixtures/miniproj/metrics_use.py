"""metric-drift fixture: call sites that must agree with obs_catalog."""


def instrument(metrics, obs):
    # Declared family, matching labels: clean.
    batches = metrics.counter(
        "mini_batches_total", "replayed fault batches", labels=("kind",)
    )
    batches.labels("replay").inc()
    # Declared family, no labels: clean.
    metrics.counter("mini_faults_total", "page faults observed").inc()
    # Declared gauge: clean.
    metrics.gauge("mini_resident_pages", "pages resident on device").set(0)
    # Declared span: clean.
    with obs.span("mini.batch"):
        pass


def instrument_replay(metrics):
    # Second emission site of the same family: the rename test rewrites
    # this one and must observe exactly one metric-undeclared finding.
    metrics.counter(
        "mini_batches_total", "replayed fault batches", labels=("kind",)
    ).labels("prefetch").inc()


def not_a_metric(np, arr):
    # FP-avoidance: numpy.histogram is not a metric registration.
    counts, edges = np.histogram(arr, bins=4)
    return counts, edges
