"""Call-graph fixture: every direct intra-package call form must resolve."""

from . import clock as clock_mod
from .clock import SimClock
from .timing import drive_clean


def local_helper(x):
    return x + 1


def plain_call():
    return local_helper(1)


def imported_symbol_call():
    c = SimClock()
    drive_clean(c, local_helper)
    return c


def module_attr_call():
    return clock_mod.SimClock()


class Stepper:
    def __init__(self):
        self.clock = SimClock()

    def _tick(self):
        return local_helper(0)

    def step(self):
        return self._tick()


def method_via_instance():
    return Stepper().step()
