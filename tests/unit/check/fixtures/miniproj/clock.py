"""Simulated clock: the sink surface for the sim-taint fixture."""


class SimClock:
    def __init__(self):
        self.now_usec = 0.0

    def advance(self, dt_usec):
        self.now_usec += dt_usec

    def advance_to(self, t_usec):
        self.now_usec = max(self.now_usec, t_usec)
