"""suppression-hygiene fixture: one live, one stale, one unknown-rule."""

import time

# Live suppression (false-positive-avoidance: must NOT be reported).
T0 = time.time()  # repro: lint-ok[wall-clock]

# TRUE POSITIVE: nothing fires on this line, the suppression is stale.
PAGE_SHIFT = 12  # repro: lint-ok[wall-clock]

# TRUE POSITIVE: the rule id does not exist (typo'd suppression).
BLOCK_PAGES = 16  # repro: lint-ok[wall-clok]
