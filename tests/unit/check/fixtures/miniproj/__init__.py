"""Fixture mini-package for the whole-program analysis tests.

Each module carries at least one deliberate true positive and one
false-positive-avoidance case for one analysis pass; the tests assert the
exact finding sets, so keep line movements deliberate.
"""
