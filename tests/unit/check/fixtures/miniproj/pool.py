"""mp-shared-state fixture: worker-reachable global mutation vs safe state."""

import multiprocessing

# Mutable module global written by worker-reachable code: the hazard.
VERDICTS = []

# Mutable module global populated at import time and only *read* by
# workers: every worker re-imports it identically, so it must NOT be
# flagged (false-positive-avoidance).
REGISTRY = {"streaming": 1, "random": 2}

# Immutable module global: never a hazard.
PAGE_SIZE = 4096


def _record(verdict):
    # TRUE POSITIVE: reachable from `work`, mutates a module global.
    VERDICTS.append(verdict)


def work(cell):
    kind = REGISTRY.get(cell, 0)
    _record(kind)
    local_cache = {}
    local_cache[cell] = kind * PAGE_SIZE
    return local_cache[cell]


def run_all(cells):
    with multiprocessing.Pool(2) as pool:
        return list(pool.map(work, sorted(cells)))
