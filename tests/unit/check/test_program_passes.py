"""Per-pass tests over the miniproj fixture: each pass has at least one
true positive and one false-positive-avoidance case."""

from __future__ import annotations

import shutil
from pathlib import Path

import pytest

from repro.check.lint import AllowEntry
from repro.check.program import run_analysis

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "miniproj"


def analyze(path=FIXTURES, **kw):
    return run_analysis([path], **kw)


def by_rule(report, rule):
    return [f for f in report.findings if f.rule == rule]


@pytest.fixture()
def mini_copy(tmp_path):
    """A mutable copy of the fixture package for rename/edit scenarios."""
    dest = tmp_path / "miniproj"
    shutil.copytree(FIXTURES, dest)
    return dest


class TestSimTaintPass:
    def test_interprocedural_flow_is_the_only_finding(self):
        report = analyze()
        taints = by_rule(report, "sim-taint")
        assert len(taints) == 1
        f = taints[0]
        assert f.path.endswith("timing.py")
        assert "advance" in f.message
        assert "drive_tainted" in f.message

    def test_clean_sink_and_sinkless_source_not_flagged(self):
        report = analyze()
        taints = by_rule(report, "sim-taint")
        # drive_clean feeds a model value, log_wall_seconds never reaches
        # a sink: neither may appear.
        assert not any("drive_clean" in f.message for f in taints)
        assert not any("log_wall_seconds" in f.message for f in taints)

    def test_fixing_the_flow_clears_the_finding(self, mini_copy):
        timing = mini_copy / "timing.py"
        src = timing.read_text()
        timing.write_text(
            src.replace("clock.advance(_host_elapsed(t0))",
                        "clock.advance(1.0)")
        )
        assert by_rule(analyze(mini_copy), "sim-taint") == []


class TestMetricDriftPass:
    DRIFT_RULES = ("metric-undeclared", "metric-mismatch", "metric-unused",
                   "span-undeclared", "metric-no-unit")

    def drift(self, report):
        return [f for f in report.findings if f.rule in self.DRIFT_RULES]

    def test_pristine_fixture_is_clean(self):
        assert self.drift(analyze()) == []

    def test_renamed_emission_yields_exactly_one_finding(self, mini_copy):
        """The acceptance scenario: rename one metric family at one call
        site and observe exactly one finding."""
        use = mini_copy / "metrics_use.py"
        src = use.read_text()
        assert src.count('"mini_batches_total"') == 2
        use.write_text(
            src.replace('"mini_batches_total"', '"mini_batchez_total"', 1)
        )
        findings = self.drift(analyze(mini_copy))
        assert len(findings) == 1
        assert findings[0].rule == "metric-undeclared"
        assert "mini_batchez_total" in findings[0].message

    def test_label_set_mismatch_detected(self, mini_copy):
        use = mini_copy / "metrics_use.py"
        use.write_text(
            use.read_text().replace('labels=("kind",)', 'labels=("mode",)', 1)
        )
        findings = self.drift(analyze(mini_copy))
        assert [f.rule for f in findings] == ["metric-mismatch"]
        assert "('kind',)" in findings[0].message

    def test_labels_arity_mismatch_detected(self, mini_copy):
        use = mini_copy / "metrics_use.py"
        # Only the chained form (counter(...).labels(...)) carries arity
        # statically; the variable-receiver form in `instrument` does not.
        use.write_text(
            use.read_text().replace('.labels("prefetch")',
                                    '.labels("prefetch", "extra")')
        )
        findings = self.drift(analyze(mini_copy))
        assert [f.rule for f in findings] == ["metric-mismatch"]
        assert "2 value(s)" in findings[0].message

    def test_dead_declaration_reported_as_unused(self, mini_copy):
        cat = mini_copy / "obs_catalog.py"
        cat.write_text(
            cat.read_text().replace(
                '"mini_resident_pages": {',
                '"mini_orphan_pages": {\n'
                '        "kind": "gauge",\n'
                '        "help": "never emitted",\n'
                '        "labels": (),\n'
                '        "unit": "pages",\n'
                '    },\n'
                '    "mini_resident_pages": {',
            )
        )
        findings = self.drift(analyze(mini_copy))
        assert [f.rule for f in findings] == ["metric-unused"]
        assert "mini_orphan_pages" in findings[0].message

    def test_undeclared_span_detected(self, mini_copy):
        use = mini_copy / "metrics_use.py"
        use.write_text(
            use.read_text().replace('obs.span("mini.batch")',
                                    'obs.span("mini.mystery")')
        )
        rules = sorted(f.rule for f in self.drift(analyze(mini_copy)))
        # the renamed span is undeclared AND the declared one goes unused
        assert rules == ["metric-unused", "span-undeclared"]

    def test_numpy_histogram_not_mistaken_for_metric(self):
        report = analyze()
        assert not any(
            "histogram" in f.message and "not_a_metric" in f.message
            for f in self.drift(report)
        )


class TestSharedStatePass:
    def test_worker_reachable_write_flagged_once(self):
        writes = by_rule(analyze(), "mp-global-write")
        assert len(writes) == 1
        f = writes[0]
        assert f.path.endswith("pool.py")
        assert "VERDICTS" in f.message
        assert "_record" in f.message

    def test_readonly_registry_and_constants_not_flagged(self):
        report = analyze()
        flagged = " ".join(
            f.message for f in report.findings
            if f.rule in ("mp-global-write", "mp-global-read")
        )
        # Import-time-populated, read-only REGISTRY and the immutable
        # PAGE_SIZE must stay quiet; so must function locals.
        assert "REGISTRY" not in flagged
        assert "PAGE_SIZE" not in flagged
        assert "local_cache" not in flagged

    def test_unreachable_mutation_not_flagged(self, mini_copy):
        pool = mini_copy / "pool.py"
        pool.write_text(
            pool.read_text().replace("    _record(kind)\n", "")
        )
        assert by_rule(analyze(mini_copy), "mp-global-write") == []


class TestSuppressionHygienePass:
    def test_stale_and_unknown_reported_live_kept(self):
        report = analyze()
        stale = by_rule(report, "stale-suppression")
        unknown = by_rule(report, "unknown-suppression-rule")
        assert [f.line for f in stale if f.path.endswith("hygiene_mod.py")] == [9]
        assert [f.line for f in unknown] == [12]
        # The live suppression on line 6 is not reported.
        assert not any(
            f.path.endswith("hygiene_mod.py") and f.line == 6
            for f in report.findings
        )

    def test_docstring_mention_is_not_audited(self, tmp_path):
        mod = tmp_path / "docs_only.py"
        mod.write_text(
            '"""Explains `# repro: lint-ok[wall-clock]` suppressions."""\n'
            "X = 1\n"
        )
        report = analyze(mod)
        assert by_rule(report, "stale-suppression") == []

    def test_dead_allow_entry_reported_live_kept(self, tmp_path):
        allow = tmp_path / "allow.txt"
        allow.write_text(
            "timing.py: wall-clock  # live: wall-clock fires there (raw)\n"
            "clock.py: wall-clock  # dead: nothing fires in clock.py\n"
        )
        entries = [
            AllowEntry("timing.py", "wall-clock", "live"),
            AllowEntry("clock.py", "wall-clock", "dead"),
        ]
        report = analyze(FIXTURES, allowlist=entries,
                         allowlist_path=str(allow))
        dead = by_rule(report, "dead-allow-entry")
        assert len(dead) == 1
        assert "clock.py" in dead[0].message
        assert dead[0].line == 2

    def test_out_of_scope_allow_entry_not_dead(self, tmp_path):
        # The project allowlist applied to an unrelated single file must
        # not report every entry as dead.
        target = tmp_path / "one.py"
        target.write_text("X = 1\n")
        entries = [AllowEntry("repro/obs/spans.py", "wall-clock", "ok")]
        report = analyze(target, allowlist=entries,
                         allowlist_path="lint_allow.txt")
        assert by_rule(report, "dead-allow-entry") == []


class TestDeterminismPassIntegration:
    def test_per_file_rules_flow_through_engine(self, tmp_path):
        target = tmp_path / "hazard.py"
        target.write_text("for x in {1, 2}:\n    print(x)\n")
        report = analyze(target)
        assert [f.rule for f in report.findings] == ["set-iter"]
        assert report.findings[0].pass_name == "determinism"

    def test_suppressed_lines_do_not_reach_the_report(self):
        report = analyze()
        # timing.py carries two deliberately suppressed wall-clock reads.
        assert not any(
            f.rule == "wall-clock" and f.path.endswith("timing.py")
            for f in report.findings
        )
