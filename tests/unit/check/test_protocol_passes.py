"""Protocol/lifecycle pass family over the protoproj fixture.

Three layers of tests:

* fixture true-positives — every rule in the family fires exactly where
  protoproj seeds it, and each violation's clean twin stays silent;
* mutation scenarios — fixing a seeded violation clears its finding, and
  the ISSUE acceptance mutations on a copy of the real tree (deleting a
  ``_SKIP_COMMON`` entry, dropping an ``_abort_record`` call) each
  produce a finding;
* the dogfood pin — the real ``src/repro`` tree is clean under all three
  passes, so any future lifecycle/coverage/parity regression fails here
  rather than landing in the baseline.
"""

from __future__ import annotations

import shutil
from pathlib import Path

import pytest

from repro.check.program import run_analysis, seeds_in_changed
from repro.check.program.lifecycle import LifecyclePass
from repro.check.program.parity import ParityPass
from repro.check.program.snapshot import SnapshotCoveragePass

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "protoproj"
REPO_SRC = Path(__file__).resolve().parents[3] / "src" / "repro"

FAMILY_RULES = (
    "lifecycle-leak",
    "lifecycle-exception-leak",
    "snapshot-uncaptured",
    "snapshot-skip-drift",
    "snapshot-stale-skip",
    "parity-surface",
    "parity-unpaired",
    "parity-annotation",
)


def family_passes():
    return [LifecyclePass(), SnapshotCoveragePass(), ParityPass()]


def analyze(path=FIXTURES):
    return run_analysis([path], passes=family_passes())


def by_rule(report, rule):
    return [f for f in report.findings if f.rule == rule]


@pytest.fixture()
def proto_copy(tmp_path):
    dest = tmp_path / "protoproj"
    shutil.copytree(FIXTURES, dest)
    return dest


@pytest.fixture()
def repro_copy(tmp_path):
    """A mutable copy of the real package for acceptance mutations."""
    dest = tmp_path / "repro"
    shutil.copytree(
        REPO_SRC, dest, ignore=shutil.ignore_patterns("__pycache__")
    )
    return dest


class TestFixtureSeeds:
    def test_every_family_rule_fires(self):
        report = analyze()
        fired = {f.rule for f in report.findings}
        assert set(FAMILY_RULES) <= fired

    def test_lifecycle_leaks_land_on_seeded_functions(self):
        report = analyze()
        leaks = by_rule(report, "lifecycle-leak")
        assert len(leaks) == 1
        assert leaks[0].path.endswith("runner.py")
        assert "forget_close" in leaks[0].message

        exc = by_rule(report, "lifecycle-exception-leak")
        where = {(f.path.rsplit("/", 1)[-1]) for f in exc}
        assert where == {"runner.py", "ledger.py", "worker.py"}
        # One protocol per module: monitor, sqlite connection, temp file.
        tags = sorted(f.message.split("]")[0] + "]" for f in exc)
        assert tags == [
            "[atomic-temp]", "[campaign-monitor]", "[sqlite-conn]"
        ]

    def test_clean_twins_stay_silent(self):
        report = analyze()
        blob = " ".join(f.message for f in report.findings)
        for clean_fn in (
            "clean_finally",
            "clean_guarded_none",
            "count_rows_clean",
            "write_state_clean",
        ):
            assert clean_fn not in blob

    def test_snapshot_findings(self):
        report = analyze()
        unc = by_rule(report, "snapshot-uncaptured")
        assert len(unc) == 1
        assert "Engine.drift" in unc[0].message

        drift = by_rule(report, "snapshot-skip-drift")
        assert len(drift) == 2
        msgs = " ".join(f.message for f in drift)
        assert "Engine.steps" in msgs  # annotated but captured verbatim
        assert "Gmmu._hook" in msgs  # annotated but not excluded

        stale = by_rule(report, "snapshot-stale-skip")
        assert len(stale) == 1
        assert "'ghost'" in stale[0].message
        # extra_buf IS assigned (gmmu.py): the _SKIP_EXTRA entry is live.
        assert "extra_buf" not in " ".join(f.message for f in stale)

    def test_parity_findings(self):
        report = analyze()
        surface = by_rule(report, "parity-surface")
        assert len(surface) == 1
        assert "'soa'" in surface[0].message
        assert "san:on_push" in surface[0].message
        assert "inj:push.overflow" in surface[0].message

        unpaired = by_rule(report, "parity-unpaired")
        assert len(unpaired) == 1
        assert "'orphan'" in unpaired[0].message

        annot = by_rule(report, "parity-annotation")
        assert len(annot) == 1
        assert "broken" in annot[0].message


class TestMutationScenarios:
    def test_adding_close_clears_the_leak(self, proto_copy):
        runner = proto_copy / "runner.py"
        src = runner.read_text()
        runner.write_text(
            src.replace(
                "    mon = CampaignMonitor(cells)\n    return 0",
                "    mon = CampaignMonitor(cells)\n    mon.close()\n"
                "    return 0",
            )
        )
        assert by_rule(analyze(proto_copy), "lifecycle-leak") == []

    def test_annotating_uncaptured_attr_clears_it(self, proto_copy):
        engine = proto_copy / "engine.py"
        src = engine.read_text()
        engine.write_text(
            src.replace("self.drift = 0", "self.drift = 0  # snapshot: skip")
        )
        assert by_rule(analyze(proto_copy), "snapshot-uncaptured") == []

    def test_restoring_surface_parity_clears_it(self, proto_copy):
        pipeline = proto_copy / "pipeline.py"
        src = pipeline.read_text()
        pipeline.write_text(
            src.replace(
                "    buf.total += n\n    return n",
                "    buf.total += n\n    san.on_push(buf)\n"
                "    inj.fire(\"push.overflow\")\n    return n",
            )
        )
        assert by_rule(analyze(pipeline.parent), "parity-surface") == []


class TestAcceptanceOnRealTree:
    """The ISSUE acceptance mutations: each must produce a finding."""

    def test_removing_abort_record_is_flagged(self, repro_copy):
        driver = repro_copy / "core" / "driver.py"
        src = driver.read_text()
        needle = "            self._abort_record(record)\n            raise"
        assert needle in src
        driver.write_text(src.replace(needle, "            raise", 1))
        report = run_analysis([repro_copy], passes=[LifecyclePass()])
        batch = [
            f
            for f in report.findings
            if "[batch-record]" in f.message and f.path.endswith("driver.py")
        ]
        assert batch, "dropping _abort_record must surface a record leak"

    def test_deleting_skip_common_entry_is_flagged(self, repro_copy):
        ckpt = repro_copy / "sim" / "checkpoint.py"
        src = ckpt.read_text()
        assert '"_san", ' in src
        ckpt.write_text(src.replace('"_san", ', "", 1))
        report = run_analysis([repro_copy], passes=[SnapshotCoveragePass()])
        drift = by_rule(report, "snapshot-skip-drift")
        assert any("_san" in f.message for f in drift), (
            "deleting _san from _SKIP_COMMON must contradict the "
            "'# snapshot: skip' annotations on the fault buffers"
        )


class TestDogfoodPin:
    def test_real_tree_is_clean_under_the_family(self):
        # Suppression hygiene runs on every analysis and flags the real
        # tree's `lint-ok[...]` comments as unknown against this reduced
        # roster — only the family's own rules are pinned clean here.
        report = run_analysis([REPO_SRC], passes=family_passes())
        family = [f for f in report.findings if f.rule in FAMILY_RULES]
        assert family == []


class TestSeedInvalidation:
    def test_changed_only_widens_when_a_seed_changed(
        self, monkeypatch, capsys
    ):
        import repro.check.program as program
        from repro.cli import main as cli_main

        monkeypatch.setattr(
            program, "changed_files",
            lambda ref: ["src/repro/units.py", "src/repro/core/batch.py"],
        )
        cli_main(["lint", str(FIXTURES), "--changed-only"])
        err = capsys.readouterr().err
        assert "analysis seed(s) changed" in err
        assert "units.py" in err

    def test_changed_only_stays_narrow_without_seeds(
        self, monkeypatch, capsys
    ):
        import repro.check.program as program
        from repro.cli import main as cli_main

        monkeypatch.setattr(
            program, "changed_files",
            lambda ref: ["src/repro/core/batch.py"],
        )
        cli_main(["lint", str(FIXTURES), "--changed-only"])
        err = capsys.readouterr().err
        assert "analysis seed(s) changed" not in err

    def test_analysis_seeds_are_recognized(self):
        changed = [
            "src/repro/core/driver.py",
            "src/repro/check/program/protocols.py",
            "src/repro/obs/catalog.py",
        ]
        seeds = seeds_in_changed(changed)
        assert seeds == ["src/repro/check/program/protocols.py",
                         "src/repro/obs/catalog.py"]

    def test_non_seed_changes_pass_through(self):
        assert seeds_in_changed(["src/repro/core/batch.py"]) == []
