"""Runtime half of the metric contract: a real workload run registers only
families the catalog declares, with matching kinds and label keys — closing
the loop the static metric-drift pass cannot (the pass proves call sites
agree with the catalog; this proves the live registry does too)."""

from __future__ import annotations

import pytest

from repro.api import UvmSystem
from repro.config import default_config
from repro.check.program.dims import UNIT_VOCAB
from repro.obs.catalog import (
    METRIC_CATALOG,
    SPAN_CATALOG,
    declared_label_keys,
    metric_declaration,
    validate_registry,
)
from repro.units import MB
from repro.workloads import StreamTriad


@pytest.fixture(scope="module")
def metered_system():
    cfg = default_config()
    cfg.gpu.memory_bytes = 32 * MB
    cfg.seed = 7
    cfg.obs.metrics = True
    cfg.obs.spans = True
    system = UvmSystem(cfg)
    StreamTriad(nbytes=4 * MB).run(system)
    return system


class TestCatalogShape:
    def test_every_entry_is_literal_and_complete(self):
        for name, spec in METRIC_CATALOG.items():
            assert spec["kind"] in ("counter", "gauge", "histogram"), name
            assert isinstance(spec["labels"], tuple), name
            assert spec["help"], name
        for name, spec in SPAN_CATALOG.items():
            assert isinstance(spec, dict), name
            assert spec["help"], name

    def test_every_entry_declares_a_known_unit(self):
        for catalog in (METRIC_CATALOG, SPAN_CATALOG):
            for name, spec in catalog.items():
                assert spec.get("unit") in UNIT_VOCAB, (
                    f"{name}: unit {spec.get('unit')!r} not in UNIT_VOCAB"
                )

    def test_helpers(self):
        assert metric_declaration("uvm_faults_total")["kind"] == "counter"
        assert declared_label_keys("uvm_faults_total") == ("kind",)
        with pytest.raises(KeyError):
            metric_declaration("no_such_family")


class TestRuntimeAgreement:
    def test_live_registry_matches_catalog(self, metered_system):
        problems = validate_registry(metered_system.metrics)
        assert problems == [], "\n".join(problems)

    def test_run_actually_registered_core_families(self, metered_system):
        snapshot = metered_system.metrics.snapshot()
        assert "uvm_faults_total" in snapshot
        assert "uvm_batches_total" in snapshot

    def test_recorded_spans_are_declared(self, metered_system):
        names = {s.name for s in metered_system.obs.spans.records}
        undeclared = names - set(SPAN_CATALOG)
        assert not undeclared, f"spans missing from SPAN_CATALOG: {undeclared}"

    def test_validate_registry_catches_an_imposter(self, metered_system):
        registry = metered_system.metrics
        registry.counter("uvm_imposter_total", "not in the catalog").inc()
        problems = validate_registry(registry)
        assert any("uvm_imposter_total" in p for p in problems)
