"""Unit tests for the flight recorder, histogram quantiles, and crash
bundles (:mod:`repro.obs.flight`, :mod:`repro.obs.bundle`)."""

from __future__ import annotations

import json

import pytest

from repro.config import ObsConfig, default_config
from repro.errors import ConfigError
from repro.obs import Observability
from repro.obs.bundle import (
    BUNDLE_SCHEMA,
    is_bundle_dir,
    read_manifest,
    unique_bundle_dir,
    write_bundle,
)
from repro.obs.flight import FlightRecorder, NULL_FLIGHT
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.sim.clock import SimClock


# ------------------------------------------------------------------- flight


class TestFlightRecorder:
    def test_records_stamped_with_sim_time(self):
        clock = SimClock()
        flight = FlightRecorder(clock, capacity=8)
        flight.record("batch.open", 0, "fault")
        clock.advance(10.0)
        flight.record("batch.close", 0, 5, 10.0)
        assert flight.events() == [
            (0.0, "batch.open", (0, "fault")),
            (10.0, "batch.close", (0, 5, 10.0)),
        ]
        assert len(flight) == 2

    def test_ring_is_bounded_and_counts_drops(self):
        flight = FlightRecorder(SimClock(), capacity=3)
        for i in range(5):
            flight.record("evict", i)
        assert len(flight) == 3
        assert flight.dropped == 2
        assert [e[2][0] for e in flight.events()] == [2, 3, 4]

    def test_tail_select_last(self):
        flight = FlightRecorder(SimClock(), capacity=8)
        flight.record("batch.open", 0)
        flight.record("retry", "dma", 1)
        flight.record("batch.open", 1)
        assert flight.tail(2) == flight.events()[-2:]
        assert flight.tail(0) == []
        assert [e[2][0] for e in flight.select("batch.open")] == [0, 1]
        assert flight.last("batch.open")[2] == (1,)
        assert flight.last("missing") is None

    def test_clear_resets_ring_and_drop_count(self):
        flight = FlightRecorder(SimClock(), capacity=1)
        flight.record("a")
        flight.record("b")
        assert flight.dropped == 1
        flight.clear()
        assert len(flight) == 0
        assert flight.dropped == 0

    def test_to_dicts_round_trips_through_json(self):
        flight = FlightRecorder(SimClock(), capacity=4)
        flight.record("evict", 3, 64, 7)
        dumped = json.loads(json.dumps(flight.to_dicts()))
        assert dumped == [{"t": 0.0, "kind": "evict", "args": [3, 64, 7]}]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(SimClock(), capacity=0)

    def test_null_flight_is_inert(self):
        NULL_FLIGHT.record("anything", 1, 2)
        assert not NULL_FLIGHT.enabled
        assert len(NULL_FLIGHT) == 0
        assert NULL_FLIGHT.events() == []
        assert NULL_FLIGHT.tail(5) == []
        assert NULL_FLIGHT.select("x") == []
        assert NULL_FLIGHT.last("x") is None
        assert NULL_FLIGHT.to_dicts() == []
        NULL_FLIGHT.clear()


class TestObsConfigFlightKnobs:
    def test_flight_on_by_default(self):
        obs = Observability(ObsConfig(), SimClock())
        assert obs.flight.enabled
        assert obs.flight.capacity == ObsConfig().flight_cap

    def test_flight_off_installs_null_object(self):
        obs = Observability(ObsConfig(flight_recorder=False), SimClock())
        assert obs.flight is NULL_FLIGHT

    def test_scoped_view_shares_the_flight(self):
        obs = Observability(ObsConfig(), SimClock())
        view = obs.scoped(1000, "gpu1")
        assert view.flight is obs.flight

    def test_flight_cap_validated(self):
        with pytest.raises(ConfigError):
            ObsConfig(flight_cap=0).validate()

    def test_disabled_keeps_flight_only_when_bundles_armed(self):
        dark = ObsConfig().disabled()
        assert not dark.flight_recorder
        armed = ObsConfig(bundle_dir="/tmp/b").disabled()
        assert armed.flight_recorder
        assert armed.bundle_dir == "/tmp/b"


# ---------------------------------------------------------------- quantiles


class TestHistogramQuantiles:
    def test_empty_histogram_has_no_quantiles(self):
        h = Histogram(buckets=(1.0, 2.0))
        assert h.quantile(0.5) is None
        assert h.quantiles() == {"p50": None, "p95": None, "p99": None}

    def test_quantile_interpolates_within_bucket(self):
        h = Histogram(buckets=(10.0, 20.0))
        for v in (5.0, 15.0, 15.0, 15.0):
            h.observe(v)
        # p50: rank 2 of 4 lands in the (10, 20] bucket.
        assert h.quantile(0.5) == pytest.approx(15.0, abs=5.0)
        assert h.quantile(0.0) == pytest.approx(0.0, abs=10.0)
        assert h.quantile(1.0) == pytest.approx(20.0)

    def test_inf_tail_clamps_to_highest_bound(self):
        h = Histogram(buckets=(1.0,))
        h.observe(100.0)
        assert h.quantile(0.99) == 1.0

    def test_quantile_range_checked(self):
        h = Histogram(buckets=(1.0,))
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_quantiles_keys(self):
        h = Histogram(buckets=(1.0, 10.0, 100.0))
        for v in range(1, 101):
            h.observe(float(v))
        qs = h.quantiles()
        assert set(qs) == {"p50", "p95", "p99"}
        assert qs["p50"] <= qs["p95"] <= qs["p99"]

    def test_registry_histogram_exposes_quantiles(self):
        reg = MetricsRegistry()
        fam = reg.histogram("lat", buckets=(10.0, 100.0))
        fam.observe(50.0)
        assert fam.labels().quantile(1.0) == pytest.approx(100.0)


# ------------------------------------------------------------------ bundles


def _crash_engine(tmp_path, seed=0, bundle_dir=None):
    """A small crashed run with bundles armed; returns (engine, error)."""
    from repro.api import UvmSystem
    from repro.errors import InjectedCrash
    from repro.units import MB
    from repro.workloads import WORKLOAD_REGISTRY

    cfg = default_config()
    cfg.gpu.memory_bytes = 32 * MB
    cfg.seed = seed
    cfg.inject.enabled = True
    cfg.inject.sites = {"engine.crash": {"at_batch": 3}}
    cfg.inject.crash_recovery = False
    cfg.inject.checkpoint_every = 2
    cfg.obs.bundle_dir = (
        str(tmp_path / "bundles") if bundle_dir is None else bundle_dir
    )
    system = UvmSystem(cfg)
    with pytest.raises(InjectedCrash) as excinfo:
        WORKLOAD_REGISTRY["stream"]().run(system)
    return system.engine, excinfo.value


class TestBundleWriter:
    def test_unique_bundle_dir_suffixes(self, tmp_path):
        first = unique_bundle_dir(tmp_path, "crash")
        first.mkdir()
        second = unique_bundle_dir(tmp_path, "crash")
        assert second.name == "crash-2"

    def test_engine_writes_bundle_on_crash(self, tmp_path):
        engine, error = _crash_engine(tmp_path)
        bundle = engine.last_bundle
        assert bundle is not None and is_bundle_dir(bundle)
        manifest = read_manifest(bundle)
        assert manifest["schema"] == BUNDLE_SCHEMA
        assert manifest["error"]["type"] == "InjectedCrash"
        assert manifest["error"]["batch_id"] == 3
        assert manifest["seed"] == 0
        assert manifest["kernel"] == "stream"
        assert manifest["checkpoint"]["file"] == "checkpoint.bin"
        assert (bundle / "checkpoint.bin").is_file()
        assert (bundle / "config.json").is_file()
        assert (bundle / "metrics.json").is_file()
        assert (bundle / "spans.json").is_file()
        assert manifest["flight"]["recorded"] == len(engine.flight)

    def test_bundle_counts_in_metrics(self, tmp_path):
        engine, _ = _crash_engine(tmp_path)
        snap = engine.obs.metrics.snapshot()
        assert snap["uvm_bundles_written_total"]["series"][0]["value"] == 1.0

    def test_no_bundle_dir_means_no_bundle(self):
        from repro.api import UvmSystem
        from repro.errors import InjectedCrash
        from repro.units import MB
        from repro.workloads import WORKLOAD_REGISTRY

        cfg = default_config()
        cfg.gpu.memory_bytes = 32 * MB
        cfg.inject.enabled = True
        cfg.inject.sites = {"engine.crash": {"at_batch": 3}}
        cfg.inject.crash_recovery = False
        system = UvmSystem(cfg)
        with pytest.raises(InjectedCrash):
            WORKLOAD_REGISTRY["stream"]().run(system)
        assert system.engine.last_bundle is None

    def test_on_demand_snapshot_without_error(self, tmp_path, small_system):
        from repro.workloads import WORKLOAD_REGISTRY

        WORKLOAD_REGISTRY["vecadd"]().run(small_system)
        bundle = write_bundle(
            tmp_path / "snap", small_system.engine, label="snapshot"
        )
        manifest = read_manifest(bundle)
        assert manifest["error"] is None
        assert manifest["label"] == "snapshot"

    def test_existing_directory_rejected(self, tmp_path, small_system):
        target = tmp_path / "dup"
        target.mkdir()
        with pytest.raises(OSError):
            write_bundle(target, small_system.engine)


class TestBundleRobustness:
    """A bundle write that cannot finish must leave nothing that looks
    like a bundle — and must never mask the crash it was documenting."""

    @staticmethod
    def _failing_dump(bundle_mod):
        real = bundle_mod._dump_json

        def failing(path, payload):
            if path.name == bundle_mod.METRICS_NAME:
                raise OSError(28, "No space left on device")
            real(path, payload)

        return failing

    def test_unwritable_bundle_dir_degrades_cleanly(self, tmp_path):
        # A regular file where the bundle root's parent should be makes
        # mkdir fail for any uid (a read-only dir would not stop root).
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        engine, _ = _crash_engine(
            tmp_path, bundle_dir=str(blocker / "bundles")
        )
        assert engine.last_bundle is None
        assert blocker.is_file()  # nothing was created or clobbered

    def test_midwrite_failure_removes_partial_bundle(
        self, tmp_path, monkeypatch
    ):
        import repro.obs.bundle as bundle_mod

        engine, error = _crash_engine(tmp_path)
        monkeypatch.setattr(
            bundle_mod, "_dump_json", self._failing_dump(bundle_mod)
        )
        target = tmp_path / "ondemand"
        with pytest.raises(OSError):
            bundle_mod.write_bundle(target, engine, error)
        assert not target.exists()
        assert not is_bundle_dir(target)

    def test_engine_swallows_midwrite_failure(self, tmp_path, monkeypatch):
        import repro.obs.bundle as bundle_mod

        monkeypatch.setattr(
            bundle_mod, "_dump_json", self._failing_dump(bundle_mod)
        )
        engine, _ = _crash_engine(tmp_path)
        assert engine.last_bundle is None
        root = tmp_path / "bundles"
        # The crash directory was rolled back; no half-bundle survives.
        assert not root.exists() or list(root.iterdir()) == []

    def test_manifest_lands_atomically(self, tmp_path, small_system,
                                       monkeypatch):
        import repro.obs.bundle as bundle_mod
        from repro.workloads import WORKLOAD_REGISTRY

        WORKLOAD_REGISTRY["vecadd"]().run(small_system)

        def fail_finalize(directory, manifest):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(bundle_mod, "_finalize_bundle", fail_finalize)
        target = tmp_path / "snap"
        with pytest.raises(OSError):
            bundle_mod.write_bundle(target, small_system.engine)
        # Every other file was already written, yet without a manifest the
        # directory must not read back as a bundle.
        assert not is_bundle_dir(target)
        assert not target.exists()
