"""Unit tests for the multi-GPU extension."""

import pytest

from repro import default_config
from repro.errors import ConfigError
from repro.gpu.warp import KernelLaunch, Phase, WarpProgram
from repro.multigpu import MultiGpuSystem
from repro.units import MB


def make_system(num_devices=2, peer_enabled=True, gpu_mem_mb=16):
    cfg = default_config(prefetch_enabled=False)
    cfg.gpu.num_sms = 8
    cfg.gpu.memory_bytes = gpu_mem_mb * MB
    cfg.cost_overrides = {"jitter_frac": 0.0}
    return MultiGpuSystem(num_devices=num_devices, config=cfg, peer_enabled=peer_enabled)


def sweep_kernel(alloc, start, stop, name="k"):
    return KernelLaunch(name, [WarpProgram([Phase.of(list(alloc.pages(start, stop)))])])


class TestConstruction:
    def test_devices_share_clock_and_host(self):
        mg = make_system(3)
        clocks = {id(h.engine.clock) for h in mg.devices}
        host_vms = {id(h.engine.host_vm) for h in mg.devices}
        assert len(clocks) == 1
        assert len(host_vms) == 1

    def test_devices_have_own_fault_paths(self):
        mg = make_system(2)
        assert mg.devices[0].engine.device is not mg.devices[1].engine.device
        assert id(mg.devices[0].engine.dma) != id(mg.devices[1].engine.dma)

    def test_at_least_one_device(self):
        with pytest.raises(ConfigError):
            make_system(0)

    def test_allocation_registered_everywhere(self):
        mg = make_system(2)
        alloc = mg.managed_alloc(2 * MB)
        for handle in mg.devices:
            block = handle.driver.vablocks.get_for_page(alloc.page(0))
            assert alloc.page(0) in block.valid_pages


class TestOwnership:
    def test_launch_takes_ownership(self):
        mg = make_system(2)
        alloc = mg.managed_alloc(2 * MB)
        mg.host_touch(alloc)
        mg.launch(0, sweep_kernel(alloc, 0, 64))
        assert mg._owner[alloc.page(0)] == 0

    def test_second_device_steals_pages(self):
        mg = make_system(2)
        alloc = mg.managed_alloc(2 * MB)
        mg.host_touch(alloc)
        mg.launch(0, sweep_kernel(alloc, 0, 64))
        mg.launch(1, sweep_kernel(alloc, 0, 64))
        assert mg._owner[alloc.page(0)] == 1
        assert not mg.devices[0].engine.device.page_table.is_resident(alloc.page(0))
        assert mg.devices[1].engine.device.page_table.is_resident(alloc.page(0))

    def test_peer_transfer_counted(self):
        mg = make_system(2, peer_enabled=True)
        alloc = mg.managed_alloc(2 * MB)
        mg.host_touch(alloc)
        mg.launch(0, sweep_kernel(alloc, 0, 64))
        mg.launch(1, sweep_kernel(alloc, 0, 64))
        assert mg.peer_stats.peer_pages == 64
        assert mg.peer_stats.bounce_pages == 0

    def test_bounce_when_peer_disabled(self):
        mg = make_system(2, peer_enabled=False)
        alloc = mg.managed_alloc(2 * MB)
        mg.host_touch(alloc)
        mg.launch(0, sweep_kernel(alloc, 0, 64))
        mg.launch(1, sweep_kernel(alloc, 0, 64))
        assert mg.peer_stats.bounce_pages == 64
        assert mg.peer_stats.peer_pages == 0

    def test_peer_faster_than_bounce(self):
        times = {}
        for peer in (True, False):
            mg = make_system(2, peer_enabled=peer)
            alloc = mg.managed_alloc(4 * MB)
            mg.host_touch(alloc)
            mg.launch(0, sweep_kernel(alloc, 0, 512))
            t0 = mg.clock.now
            mg.launch(1, sweep_kernel(alloc, 0, 512))
            times[peer] = mg.clock.now - t0
        assert times[True] < times[False]

    def test_disjoint_ranges_no_transfers(self):
        mg = make_system(2)
        alloc = mg.managed_alloc(4 * MB)
        mg.host_touch(alloc)
        mg.launch(0, sweep_kernel(alloc, 0, 256))
        mg.launch(1, sweep_kernel(alloc, 256, 512))
        assert mg.peer_stats.total_pages == 0

    def test_host_touch_reclaims(self):
        mg = make_system(2)
        alloc = mg.managed_alloc(2 * MB)
        mg.launch(0, sweep_kernel(alloc, 0, 64))
        mg.host_touch(alloc)
        assert alloc.page(0) not in mg._owner
        assert not mg.devices[0].engine.device.page_table.is_resident(alloc.page(0))
        assert mg.host_vm.has_valid_data(alloc.page(0))


class TestParallelLaunch:
    def test_makespan_not_sum(self):
        mg = make_system(2)
        alloc = mg.managed_alloc(4 * MB)
        mg.host_touch(alloc)
        t0 = mg.clock.now
        results = mg.parallel_launch(
            [
                (0, sweep_kernel(alloc, 0, 256, "p0")),
                (1, sweep_kernel(alloc, 256, 512, "p1")),
            ]
        )
        elapsed = mg.clock.now - t0
        total = sum(r.kernel_time_usec for r in results)
        assert elapsed < total
        assert elapsed >= max(r.kernel_time_usec for r in results) - 1e-6

    def test_empty_parallel_launch(self):
        mg = make_system(2)
        assert mg.parallel_launch([]) == []


class TestReporting:
    def test_total_records_ordered(self):
        mg = make_system(2)
        alloc = mg.managed_alloc(4 * MB)
        mg.host_touch(alloc)
        mg.launch(0, sweep_kernel(alloc, 0, 128))
        mg.launch(1, sweep_kernel(alloc, 128, 256))
        records = mg.total_records()
        assert len(records) >= 2
        starts = [r.t_start for r in records]
        assert starts == sorted(starts)
