"""Unit tests for live campaign telemetry (:mod:`repro.campaign.telemetry`)."""

from __future__ import annotations

import json
import queue
import time

from repro.campaign.telemetry import (
    CampaignMonitor,
    CampaignProgress,
    HeartbeatThread,
    JobState,
    apply_event,
    emit,
    format_eta,
    read_telemetry,
    render_progress,
    stalled_jobs,
)


def _progress_with_jobs():
    """A hand-built mid-campaign state for renderer/stall tests."""
    progress = CampaignProgress(total=10, cached=2, done=3, failed=1)
    progress.started_at = 100.0
    progress.batches_done = 120
    progress.running = {
        0: JobState(
            index=0, workload="stream", config="base", seed=0,
            batches=7, started_at=110.0, last_seen=158.0,
        ),
        3: JobState(
            index=3, workload="hpgmg", config="crash", seed=1,
            batches=2, started_at=112.0, last_seen=115.0,
        ),
    }
    return progress


class TestEmit:
    def test_none_channel_is_noop(self):
        emit(None, {"type": "heartbeat"})

    def test_puts_on_queue(self):
        q = queue.Queue()
        emit(q, {"type": "job.start", "index": 0})
        assert q.get_nowait() == {"type": "job.start", "index": 0}

    def test_never_raises(self):
        class Dead:
            def put(self, event):
                raise ConnectionError("manager gone")

        emit(Dead(), {"type": "heartbeat"})  # must not propagate


class TestApplyEvent:
    def test_lifecycle(self):
        progress = CampaignProgress(total=4)
        apply_event(progress, {"type": "campaign.start", "cached": 1}, 10.0)
        assert progress.started_at == 10.0
        assert progress.cached == 1

        apply_event(
            progress,
            {
                "type": "job.start",
                "index": 2,
                "workload": "stream",
                "config": "base",
                "seed": 0,
            },
            11.0,
        )
        assert progress.running[2].workload == "stream"
        assert progress.running[2].last_seen == 11.0

        apply_event(
            progress, {"type": "heartbeat", "index": 2, "batches": 9}, 12.5
        )
        assert progress.running[2].batches == 9
        assert progress.running[2].last_seen == 12.5

        apply_event(
            progress, {"type": "job.done", "index": 2, "batches": 20}, 14.0
        )
        assert 2 not in progress.running
        assert progress.done == 1
        assert progress.batches_done == 20
        assert progress.finished == 2
        assert progress.remaining == 2

    def test_job_failed(self):
        progress = CampaignProgress(total=2)
        apply_event(
            progress,
            {"type": "job.start", "index": 0, "workload": "w", "config": "c", "seed": 0},
            1.0,
        )
        apply_event(progress, {"type": "job.failed", "index": 0}, 2.0)
        assert progress.failed == 1
        assert progress.running == {}

    def test_heartbeat_for_unknown_job_ignored(self):
        progress = CampaignProgress(total=1)
        apply_event(progress, {"type": "heartbeat", "index": 9, "batches": 1}, 1.0)
        assert progress.running == {}

    def test_done_without_start_counts(self):
        # Events can outrun job.start when a cached cell short-circuits.
        progress = CampaignProgress(total=1)
        apply_event(progress, {"type": "job.done", "index": 0, "batches": 5}, 1.0)
        assert progress.done == 1
        assert progress.batches_done == 5


class TestStallDetector:
    def test_quiet_jobs_stalled_oldest_first(self):
        progress = _progress_with_jobs()
        stalled = stalled_jobs(progress, now=160.0, timeout_sec=30.0)
        assert [job.index for job in stalled] == [3]
        stalled = stalled_jobs(progress, now=300.0, timeout_sec=30.0)
        assert [job.index for job in stalled] == [3, 0]

    def test_fresh_jobs_not_stalled(self):
        progress = _progress_with_jobs()
        assert stalled_jobs(progress, now=116.0, timeout_sec=30.0) == []


class TestRenderProgress:
    def test_exact_snapshot(self):
        progress = _progress_with_jobs()
        view = render_progress(progress, now=160.0, stall_timeout_sec=30.0)
        assert view == (
            "campaign: 6/10 cells (3 run, 2 cached, 1 failed) | 2 running\n"
            "  batches/sec 2.0 | cache hit rate 20% | elapsed 60s | eta 60s\n"
            "  #0 stream/base seed=0 batches=7\n"
            "  #3 hpgmg/crash seed=1 batches=2  [STALLED]"
        )

    def test_no_stall_timeout_means_no_flags(self):
        progress = _progress_with_jobs()
        view = render_progress(progress, now=300.0)
        assert "[STALLED]" not in view

    def test_empty_campaign_renders(self):
        view = render_progress(CampaignProgress(total=0), now=0.0)
        assert "0/0 cells" in view


class TestFormatEta:
    def test_unknown_before_first_completion(self):
        progress = CampaignProgress(total=5)
        progress.started_at = 10.0
        assert format_eta(progress, now=20.0) == "?"

    def test_seconds_and_minutes(self):
        progress = CampaignProgress(total=10, done=5)
        progress.started_at = 0.0
        # 5 cells in 50s -> 10s/cell -> 5 remaining -> 50s
        assert format_eta(progress, now=50.0) == "50s"
        # 5 cells in 500s -> 100s/cell -> 500s -> minutes
        assert format_eta(progress, now=500.0) == "8.3m"


class TestCampaignMonitor:
    def test_ndjson_round_trip(self, tmp_path):
        path = tmp_path / "telemetry.ndjson"
        with CampaignMonitor(total_cells=2, jobs=1, path=path) as monitor:
            emit(monitor.queue, {"type": "campaign.start", "cached": 0})
            emit(
                monitor.queue,
                {
                    "type": "job.start",
                    "index": 0,
                    "workload": "stream",
                    "config": "base",
                    "seed": 0,
                },
            )
            drained = monitor.poll()
            assert [e["type"] for e in drained] == [
                "campaign.start",
                "job.start",
            ]
            emit(monitor.queue, {"type": "job.done", "index": 0, "batches": 4})
        # close() drains the tail; the file holds all three, stamped.
        events = read_telemetry(path)
        assert [e["type"] for e in events] == [
            "campaign.start",
            "job.start",
            "job.done",
        ]
        assert all("t" in e for e in events)
        assert all(e["t"] >= 0 for e in events)
        # Lines are compact sorted-key JSON.
        raw = path.read_text().splitlines()
        assert raw[0] == json.dumps(
            events[0], sort_keys=True, separators=(",", ":")
        )

    def test_progress_tracks_events(self):
        monitor = CampaignMonitor(total_cells=3, jobs=1)
        emit(monitor.queue, {"type": "campaign.start", "cached": 1})
        emit(
            monitor.queue,
            {"type": "job.start", "index": 0, "workload": "w",
             "config": "c", "seed": 0},
        )
        emit(monitor.queue, {"type": "job.done", "index": 0, "batches": 7})
        monitor.poll()
        assert monitor.progress.cached == 1
        assert monitor.progress.done == 1
        assert monitor.progress.batches_done == 7
        monitor.close()

    def test_watch_prints_on_change(self, tmp_path):
        import io

        stream = io.StringIO()
        monitor = CampaignMonitor(
            total_cells=1, jobs=1, watch=True, stream=stream
        )
        emit(monitor.queue, {"type": "campaign.start", "cached": 0})
        monitor.poll()
        assert "campaign: 0/1 cells" in stream.getvalue()
        monitor.close()

    def test_poll_empty_queue(self):
        monitor = CampaignMonitor(total_cells=1, jobs=1)
        assert monitor.poll() == []
        monitor.close()

    def test_stalled_requires_timeout(self):
        monitor = CampaignMonitor(total_cells=1, jobs=1)
        assert monitor.stalled() == []
        monitor.close()


class TestHeartbeatThread:
    def test_none_channel_never_starts(self):
        hb = HeartbeatThread(None, 0, lambda: 0, interval_sec=0.01)
        with hb:
            pass
        assert not hb._thread.is_alive()

    def test_beats_progress_onto_channel(self):
        q = queue.Queue()
        with HeartbeatThread(q, 5, lambda: 42, interval_sec=0.01):
            deadline = time.time() + 2.0
            while q.empty() and time.time() < deadline:
                time.sleep(0.01)
        event = q.get_nowait()
        assert event == {"type": "heartbeat", "index": 5, "batches": 42}


class TestMonotonicLiveness:
    """Stall detection must ride the monotonic clock: an NTP step or a
    suspend/resume jump in ``time.time()`` may move the NDJSON ``t``
    stamps, but it must neither flag a healthy job as stalled nor hide a
    wedged one."""

    def test_wall_clock_jump_does_not_fake_a_stall(self, monkeypatch):
        monitor = CampaignMonitor(total_cells=1, jobs=1, stall_timeout_sec=60)
        emit(
            monitor.queue,
            {"type": "job.start", "index": 0, "workload": "w",
             "config": "c", "seed": 0},
        )
        monitor.poll()
        # The wall clock leaps a day forward; the monotonic clock did not.
        real_time = time.time
        monkeypatch.setattr(time, "time", lambda: real_time() + 86_400.0)
        emit(monitor.queue, {"type": "heartbeat", "index": 0, "batches": 3})
        events = monitor.poll()
        assert monitor.stalled() == []
        # NDJSON arrival stamps still follow the wall clock by design.
        assert events[0]["t"] > 80_000
        monitor.close()

    def test_liveness_state_tracks_monotonic_readings(self, monkeypatch):
        monitor = CampaignMonitor(total_cells=1, jobs=1, stall_timeout_sec=5)
        emit(
            monitor.queue,
            {"type": "job.start", "index": 0, "workload": "w",
             "config": "c", "seed": 0},
        )
        monitor.poll()
        started = monitor.progress.running[0].last_seen
        assert abs(started - time.monotonic()) < 5.0
        # A monotonic jump past the timeout *does* flag the job.
        real_mono = time.monotonic
        monkeypatch.setattr(time, "monotonic", lambda: real_mono() + 30.0)
        assert [job.index for job in monitor.stalled()] == [0]
        monitor.close()
