"""Unit tests for campaign spec parsing and expansion."""

import json

import pytest

from repro.campaign import CampaignSpec
from repro.errors import ConfigError


def make_doc(**over):
    doc = {
        "name": "t",
        "workloads": ["vecadd", "stream"],
        "configs": [
            {"label": "base", "overrides": {}},
            {"label": "np", "overrides": {"driver.prefetch_enabled": False}},
        ],
        "seeds": [0, 1],
    }
    doc.update(over)
    return doc


class TestProductExpansion:
    def test_cell_count_and_indices(self):
        spec = CampaignSpec.from_dict(make_doc())
        assert len(spec.cells) == 8
        assert [c.index for c in spec.cells] == list(range(8))

    def test_workload_major_order(self):
        spec = CampaignSpec.from_dict(make_doc())
        triples = [(c.workload, c.config_label, c.seed) for c in spec.cells]
        assert triples[:4] == [
            ("vecadd", "base", 0),
            ("vecadd", "base", 1),
            ("vecadd", "np", 0),
            ("vecadd", "np", 1),
        ]
        assert triples[4][0] == "stream"

    def test_defaults_single_config_and_seed(self):
        spec = CampaignSpec.from_dict({"name": "t", "workloads": ["vecadd"]})
        assert len(spec.cells) == 1
        cell = spec.cells[0]
        assert (cell.config_label, cell.seed, cell.overrides) == ("base", 0, {})

    def test_base_overrides_lose_to_config_overrides(self):
        doc = make_doc(
            base_overrides={"driver.batch_size": 128, "gpu.num_sms": 8},
            configs=[{"label": "big", "overrides": {"driver.batch_size": 512}}],
            seeds=[0],
        )
        spec = CampaignSpec.from_dict(doc)
        for cell in spec.cells:
            assert cell.overrides["driver.batch_size"] == 512
            assert cell.overrides["gpu.num_sms"] == 8

    def test_build_config_applies_overrides_and_seed(self):
        doc = make_doc(seeds=[7])
        spec = CampaignSpec.from_dict(doc)
        cfg = spec.cells[3].build_config()  # vecadd/np/7
        assert cfg.driver.prefetch_enabled is False
        assert cfg.seed == 7
        # Fresh instance every time: mutating one build leaks nowhere.
        assert spec.cells[3].build_config() is not cfg


class TestRunListExpansion:
    def test_runs_in_listed_order(self):
        doc = {
            "name": "t",
            "runs": [
                {"workload": "stream", "seed": 3, "label": "a"},
                {"workload": "vecadd"},
            ],
        }
        spec = CampaignSpec.from_dict(doc)
        assert [(c.workload, c.config_label, c.seed) for c in spec.cells] == [
            ("stream", "a", 3),
            ("vecadd", "base", 0),
        ]

    def test_base_overrides_merge_into_runs(self):
        doc = {
            "name": "t",
            "base_overrides": {"gpu.num_sms": 8},
            "runs": [{"workload": "vecadd", "overrides": {"gpu.num_sms": 4}}],
        }
        spec = CampaignSpec.from_dict(doc)
        assert spec.cells[0].overrides == {"gpu.num_sms": 4}


class TestValidation:
    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigError, match="unknown workload"):
            CampaignSpec.from_dict(make_doc(workloads=["nope"]))

    def test_duplicate_config_label_rejected(self):
        doc = make_doc(configs=[{"label": "x"}, {"label": "x"}])
        with pytest.raises(ConfigError, match="duplicate config label"):
            CampaignSpec.from_dict(doc)

    def test_duplicate_run_rejected(self):
        doc = {
            "name": "t",
            "runs": [{"workload": "vecadd"}, {"workload": "vecadd"}],
        }
        with pytest.raises(ConfigError, match="same run"):
            CampaignSpec.from_dict(doc)

    def test_bad_override_path_fails_at_expansion(self):
        doc = make_doc(base_overrides={"driver.no_such_knob": 1})
        with pytest.raises(ConfigError):
            CampaignSpec.from_dict(doc)

    def test_runs_and_workloads_exclusive(self):
        doc = make_doc(runs=[{"workload": "vecadd"}])
        with pytest.raises(ConfigError, match="not both"):
            CampaignSpec.from_dict(doc)

    def test_empty_expansion_rejected(self):
        with pytest.raises(ConfigError, match="zero cells"):
            CampaignSpec.from_dict({"name": "t", "runs": []})

    def test_missing_name_rejected(self):
        with pytest.raises(ConfigError, match="name"):
            CampaignSpec.from_dict({"workloads": ["vecadd"]})

    def test_from_file_round_trip(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(make_doc()))
        spec = CampaignSpec.from_file(path)
        assert spec.name == "t" and len(spec.cells) == 8

    def test_from_file_invalid_json(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text("{nope")
        with pytest.raises(ConfigError, match="invalid JSON"):
            CampaignSpec.from_file(path)
