"""Unit tests for µTLB merge/cap semantics and SM throttle accounting."""

import pytest

from repro.gpu.sm import StreamingMultiprocessor
from repro.gpu.utlb import UTlb
from repro.gpu.warp import Phase, WarpProgram


class TestUTlbCapacity:
    def test_new_pages_take_slots(self):
        tlb = UTlb(0, limit=3)
        for page in (1, 2, 3):
            assert tlb.request(page)
        assert tlb.outstanding == 3
        assert tlb.available == 0

    def test_available_decrements(self):
        tlb = UTlb(0, limit=56)
        tlb.request(1)
        assert tlb.available == 55

    def test_replay_clears_everything(self):
        tlb = UTlb(0, limit=4)
        tlb.request(1)
        tlb.request(2)
        tlb.replay()
        assert tlb.outstanding == 0
        assert not tlb.pending_pages
        assert tlb.total_replays == 1

    def test_paper_limit_default_matches(self):
        # The cap measured in §3.2 is 56.
        tlb = UTlb(0, limit=56)
        for page in range(56):
            tlb.request(page)
        assert tlb.available == 0


class TestUTlbMerging:
    def test_same_page_merges(self):
        tlb = UTlb(0, limit=8)
        assert tlb.request(5) is True  # new entry
        assert tlb.request(5) is False  # merged
        assert tlb.outstanding == 1
        assert tlb.total_merged == 1

    def test_spurious_reissue_cadence(self):
        tlb = UTlb(0, limit=8)
        tlb.request(5)
        emitted = [tlb.request(5) for _ in range(UTlb.SPURIOUS_PERIOD * 2)]
        # Every SPURIOUS_PERIOD-th merge emits a duplicate entry.
        assert emitted.count(True) == 2
        assert tlb.total_spurious == 2

    def test_merge_does_not_consume_slot(self):
        tlb = UTlb(0, limit=2)
        tlb.request(1)
        tlb.request(2)
        assert tlb.available == 0
        # Merge still possible at zero availability.
        assert tlb.request(1) in (True, False)
        assert tlb.outstanding == 2

    def test_after_replay_page_is_new_again(self):
        tlb = UTlb(0, limit=8)
        tlb.request(5)
        tlb.replay()
        assert tlb.request(5) is True
        assert tlb.outstanding == 1


class TestSmScheduling:
    def make_sm(self, occupancy=2):
        return StreamingMultiprocessor(0, 0, rate_limit=4, occupancy_limit=occupancy)

    def prog(self):
        return WarpProgram([Phase.of([1])])

    def test_enqueue_and_activate(self):
        sm = self.make_sm(occupancy=2)
        for _ in range(3):
            sm.enqueue(self.prog())
        uid = iter(range(100))
        activated = sm.activate_pending(lambda: next(uid))
        assert len(activated) == 2
        assert len(sm.queued) == 1

    def test_activate_respects_occupancy(self):
        sm = self.make_sm(occupancy=1)
        sm.enqueue(self.prog())
        sm.enqueue(self.prog())
        activated = sm.activate_pending(lambda: 1)
        assert len(activated) == 1

    def test_retire_frees_slot(self):
        sm = self.make_sm(occupancy=1)
        sm.enqueue(self.prog())
        sm.enqueue(self.prog())
        uid = iter(range(100))
        [warp] = sm.activate_pending(lambda: next(uid))
        sm.retire(warp)
        assert len(sm.activate_pending(lambda: next(uid))) == 1

    def test_idle(self):
        sm = self.make_sm()
        assert sm.idle
        sm.enqueue(self.prog())
        assert not sm.idle


class TestSmThrottle:
    def test_steady_window_budget(self):
        sm = StreamingMultiprocessor(0, 0, rate_limit=4, occupancy_limit=8)
        sm.new_window(burst=False, burst_limit=56)
        assert sm.budget == 4

    def test_burst_window_budget(self):
        sm = StreamingMultiprocessor(0, 0, rate_limit=4, occupancy_limit=8)
        sm.new_window(burst=True, burst_limit=56)
        assert sm.budget == 56

    def test_consume_budget_granted(self):
        sm = StreamingMultiprocessor(0, 0, rate_limit=4, occupancy_limit=8)
        sm.new_window(burst=False, burst_limit=56)
        assert sm.consume_budget(3) == 3
        assert sm.budget == 1

    def test_consume_budget_clamped(self):
        sm = StreamingMultiprocessor(0, 0, rate_limit=4, occupancy_limit=8)
        sm.new_window(burst=False, burst_limit=56)
        assert sm.consume_budget(10) == 4
        assert sm.budget == 0

    def test_total_faults_counted(self):
        sm = StreamingMultiprocessor(0, 0, rate_limit=4, occupancy_limit=8)
        sm.new_window(burst=False, burst_limit=56)
        sm.consume_budget(2)
        sm.new_window(burst=False, burst_limit=56)
        sm.consume_budget(1)
        assert sm.total_faults == 3
