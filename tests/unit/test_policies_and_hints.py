"""Unit tests for pluggable eviction/prefetch policies and the hint APIs."""

import pytest

from repro.core.eviction import (
    AccessCounterEvictionPolicy,
    EVICTION_POLICIES,
    FifoEvictionPolicy,
    LruEvictionPolicy,
    RandomEvictionPolicy,
    make_eviction_policy,
)
from repro.core.prefetch import (
    PREFETCH_POLICIES,
    FullBlockPrefetcher,
    RegionOnlyPrefetcher,
    SequentialPrefetcher,
    make_prefetcher,
)
from repro.core.vablock import VABlockState
from repro.errors import ConfigError
from repro.units import MB, PAGE_SIZE, PAGES_PER_REGION, PAGES_PER_VABLOCK


def full_block(block_id=0):
    first = block_id * PAGES_PER_VABLOCK
    return VABlockState(
        block_id=block_id, valid_pages=set(range(first, first + PAGES_PER_VABLOCK))
    )


class TestEvictionPolicyRegistry:
    def test_all_registered(self):
        assert set(EVICTION_POLICIES) == {"lru", "fifo", "random", "access-counter"}

    def test_factory(self):
        assert isinstance(make_eviction_policy("fifo"), FifoEvictionPolicy)
        assert isinstance(make_eviction_policy("lru"), LruEvictionPolicy)

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            make_eviction_policy("mru")


class TestFifoPolicy:
    def test_faults_do_not_refresh(self):
        fifo = FifoEvictionPolicy()
        for b in (1, 2, 3):
            fifo.on_gpu_allocated(b)
        fifo.on_fault_service(1)
        assert fifo.pick_victim(set()) == 1  # unlike LRU

    def test_lru_differs(self):
        lru = LruEvictionPolicy()
        for b in (1, 2, 3):
            lru.on_gpu_allocated(b)
        lru.on_fault_service(1)
        assert lru.pick_victim(set()) == 2


class TestRandomPolicy:
    def test_deterministic_with_seed(self):
        picks = []
        for _ in range(2):
            rnd = RandomEvictionPolicy(seed=7)
            for b in range(10):
                rnd.on_gpu_allocated(b)
            picks.append([rnd.pick_victim(set()) for _ in range(5)])
        assert picks[0] == picks[1]

    def test_respects_exclusion(self):
        rnd = RandomEvictionPolicy()
        rnd.on_gpu_allocated(1)
        rnd.on_gpu_allocated(2)
        assert rnd.pick_victim({1}) == 2

    def test_empty_returns_none(self):
        assert RandomEvictionPolicy().pick_victim(set()) is None


class TestAccessCounterPolicy:
    def test_hits_protect_blocks(self):
        ac = AccessCounterEvictionPolicy()
        for b in (1, 2):
            ac.on_gpu_allocated(b)
        for _ in range(5):
            ac.on_access_hit(1)
        assert ac.pick_victim(set()) == 2  # block 1 is hot

    def test_counters_age_on_eviction(self):
        ac = AccessCounterEvictionPolicy()
        for b in (1, 2, 3):
            ac.on_gpu_allocated(b)
        for _ in range(8):
            ac.on_access_hit(1)
        victim = ac.pick_victim(set())
        ac.on_evicted(victim)
        assert ac._counters[1] == pytest.approx(4.5)  # (1+8) * 0.5

    def test_base_lru_ignores_hits(self):
        lru = LruEvictionPolicy()
        lru.on_gpu_allocated(1)
        lru.on_gpu_allocated(2)
        lru.on_access_hit(1)  # invisible to the real driver
        assert lru.pick_victim(set()) == 1


class TestPrefetchPolicyRegistry:
    def test_all_registered(self):
        assert set(PREFETCH_POLICIES) == {
            "density-tree",
            "region-only",
            "sequential",
            "full-block",
        }

    def test_factory_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_prefetcher("oracle")


class TestPrefetchVariants:
    def test_region_only_is_exactly_the_upgrade(self):
        block = full_block()
        out = RegionOnlyPrefetcher().expand(block, [0])
        assert out == set(range(1, PAGES_PER_REGION))

    def test_sequential_next_n(self):
        block = full_block()
        out = SequentialPrefetcher(distance=4).expand(block, [10])
        assert out == {11, 12, 13, 14}

    def test_sequential_stops_at_block_edge(self):
        block = full_block()
        last = PAGES_PER_VABLOCK - 1
        out = SequentialPrefetcher(distance=8).expand(block, [last])
        assert out == set()

    def test_full_block_pulls_everything(self):
        block = full_block()
        out = FullBlockPrefetcher().expand(block, [5])
        assert len(out) == PAGES_PER_VABLOCK - 1

    def test_variants_never_leave_block(self):
        block = full_block(block_id=3)
        for name in PREFETCH_POLICIES:
            pf = make_prefetcher(name)
            out = pf.expand(block, [block.first_page])
            assert out <= block.valid_pages, name

    def test_sequential_distance_validated(self):
        with pytest.raises(ValueError):
            SequentialPrefetcher(distance=0)


class TestPolicyConfigWiring:
    def test_driver_uses_configured_policies(self, system_factory):
        system = system_factory(
            prefetch_policy="sequential", eviction_policy="fifo"
        )
        assert system.driver.prefetcher.name == "sequential"
        assert system.driver.eviction.name == "fifo"

    def test_invalid_policy_rejected(self, system_factory):
        with pytest.raises(ConfigError):
            system_factory(eviction_policy="mru")
        with pytest.raises(ConfigError):
            system_factory(prefetch_policy="oracle")


class TestHintApis:
    def test_mem_prefetch_no_later_faults(self, system_factory):
        from repro.gpu.warp import KernelLaunch, Phase, WarpProgram

        system = system_factory(prefetch_enabled=False)
        alloc = system.managed_alloc(2 * MB)
        system.host_touch(alloc)
        record = system.mem_prefetch(alloc)
        assert record.hinted
        assert record.pages_migrated_h2d == alloc.num_pages
        kernel = KernelLaunch("k", [WarpProgram([Phase.of(list(alloc.pages(0, 64)))])])
        result = system.launch(kernel)
        assert result.total_faults == 0

    def test_mem_prefetch_cheaper_than_faulting(self, system_factory):
        from repro.gpu.warp import KernelLaunch, Phase, WarpProgram

        faulting = system_factory(prefetch_enabled=False)
        a1 = faulting.managed_alloc(2 * MB)
        faulting.host_touch(a1)
        k = KernelLaunch("k", [WarpProgram([Phase.of(list(a1.pages()))])])
        fault_result = faulting.launch(k)

        hinted = system_factory(prefetch_enabled=False)
        a2 = hinted.managed_alloc(2 * MB)
        hinted.host_touch(a2)
        record = hinted.mem_prefetch(a2)
        assert record.duration < fault_result.batch_time_usec

    def test_mem_prefetch_partial_range(self, system_factory):
        system = system_factory(prefetch_enabled=False)
        alloc = system.managed_alloc(2 * MB)
        system.mem_prefetch(alloc, 0, 10)
        pt = system.engine.device.page_table
        assert pt.is_resident(alloc.page(9))
        assert not pt.is_resident(alloc.page(10))

    def test_read_mostly_duplicates(self, system_factory):
        from repro.gpu.warp import KernelLaunch, Phase, WarpProgram

        system = system_factory(prefetch_enabled=False)
        alloc = system.managed_alloc(2 * MB)
        system.host_touch(alloc)
        system.mem_advise_read_mostly(alloc)
        kernel = KernelLaunch("r", [WarpProgram([Phase.of([alloc.page(0)])])])
        system.launch(kernel)
        host_vm = system.engine.host_vm
        # Duplication: host mapping and data remain intact.
        assert alloc.page(0) in host_vm.mapped
        assert host_vm.has_valid_data(alloc.page(0))
        assert system.engine.device.page_table.is_resident(alloc.page(0))

    def test_read_mostly_collapses_on_write(self, system_factory):
        from repro.gpu.warp import KernelLaunch, Phase, WarpProgram

        system = system_factory(prefetch_enabled=False)
        alloc = system.managed_alloc(2 * MB)
        system.host_touch(alloc)
        system.mem_advise_read_mostly(alloc)
        kernel = KernelLaunch("w", [WarpProgram([Phase.of(writes=[alloc.page(0)])])])
        result = system.launch(kernel)
        host_vm = system.engine.host_vm
        assert alloc.page(0) not in host_vm.mapped  # collapse unmapped
        assert not host_vm.has_valid_data(alloc.page(0))
        block = system.driver.vablocks.get_for_page(alloc.page(0))
        assert not block.read_mostly
        assert any(r.unmap_calls for r in result.records)

    def test_accessed_by_zero_copy(self, system_factory):
        from repro.gpu.warp import KernelLaunch, Phase, WarpProgram

        system = system_factory(prefetch_enabled=False)
        alloc = system.managed_alloc(2 * MB)
        system.host_touch(alloc)
        record = system.mem_advise_accessed_by(alloc)
        assert record.dma_mappings_created == alloc.num_pages
        kernel = KernelLaunch("z", [WarpProgram([Phase.of(list(alloc.pages(0, 32)))])])
        result = system.launch(kernel)
        assert result.total_faults == 0
        # Zero-copy: no device memory consumed.
        assert system.engine.device.chunks.used_chunks == 0

    def test_accessed_by_survives_host_touch(self, system_factory):
        system = system_factory(prefetch_enabled=False)
        alloc = system.managed_alloc(2 * MB)
        system.mem_advise_accessed_by(alloc)
        system.host_touch(alloc)  # must not "migrate back" remote mappings
        assert system.engine.device.page_table.is_resident(alloc.page(0))
        assert system.driver.is_remote_mapped(alloc.page(0))

    def test_hinted_records_flagged_in_log(self, system_factory):
        system = system_factory(prefetch_enabled=False)
        alloc = system.managed_alloc(2 * MB)
        system.mem_prefetch(alloc)
        assert any(r.hinted for r in system.records)
