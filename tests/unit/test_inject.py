"""Unit tests for the fault-injection layer: the injector's seeded draw
machinery, profile resolution/validation, the driver's retry policy, the
per-component injection sites, and the sanitizer's retry-bounds rule."""

from __future__ import annotations

import json

import pytest

from repro.config import InjectConfig, default_config
from repro.core.driver import RetryPolicy
from repro.errors import ConfigError, TransferFault, TransferStuck
from repro.gpu.copy_engine import CopyEngine
from repro.gpu.fault import AccessType, Fault
from repro.gpu.fault_buffer import FaultBuffer
from repro.gpu.utlb import UTlb
from repro.inject import (
    BUILTIN_PROFILES,
    INJECTION_SITES,
    NULL_INJECTOR,
    FaultInjector,
    NullInjector,
    make_injector,
)
from repro.inject.profiles import load_profile_file, resolve_profile
from repro.sim.clock import SimClock
from repro.units import PAGE_SIZE


def make_config(**kw) -> InjectConfig:
    cfg = InjectConfig(enabled=True, **kw)
    return cfg


def make_injector_for(sites, seed=0, clock=None) -> FaultInjector:
    return FaultInjector(make_config(sites=sites), seed, clock or SimClock())


def fault(page=0):
    return Fault(page, AccessType.READ, 0, 0, 0, 0.0)


class ScriptedInjector:
    """Test double whose fire() outcomes are scripted per site."""

    enabled = True

    def __init__(self, fires=None, factor=2.0, waste_frac=0.5):
        self._fires = {site: list(seq) for site, seq in (fires or {}).items()}
        self._factor = factor
        self._waste = waste_frac

    def active(self, site):
        return site in self._fires

    def fire(self, site):
        seq = self._fires.get(site)
        return bool(seq.pop(0)) if seq else False

    def factor(self, site):
        return self._factor

    def waste_frac(self, site):
        return self._waste


# --------------------------------------------------------------- injector


class TestFaultInjector:
    def test_same_seed_same_draw_sequence(self):
        site = {"ce.brownout": {"rate": 0.3}}
        a = make_injector_for(site, seed=7)
        b = make_injector_for(site, seed=7)
        assert [a.fire("ce.brownout") for _ in range(200)] == [
            b.fire("ce.brownout") for _ in range(200)
        ]

    def test_different_seed_different_schedule(self):
        site = {"ce.brownout": {"rate": 0.3}}
        a = make_injector_for(site, seed=1)
        b = make_injector_for(site, seed=2)
        assert [a.fire("ce.brownout") for _ in range(200)] != [
            b.fire("ce.brownout") for _ in range(200)
        ]

    def test_unconfigured_site_never_draws(self):
        inj = make_injector_for({"ce.brownout": {"rate": 0.5}})
        assert not inj.fire("dma.map_fail")
        assert "dma.map_fail" not in inj.opportunities
        assert not inj.active("dma.map_fail")
        assert inj.active("ce.brownout")

    def test_zero_rate_site_never_draws_rng(self):
        inj = make_injector_for({"ce.brownout": {"rate": 0.0}})
        assert not inj.fire("ce.brownout")
        # rate-0 short-circuits before the RNG stream is even spawned
        assert inj._rngs == {}

    def test_site_streams_are_independent(self):
        """Enabling a second site must not shift the first site's schedule."""
        alone = make_injector_for({"ce.brownout": {"rate": 0.3}}, seed=5)
        paired = make_injector_for(
            {"ce.brownout": {"rate": 0.3}, "dma.map_fail": {"rate": 0.4}}, seed=5
        )
        seq_alone, seq_paired = [], []
        for i in range(300):
            seq_alone.append(alone.fire("ce.brownout"))
            # interleave draws on the other site to try to perturb the stream
            paired.fire("dma.map_fail")
            seq_paired.append(paired.fire("ce.brownout"))
        assert seq_alone == seq_paired

    def test_counters_and_events(self):
        clock = SimClock()
        inj = make_injector_for({"fault_buffer.overflow": {"rate": 0.5}}, clock=clock)
        fired = 0
        for i in range(100):
            clock.advance(1.0)
            if inj.fire("fault_buffer.overflow"):
                fired += 1
        assert inj.opportunities["fault_buffer.overflow"] == 100
        assert inj.fired.get("fault_buffer.overflow", 0) == fired
        assert 0 < fired < 100
        assert len(inj.events) == fired
        assert all(site == "fault_buffer.overflow" for _, site in inj.events)
        # event timestamps are the simulated clock, monotonically nondecreasing
        times = [t for t, _ in inj.events]
        assert times == sorted(times)

    def test_event_log_bounded_by_max_events(self):
        cfg = make_config(sites={"ce.brownout": {"rate": 1.0}}, max_events=10)
        inj = FaultInjector(cfg, 0, SimClock())
        for _ in range(50):
            inj.fire("ce.brownout")
        assert len(inj.events) == 10
        assert inj.fired["ce.brownout"] == 50

    def test_snapshot_restore_replays_identically(self):
        site = {"ce.brownout": {"rate": 0.4}}
        inj = make_injector_for(site, seed=3)
        for _ in range(50):
            inj.fire("ce.brownout")
        snap = inj.snapshot()
        tail = [inj.fire("ce.brownout") for _ in range(50)]
        events_after = list(inj.events)
        inj.restore_state(snap)
        assert inj.opportunities["ce.brownout"] == 50
        replay = [inj.fire("ce.brownout") for _ in range(50)]
        assert replay == tail
        assert list(inj.events) == events_after

    def test_snapshot_restore_works_on_fresh_injector(self):
        """A snapshot restores into a different injector instance (the
        checkpoint-into-fresh-engine path)."""
        site = {"dma.map_fail": {"rate": 0.4}}
        a = make_injector_for(site, seed=9)
        for _ in range(30):
            a.fire("dma.map_fail")
        snap = a.snapshot()
        tail = [a.fire("dma.map_fail") for _ in range(30)]
        b = make_injector_for(site, seed=9)
        b.restore_state(snap)
        assert [b.fire("dma.map_fail") for _ in range(30)] == tail

    def test_crash_is_one_shot_and_survives_restore(self):
        inj = make_injector_for({"engine.crash": {"at_batch": 5}})
        snap = inj.snapshot()
        assert not inj.crash_due(4)
        assert inj.crash_due(5)
        assert inj.crash_due(6)  # still pending until recorded
        inj.record_crash()
        assert inj.crashes_fired == 1
        assert not inj.crash_due(6)
        # crashes_fired is deliberately outside snapshot state: restoring a
        # pre-crash snapshot must not let the crash refire.
        inj.restore_state(snap)
        assert inj.crashes_fired == 1
        assert not inj.crash_due(10)

    def test_factor_and_waste_defaults(self):
        inj = make_injector_for({"ce.brownout": {"rate": 0.1, "factor": 3.0}})
        assert inj.factor("ce.brownout") == 3.0
        assert inj.factor("ce.stuck") == 1.0
        assert inj.waste_frac("ce.stuck") == 0.5

    def test_summary_shape(self):
        inj = make_injector_for({"ce.brownout": {"rate": 1.0}})
        inj.fire("ce.brownout")
        s = inj.summary()
        assert s["enabled"] is True
        assert s["fired_total"] == 1
        assert s["sites"]["ce.brownout"] == {
            "rate": 1.0,
            "opportunities": 1,
            "fired": 1,
        }
        assert s["crashes"] == 0 and s["recoveries"] == 0


class TestNullInjector:
    def test_factory_returns_shared_null_when_disabled(self):
        assert make_injector(InjectConfig(), 0, SimClock()) is NULL_INJECTOR
        assert isinstance(NULL_INJECTOR, NullInjector)
        assert not NULL_INJECTOR.enabled

    def test_factory_returns_real_when_enabled(self):
        inj = make_injector(make_config(), 0, SimClock())
        assert isinstance(inj, FaultInjector)
        assert inj.enabled

    def test_null_never_fires(self):
        for site in INJECTION_SITES:
            assert not NULL_INJECTOR.fire(site)
            assert not NULL_INJECTOR.active(site)
        assert not NULL_INJECTOR.crash_due(1)
        assert NULL_INJECTOR.factor("ce.brownout") == 1.0
        assert NULL_INJECTOR.snapshot() is None
        NULL_INJECTOR.restore_state(None)  # no-op

    def test_null_summary(self):
        s = NULL_INJECTOR.summary()
        assert s == {
            "enabled": False,
            "profile": None,
            "sites": {},
            "fired_total": 0,
            "crashes": 0,
            "recoveries": 0,
        }


# --------------------------------------------------------------- profiles


class TestProfiles:
    @pytest.mark.parametrize("name", sorted(BUILTIN_PROFILES))
    def test_builtin_profiles_resolve(self, name):
        sites = resolve_profile(make_config(profile=name))
        assert sites
        assert set(sites) <= set(INJECTION_SITES)

    def test_unknown_site_rejected(self):
        with pytest.raises(ConfigError, match="unknown injection site"):
            resolve_profile(make_config(sites={"gpu.meltdown": {"rate": 0.1}}))

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ConfigError, match="unknown parameters"):
            resolve_profile(make_config(sites={"ce.stuck": {"chance": 0.1}}))

    @pytest.mark.parametrize("site", ["fault_buffer.overflow", "utlb.stall"])
    def test_livelock_rate_one_rejected(self, site):
        with pytest.raises(ConfigError, match="livelock"):
            resolve_profile(make_config(sites={site: {"rate": 1.0}}))

    def test_rate_one_allowed_on_transient_sites(self):
        sites = resolve_profile(make_config(sites={"ce.brownout": {"rate": 1.0}}))
        assert sites["ce.brownout"].rate == 1.0

    @pytest.mark.parametrize(
        "params",
        [
            {"rate": -0.1},
            {"rate": 1.5},
            {"rate": 0.1, "factor": 0.5},
            {"rate": 0.1, "waste_frac": 2.0},
            {"at_batch": 0},
        ],
    )
    def test_bad_parameter_ranges_rejected(self, params):
        with pytest.raises(ConfigError):
            resolve_profile(make_config(sites={"ce.brownout": dict(params)}))

    def test_engine_crash_requires_at_batch(self):
        with pytest.raises(ConfigError, match="at_batch"):
            resolve_profile(make_config(sites={"engine.crash": {"rate": 0.5}}))

    def test_inline_sites_override_profile(self):
        cfg = make_config(
            profile="flaky-interconnect",
            sites={"ce.brownout": {"rate": 0.9, "factor": 7.0}},
        )
        sites = resolve_profile(cfg)
        assert sites["ce.brownout"].rate == 0.9
        assert sites["ce.brownout"].factor == 7.0
        # the rest of the profile survives the merge
        assert sites["ce.transfer_fault"].rate == 0.05

    def test_profile_file_loads(self, tmp_path):
        p = tmp_path / "chaos.json"
        p.write_text(json.dumps({"sites": {"dma.map_fail": {"rate": 0.2}}}))
        sites = resolve_profile(make_config(profile=str(p)))
        assert sites["dma.map_fail"].rate == 0.2

    def test_profile_file_tolerates_extra_keys(self, tmp_path):
        p = tmp_path / "chaos.json"
        p.write_text(
            json.dumps({"name": "x", "description": "y", "sites": {}})
        )
        assert load_profile_file(p) == {}

    def test_profile_file_missing(self):
        with pytest.raises(ConfigError, match="cannot read chaos profile"):
            resolve_profile(make_config(profile="/nonexistent/chaos.json"))

    def test_profile_file_bad_json(self, tmp_path):
        p = tmp_path / "chaos.json"
        p.write_text("{not json")
        with pytest.raises(ConfigError, match="not valid JSON"):
            load_profile_file(p)

    def test_profile_file_requires_sites(self, tmp_path):
        p = tmp_path / "chaos.json"
        p.write_text(json.dumps({"rates": {}}))
        with pytest.raises(ConfigError, match="'sites'"):
            load_profile_file(p)

    def test_inject_config_validate_rejects_bad_profile(self):
        cfg = default_config()
        cfg.inject.enabled = True
        cfg.inject.sites = {"nope.site": {"rate": 0.1}}
        with pytest.raises(ConfigError):
            cfg.validate()

    def test_inject_config_validate_rejects_bad_bookkeeping(self):
        with pytest.raises(ConfigError, match="checkpoint_every"):
            InjectConfig(checkpoint_every=-1).validate()
        with pytest.raises(ConfigError, match="max_events"):
            InjectConfig(max_events=0).validate()

    def test_disabled_config_skips_site_validation(self):
        # bad sites are tolerated while the layer is off (nothing reads them)
        InjectConfig(enabled=False, sites={"nope": {}}).validate()


# ----------------------------------------------------------- retry policy


class TestRetryPolicy:
    def make(self, **kw):
        cfg = default_config(**kw)
        return RetryPolicy(cfg.driver)

    def test_exponential_backoff_with_cap(self):
        policy = self.make()
        assert policy.backoff_usec(1) == pytest.approx(2.0)
        assert policy.backoff_usec(2) == pytest.approx(4.0)
        assert policy.backoff_usec(3) == pytest.approx(8.0)
        assert policy.backoff_usec(100) == pytest.approx(64.0)

    def test_backoff_monotone_nondecreasing(self):
        policy = self.make()
        values = [policy.backoff_usec(n) for n in range(1, 12)]
        assert values == sorted(values)

    def test_failure_mode_flag(self):
        assert not self.make().fail_fast
        assert self.make(failure_mode="fail-fast").fail_fast

    def test_config_validation(self):
        cfg = default_config()
        cfg.driver.retry_max_attempts = 0
        with pytest.raises(ConfigError):
            cfg.validate()
        cfg = default_config()
        cfg.driver.retry_backoff_max_usec = 1.0  # below base
        with pytest.raises(ConfigError):
            cfg.validate()
        cfg = default_config()
        cfg.driver.failure_mode = "explode"
        with pytest.raises(ConfigError):
            cfg.validate()


# --------------------------------------------------------- component sites


def conservation_holds(buf: FaultBuffer) -> bool:
    return (
        buf.total_pushed + buf.total_injected
        == buf.total_fetched
        + buf.total_flush_dropped
        + buf.total_injector_dropped
        + len(buf)
    )


class TestFaultBufferSites:
    def test_forced_overflow_counts_as_injector_drop(self):
        buf = FaultBuffer(capacity=8)
        buf.attach_injector(ScriptedInjector({"fault_buffer.overflow": [True]}))
        assert buf.push(fault(1)) is False
        assert buf.total_pushed == 1
        assert buf.total_injector_dropped == 1
        assert buf.total_overflow_dropped == 0
        assert len(buf) == 0
        assert conservation_holds(buf)

    def test_injected_duplicate_enters_buffer(self):
        buf = FaultBuffer(capacity=8)
        buf.attach_injector(
            ScriptedInjector(
                {"fault_buffer.overflow": [False], "fault_buffer.duplicate": [True]}
            )
        )
        assert buf.push(fault(3)) is True
        assert len(buf) == 2
        assert buf.total_pushed == 1
        assert buf.total_injected == 1
        assert conservation_holds(buf)
        entries = buf.fetch(10)
        assert [f.page for f in entries] == [3, 3]
        assert conservation_holds(buf)

    def test_duplicate_suppressed_when_buffer_full(self):
        buf = FaultBuffer(capacity=1)
        buf.attach_injector(
            ScriptedInjector(
                {"fault_buffer.overflow": [False], "fault_buffer.duplicate": [True]}
            )
        )
        assert buf.push(fault(1)) is True
        assert len(buf) == 1  # no room for the duplicate
        assert buf.total_injected == 0
        assert conservation_holds(buf)

    def test_conservation_through_flush(self):
        buf = FaultBuffer(capacity=8)
        buf.attach_injector(
            ScriptedInjector(
                {
                    "fault_buffer.overflow": [True, False, False],
                    "fault_buffer.duplicate": [True, False],
                }
            )
        )
        for page in range(3):
            buf.push(fault(page))
        buf.fetch(1)
        buf.flush()
        assert conservation_holds(buf)


class TestUtlbEarlyCancel:
    def make_utlb(self):
        return UTlb(utlb_id=0, limit=56)

    def test_early_cancel_keeps_total_issued(self):
        utlb = self.make_utlb()
        utlb.request(7)
        issued = utlb.total_issued
        utlb.early_cancel(7)
        assert utlb.total_issued == issued  # the buffer write already happened
        assert utlb.total_early_cancelled == 1
        assert utlb.outstanding == 0
        assert 7 not in utlb.pending_pages

    def test_early_cancel_unknown_page_is_noop(self):
        utlb = self.make_utlb()
        utlb.request(7)
        utlb.early_cancel(99)
        assert utlb.outstanding == 1
        assert utlb.total_early_cancelled == 0

    def test_cancelled_page_can_rerequest(self):
        utlb = self.make_utlb()
        utlb.request(7)
        utlb.early_cancel(7)
        assert utlb.request(7) is True  # fresh entry, no merge
        assert utlb.outstanding == 1


class TestCopyEngineSites:
    def make_ce(self, inj):
        ce = CopyEngine(bandwidth_bytes_per_usec=12_000.0, transfer_latency_usec=10.0)
        ce.attach_injector(inj)
        return ce

    def test_stuck_raises_before_bytes_move(self):
        ce = self.make_ce(ScriptedInjector({"ce.stuck": [True]}))
        with pytest.raises(TransferStuck):
            ce.host_to_device([4])
        assert ce.stuck_events == 1
        assert ce.bytes_h2d == 0
        assert ce.transfers_h2d == 0

    def test_transfer_fault_carries_wasted_time(self):
        inj = ScriptedInjector(
            {"ce.stuck": [False], "ce.transfer_fault": [True]}, waste_frac=0.25
        )
        ce = self.make_ce(inj)
        clean_cost = ce._burst_cost([4])
        with pytest.raises(TransferFault) as excinfo:
            ce.device_to_host([4])
        assert excinfo.value.wasted_usec == pytest.approx(clean_cost * 0.25)
        assert ce.failed_bursts == 1
        assert ce.bytes_d2h == 0

    def test_brownout_multiplies_cost_and_keeps_bytes(self):
        clean = CopyEngine(12_000.0, 10.0)
        base_cost = clean.host_to_device([4])
        inj = ScriptedInjector(
            {"ce.stuck": [False], "ce.transfer_fault": [False], "ce.brownout": [True]},
            factor=3.0,
        )
        ce = self.make_ce(inj)
        cost = ce.host_to_device([4])
        assert cost == pytest.approx(base_cost * 3.0)
        assert ce.bytes_h2d == 4 * PAGE_SIZE
        assert ce.brownout_bursts == 1

    def test_empty_burst_never_draws(self):
        class Exploding:
            enabled = True

            def fire(self, site):
                raise AssertionError("zero-cost burst must not draw")

        ce = self.make_ce(Exploding())
        assert ce.host_to_device([]) == 0.0


# --------------------------------------------------- sanitizer retry rule


class TestRetryBoundsRule:
    def test_phantom_counter_with_injection_off_violates(self, small_config):
        from repro.api import UvmSystem
        from repro.workloads import VecAddPageStride

        small_config.check.enabled = True
        small_config.check.mode = "report"
        system = UvmSystem(small_config)
        VecAddPageStride(tsize=4).run(system)
        assert system.sanitizer.total_violations == 0
        record = system.records[-1]
        record.retries_dma += 1  # phantom: injection is off
        system.sanitizer._check_retry_bounds(system.engine.driver, record)
        assert system.sanitizer.total_violations == 1
        assert system.sanitizer.summary()["by_rule"] == {"retry-bounds": 1}

    def test_phantom_backoff_time_violates(self, small_config):
        from repro.api import UvmSystem
        from repro.workloads import VecAddPageStride

        small_config.check.enabled = True
        small_config.check.mode = "report"
        system = UvmSystem(small_config)
        VecAddPageStride(tsize=4).run(system)
        record = system.records[-1]
        record.time_retry_backoff = 1.0
        system.sanitizer._check_retry_bounds(system.engine.driver, record)
        assert system.sanitizer.total_violations == 1

    def test_counter_over_policy_bound_violates(self, small_config):
        from repro.api import UvmSystem
        from repro.workloads import VecAddPageStride

        small_config.check.enabled = True
        small_config.check.mode = "report"
        small_config.inject.enabled = True
        small_config.inject.sites = {"dma.map_fail": {"rate": 0.05}}
        system = UvmSystem(small_config)
        VecAddPageStride(tsize=4).run(system)
        assert system.sanitizer.total_violations == 0
        record = system.records[-1]
        record.retries_populate = 10 * max(record.num_vablocks, 1)
        system.sanitizer._check_retry_bounds(system.engine.driver, record)
        assert system.sanitizer.total_violations == 1

    def test_validate_catches_conservation_break(self, small_config):
        from repro.api import UvmSystem
        from repro.validate import validate_system
        from repro.workloads import VecAddPageStride

        small_config.inject.enabled = True
        small_config.inject.profile = "overflow-storm"
        system = UvmSystem(small_config)
        VecAddPageStride(tsize=4).run(system)
        assert validate_system(system) == []
        # a phantom injected entry breaks the extended identity
        system.engine.device.fault_buffer.total_injected += 1
        violations = validate_system(system)
        assert any("conservation" in str(v) for v in violations)
