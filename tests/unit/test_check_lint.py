"""Determinism-lint tests: every hazard class, suppressions, allowlists,
the CLI front end, and the regression fixture for the historic driver bug."""

from __future__ import annotations

import json

import pytest

from repro.check.lint import (
    RULES,
    AllowEntry,
    findings_to_json,
    lint_paths,
    lint_source,
    load_allowlist,
    render_findings,
)
from repro.cli import main as cli_main

# One minimal trigger per hazard class; keys must stay in sync with RULES.
HAZARD_SNIPPETS = {
    "wall-clock": "import time\nt = time.time()\n",
    "unseeded-random": "import random\nx = random.random()\n",
    "set-iter": "for x in {1, 2, 3}:\n    print(x)\n",
    "dict-values": "d = {}\nfor v in d.values():\n    print(v)\n",
    "set-in-loop": (
        "def f(faults, work):\n"
        "    out = []\n"
        "    for f_ in faults:\n"
        "        if f_ in set(work):\n"
        "            out.append(f_)\n"
        "    return out\n"
    ),
    "id-sort": "out = sorted([object(), object()], key=id)\n",
    "mutable-default": "def f(acc=[]):\n    return acc\n",
}


def rules_of(findings):
    return {f.rule for f in findings}


class TestHazardClasses:
    @pytest.mark.parametrize("rule", sorted(RULES))
    def test_each_rule_fires_on_its_fixture(self, rule):
        findings = lint_source(HAZARD_SNIPPETS[rule], path="fixture.py")
        assert rule in rules_of(findings)

    def test_clean_source_has_no_findings(self):
        src = (
            "def f(items):\n"
            "    wanted = set(items)\n"
            "    return [i for i in sorted(wanted)]\n"
        )
        assert lint_source(src) == []

    def test_wall_clock_variants(self):
        src = (
            "import time\n"
            "from datetime import datetime\n"
            "a = time.perf_counter()\n"
            "b = time.monotonic_ns()\n"
            "c = datetime.now()\n"
        )
        findings = [f for f in lint_source(src) if f.rule == "wall-clock"]
        assert len(findings) == 3

    def test_datetime_now_with_tz_arg_not_flagged(self):
        src = "from datetime import datetime, timezone\nd = datetime.now(timezone.utc)\n"
        assert lint_source(src) == []

    def test_numpy_legacy_random_and_unseeded_default_rng(self):
        src = (
            "import numpy as np\n"
            "a = np.random.rand(3)\n"
            "g = np.random.default_rng()\n"
        )
        findings = [f for f in lint_source(src) if f.rule == "unseeded-random"]
        assert len(findings) == 2

    def test_seeded_default_rng_not_flagged(self):
        src = "import numpy as np\ng = np.random.default_rng(42)\n"
        assert lint_source(src) == []

    def test_set_iter_catches_comprehension_iterable(self):
        src = "for b in {x // 4 for x in range(10)}:\n    print(b)\n"
        assert "set-iter" in rules_of(lint_source(src))

    def test_sorted_set_not_flagged(self):
        src = "for b in sorted({x // 4 for x in range(10)}):\n    print(b)\n"
        assert lint_source(src) == []

    def test_dict_values_only_fires_on_for_statements(self):
        comp = "d = {}\nout = [v for v in d.values()]\n"
        assert lint_source(comp) == []

    def test_set_in_loop_fires_inside_comprehension(self):
        src = (
            "def f(faults, work):\n"
            "    return [f_ for f_ in faults if f_ in set(work)]\n"
        )
        assert "set-in-loop" in rules_of(lint_source(src))

    def test_hoisted_set_not_flagged(self):
        src = (
            "def f(faults, work):\n"
            "    wanted = set(work)\n"
            "    return [f_ for f_ in faults if f_ in wanted]\n"
        )
        assert lint_source(src) == []

    def test_set_built_outside_loop_not_flagged(self):
        src = "wanted = set(range(4))\nok = 3 in set(range(4))\n"
        assert lint_source(src) == []

    def test_id_sort_lambda(self):
        src = "xs = [object()]\nxs.sort(key=lambda o: id(o))\n"
        assert "id-sort" in rules_of(lint_source(src))

    def test_mutable_default_kwonly_and_call_forms(self):
        src = "def f(a=dict(), *, b=[]):\n    return a, b\n"
        findings = [f for f in lint_source(src) if f.rule == "mutable-default"]
        assert len(findings) == 2

    def test_none_default_not_flagged(self):
        src = "def f(a=None, b=0, c=()):\n    return a, b, c\n"
        assert lint_source(src) == []


class TestDriverRegression:
    """The historic ``driver.py`` bug: the deferred-fault filter rebuilt
    ``set(work.pages)`` for every fault in the batch (fixed in this change
    by hoisting).  The lint must catch the pre-fix form and pass the fix."""

    PRE_FIX = (
        "def defer(outcome, faults, work):\n"
        "    for w in [work]:\n"
        "        outcome.extend(f for f in faults if f.page in set(w.pages))\n"
    )
    POST_FIX = (
        "def defer(outcome, faults, work):\n"
        "    for w in [work]:\n"
        "        block_pages = set(w.pages)\n"
        "        outcome.extend(f for f in faults if f.page in block_pages)\n"
    )

    def test_lint_catches_pre_fix_form(self):
        assert "set-in-loop" in rules_of(lint_source(self.PRE_FIX))

    def test_lint_passes_post_fix_form(self):
        assert lint_source(self.POST_FIX) == []


class TestSuppressions:
    def test_bare_suppression_silences_all_rules(self):
        src = "import time\nt = time.time()  # repro: lint-ok\n"
        assert lint_source(src) == []

    def test_rule_scoped_suppression(self):
        src = "import time\nt = time.time()  # repro: lint-ok[wall-clock]\n"
        assert lint_source(src) == []

    def test_wrong_rule_suppression_does_not_silence(self):
        src = "import time\nt = time.time()  # repro: lint-ok[id-sort]\n"
        assert "wall-clock" in rules_of(lint_source(src))

    def test_multi_rule_suppression(self):
        src = (
            "import time\n"
            "t = time.time()  # repro: lint-ok[id-sort, wall-clock]\n"
        )
        assert lint_source(src) == []


class TestAllowlist:
    def test_load_and_match(self, tmp_path):
        allow = tmp_path / "allow.txt"
        allow.write_text(
            "# comment line\n"
            "\n"
            "pkg/clocky.py: wall-clock  # displays real elapsed time\n"
        )
        entries = load_allowlist(allow)
        assert entries == [
            AllowEntry("pkg/clocky.py", "wall-clock", "displays real elapsed time")
        ]

        target = tmp_path / "pkg" / "clocky.py"
        target.parent.mkdir()
        target.write_text("import time\nt = time.time()\n")
        assert lint_paths([target], allowlist=entries) == []
        assert len(lint_paths([target])) == 1

    def test_allowlist_is_rule_scoped(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("import time\nt = time.time()\nxs = sorted([], key=id)\n")
        entries = [AllowEntry("mod.py", "wall-clock", "")]
        remaining = lint_paths([target], allowlist=entries)
        assert rules_of(remaining) == {"id-sort"}

    def test_star_rule_matches_everything(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("import time\nt = time.time()\nxs = sorted([], key=id)\n")
        assert lint_paths([target], allowlist=[AllowEntry("mod.py", "*", "")]) == []

    def test_unknown_rule_rejected(self, tmp_path):
        allow = tmp_path / "allow.txt"
        allow.write_text("mod.py: no-such-rule\n")
        with pytest.raises(ValueError, match="unknown rule"):
            load_allowlist(allow)

    def test_malformed_line_rejected(self, tmp_path):
        allow = tmp_path / "allow.txt"
        allow.write_text("just a suffix with no rule\n")
        with pytest.raises(ValueError, match="missing ':'"):
            load_allowlist(allow)


class TestOutputFormats:
    def test_render_and_json(self):
        findings = lint_source("import time\nt = time.time()\n", path="m.py")
        text = render_findings(findings)
        assert "m.py:2" in text and "wall-clock" in text and "1 finding(s)" in text
        payload = json.loads(findings_to_json(findings))
        assert payload["count"] == 1
        assert payload["findings"][0]["rule"] == "wall-clock"
        assert set(payload["rules"]) == set(RULES)

    def test_render_clean(self):
        assert "clean" in render_findings([])


class TestCli:
    def _fixture_file(self, tmp_path):
        target = tmp_path / "hazards.py"
        target.write_text("".join(HAZARD_SNIPPETS.values()))
        return target

    def test_lint_cli_nonzero_on_findings(self, tmp_path, capsys):
        target = self._fixture_file(tmp_path)
        assert cli_main(["lint", str(target)]) == 1
        out = capsys.readouterr().out
        for rule in RULES:
            assert rule in out

    def test_lint_cli_json_format(self, tmp_path, capsys):
        target = self._fixture_file(tmp_path)
        assert cli_main(["lint", str(target), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert {f["rule"] for f in payload["findings"]} == set(RULES)

    def test_lint_cli_zero_on_clean_file(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("x = sorted([3, 1, 2])\n")
        assert cli_main(["lint", str(target)]) == 0
        assert "no determinism hazards" in capsys.readouterr().out

    def test_lint_cli_default_target_is_clean(self, capsys):
        """The shipped simulator must lint clean under its own allowlist —
        the acceptance gate CI enforces."""
        assert cli_main(["lint"]) == 0

    def test_lint_cli_no_allowlist_flag(self, capsys):
        """Without the allowlist the intentional wall-clock reads (obs
        spans, CLI elapsed display) surface — proving the allowlist is
        load-bearing rather than the rules being too lax to notice."""
        rc = cli_main(["lint", "--no-allowlist"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "wall-clock" in out
