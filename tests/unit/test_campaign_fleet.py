"""Unit tests for the fleet's pure pieces: retry policy, chaos parsing,
failure taxonomy, row shaping, and mode routing.

The process-level behavior (real kills, escalation, resume) lives in
``tests/integration/test_campaign_fleet.py``; everything here is
deterministic single-process logic.
"""

import pytest

from repro.campaign import (
    CampaignCell,
    FleetChaos,
    FleetConfig,
    FleetRetryPolicy,
    classify_error_type,
    make_row,
)
from repro.campaign.runner import _uses_fleet
from repro.campaign.worker import FAILURE_CLASSES


class TestRetryPolicy:
    def test_backoff_is_bounded_exponential(self):
        policy = FleetRetryPolicy(
            backoff_base_sec=0.25, backoff_factor=2.0, backoff_max_sec=1.0
        )
        assert [policy.backoff_sec(n) for n in (1, 2, 3, 4)] == [
            0.25, 0.5, 1.0, 1.0,
        ]

    def test_retries_only_transient_classes_within_budget(self):
        policy = FleetRetryPolicy(max_attempts=3)
        for cls in ("crash", "hang", "oom"):
            assert policy.should_retry(cls, attempts=1)
            assert policy.should_retry(cls, attempts=2)
            assert not policy.should_retry(cls, attempts=3)
        for cls in ("injected", "interrupt", "error"):
            assert not policy.should_retry(cls, attempts=1)

    def test_budget_of_one_never_retries(self):
        policy = FleetRetryPolicy(max_attempts=1)
        assert not policy.should_retry("crash", attempts=1)


class TestChaosParse:
    def test_parse_index_batch_specs(self):
        chaos = FleetChaos.parse(["0:10", "3:2"], ["1:5"])
        assert chaos.kill_at == {0: 10, 3: 2}
        assert chaos.hang_at == {1: 5}
        assert not chaos.empty

    def test_empty_specs_are_empty(self):
        assert FleetChaos.parse().empty

    @pytest.mark.parametrize("bad", ["10", "a:b", "1:"])
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(ValueError):
            FleetChaos.parse([bad])


class TestFailureTaxonomy:
    @pytest.mark.parametrize(
        ("error_type", "expected"),
        [
            ("WorkerCrash", "crash"),
            ("WorkerHang", "hang"),
            ("KeyboardInterrupt", "interrupt"),
            ("InjectedCrash", "injected"),
            ("TransferFault", "injected"),
            ("DmaMapFault", "injected"),
            # PopulateEnomem is both injected and OOM-like; injected wins
            # because it replays deterministically — retrying is wasted.
            ("PopulateEnomem", "injected"),
            ("OutOfDeviceMemory", "oom"),
            ("MemoryError", "oom"),
            ("AllocationError", "oom"),
            ("ValueError", "error"),
            ("SimulationError", "error"),
        ],
    )
    def test_classification(self, error_type, expected):
        assert classify_error_type(error_type) == expected

    def test_classes_are_the_documented_vocabulary(self):
        assert set(FAILURE_CLASSES) == {
            "crash", "hang", "oom", "injected", "interrupt", "error",
        }
        for error_type in ("WorkerCrash", "InjectedCrash", "ValueError"):
            assert classify_error_type(error_type) in FAILURE_CLASSES


class TestMakeRow:
    CELL = CampaignCell(
        index=3, workload="vecadd", config_label="base", seed=7, overrides={}
    )

    def test_ok_row(self):
        row = make_row(self.CELL, {"batches": 2, "clock_usec": 10})
        assert row == {
            "index": 3,
            "workload": "vecadd",
            "config": "base",
            "seed": 7,
            "status": "ok",
            "result": {"batches": 2, "clock_usec": 10},
        }

    def test_failed_row_carries_failure_class(self):
        row = make_row(
            self.CELL,
            {
                "failed": True,
                "error_type": "InjectedCrash",
                "error": "boom",
                "bundle": "/tmp/bundle",
            },
        )
        assert row["status"] == "failed"
        assert row["error"] == {
            "class": "injected",
            "message": "boom",
            "type": "InjectedCrash",
        }
        assert row["bundle"] == "/tmp/bundle"


class TestModeRouting:
    def test_serial_stays_inline(self):
        assert not _uses_fleet(1, None)
        assert not _uses_fleet(1, FleetConfig())

    def test_parallel_uses_fleet(self):
        assert _uses_fleet(2, None)

    def test_armed_chaos_forces_fleet_even_serial(self):
        config = FleetConfig(chaos=FleetChaos(kill_at={0: 5}))
        assert _uses_fleet(1, config)
        config = FleetConfig(chaos=FleetChaos())
        assert not _uses_fleet(1, config)
