"""Unit tests for analysis statistics, fits, time series, and report text."""

import numpy as np
import pytest

from repro.analysis.fits import (
    fit_time_vs_bytes,
    linear_fit,
    partial_fit_blocks_given_bytes,
)
from repro.analysis.report import (
    ascii_hist,
    ascii_series,
    ascii_table,
    format_usec_stats,
)
from repro.analysis.stats import (
    SummaryStats,
    batch_size_summary,
    duplicate_summary,
    per_sm_stats,
    vablock_stats,
)
from repro.analysis.timeseries import (
    batch_series,
    eviction_groups,
    moving_mean,
    phase_segments,
    split_levels,
)
from repro.core.batch_record import BatchRecord


def record(batch_id=0, **kwargs):
    r = BatchRecord(batch_id=batch_id)
    for k, v in kwargs.items():
        setattr(r, k, v)
    return r


class TestSummaryStats:
    def test_of_values(self):
        s = SummaryStats.of([1.0, 2.0, 3.0])
        assert s.mean == 2.0
        assert s.min == 1.0 and s.max == 3.0
        assert s.count == 3

    def test_empty(self):
        s = SummaryStats.of([])
        assert s.count == 0 and s.mean == 0.0

    def test_single_value_std_zero(self):
        assert SummaryStats.of([5.0]).std == 0.0

    def test_row_format(self):
        assert SummaryStats.of([1.0, 2.0]).row() == ["1.50", "0.71", "1.00", "2.00"]


class TestPerSmStats:
    def test_ceiling(self):
        recs = [record(num_faults_raw=256) for _ in range(4)]
        s = per_sm_stats(recs, num_sms=80)
        assert s.mean == pytest.approx(3.2)
        assert s.max == pytest.approx(3.2)

    def test_mixed(self):
        recs = [record(num_faults_raw=80), record(num_faults_raw=160)]
        s = per_sm_stats(recs, num_sms=80)
        assert s.mean == pytest.approx(1.5)


class TestVablockStats:
    def test_pooled_counts(self):
        recs = [
            record(num_vablocks=2, vablock_fault_counts=np.array([3, 7])),
            record(num_vablocks=1, vablock_fault_counts=np.array([10])),
        ]
        s = vablock_stats(recs)
        assert s.vablocks_per_batch == pytest.approx(1.5)
        assert s.faults_per_vablock.min == 3
        assert s.faults_per_vablock.max == 10

    def test_skips_empty_batches(self):
        recs = [record(num_vablocks=0), record(num_vablocks=4, vablock_fault_counts=np.array([1, 1, 1, 1]))]
        assert vablock_stats(recs).vablocks_per_batch == 4.0


class TestDuplicateSummary:
    def test_fraction(self):
        recs = [record(num_faults_raw=10, num_faults_unique=6, dup_same_utlb=3, dup_cross_utlb=1)]
        d = duplicate_summary(recs)
        assert d.dup_total == 4
        assert d.dup_fraction == pytest.approx(0.4)

    def test_empty(self):
        assert duplicate_summary([]).dup_fraction == 0.0


class TestBatchSizeSummary:
    def test_summary(self):
        recs = [
            record(num_faults_raw=100, num_faults_unique=60, t_start=0, t_end=50),
            record(num_faults_raw=200, num_faults_unique=120, t_start=50, t_end=150),
        ]
        s = batch_size_summary(recs)
        assert s.num_batches == 2
        assert s.raw_sizes.mean == 150
        assert s.mean_unique_per_batch == 90
        assert s.total_batch_time_usec == 150


class TestFits:
    def test_perfect_line(self):
        fit = linear_fit([0, 1, 2, 3], [1, 3, 5, 7])
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.r2 == pytest.approx(1.0)
        assert fit.predict(10) == pytest.approx(21.0)

    def test_degenerate_x(self):
        fit = linear_fit([5, 5, 5], [1, 2, 3])
        assert fit.slope == 0.0
        assert fit.intercept == pytest.approx(2.0)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            linear_fit([1, 2], [1])

    def test_fit_time_vs_bytes_filters_zero(self):
        recs = [
            record(bytes_h2d=0, t_start=0, t_end=99),
            record(bytes_h2d=4096, t_start=0, t_end=10),
            record(bytes_h2d=8192, t_start=0, t_end=15),
        ]
        fit, x, y = fit_time_vs_bytes(recs)
        assert fit.n == 2
        assert fit.slope > 0

    def test_partial_fit_isolates_blocks(self):
        # duration = 1e-3*bytes + 10*blocks: residual fit must find ~10/block.
        recs = []
        rng = np.random.default_rng(0)
        for i in range(50):
            nbytes = int(rng.integers(1, 100)) * 4096
            blocks = int(rng.integers(1, 10))
            recs.append(
                record(
                    bytes_h2d=nbytes,
                    num_vablocks=blocks,
                    t_start=0.0,
                    t_end=1e-3 * nbytes + 10.0 * blocks,
                )
            )
        fit = partial_fit_blocks_given_bytes(recs)
        assert fit.slope == pytest.approx(10.0, rel=0.25)

    def test_partial_fit_needs_samples(self):
        assert partial_fit_blocks_given_bytes([]) is None


class TestTimeseries:
    def test_batch_series(self):
        recs = [record(num_faults_raw=i) for i in (1, 2, 3)]
        assert batch_series(recs, "num_faults_raw").tolist() == [1, 2, 3]

    def test_batch_series_property(self):
        recs = [record(t_start=0, t_end=5)]
        assert batch_series(recs, "duration").tolist() == [5.0]

    def test_moving_mean(self):
        assert moving_mean([1, 2, 3, 4], 2).tolist() == [1.0, 1.5, 2.5, 3.5]

    def test_moving_mean_window_one(self):
        assert moving_mean([1, 2], 1).tolist() == [1, 2]

    def test_eviction_groups(self):
        recs = [record(evictions=0), record(evictions=2), record(evictions=0)]
        groups = eviction_groups(recs)
        assert len(groups[0]) == 2
        assert len(groups[2]) == 1

    def test_split_levels_two_clusters(self):
        levels = split_levels([1.0, 1.1, 5.0, 5.2])
        assert len(levels) == 2
        assert levels[0][1] == 2 and levels[1][1] == 2

    def test_split_levels_single_cluster(self):
        assert len(split_levels([1.0, 1.2, 1.4])) == 1

    def test_split_levels_empty(self):
        assert split_levels([]) == []

    def test_phase_segments(self):
        assert phase_segments([0, 5, 6, 0, 0, 7, 8, 9], threshold=1) == [(1, 3), (5, 8)]

    def test_phase_segments_min_len(self):
        assert phase_segments([0, 5, 0], threshold=1, min_len=2) == []

    def test_phase_segments_tail(self):
        assert phase_segments([0, 5, 6], threshold=1) == [(1, 3)]


class TestReport:
    def test_ascii_table_alignment(self):
        out = ascii_table(["name", "v"], [["a", 1], ["bbbb", 22]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_ascii_table_title(self):
        out = ascii_table(["x"], [[1]], title="T")
        assert out.startswith("T\n")

    def test_ascii_hist(self):
        out = ascii_hist([1, 1, 1, 5], bins=2, label="h")
        assert "h" in out
        assert "#" in out

    def test_ascii_hist_empty(self):
        assert "(no data)" in ascii_hist([], label="x")

    def test_ascii_series(self):
        out = ascii_series([1, 2, 3, 4], width=4)
        assert "|" in out

    def test_ascii_series_empty(self):
        assert "(no data)" in ascii_series([], label="s")

    def test_format_usec_stats(self):
        out = format_usec_stats([1.0, 2.0, 1000.0])
        assert "mean=" in out and "max=" in out

    def test_format_usec_stats_empty(self):
        assert format_usec_stats([]) == "(no data)"
