"""Unit tests for the BFS/SpMV workloads and their numerics."""

import numpy as np
import pytest

from repro.apps.graph import bfs_distances, csr_spmv
from repro.gpu.warp import KernelLaunch
from repro.workloads.graph import (
    BfsWorkload,
    SpmvWorkload,
    random_csr_graph,
    random_csr_matrix,
)


class TestCsrBuilders:
    def test_graph_shape(self):
        row_ptr, col_idx = random_csr_graph(100, 4, seed=0)
        assert row_ptr.size == 101
        assert row_ptr[0] == 0
        assert col_idx.size == row_ptr[-1]
        assert (np.diff(row_ptr) >= 1).all()
        assert col_idx.min() >= 0 and col_idx.max() < 100

    def test_graph_deterministic(self):
        a = random_csr_graph(50, 4, seed=1)
        b = random_csr_graph(50, 4, seed=1)
        assert (a[0] == b[0]).all() and (a[1] == b[1]).all()

    def test_matrix_shape(self):
        row_ptr, col_idx, values = random_csr_matrix(64, 4, seed=0)
        assert row_ptr.size == 65
        assert col_idx.size == values.size == 64 * 4


class TestBfsNumerics:
    def test_chain(self):
        row_ptr = np.array([0, 1, 2, 2])
        col_idx = np.array([1, 2])
        assert bfs_distances(row_ptr, col_idx, 0).tolist() == [0, 1, 2]

    def test_unreachable(self):
        row_ptr = np.array([0, 0, 0])
        col_idx = np.array([], dtype=np.int64)
        assert bfs_distances(row_ptr, col_idx, 0).tolist() == [0, -1]

    def test_matches_networkx(self):
        import networkx as nx

        row_ptr, col_idx = random_csr_graph(300, 5, seed=3)
        dist = bfs_distances(row_ptr, col_idx, 0)
        graph = nx.DiGraph()
        graph.add_nodes_from(range(300))
        for v in range(300):
            for u in col_idx[row_ptr[v] : row_ptr[v + 1]]:
                graph.add_edge(v, int(u))
        ref = nx.single_source_shortest_path_length(graph, 0)
        for node in range(300):
            assert dist[node] == ref.get(node, -1)


class TestSpmvNumerics:
    def test_identity(self):
        row_ptr = np.array([0, 1, 2])
        col_idx = np.array([0, 1])
        values = np.array([1.0, 1.0])
        x = np.array([3.0, 4.0])
        assert csr_spmv(row_ptr, col_idx, values, x).tolist() == [3.0, 4.0]

    def test_empty_row(self):
        row_ptr = np.array([0, 0, 1])
        col_idx = np.array([0])
        values = np.array([2.0])
        x = np.array([5.0, 7.0])
        assert csr_spmv(row_ptr, col_idx, values, x).tolist() == [0.0, 10.0]

    def test_matches_scipy(self):
        import scipy.sparse as sp

        row_ptr, col_idx, values = random_csr_matrix(256, 8, seed=5)
        x = np.random.default_rng(0).standard_normal(256)
        mat = sp.csr_matrix((values, col_idx, row_ptr), shape=(256, 256))
        assert np.allclose(csr_spmv(row_ptr, col_idx, values, x), mat @ x)


class TestWorkloadStructure:
    def test_bfs_levels_nonempty(self):
        wl = BfsWorkload(num_nodes=512, avg_degree=4, max_levels=4)
        levels = wl._bfs_levels()
        assert levels and levels[0].tolist() == [0]
        # Frontiers grow initially on a random graph.
        assert levels[1].size >= 1

    def test_bfs_builds_kernel(self, small_system):
        wl = BfsWorkload(num_nodes=512, avg_degree=4, num_programs=4)
        kernels = [s for s in wl.steps(small_system) if isinstance(s, KernelLaunch)]
        assert len(kernels) == 1
        assert kernels[0].programs

    def test_bfs_runs(self, system_factory):
        system = system_factory(prefetch_enabled=False)
        res = BfsWorkload(num_nodes=512, avg_degree=4, num_programs=4).run(system)
        assert res.total_faults > 0

    def test_spmv_builds_programs(self, small_system):
        wl = SpmvWorkload(n=1024, nnz_per_row=4, num_programs=4)
        kernels = [s for s in wl.steps(small_system) if isinstance(s, KernelLaunch)]
        assert len(kernels[0].programs) == 4

    def test_spmv_reads_and_writes_right_arrays(self, small_system):
        wl = SpmvWorkload(n=1024, nnz_per_row=4, num_programs=4)
        [kernel] = [s for s in wl.steps(small_system) if isinstance(s, KernelLaunch)]
        col, val, x, y = small_system.allocations
        y_pages = set(y.pages())
        for prog in kernel.programs:
            for ph in prog.phases:
                assert set(ph.writes) <= y_pages

    def test_spmv_runs_oversubscribed(self, system_factory):
        system = system_factory(prefetch_enabled=False, gpu_mem_mb=4)
        res = SpmvWorkload(n=1 << 14, nnz_per_row=8, num_programs=4).run(system)
        assert res.num_batches > 0

    def test_spmv_gather_is_irregular(self, system_factory):
        """The x-gather spreads reads over many VABlocks per batch."""
        from repro.analysis.stats import vablock_stats

        system = system_factory(prefetch_enabled=False, gpu_mem_mb=64)
        res = SpmvWorkload(n=1 << 15, nnz_per_row=8, num_programs=16).run(system)
        stats = vablock_stats(res.records)
        assert stats.vablocks_per_batch > 1.5
