"""Unit tests for the tree/density prefetcher (§5.2)."""

import pytest

from repro.core.prefetch import DensityPrefetcher
from repro.core.vablock import VABlockState
from repro.units import PAGES_PER_REGION, PAGES_PER_VABLOCK


def make_block(block_id=0, valid_pages=None, resident=None):
    first = block_id * PAGES_PER_VABLOCK
    if valid_pages is None:
        valid_pages = set(range(first, first + PAGES_PER_VABLOCK))
    state = VABlockState(block_id=block_id, valid_pages=valid_pages)
    if resident:
        state.resident_pages = set(resident)
    return state


class TestRegionUpgradeBehaviour:
    def test_single_fault_pulls_its_region(self):
        pf = DensityPrefetcher(threshold=0.5)
        block = make_block()
        expanded = pf.expand(block, [0])
        # The 64 KiB upgrade covers the rest of the first region.
        assert expanded >= set(range(1, PAGES_PER_REGION))

    def test_expansion_excludes_faulted_pages(self):
        pf = DensityPrefetcher()
        block = make_block()
        expanded = pf.expand(block, [3])
        assert 3 not in expanded

    def test_expansion_excludes_resident_pages(self):
        pf = DensityPrefetcher()
        block = make_block(resident=[1, 2])
        expanded = pf.expand(block, [0])
        assert 1 not in expanded and 2 not in expanded

    def test_no_faults_no_expansion(self):
        pf = DensityPrefetcher()
        assert pf.expand(make_block(), []) == set()


class TestDensityTree:
    def test_sparse_faults_stay_local(self):
        """One fault in one region must not pull the whole block."""
        pf = DensityPrefetcher(threshold=0.51)
        block = make_block()
        expanded = pf.expand(block, [0])
        # Only the first region (minus the faulted page).
        assert len(expanded) == PAGES_PER_REGION - 1

    def test_half_density_does_not_cascade(self):
        """Exactly-half evidence must NOT promote the parent (strict >):
        otherwise a single upgraded region would cascade to the full block."""
        pf = DensityPrefetcher(threshold=0.5)
        block = make_block()
        expanded = pf.expand(block, list(range(PAGES_PER_REGION)))
        assert not (set(range(PAGES_PER_REGION, 2 * PAGES_PER_REGION)) & expanded)

    def test_beyond_half_promotes_parent(self):
        """Evidence strictly above the threshold promotes the enclosing node."""
        pf = DensityPrefetcher(threshold=0.5)
        block = make_block()
        # Region 0 fully faulted + one fault in region 1: the pair node has
        # (16 + 16-upgraded) / 32 = 100 % evidence → promoted, and the
        # 4-region node has 32/64 = 50 % → not promoted.
        faults = list(range(PAGES_PER_REGION)) + [PAGES_PER_REGION]
        expanded = pf.expand(block, faults)
        assert set(range(PAGES_PER_REGION + 1, 2 * PAGES_PER_REGION)) <= expanded
        assert not (set(range(2 * PAGES_PER_REGION, 4 * PAGES_PER_REGION)) & expanded)

    def test_full_density_pulls_whole_block(self):
        pf = DensityPrefetcher(threshold=0.5)
        block = make_block()
        # Fault one page in 20 of 32 regions: upgrades give 62.5 % evidence
        # at the root → the whole block is flagged.
        faults = [r * PAGES_PER_REGION for r in range(20)]
        expanded = pf.expand(block, faults)
        assert len(expanded) + len(faults) == PAGES_PER_VABLOCK

    def test_threshold_one_disables_tree_growth(self):
        pf = DensityPrefetcher(threshold=1.0)
        block = make_block()
        expanded = pf.expand(block, [0])
        # Region upgrade fills region 0 → density 1.0 there promotes it,
        # but the half-empty parent never qualifies.
        assert len(expanded) == PAGES_PER_REGION - 1

    def test_resident_pages_count_toward_density(self):
        pf = DensityPrefetcher(threshold=0.4)
        # Regions 0-1 resident; faulting region 2 upgrades it: the 4-region
        # node has 48/64 = 75 % evidence > 0.4 → regions 0-3 all flagged.
        resident = set(range(2 * PAGES_PER_REGION))
        block = make_block(resident=resident)
        expanded = pf.expand(block, [2 * PAGES_PER_REGION])
        assert set(range(3 * PAGES_PER_REGION, 4 * PAGES_PER_REGION)) <= expanded


class TestPartialBlocks:
    def test_never_prefetches_invalid_pages(self):
        """Scope limited to the allocation's pages in a tail block."""
        pf = DensityPrefetcher(threshold=0.5)
        valid = set(range(40))  # tail block with 40 valid pages
        block = make_block(valid_pages=valid)
        expanded = pf.expand(block, [0])
        assert expanded <= valid

    def test_partial_block_density_uses_valid_count(self):
        pf = DensityPrefetcher(threshold=0.5)
        valid = set(range(PAGES_PER_REGION))  # only one region valid
        block = make_block(valid_pages=valid)
        expanded = pf.expand(block, [0])
        assert expanded == valid - {0}


class TestScope:
    def test_default_scope_no_neighbours(self):
        assert DensityPrefetcher().neighbour_blocks(5) == []

    def test_enlarged_scope(self):
        pf = DensityPrefetcher(scope_blocks=3)
        assert pf.neighbour_blocks(5) == [6, 7]

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            DensityPrefetcher(threshold=0.0)
        with pytest.raises(ValueError):
            DensityPrefetcher(threshold=1.5)
