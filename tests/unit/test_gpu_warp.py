"""Unit tests for the warp execution model (scoreboard semantics)."""

import pytest

from repro.gpu.fault import AccessType
from repro.gpu.warp import (
    AdvanceResult,
    KernelLaunch,
    Phase,
    WarpProgram,
    WarpState,
)


def make_warp(phases, uid=1, sm=0):
    return WarpState(WarpProgram(tuple(phases)), uid=uid, sm_id=sm)


class TestPhase:
    def test_of_builds_tuples(self):
        p = Phase.of([1, 2], [3], [4], compute_usec=1.0)
        assert p.reads == (1, 2)
        assert p.writes == (3,)
        assert p.prefetches == (4,)

    def test_pages_excludes_prefetches(self):
        p = Phase.of([1], [2], [99])
        assert p.pages == {1, 2}

    def test_duplicate_reads_preserved(self):
        p = Phase.of([5, 5, 6])
        assert p.reads == (5, 5, 6)

    def test_frozen(self):
        p = Phase.of([1])
        with pytest.raises(AttributeError):
            p.reads = (2,)


class TestWarpProgram:
    def test_total_accesses(self):
        prog = WarpProgram([Phase.of([1, 2], [3]), Phase.of([4])])
        assert prog.total_accesses == 4

    def test_touched_pages(self):
        prog = WarpProgram([Phase.of([1, 2], [3]), Phase.of([2], [5])])
        assert prog.touched_pages == {1, 2, 3, 5}


class TestKernelLaunch:
    def test_aggregates(self):
        k = KernelLaunch("k", [WarpProgram([Phase.of([1], [2])])])
        assert k.total_accesses == 2
        assert k.touched_pages == {1, 2}


class TestScoreboard:
    """Writes must wait for the phase's reads (paper §3.2, Listing 2)."""

    def test_blocks_on_reads_first(self):
        warp = make_warp([Phase.of([1, 2], [3])])
        result = warp.advance(resident=set())
        assert result.new_waits == {1, 2}
        assert warp.blocked
        # Writes are NOT demanded yet.
        assert all(a == AccessType.READ for _, a in warp._unissued)

    def test_writes_demand_after_reads_resident(self):
        warp = make_warp([Phase.of([1], [2])])
        warp.advance(resident=set())
        assert warp.on_pages_resident([1])
        result = warp.advance(resident={1})
        assert result.new_waits == {2}
        assert all(a == AccessType.WRITE for _, a in warp._unissued)

    def test_finishes_when_all_resident(self):
        warp = make_warp([Phase.of([1], [2])])
        result = warp.advance(resident={1, 2})
        assert result.finished
        assert warp.finished

    def test_compute_accrues_per_completed_phase(self):
        warp = make_warp(
            [Phase.of([1], compute_usec=3.0), Phase.of([2], compute_usec=4.0)]
        )
        result = warp.advance(resident={1, 2})
        assert result.compute_usec == pytest.approx(7.0)

    def test_multi_phase_blocks_at_first_missing(self):
        warp = make_warp([Phase.of([1]), Phase.of([2])])
        result = warp.advance(resident={1})
        assert result.new_waits == {2}


class TestPrefetchSemantics:
    def test_prefetches_emitted_without_blocking(self):
        warp = make_warp([Phase.of(prefetches=[1, 2, 3])])
        result = warp.advance(resident=set())
        assert result.prefetches == [1, 2, 3]
        assert result.finished  # prefetch-only program completes immediately

    def test_prefetch_emitted_once_per_phase(self):
        warp = make_warp([Phase.of([9], prefetches=[1])])
        r1 = warp.advance(resident=set())
        assert r1.prefetches == [1]
        warp.on_pages_resident([9])
        r2 = warp.advance(resident={9})
        assert r2.prefetches == []

    def test_prefetch_requeue_is_dropped(self):
        warp = make_warp([Phase.of([1])])
        warp.advance(resident=set())
        warp.requeue(1, AccessType.PREFETCH)
        # Prefetch hints are never re-demanded.
        assert len(warp._unissued) - warp._unissued_head == 1  # original read only


class TestIssuance:
    def test_take_issuable_respects_limit(self):
        warp = make_warp([Phase.of([1, 2, 3, 4])])
        warp.advance(resident=set())
        occs = warp.take_issuable(2)
        assert len(occs) == 2

    def test_take_issuable_skips_satisfied(self):
        warp = make_warp([Phase.of([1, 2])])
        warp.advance(resident=set())
        warp.on_pages_resident([1])  # page 1 resolved before issue
        occs = warp.take_issuable(10)
        assert occs == [(2, AccessType.READ)]

    def test_duplicate_occurrences_issue_separately(self):
        warp = make_warp([Phase.of([7, 7])])
        warp.advance(resident=set())
        occs = warp.take_issuable(10)
        assert occs == [(7, AccessType.READ), (7, AccessType.READ)]

    def test_peek_page(self):
        warp = make_warp([Phase.of([3, 4])])
        warp.advance(resident=set())
        assert warp.peek_page() == 3

    def test_peek_skips_satisfied(self):
        warp = make_warp([Phase.of([3, 4])])
        warp.advance(resident=set())
        warp.on_pages_resident([3])
        assert warp.peek_page() == 4

    def test_peek_none_when_drained(self):
        warp = make_warp([Phase.of([3])])
        warp.advance(resident=set())
        warp.take_issuable(1)
        assert warp.peek_page() is None

    def test_requeue_re_demands(self):
        warp = make_warp([Phase.of([5])])
        warp.advance(resident=set())
        warp.take_issuable(1)
        assert not warp.has_issuable
        warp.requeue(5, AccessType.READ)
        assert warp.has_issuable

    def test_requeue_ignored_when_satisfied(self):
        warp = make_warp([Phase.of([5])])
        warp.advance(resident=set())
        warp.take_issuable(1)
        warp.on_pages_resident([5])
        warp.requeue(5, AccessType.READ)
        assert not warp.has_issuable

    def test_faults_issued_counter(self):
        warp = make_warp([Phase.of([1, 2, 3])])
        warp.advance(resident=set())
        warp.take_issuable(2)
        assert warp.faults_issued == 2


class TestPeekRequeueRegression:
    """``peek_page`` must be pure (ISSUE 9 bugfix).

    An earlier version advanced ``_unissued_head`` past satisfied
    occurrences while peeking and reset the queue when it ran off the end —
    so a peek on a still-blocked warp could clear the issue queue out from
    under a concurrent post-replay-flush ``requeue``: the re-demanded
    occurrence landed in a freshly-reset list or was skipped by the
    advanced head, and the access was lost until livelock.
    """

    def test_peek_is_pure(self):
        warp = make_warp([Phase.of([1, 2, 3])])
        warp.advance(resident=set())
        warp.on_pages_resident([1])  # satisfied prefix the old code compacted
        before = (list(warp._unissued), warp._unissued_head)
        for _ in range(3):
            assert warp.peek_page() == 2
        assert (list(warp._unissued), warp._unissued_head) == before

    def test_peek_pure_when_all_unissued_satisfied(self):
        # The exact trigger of the old bug: every unissued occurrence is
        # satisfied, so the old peek ran off the end and reset the queue.
        warp = make_warp([Phase.of([1, 2])])
        warp.advance(resident=set())
        warp.take_issuable(1)  # issue page 1; page 2 still queued
        warp.on_pages_resident([2])  # resolves before issuing
        before = (list(warp._unissued), warp._unissued_head)
        assert warp.peek_page() is None
        assert (list(warp._unissued), warp._unissued_head) == before

    def test_peek_requeue_take_after_replay_flush(self):
        # Replay-flush scenario: both occurrences issued, then the fault
        # for page 2 is dropped by the pre-replay flush and re-demands.
        warp = make_warp([Phase.of([1, 2])])
        warp.advance(resident=set())
        assert warp.take_issuable(10) == [
            (1, AccessType.READ),
            (2, AccessType.READ),
        ]
        warp.on_pages_resident([1])
        assert warp.peek_page() is None  # nothing unissued yet
        warp.requeue(2, AccessType.READ)
        assert warp.peek_page() == 2  # peek sees the re-demand...
        assert warp.peek_page() == 2  # ...without consuming it
        assert warp.take_issuable(10) == [(2, AccessType.READ)]

    def test_peek_between_requeues_never_drops_occurrences(self):
        # Peeking over a satisfied head must not clear the queue a
        # following requeue appends to: both the original unissued
        # occurrence and the re-demand must issue.
        warp = make_warp([Phase.of([1, 2])])
        warp.advance(resident=set())
        warp.on_pages_resident([1])
        assert warp.peek_page() == 2
        warp.requeue(2, AccessType.READ)
        assert warp.take_issuable(10) == [
            (2, AccessType.READ),
            (2, AccessType.READ),
        ]


class TestNotification:
    def test_partial_notification_stays_blocked(self):
        warp = make_warp([Phase.of([1, 2])])
        warp.advance(resident=set())
        assert not warp.on_pages_resident([1])
        assert warp.blocked

    def test_full_notification_unblocks(self):
        warp = make_warp([Phase.of([1, 2])])
        warp.advance(resident=set())
        assert warp.on_pages_resident([1, 2])
        assert not warp.blocked

    def test_unknown_page_notification_harmless(self):
        warp = make_warp([Phase.of([1])])
        warp.advance(resident=set())
        assert not warp.on_pages_resident([999])
