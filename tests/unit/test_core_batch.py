"""Unit tests for batch assembly and duplicate classification (§4.2)."""

import pytest

from repro.core.batch import assemble_batch
from repro.gpu.fault import AccessType, Fault
from repro.units import PAGES_PER_VABLOCK


def fault(page, access=AccessType.READ, sm=0, utlb=None, ts=0.0):
    return Fault(page, access, sm, utlb if utlb is not None else sm // 2, 1, ts)


class TestDeduplication:
    def test_unique_faults_counted(self):
        batch = assemble_batch([fault(1), fault(2)], num_sms=8)
        assert batch.num_unique == 2
        assert batch.dup_same_utlb == 0
        assert batch.dup_cross_utlb == 0

    def test_same_utlb_duplicate(self):
        batch = assemble_batch([fault(1, sm=0), fault(1, sm=1)], num_sms=8)
        # SMs 0 and 1 share µTLB 0.
        assert batch.dup_same_utlb == 1
        assert batch.num_unique == 1

    def test_cross_utlb_duplicate(self):
        batch = assemble_batch([fault(1, sm=0), fault(1, sm=2)], num_sms=8)
        assert batch.dup_cross_utlb == 1

    def test_third_fault_same_utlb_after_cross(self):
        faults = [fault(1, sm=0), fault(1, sm=2), fault(1, sm=3)]
        batch = assemble_batch(faults, num_sms=8)
        # sm=3 shares µTLB 1 with sm=2 (already seen) → type 1.
        assert batch.dup_cross_utlb == 1
        assert batch.dup_same_utlb == 1

    def test_duplicate_count_property(self):
        faults = [fault(1, sm=0), fault(1, sm=0), fault(1, sm=4)]
        batch = assemble_batch(faults, num_sms=8)
        assert batch.dup_same_utlb + batch.dup_cross_utlb == 2


class TestAccessStrength:
    def test_write_marks_page(self):
        batch = assemble_batch([fault(1, AccessType.WRITE)], num_sms=8)
        assert 1 in batch.blocks[0].write_pages

    def test_write_upgrade_from_later_duplicate(self):
        faults = [fault(1, AccessType.READ, sm=0), fault(1, AccessType.WRITE, sm=2)]
        batch = assemble_batch(faults, num_sms=8)
        assert 1 in batch.blocks[0].write_pages

    def test_prefetch_only_tracking(self):
        batch = assemble_batch([fault(1, AccessType.PREFETCH)], num_sms=8)
        assert 1 in batch.blocks[0].prefetch_only_pages

    def test_prefetch_upgraded_by_read(self):
        faults = [fault(1, AccessType.PREFETCH, sm=0), fault(1, AccessType.READ, sm=2)]
        batch = assemble_batch(faults, num_sms=8)
        assert 1 not in batch.blocks[0].prefetch_only_pages


class TestBlockGrouping:
    def test_groups_by_vablock(self):
        faults = [fault(1), fault(PAGES_PER_VABLOCK + 1), fault(2)]
        batch = assemble_batch(faults, num_sms=8)
        assert batch.num_blocks == 2
        assert batch.blocks[0].pages == [1, 2]
        assert batch.blocks[1].pages == [PAGES_PER_VABLOCK + 1]

    def test_block_order_is_first_fault_order(self):
        faults = [fault(PAGES_PER_VABLOCK), fault(0)]
        batch = assemble_batch(faults, num_sms=8)
        assert [w.block_id for w in batch.blocks] == [1, 0]

    def test_raw_faults_per_block_include_dups(self):
        faults = [fault(1, sm=0), fault(1, sm=0), fault(2, sm=0)]
        batch = assemble_batch(faults, num_sms=8)
        assert batch.blocks[0].raw_faults == 3

    def test_page_order_within_block_preserved(self):
        faults = [fault(5), fault(3), fault(4)]
        batch = assemble_batch(faults, num_sms=8)
        assert batch.blocks[0].pages == [5, 3, 4]


class TestSmCounts:
    def test_sm_fault_counts(self):
        faults = [fault(1, sm=0), fault(2, sm=0), fault(3, sm=5)]
        batch = assemble_batch(faults, num_sms=8)
        assert batch.sm_fault_counts[0] == 2
        assert batch.sm_fault_counts[5] == 1
        assert batch.sm_fault_counts.sum() == 3

    def test_counts_include_duplicates(self):
        faults = [fault(1, sm=2), fault(1, sm=2)]
        batch = assemble_batch(faults, num_sms=8)
        assert batch.sm_fault_counts[2] == 2


class TestEdgeCases:
    def test_empty_batch(self):
        batch = assemble_batch([], num_sms=8)
        assert batch.num_raw == 0
        assert batch.num_unique == 0
        assert batch.num_blocks == 0
        assert batch.arrival_window == 0.0

    def test_arrival_window(self):
        faults = [fault(1, ts=10.0), fault(2, ts=12.5)]
        batch = assemble_batch(faults, num_sms=8)
        assert batch.arrival_window == pytest.approx(2.5)
