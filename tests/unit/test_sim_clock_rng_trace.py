"""Unit tests for the simulation kernel: clock, RNG streams, event trace."""

import pytest

from repro.sim.clock import SimClock
from repro.sim.rng import make_rng, spawn_rng
from repro.sim.trace import EventTrace, TraceEvent


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_custom_start(self):
        assert SimClock(5.0).now == 5.0

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(2.5)
        assert clock.now == 4.0

    def test_advance_returns_new_time(self):
        assert SimClock().advance(3.0) == 3.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1.0)

    def test_advance_to_future(self):
        clock = SimClock()
        clock.advance_to(10.0)
        assert clock.now == 10.0

    def test_advance_to_never_rewinds(self):
        clock = SimClock(10.0)
        clock.advance_to(5.0)
        assert clock.now == 10.0

    def test_section_elapsed(self):
        clock = SimClock()
        section = clock.section()
        clock.advance(7.0)
        assert section.elapsed == 7.0
        assert section.start == 0.0

    def test_zero_advance_allowed(self):
        clock = SimClock()
        clock.advance(0.0)
        assert clock.now == 0.0


class TestRng:
    def test_make_rng_deterministic(self):
        a = make_rng(42).integers(0, 1000, 10)
        b = make_rng(42).integers(0, 1000, 10)
        assert (a == b).all()

    def test_spawn_streams_independent(self):
        a = spawn_rng(0, "alpha").integers(0, 1_000_000, 20)
        b = spawn_rng(0, "beta").integers(0, 1_000_000, 20)
        assert (a != b).any()

    def test_spawn_same_stream_reproducible(self):
        a = spawn_rng(7, "workload").random(5)
        b = spawn_rng(7, "workload").random(5)
        assert (a == b).all()

    def test_spawn_different_seeds_differ(self):
        a = spawn_rng(1, "x").random(10)
        b = spawn_rng(2, "x").random(10)
        assert (a != b).any()


class TestEventTrace:
    def test_emit_and_len(self):
        trace = EventTrace()
        trace.emit(1.0, "fault", 42)
        trace.emit(2.0, "batch", 0)
        assert len(trace) == 2

    def test_disabled_records_nothing(self):
        trace = EventTrace(enabled=False)
        trace.emit(1.0, "fault", 42)
        assert len(trace) == 0

    def test_category_filter(self):
        trace = EventTrace(categories={"batch"})
        trace.emit(1.0, "fault", 1)
        trace.emit(2.0, "batch", 2)
        assert len(trace) == 1
        assert trace[0].category == "batch"

    def test_select(self):
        trace = EventTrace()
        trace.emit(1.0, "evict", 3, 100)
        trace.emit(2.0, "evict", 4, 50)
        trace.emit(3.0, "batch", 0)
        evicts = trace.select("evict")
        assert [e.payload[0] for e in evicts] == [3, 4]

    def test_select_with_predicate(self):
        trace = EventTrace()
        trace.emit(1.0, "evict", 3, 100)
        trace.emit(2.0, "evict", 4, 50)
        big = trace.select("evict", lambda e: e.payload[1] > 60)
        assert len(big) == 1

    def test_clear(self):
        trace = EventTrace()
        trace.emit(1.0, "x")
        trace.clear()
        assert len(trace) == 0

    def test_event_is_frozen(self):
        event = TraceEvent(1.0, "x", ())
        with pytest.raises(AttributeError):
            event.time = 2.0

    def test_iteration_order(self):
        trace = EventTrace()
        for i in range(5):
            trace.emit(float(i), "t", i)
        assert [e.payload[0] for e in trace] == list(range(5))
