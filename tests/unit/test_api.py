"""Unit tests for the UvmSystem facade and managed allocations."""

import pytest

from repro.api import ManagedAllocation, RunResult, UvmSystem
from repro.errors import AllocationError
from repro.gpu.warp import KernelLaunch, Phase, WarpProgram
from repro.units import MB, PAGES_PER_VABLOCK, PAGE_SIZE


class TestManagedAlloc:
    def test_alloc_rounds_to_pages(self, small_system):
        alloc = small_system.managed_alloc(100)
        assert alloc.num_pages == 1
        assert alloc.nbytes == PAGE_SIZE

    def test_allocs_are_vablock_aligned(self, small_system):
        a = small_system.managed_alloc(PAGE_SIZE)
        b = small_system.managed_alloc(PAGE_SIZE)
        assert a.start_page % PAGES_PER_VABLOCK == 0
        assert b.start_page % PAGES_PER_VABLOCK == 0
        assert b.start_page == PAGES_PER_VABLOCK

    def test_zero_size_rejected(self, small_system):
        with pytest.raises(AllocationError):
            small_system.managed_alloc(0)

    def test_named_allocations_listed(self, small_system):
        small_system.managed_alloc(PAGE_SIZE, name="weights")
        assert small_system.allocations[0].name == "weights"

    def test_default_names_unique(self, small_system):
        a = small_system.managed_alloc(PAGE_SIZE)
        b = small_system.managed_alloc(PAGE_SIZE)
        assert a.name != b.name

    def test_page_accessors(self, small_system):
        alloc = small_system.managed_alloc(4 * PAGE_SIZE)
        assert alloc.page(0) == alloc.start_page
        assert alloc.page(3) == alloc.start_page + 3
        with pytest.raises(IndexError):
            alloc.page(4)
        with pytest.raises(IndexError):
            alloc.page(-1)

    def test_pages_range(self, small_system):
        alloc = small_system.managed_alloc(4 * PAGE_SIZE)
        assert list(alloc.pages(1, 3)) == [alloc.start_page + 1, alloc.start_page + 2]
        with pytest.raises(IndexError):
            alloc.pages(3, 10)

    def test_page_of_byte(self, small_system):
        alloc = small_system.managed_alloc(4 * PAGE_SIZE)
        assert alloc.page_of_byte(0) == alloc.start_page
        assert alloc.page_of_byte(PAGE_SIZE + 1) == alloc.start_page + 1

    def test_registered_with_driver(self, small_system):
        alloc = small_system.managed_alloc(PAGE_SIZE)
        block = small_system.driver.vablocks.get_for_page(alloc.page(0))
        assert alloc.page(0) in block.valid_pages


class TestHostTouch:
    def test_marks_pages_mapped(self, small_system):
        alloc = small_system.managed_alloc(4 * PAGE_SIZE)
        small_system.host_touch(alloc)
        assert set(alloc.pages()) <= small_system.engine.host_vm.mapped

    def test_partial_touch(self, small_system):
        alloc = small_system.managed_alloc(4 * PAGE_SIZE)
        small_system.host_touch(alloc, 1, 3)
        assert alloc.page(0) not in small_system.engine.host_vm.mapped
        assert alloc.page(1) in small_system.engine.host_vm.mapped

    def test_advances_clock(self, small_system):
        alloc = small_system.managed_alloc(1 * MB)
        t0 = small_system.clock.now
        small_system.host_touch(alloc)
        assert small_system.clock.now > t0

    def test_thread_spread_recorded(self, system_factory):
        system = system_factory(host_threads=4)
        alloc = system.managed_alloc(8 * PAGE_SIZE)
        system.host_touch(alloc)
        threads = {
            system.engine.host_vm.touch_thread[p] for p in alloc.pages()
        }
        assert len(threads) == 4

    def test_migrates_gpu_resident_pages_back(self, small_system):
        alloc = small_system.managed_alloc(4 * PAGE_SIZE)
        kernel = KernelLaunch("k", [WarpProgram([Phase.of([alloc.page(0)])])])
        small_system.launch(kernel)
        assert small_system.engine.device.page_table.is_resident(alloc.page(0))
        small_system.host_touch(alloc)
        assert not small_system.engine.device.page_table.is_resident(alloc.page(0))


class TestLaunchAndRun:
    def simple_kernel(self, alloc):
        return KernelLaunch("k", [WarpProgram([Phase.of([alloc.page(0)], [alloc.page(1)])])])

    def test_launch_returns_result(self, small_system):
        alloc = small_system.managed_alloc(4 * PAGE_SIZE)
        result = small_system.launch(self.simple_kernel(alloc))
        assert result.kernel_time_usec > 0
        assert result.num_batches >= 1
        # The read faults; the write may be covered by the 64 KiB upgrade.
        assert result.total_faults >= 1
        assert small_system.engine.device.page_table.is_resident(alloc.page(1))

    def test_run_mixes_steps(self, small_system):
        alloc = small_system.managed_alloc(4 * PAGE_SIZE)
        touched = []
        steps = [
            lambda s: touched.append(True),
            self.simple_kernel(alloc),
        ]
        result = small_system.run(steps, name="mixed")
        assert touched == [True]
        assert result.workload == "mixed"
        assert result.num_batches >= 1

    def test_run_rejects_bad_step(self, small_system):
        with pytest.raises(TypeError):
            small_system.run([42])

    def test_records_accumulate(self, small_system):
        alloc = small_system.managed_alloc(4 * PAGE_SIZE)
        small_system.launch(self.simple_kernel(alloc))
        n = len(small_system.records)
        assert n >= 1

    def test_oversubscription_bytes(self, small_system):
        assert small_system.oversubscription_bytes(1.5) == int(
            small_system.config.gpu.memory_bytes * 1.5
        )


class TestRunResult:
    def test_empty(self):
        r = RunResult(workload="w")
        assert r.kernel_time_usec == 0.0
        assert r.num_batches == 0
        assert r.records == []
        assert len(r.batch_log()) == 0
