"""Unit tests for workload builders: structure of the generated programs."""

import pytest

from repro.gpu.warp import KernelLaunch
from repro.units import MB, PAGE_SIZE
from repro.workloads import (
    CoalescedVecAdd,
    CuFft,
    Dgemm,
    GaussSeidel,
    Hpgmg,
    PrefetchVectorKernel,
    RandomAccess,
    RegularStream,
    Sgemm,
    StreamTriad,
    VecAddPageStride,
)
from repro.workloads.base import (
    independent_programs,
    lockstep_programs,
    pages_of_byte_range,
)


def kernel_steps(workload, system):
    return [s for s in workload.steps(system) if isinstance(s, KernelLaunch)]


class TestHelpers:
    def test_pages_of_byte_range_within_page(self, small_system):
        alloc = small_system.managed_alloc(4 * PAGE_SIZE)
        assert pages_of_byte_range(alloc, 10, 20) == [alloc.page(0)]

    def test_pages_of_byte_range_crossing(self, small_system):
        alloc = small_system.managed_alloc(4 * PAGE_SIZE)
        assert pages_of_byte_range(alloc, 4000, 4200) == [alloc.page(0), alloc.page(1)]

    def test_pages_of_byte_range_empty(self, small_system):
        alloc = small_system.managed_alloc(4 * PAGE_SIZE)
        assert pages_of_byte_range(alloc, 100, 100) == []

    def test_lockstep_shapes(self, small_system):
        a = small_system.managed_alloc(64 * PAGE_SIZE)
        b = small_system.managed_alloc(64 * PAGE_SIZE)
        progs = lockstep_programs([a], [b], 64, num_programs=4, window_pages=8)
        assert len(progs) == 4
        assert all(len(p.phases) == 8 for p in progs)

    def test_lockstep_overlap_creates_sharing(self, small_system):
        a = small_system.managed_alloc(64 * PAGE_SIZE)
        progs = lockstep_programs([a], [], 64, 4, 8, overlap_pages=1)
        # Program k's reads overlap program k+1's first page.
        reads0 = set(progs[0].phases[0].reads)
        reads1 = set(progs[1].phases[0].reads)
        assert reads0 & reads1

    def test_lockstep_validates_divisibility(self, small_system):
        a = small_system.managed_alloc(64 * PAGE_SIZE)
        with pytest.raises(ValueError):
            lockstep_programs([a], [], 64, 3, 8)

    def test_independent_regions_disjoint(self, small_system):
        a = small_system.managed_alloc(64 * PAGE_SIZE)
        progs = independent_programs([a], [], 64, 4, pages_per_phase=4)
        footprints = [p.touched_pages for p in progs]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not footprints[i] & footprints[j]

    def test_independent_requires_enough_pages(self, small_system):
        a = small_system.managed_alloc(4 * PAGE_SIZE)
        with pytest.raises(ValueError):
            independent_programs([a], [], 2, 4, 1)


class TestMicrobench:
    def test_vecadd_matches_listing1(self, small_system):
        wl = VecAddPageStride()
        [kernel] = kernel_steps(wl, small_system)
        assert len(kernel.programs) == 1  # one warp
        prog = kernel.programs[0]
        assert len(prog.phases) == 3  # three additions
        for phase in prog.phases:
            assert len(phase.reads) == 64  # 32 a + 32 b
            assert len(phase.writes) == 32

    def test_vecadd_required_bytes(self):
        assert VecAddPageStride().required_bytes() == 3 * 96 * PAGE_SIZE

    def test_coalesced_has_type1_duplicate_sources(self, small_system):
        wl = CoalescedVecAdd(num_warps=2, pages_per_warp=2)
        [kernel] = kernel_steps(wl, small_system)
        reads = kernel.programs[0].phases[0].reads
        # Each page appears twice (two lanes per page).
        assert len(reads) == 2 * len(set(reads))

    def test_prefetch_kernel_only_prefetches(self, small_system):
        wl = PrefetchVectorKernel(pages_per_vector=10)
        [kernel] = kernel_steps(wl, small_system)
        phase = kernel.programs[0].phases[0]
        assert len(phase.prefetches) == 30
        assert not phase.reads and not phase.writes

    def test_prefetch_kernel_touch_after(self, small_system):
        wl = PrefetchVectorKernel(pages_per_vector=10, touch_after=True)
        [kernel] = kernel_steps(wl, small_system)
        assert len(kernel.programs[0].phases) == 2


class TestSynthetic:
    def test_regular_read_only_by_default(self, small_system):
        wl = RegularStream(nbytes=2 * MB, num_programs=4)
        [kernel] = kernel_steps(wl, small_system)
        assert all(not ph.writes for p in kernel.programs for ph in p.phases)

    def test_regular_with_output(self, small_system):
        wl = RegularStream(nbytes=2 * MB, num_programs=4, write_output=True)
        [kernel] = kernel_steps(wl, small_system)
        assert any(ph.writes for p in kernel.programs for ph in p.phases)

    def test_random_is_deterministic(self, system_factory):
        draws = []
        for _ in range(2):
            system = system_factory()
            wl = RandomAccess(nbytes=2 * MB, num_programs=2, accesses_per_program=16)
            [kernel] = kernel_steps(wl, system)
            draws.append(
                tuple(p - system.allocations[0].start_page
                      for prog in kernel.programs
                      for ph in prog.phases
                      for p in ph.reads)
            )
        assert draws[0] == draws[1]

    def test_random_within_bounds(self, small_system):
        wl = RandomAccess(nbytes=2 * MB, num_programs=2, accesses_per_program=64)
        [kernel] = kernel_steps(wl, small_system)
        alloc = small_system.allocations[0]
        for prog in kernel.programs:
            assert prog.touched_pages <= set(alloc.pages())


class TestStream:
    def test_three_arrays(self, small_system):
        wl = StreamTriad(nbytes=1 * MB)
        wl.steps(small_system)
        assert [a.name for a in small_system.allocations] == ["a", "b", "c"]

    def test_triad_access_shape(self, small_system):
        wl = StreamTriad(nbytes=1 * MB, num_programs=8, window_pages=8)
        [kernel] = kernel_steps(wl, small_system)
        a, b, c = small_system.allocations
        phase = kernel.programs[0].phases[0]
        # Reads from b and c; writes to a.
        assert set(phase.writes) <= set(a.pages())
        assert set(phase.reads) <= set(b.pages()) | set(c.pages())

    def test_sweeps_duplicate_phases(self, small_system):
        wl = StreamTriad(nbytes=1 * MB, num_programs=8, window_pages=8, sweeps=3)
        [kernel] = kernel_steps(wl, small_system)
        base = StreamTriad(nbytes=1 * MB, num_programs=8, window_pages=8)
        # 3 sweeps => 3x phases per program (fresh system to rebuild).
        assert len(kernel.programs[0].phases) % 3 == 0


class TestGemm:
    def test_tile_must_divide(self):
        with pytest.raises(ValueError):
            Sgemm(n=100, tile=64)

    def test_program_per_tile(self, small_system):
        wl = Sgemm(n=512, tile=256)
        [kernel] = kernel_steps(wl, small_system)
        assert len(kernel.programs) == 4  # (512/256)^2

    def test_reads_from_a_and_b_only(self, small_system):
        wl = Sgemm(n=512, tile=256)
        [kernel] = kernel_steps(wl, small_system)
        a, b, c = small_system.allocations
        ab = set(a.pages()) | set(b.pages())
        cset = set(c.pages())
        for prog in kernel.programs:
            for ph in prog.phases:
                assert set(ph.reads) <= ab
                assert set(ph.writes) <= cset

    def test_every_c_page_written(self, small_system):
        wl = Sgemm(n=512, tile=128)
        [kernel] = kernel_steps(wl, small_system)
        c = small_system.allocations[2]
        written = set()
        for prog in kernel.programs:
            for ph in prog.phases:
                written |= set(ph.writes)
        assert written == set(c.pages())

    def test_dgemm_uses_8_byte_elems(self):
        assert Dgemm(n=512, tile=256).required_bytes() == 2 * Sgemm(n=512, tile=256).required_bytes()


class TestFft:
    def test_requires_power_of_two_pages(self):
        with pytest.raises(ValueError):
            CuFft(nbytes=3 * MB)

    def test_reads_include_twiddles(self, small_system):
        wl = CuFft(nbytes=1 * MB, num_programs=4)
        [kernel] = kernel_steps(wl, small_system)
        data, twiddle = small_system.allocations
        tw = set(twiddle.pages())
        assert any(
            set(ph.reads) & tw for p in kernel.programs for ph in p.phases
        )

    def test_every_data_page_touched(self, small_system):
        wl = CuFft(nbytes=1 * MB, num_programs=4)
        [kernel] = kernel_steps(wl, small_system)
        data = small_system.allocations[0]
        touched = set()
        for prog in kernel.programs:
            touched |= prog.touched_pages
        assert set(data.pages()) <= touched


class TestStencils:
    def test_gauss_seidel_validates_row_alignment(self):
        with pytest.raises(ValueError):
            GaussSeidel(n=1000)  # 8*1000 not page-aligned

    def test_gauss_seidel_phase_structure(self, small_system):
        wl = GaussSeidel(n=512, sweeps=1, num_programs=4, band_rows=8)
        [kernel] = kernel_steps(wl, small_system)
        u, f = small_system.allocations
        phase = kernel.programs[0].phases[0]
        assert set(phase.writes) <= set(u.pages())
        assert set(phase.reads) & set(f.pages())

    def test_hpgmg_level_hierarchy_allocated(self, small_system):
        wl = Hpgmg(n=512, levels=2, cycles=1, num_programs=4, band_rows=8)
        wl.steps(small_system)
        names = [a.name for a in small_system.allocations]
        assert names == ["u0", "f0", "u1", "f1"]

    def test_hpgmg_one_kernel_per_cycle(self, small_system):
        wl = Hpgmg(n=512, levels=2, cycles=2, num_programs=4, band_rows=8)
        kernels = kernel_steps(wl, small_system)
        assert len(kernels) == 2

    def test_hpgmg_required_bytes(self):
        wl = Hpgmg(n=512, levels=2)
        expected = 2 * 8 * (512 * 512 + 256 * 256)
        assert wl.required_bytes() == expected

    def test_hpgmg_too_many_levels(self):
        with pytest.raises(ValueError):
            Hpgmg(n=512, levels=30)
