"""Unit tests for the observability layer (:mod:`repro.obs`)."""

from __future__ import annotations

import json
import threading

import pytest

from repro.config import ObsConfig
from repro.errors import ConfigError
from repro.obs import (
    ChromeTraceBuilder,
    MetricsRegistry,
    NULL_INSTRUMENT,
    NULL_SPAN,
    NdjsonSink,
    Observability,
    PID_DRIVER,
    SpanProfiler,
    read_ndjson,
)
from repro.sim.clock import SimClock
from repro.sim.trace import EventTrace


# ---------------------------------------------------------------- metrics


class TestCounter:
    def test_inc_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("batches", "help text")
        c.inc()
        c.inc(4)
        assert c.labels().snapshot() == 5.0

    def test_counters_only_go_up(self):
        c = MetricsRegistry().counter("x")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_labeled_series_are_independent(self):
        reg = MetricsRegistry()
        fam = reg.counter("pages", labels=("op",))
        fam.labels("h2d").inc(3)
        fam.labels("d2h").inc(1)
        assert fam.labels("h2d").snapshot() == 3.0
        assert fam.labels("d2h").snapshot() == 1.0

    def test_wrong_label_arity_raises(self):
        fam = MetricsRegistry().counter("pages", labels=("op",))
        with pytest.raises(ValueError):
            fam.labels("a", "b")


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("resident")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.labels().snapshot() == 7.0


class TestHistogram:
    def test_cumulative_buckets_and_sum(self):
        h = MetricsRegistry().histogram("t", buckets=(10.0, 100.0))
        for v in (5.0, 50.0, 500.0):
            h.observe(v)
        snap = h.labels().snapshot()
        les = [(b["le"], b["count"]) for b in snap["buckets"]]
        assert les == [(10.0, 1), (100.0, 2), (float("inf"), 3)]
        assert snap["sum"] == 555.0
        assert snap["count"] == 3

    def test_boundary_value_falls_in_its_bucket(self):
        # Prometheus `le` is inclusive.
        h = MetricsRegistry().histogram("t", buckets=(10.0, 100.0))
        h.observe(10.0)
        snap = h.labels().snapshot()
        assert snap["buckets"][0]["count"] == 1

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ConfigError):
            MetricsRegistry().histogram("t", buckets=(10.0, 5.0))


class TestRegistry:
    def test_reregistration_returns_same_family(self):
        reg = MetricsRegistry()
        a = reg.counter("x", "first")
        b = reg.counter("x", "second")
        assert a is b

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ConfigError):
            reg.gauge("x")

    def test_disabled_registry_hands_out_null_instrument(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("x", labels=("op",))
        assert c is NULL_INSTRUMENT
        assert c.labels("anything", "arity", "ignored") is c
        c.inc()
        c.set(5)
        c.observe(1.0)
        assert reg.snapshot() == {}

    def test_snapshot_is_json_serializable(self):
        reg = MetricsRegistry()
        reg.counter("c", "help", labels=("k",)).labels("v").inc()
        reg.gauge("g").set(2)
        reg.histogram("h").observe(3.0)
        text = json.dumps(reg.snapshot())
        assert "Infinity" in text  # +Inf bucket survives the dump

    def test_prometheus_text_format(self):
        reg = MetricsRegistry()
        reg.counter("uvm_pages_total", "Pages", labels=("op",)).labels("h2d").inc(3)
        reg.histogram("uvm_usec", "Time", buckets=(10.0,)).observe(4.0)
        text = reg.to_prometheus()
        assert "# HELP uvm_pages_total Pages" in text
        assert "# TYPE uvm_pages_total counter" in text
        assert 'uvm_pages_total{op="h2d"} 3' in text
        assert 'uvm_usec_bucket{le="10"} 1' in text
        assert 'uvm_usec_bucket{le="+Inf"} 1' in text
        assert "uvm_usec_sum 4" in text
        assert "uvm_usec_count 1" in text


# ------------------------------------------------------------------ spans


class TestSpanProfiler:
    def test_span_measures_clock_advance(self):
        clock = SimClock()
        prof = SpanProfiler(clock)
        with prof.span("fetch", batch=7):
            clock.advance(12.5)
        (rec,) = prof.records
        assert rec.name == "fetch"
        assert rec.sim_start == 0.0
        assert rec.sim_dur == 12.5
        assert rec.sim_end == 12.5
        assert rec.wall_dur >= 0.0
        assert rec.args_dict() == {"batch": 7}

    def test_nested_spans_track_depth(self):
        clock = SimClock()
        prof = SpanProfiler(clock)
        with prof.span("outer"):
            clock.advance(1.0)
            with prof.span("inner"):
                clock.advance(2.0)
        inner, outer = prof.records  # inner completes first
        assert inner.name == "inner" and inner.depth == 1
        assert outer.name == "outer" and outer.depth == 0
        assert outer.sim_dur == 3.0

    def test_disabled_profiler_is_null(self):
        prof = SpanProfiler(SimClock(), enabled=False)
        assert prof.span("x") is NULL_SPAN
        with prof.span("x"):
            pass
        prof.record("y", sim_dur=5.0)
        assert len(prof) == 0

    def test_manual_record_and_totals(self):
        prof = SpanProfiler(SimClock())
        prof.record("vablock", sim_start=10.0, sim_dur=4.0, block=3)
        prof.record("vablock", sim_start=14.0, sim_dur=6.0, block=4)
        assert prof.sim_total("vablock") == 10.0
        totals = prof.totals()
        assert totals["vablock"]["count"] == 2
        assert totals["vablock"]["sim_usec"] == 10.0

    def test_max_spans_drops_overflow(self):
        prof = SpanProfiler(SimClock(), max_spans=1)
        prof.record("a", sim_dur=1.0)
        prof.record("b", sim_dur=1.0)
        assert len(prof) == 1
        assert prof.dropped == 1
        prof.clear()
        assert prof.dropped == 0

    def test_threads_get_independent_stacks(self):
        clock = SimClock()
        prof = SpanProfiler(clock)
        errors = []
        # Hold every worker until all have started, so thread idents are
        # distinct (the OS reuses idents of joined threads).
        barrier = threading.Barrier(4)

        def worker():
            try:
                barrier.wait()
                for _ in range(50):
                    with prof.span("w"):
                        pass
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(prof) == 200
        assert len({r.thread_id for r in prof.records}) == 4


# ----------------------------------------------------------- chrome trace


class TestChromeTrace:
    def test_events_have_required_keys_and_sort(self):
        b = ChromeTraceBuilder()
        b.duration("late", "cat", ts=10.0, dur=1.0, pid=2)
        b.duration("early", "cat", ts=5.0, dur=1.0, pid=1, args={"k": 1})
        b.instant("mark", "cat", ts=7.0, pid=3, tid=4)
        doc = json.loads(b.to_json())
        events = [e for e in doc["traceEvents"] if e["ph"] != "M"]
        assert [e["name"] for e in events] == ["early", "mark", "late"]
        for e in events:
            assert {"name", "ph", "ts", "pid", "tid"} <= set(e)
        assert events[0]["ph"] == "X" and events[0]["dur"] == 1.0
        assert events[1]["ph"] == "i" and events[1]["s"] == "t"
        assert doc["displayTimeUnit"] == "ms"

    def test_metadata_events_come_first(self):
        b = ChromeTraceBuilder()
        b.duration("x", "cat", ts=0.0, dur=1.0, pid=1)
        b.register_tracks()
        doc = b.to_dict()
        phs = [e["ph"] for e in doc["traceEvents"]]
        first_non_meta = phs.index("X")
        assert all(ph == "M" for ph in phs[:first_non_meta])
        names = [
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["name"] == "process_name"
        ]
        assert "UVM driver" in names

    def test_scoped_track_labels(self):
        b = ChromeTraceBuilder()
        b.register_tracks(10, "GPU1")
        meta = b.to_dict()["traceEvents"]
        by_pid = {e["pid"]: e["args"]["name"] for e in meta if e["name"] == "process_name"}
        assert by_pid[10 + PID_DRIVER] == "GPU1 UVM driver"

    def test_num_tracks_counts_distinct_pids(self):
        b = ChromeTraceBuilder()
        b.duration("a", "c", ts=0.0, dur=1.0, pid=1)
        b.duration("b", "c", ts=0.0, dur=1.0, pid=1, tid=5)
        b.instant("c", "c", ts=0.0, pid=2)
        assert b.num_tracks == 2

    def test_max_events_drops(self):
        b = ChromeTraceBuilder(max_events=1)
        b.duration("a", "c", ts=0.0, dur=1.0, pid=1)
        b.duration("b", "c", ts=0.0, dur=1.0, pid=1)
        assert len(b) == 1
        assert b.dropped == 1
        assert b.to_dict()["otherData"]["dropped_events"] == 1

    def test_disabled_builder_records_nothing(self):
        b = ChromeTraceBuilder(enabled=False)
        b.duration("a", "c", ts=0.0, dur=1.0, pid=1)
        b.instant("b", "c", ts=0.0, pid=1)
        b.counter("c", ts=0.0, values={"v": 1}, pid=1)
        assert len(b) == 0

    def test_write_creates_parent_dirs(self, tmp_path):
        b = ChromeTraceBuilder()
        b.duration("a", "c", ts=0.0, dur=1.0, pid=1)
        path = b.write(tmp_path / "deep" / "trace.json")
        assert json.loads(path.read_text())["traceEvents"]


# ------------------------------------------------------------------ sinks


class TestNdjsonSink:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "log.ndjson"
        with NdjsonSink(path) as sink:
            sink.write({"type": "custom", "v": 1})
            sink.write_trace_event(3.5, "fault", (7, 8))
        rows = read_ndjson(path)
        assert rows[0] == {"type": "custom", "v": 1}
        assert rows[1]["type"] == "event"
        assert rows[1]["time"] == 3.5
        assert rows[1]["category"] == "fault"


# ----------------------------------------------------------------- facade


class TestObservabilityFacade:
    def test_scoped_view_shares_instruments_and_offsets_pids(self):
        obs = Observability(ObsConfig(chrome_trace=True), SimClock())
        view = obs.scoped(10, "GPU1")
        assert view.metrics is obs.metrics
        assert view.spans is obs.spans
        assert view.chrome is obs.chrome
        assert view.pid(PID_DRIVER) == 10 + PID_DRIVER
        assert obs.pid(PID_DRIVER) == PID_DRIVER

    def test_any_enabled_reflects_config(self):
        assert Observability(ObsConfig(), SimClock()).any_enabled
        off = Observability(ObsConfig().disabled(), SimClock())
        assert not off.any_enabled

    def test_disabled_config_validate(self):
        cfg = ObsConfig().disabled()
        assert not (cfg.metrics or cfg.spans or cfg.chrome_trace)
        assert cfg.ndjson_path is None
        with pytest.raises(ConfigError):
            ObsConfig(chrome_max_events=0).validate()
        with pytest.raises(ConfigError):
            ObsConfig(trace_max_events=0).validate()
        with pytest.raises(ConfigError):
            ObsConfig(max_spans=-1).validate()


# ------------------------------------------------- EventTrace ring + JSONL


class TestEventTraceRing:
    def test_ring_keeps_newest_and_counts_drops(self):
        trace = EventTrace(max_events=3)
        for i in range(5):
            trace.emit(float(i), "fault", i)
        assert len(trace) == 3
        assert trace.dropped == 2
        assert [e.payload[0] for e in trace] == [2, 3, 4]
        assert trace[0].time == 2.0
        assert [e.payload[0] for e in trace[1:]] == [3, 4]

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            EventTrace(max_events=0)

    def test_clear_resets_dropped(self):
        trace = EventTrace(max_events=1)
        trace.emit(0.0, "a")
        trace.emit(1.0, "a")
        trace.clear()
        assert len(trace) == 0
        assert trace.dropped == 0

    def test_jsonl_round_trip(self, tmp_path):
        trace = EventTrace()
        trace.emit(1.5, "fault", 3, "read")
        trace.emit(2.5, "batch", 0)
        path = trace.to_jsonl(tmp_path / "trace.jsonl")
        loaded = EventTrace.from_jsonl(path)
        assert len(loaded) == 2
        assert loaded[0].time == 1.5
        assert loaded[0].category == "fault"
        assert loaded[0].payload == (3, "read")
        assert loaded[1].payload == (0,)

    def test_jsonl_reload_with_cap(self, tmp_path):
        trace = EventTrace()
        for i in range(10):
            trace.emit(float(i), "fault", i)
        path = trace.to_jsonl(tmp_path / "trace.jsonl")
        loaded = EventTrace.from_jsonl(path, max_events=4)
        assert len(loaded) == 4
        assert [e.payload[0] for e in loaded] == [6, 7, 8, 9]

    def test_sink_tee(self, tmp_path):
        path = tmp_path / "tee.ndjson"
        sink = NdjsonSink(path)
        trace = EventTrace(sink=sink)
        trace.emit(0.5, "evict", 12)
        sink.close()
        rows = read_ndjson(path)
        assert rows[0]["category"] == "evict"
