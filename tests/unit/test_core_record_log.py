"""Unit tests for BatchRecord and the BatchLog JSONL store."""

import numpy as np
import pytest

from repro.core.batch_record import BatchRecord
from repro.core.instrumentation import BatchLog


def record(batch_id=0, **kwargs):
    r = BatchRecord(batch_id=batch_id)
    for k, v in kwargs.items():
        setattr(r, k, v)
    return r


class TestBatchRecord:
    def test_duration(self):
        r = record(t_start=10.0, t_end=25.0)
        assert r.duration == 15.0

    def test_service_time_sums_components(self):
        r = record(time_fetch=5.0, time_unmap=10.0, time_replay=2.0)
        assert r.service_time == pytest.approx(17.0)

    def test_transfer_fraction(self):
        r = record(t_start=0.0, t_end=100.0, time_transfer_h2d=20.0, time_transfer_d2h=5.0)
        assert r.transfer_fraction == pytest.approx(0.25)

    def test_fraction_zero_duration(self):
        assert record().transfer_fraction == 0.0
        assert record().unmap_fraction == 0.0
        assert record().dma_fraction == 0.0

    def test_unmap_fraction(self):
        r = record(t_start=0.0, t_end=50.0, time_unmap=25.0)
        assert r.unmap_fraction == pytest.approx(0.5)

    def test_dma_fraction(self):
        r = record(t_start=0.0, t_end=50.0, time_dma=10.0)
        assert r.dma_fraction == pytest.approx(0.2)

    def test_duplicate_count(self):
        r = record(dup_same_utlb=3, dup_cross_utlb=4)
        assert r.duplicate_count == 7

    def test_to_dict_serializes_arrays(self):
        r = record(sm_fault_counts=np.array([1, 2], dtype=np.int32))
        d = r.to_dict()
        assert d["sm_fault_counts"] == [1, 2]
        assert "duration" in d

    def test_roundtrip(self):
        r = record(
            batch_id=7,
            t_start=1.0,
            t_end=2.0,
            num_faults_raw=10,
            sm_fault_counts=np.array([1, 2, 3], dtype=np.int32),
            vablock_fault_counts=np.array([5], dtype=np.int32),
        )
        back = BatchRecord.from_dict(r.to_dict())
        assert back.batch_id == 7
        assert back.num_faults_raw == 10
        assert (back.sm_fault_counts == r.sm_fault_counts).all()
        assert back.duration == r.duration


class TestBatchLog:
    def test_append_iter_index(self):
        log = BatchLog()
        log.append(record(0))
        log.append(record(1))
        assert len(log) == 2
        assert [r.batch_id for r in log] == [0, 1]
        assert log[1].batch_id == 1

    def test_aggregates(self):
        log = BatchLog.from_records(
            [
                record(0, t_start=0, t_end=10, num_faults_raw=5, num_faults_unique=4,
                       bytes_h2d=100, evictions=1),
                record(1, t_start=10, t_end=30, num_faults_raw=3, num_faults_unique=3,
                       bytes_h2d=50, evictions=0),
            ]
        )
        assert log.total_batch_time == pytest.approx(30.0)
        assert log.total_faults_raw == 8
        assert log.total_faults_unique == 7
        assert log.total_bytes_h2d == 150
        assert log.total_evictions == 1

    def test_jsonl_roundtrip(self, tmp_path):
        log = BatchLog.from_records(
            [
                record(0, num_faults_raw=5, sm_fault_counts=np.array([1, 4], dtype=np.int32)),
                record(1, num_faults_raw=9),
            ]
        )
        path = tmp_path / "batches.jsonl"
        log.to_jsonl(path)
        loaded = BatchLog.from_jsonl(path)
        assert len(loaded) == 2
        assert loaded[0].num_faults_raw == 5
        assert (loaded[0].sm_fault_counts == np.array([1, 4])).all()
        assert loaded[1].sm_fault_counts is None

    def test_jsonl_skips_blank_lines(self, tmp_path):
        path = tmp_path / "batches.jsonl"
        log = BatchLog.from_records([record(0)])
        log.to_jsonl(path)
        path.write_text(path.read_text() + "\n\n")
        assert len(BatchLog.from_jsonl(path)) == 1
