"""Unit tests for address/size arithmetic in repro.units."""

import pytest

from repro import units as u


class TestConstants:
    def test_page_size(self):
        assert u.PAGE_SIZE == 4096
        assert 1 << u.PAGE_SHIFT == u.PAGE_SIZE

    def test_region_size(self):
        assert u.REGION_SIZE == 64 * 1024
        assert u.PAGES_PER_REGION == 16

    def test_vablock_size(self):
        assert u.VABLOCK_SIZE == 2 * 1024 * 1024
        assert u.PAGES_PER_VABLOCK == 512
        assert u.REGIONS_PER_VABLOCK == 32

    def test_hierarchy_consistency(self):
        assert u.PAGES_PER_REGION * u.REGIONS_PER_VABLOCK == u.PAGES_PER_VABLOCK


class TestPageMath:
    def test_page_of_zero(self):
        assert u.page_of(0) == 0

    def test_page_of_last_byte_in_page(self):
        assert u.page_of(4095) == 0

    def test_page_of_first_byte_in_second_page(self):
        assert u.page_of(4096) == 1

    def test_page_base_roundtrip(self):
        for page in (0, 1, 7, 513, 10_000):
            assert u.page_of(u.page_base(page)) == page

    def test_region_of_page(self):
        assert u.region_of_page(0) == 0
        assert u.region_of_page(15) == 0
        assert u.region_of_page(16) == 1

    def test_vablock_of(self):
        assert u.vablock_of(0) == 0
        assert u.vablock_of(u.VABLOCK_SIZE - 1) == 0
        assert u.vablock_of(u.VABLOCK_SIZE) == 1

    def test_vablock_of_page(self):
        assert u.vablock_of_page(511) == 0
        assert u.vablock_of_page(512) == 1

    def test_page_index_in_vablock(self):
        assert u.page_index_in_vablock(0) == 0
        assert u.page_index_in_vablock(511) == 511
        assert u.page_index_in_vablock(512) == 0
        assert u.page_index_in_vablock(1000) == 1000 - 512

    def test_first_page_of_vablock(self):
        assert u.first_page_of_vablock(0) == 0
        assert u.first_page_of_vablock(3) == 3 * 512

    def test_block_page_roundtrip(self):
        for block in (0, 1, 5, 31):
            first = u.first_page_of_vablock(block)
            assert u.vablock_of_page(first) == block
            assert u.page_index_in_vablock(first) == 0


class TestSpans:
    def test_pages_spanned_empty(self):
        assert list(u.pages_spanned(0, 0)) == []

    def test_pages_spanned_within_one_page(self):
        assert list(u.pages_spanned(10, 100)) == [0]

    def test_pages_spanned_crossing(self):
        assert list(u.pages_spanned(4000, 200)) == [0, 1]

    def test_pages_spanned_exact_pages(self):
        assert list(u.pages_spanned(4096, 8192)) == [1, 2]

    def test_negative_bytes(self):
        assert list(u.pages_spanned(0, -5)) == []


class TestAlign:
    def test_align_up_exact(self):
        assert u.align_up(8192, 4096) == 8192

    def test_align_up_rounds(self):
        assert u.align_up(1, 4096) == 4096

    def test_align_down(self):
        assert u.align_down(4097, 4096) == 4096
        assert u.align_down(4095, 4096) == 0


class TestFormatting:
    def test_fmt_bytes(self):
        assert u.fmt_bytes(3 * u.MB) == "3.0MB"
        assert u.fmt_bytes(512) == "512B"
        assert u.fmt_bytes(2 * u.GB) == "2.0GB"
        assert u.fmt_bytes(10 * u.KB) == "10.0KB"

    def test_fmt_usec(self):
        assert u.fmt_usec(0.5) == "0.50us"
        assert u.fmt_usec(1500) == "1.500ms"
        assert u.fmt_usec(2_500_000) == "2.500s"
