"""Unit tests for the real-numerics applications (correctness of the math)."""

import numpy as np
import pytest

from repro.apps.fft import _bit_reverse_indices, iterative_fft
from repro.apps.gauss_seidel import gauss_seidel_poisson, gs_sweep, residual_norm
from repro.apps.gemm import blocked_gemm
from repro.apps.multigrid import (
    MultigridPoisson,
    prolong_bilinear,
    restrict_full_weighting,
)
from repro.apps.triad import triad


class TestBlockedGemm:
    @pytest.mark.parametrize("n,tile", [(8, 4), (16, 8), (32, 32), (64, 16)])
    def test_matches_numpy(self, n, tile):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((n, n)).astype(np.float64)
        b = rng.standard_normal((n, n)).astype(np.float64)
        assert np.allclose(blocked_gemm(a, b, tile), a @ b, atol=1e-10)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            blocked_gemm(np.ones((4, 8)), np.ones((8, 4)), 4)

    def test_rejects_bad_tile(self):
        with pytest.raises(ValueError):
            blocked_gemm(np.ones((8, 8)), np.ones((8, 8)), 3)

    def test_identity(self):
        eye = np.eye(8)
        m = np.arange(64.0).reshape(8, 8)
        assert np.allclose(blocked_gemm(eye, m, 4), m)


class TestTriad:
    def test_matches_reference(self):
        rng = np.random.default_rng(1)
        b = rng.standard_normal(1000)
        c = rng.standard_normal(1000)
        assert np.allclose(triad(b, c, 0.4, chunk=64), b + 0.4 * c)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            triad(np.ones(4), np.ones(5), 1.0)

    def test_chunk_boundaries(self):
        b = np.arange(10.0)
        c = np.ones(10)
        assert np.allclose(triad(b, c, 2.0, chunk=3), b + 2.0)


class TestFft:
    def test_bit_reverse_small(self):
        assert _bit_reverse_indices(8).tolist() == [0, 4, 2, 6, 1, 5, 3, 7]

    def test_bit_reverse_is_involution(self):
        rev = _bit_reverse_indices(64)
        assert (rev[rev] == np.arange(64)).all()

    @pytest.mark.parametrize("n", [2, 4, 16, 128, 1024])
    def test_matches_numpy(self, n):
        rng = np.random.default_rng(2)
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        assert np.allclose(iterative_fft(x), np.fft.fft(x), atol=1e-9)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            iterative_fft(np.ones(6))

    def test_linearity(self):
        rng = np.random.default_rng(3)
        x, y = rng.standard_normal(64), rng.standard_normal(64)
        assert np.allclose(
            iterative_fft(x + 2 * y), iterative_fft(x) + 2 * iterative_fft(y)
        )


class TestGaussSeidel:
    def test_residual_decreases(self):
        rng = np.random.default_rng(4)
        f = rng.standard_normal((32, 32))
        _, history = gauss_seidel_poisson(f, sweeps=5)
        assert history[-1] < history[0]
        # Monotone non-increasing for this SPD system.
        assert all(b <= a * 1.0001 for a, b in zip(history, history[1:]))

    def test_zero_rhs_fixed_point(self):
        u = np.zeros((16, 16))
        f = np.zeros((16, 16))
        gs_sweep(u, f, 1.0)
        assert np.allclose(u, 0.0)

    def test_boundary_untouched(self):
        rng = np.random.default_rng(5)
        f = rng.standard_normal((16, 16))
        u, _ = gauss_seidel_poisson(f, sweeps=3)
        assert np.allclose(u[0, :], 0) and np.allclose(u[-1, :], 0)
        assert np.allclose(u[:, 0], 0) and np.allclose(u[:, -1], 0)

    def test_residual_norm_of_exact_zero(self):
        u = np.zeros((8, 8))
        f = np.zeros((8, 8))
        assert residual_norm(u, f, 1.0) == 0.0


class TestMultigrid:
    def test_restriction_shape_and_mean(self):
        fine = np.ones((16, 16))
        coarse = restrict_full_weighting(fine)
        assert coarse.shape == (8, 8)
        # Interior coarse points average ones to one.
        assert np.allclose(coarse[2:-2, 2:-2], 1.0)

    def test_prolongation_shape(self):
        assert prolong_bilinear(np.ones((8, 8))).shape == (16, 16)

    def test_prolongation_interpolates(self):
        coarse = np.zeros((4, 4))
        coarse[1, 1] = 4.0
        fine = prolong_bilinear(coarse)
        assert fine[2, 2] == 4.0
        assert fine[3, 2] == 2.0  # halfway between 4 and 0
        assert fine[3, 3] == 1.0  # centre of the 4-0-0-0 cell

    def test_v_cycle_contracts(self):
        rng = np.random.default_rng(6)
        f = rng.standard_normal((64, 64))
        solver = MultigridPoisson(levels=3)
        _, history = solver.solve(f, cycles=3)
        assert history[1] < 0.25 * history[0]
        assert history[3] < history[1]

    def test_multigrid_beats_plain_gs(self):
        rng = np.random.default_rng(7)
        f = rng.standard_normal((64, 64))
        _, gs_hist = gauss_seidel_poisson(f, sweeps=8)
        _, mg_hist = MultigridPoisson(levels=3, pre_smooth=2, post_smooth=2).solve(
            f, cycles=2
        )
        # 2 V-cycles (≈8 smoother applications) reduce far more than 8 sweeps.
        assert mg_hist[-1] < gs_hist[-1]


class TestManagedRuns:
    def test_run_managed_gemm(self, system_factory):
        from repro.apps.gemm import run_managed_gemm

        result = run_managed_gemm(n=128, tile=64, system=system_factory())
        assert result.max_abs_error < 1e-2
        assert result.run.num_batches >= 1

    def test_run_managed_triad(self, system_factory):
        from repro.apps.triad import run_managed_triad

        result = run_managed_triad(nbytes=1 << 20, system=system_factory())
        assert result.max_abs_error == 0.0
        assert result.run.total_faults > 0

    def test_run_managed_fft(self, system_factory):
        from repro.apps.fft import run_managed_fft

        result = run_managed_fft(nbytes=1 << 20, system=system_factory())
        assert result.max_abs_error < 1e-6

    def test_run_managed_gauss_seidel(self, system_factory):
        from repro.apps.gauss_seidel import run_managed_gauss_seidel

        result = run_managed_gauss_seidel(n=512, sweeps=2, system=system_factory())
        assert result.max_abs_error == 0.0  # residual decreased
        assert result.residual_history[-1] < result.residual_history[0]

    def test_run_managed_multigrid(self, system_factory):
        from repro.apps.multigrid import run_managed_multigrid

        result = run_managed_multigrid(n=512, levels=2, cycles=1, system=system_factory())
        assert result.max_abs_error == 0.0

    def test_run_managed_bfs(self, system_factory):
        from repro.apps.graph import run_managed_bfs

        result = run_managed_bfs(num_nodes=1024, system=system_factory())
        assert result.max_abs_error == 0.0  # matches networkx everywhere
        assert result.run.total_faults > 0

    def test_run_managed_spmv(self, system_factory):
        from repro.apps.graph import run_managed_spmv

        result = run_managed_spmv(n=1024, system=system_factory())
        assert result.max_abs_error < 1e-9  # matches scipy.sparse
        assert result.run.num_batches > 0
