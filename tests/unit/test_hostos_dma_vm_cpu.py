"""Unit tests for the DMA mapper, host VM state, and CPU first-touch."""

import pytest

from repro.config import HostConfig
from repro.hostos.cost_model import CostModel
from repro.hostos.cpu import HostCpu, interleaved_first_touch, static_first_touch
from repro.hostos.dma import DmaMapper
from repro.hostos.host_vm import HostVm


class TestDmaMapper:
    def make(self):
        return DmaMapper(CostModel())

    def test_map_new_pages(self):
        dma = self.make()
        result = dma.map_pages([1, 2, 3])
        assert result.new_mappings == 3
        assert result.cost_usec > 0
        assert dma.is_mapped(2)

    def test_remap_is_free_of_new_mappings(self):
        dma = self.make()
        dma.map_pages([1, 2])
        result = dma.map_pages([1, 2])
        assert result.new_mappings == 0
        assert result.new_nodes == 0

    def test_dma_addresses_deterministic_and_distinct(self):
        dma = self.make()
        a1 = dma.dma_address_of(1)
        a2 = dma.dma_address_of(2)
        assert a1 != a2
        assert a1 >= DmaMapper.DMA_BASE

    def test_reverse_lookup(self):
        dma = self.make()
        dma.map_pages([9])
        assert dma.reverse.lookup(9) == dma.dma_address_of(9)

    def test_unmap(self):
        dma = self.make()
        dma.map_pages([1, 2])
        assert dma.unmap_pages([1, 99]) == 1
        assert not dma.is_mapped(1)
        assert dma.total_mappings == 1

    def test_slab_refill_counted(self):
        cm = CostModel()
        cm.radix_slab_size = 2
        dma = DmaMapper(cm)
        # Mapping across several radix leaf nodes crosses slab boundaries.
        result = dma.map_pages(range(0, 64 * 6, 64))
        assert result.slab_refills >= 1

    def test_cost_scales_with_mappings(self):
        dma = self.make()
        small = dma.map_pages([1000]).cost_usec
        big = self.make().map_pages(range(100)).cost_usec
        assert big > small


class TestHostVm:
    def test_cpu_touch_maps_and_validates(self):
        vm = HostVm()
        newly = vm.cpu_touch([1, 2, 3], thread_of=lambda p: 0)
        assert newly == 3
        assert vm.mapped == {1, 2, 3}
        assert vm.has_valid_data(2)

    def test_second_touch_not_new(self):
        vm = HostVm()
        vm.cpu_touch([1], thread_of=lambda p: 0)
        assert vm.cpu_touch([1], thread_of=lambda p: 0) == 0

    def test_first_touch_thread_sticky(self):
        vm = HostVm()
        vm.cpu_touch([1], thread_of=lambda p: 3)
        vm.cpu_touch([1], thread_of=lambda p: 7)  # re-touch, no remap
        assert vm.touch_thread[1] == 3

    def test_unmap_range_clears_mappings_not_validity(self):
        vm = HostVm()
        vm.cpu_touch([1, 2], thread_of=lambda p: 0)
        stats = vm.unmap_range([1, 2, 3])
        assert stats.pages_unmapped == 2
        assert not vm.mapped
        assert vm.has_valid_data(1)  # data still valid, only unmapped

    def test_unmap_distinct_threads(self):
        vm = HostVm()
        vm.cpu_touch([1, 2, 3, 4], thread_of=lambda p: p % 2)
        stats = vm.unmap_range([1, 2, 3, 4])
        assert stats.distinct_threads == 2

    def test_unmap_counters(self):
        vm = HostVm()
        vm.cpu_touch([1], thread_of=lambda p: 0)
        vm.unmap_range([1])
        vm.unmap_range([1])  # second call unmaps nothing
        assert vm.total_unmap_calls == 2
        assert vm.total_pages_unmapped == 1

    def test_mark_valid_without_mapping(self):
        vm = HostVm()
        vm.mark_valid([5])  # eviction lands data without a CPU mapping
        assert vm.has_valid_data(5)
        assert 5 not in vm.mapped

    def test_invalidate(self):
        vm = HostVm()
        vm.cpu_touch([1], thread_of=lambda p: 0)
        vm.invalidate([1])
        assert not vm.has_valid_data(1)
        assert 1 in vm.mapped  # invalidation is about data, not PTEs


class TestFirstTouch:
    def test_static_single_thread(self):
        f = static_first_touch(8, 1)
        assert all(f(i) == 0 for i in range(8))

    def test_static_two_threads(self):
        f = static_first_touch(8, 2)
        assert [f(i) for i in range(8)] == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_static_clamps_to_last_thread(self):
        f = static_first_touch(10, 3)
        assert f(9) == 2

    def test_interleaved(self):
        f = interleaved_first_touch(4)
        assert [f(i) for i in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_interleaved_granularity(self):
        f = interleaved_first_touch(2, granularity=2)
        assert [f(i) for i in range(8)] == [0, 0, 1, 1, 0, 0, 1, 1]


class TestHostCpu:
    def test_touch_cost_parallelizes(self):
        one = HostCpu(HostConfig(num_threads=1)).touch_cost_usec(1000)
        many = HostCpu(HostConfig(num_threads=10)).touch_cost_usec(1000)
        assert many == pytest.approx(one / 10)

    def test_zero_pages_free(self):
        assert HostCpu(HostConfig()).touch_cost_usec(0) == 0.0

    def test_first_touch_fn_modes(self):
        cpu = HostCpu(HostConfig(num_threads=4))
        static = cpu.first_touch_fn(16)
        inter = cpu.first_touch_fn(16, interleaved=True)
        assert static(0) == 0 and static(15) == 3
        assert inter(1) == 1
