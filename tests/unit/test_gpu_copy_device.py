"""Unit tests for the copy engine and the aggregate GPU device."""

import pytest

from repro.config import GpuConfig
from repro.errors import SimulationError
from repro.gpu.copy_engine import CopyEngine, contiguous_runs
from repro.gpu.device import ChunkAllocator, GpuDevice
from repro.units import MB, PAGE_SIZE


class TestContiguousRuns:
    def test_empty(self):
        assert contiguous_runs([]) == []

    def test_single(self):
        assert contiguous_runs([5]) == [1]

    def test_one_run(self):
        assert contiguous_runs([1, 2, 3]) == [3]

    def test_multiple_runs(self):
        assert contiguous_runs([4, 5, 6, 9, 10, 20]) == [3, 2, 1]

    def test_all_isolated(self):
        assert contiguous_runs([1, 3, 5]) == [1, 1, 1]


class TestCopyEngine:
    def make(self):
        return CopyEngine(
            bandwidth_bytes_per_usec=12884.9,
            transfer_latency_usec=4.0,
            per_run_overhead_usec=0.4,
        )

    def test_zero_bytes_free(self):
        assert self.make().cost_for_bytes(0) == 0.0

    def test_cost_includes_latency_and_wire(self):
        ce = self.make()
        cost = ce.cost_for_bytes(PAGE_SIZE)
        assert cost == pytest.approx(4.0 + 4096 / 12884.9)

    def test_burst_pays_latency_once(self):
        ce = self.make()
        one = ce.host_to_device([4])
        ce2 = self.make()
        split = ce2.host_to_device([2, 2])
        # Same bytes; split pays one extra per-run overhead, not extra latency.
        assert split == pytest.approx(one + 0.4)

    def test_traffic_accounting(self):
        ce = self.make()
        ce.host_to_device([2, 3])
        assert ce.bytes_h2d == 5 * PAGE_SIZE
        assert ce.transfers_h2d == 2

    def test_d2h_accounting(self):
        ce = self.make()
        ce.device_to_host([4])
        assert ce.bytes_d2h == 4 * PAGE_SIZE
        assert ce.transfers_d2h == 1

    def test_empty_burst_free(self):
        assert self.make().host_to_device([]) == 0.0

    def test_more_bytes_cost_more(self):
        ce = self.make()
        assert ce.cost_for_bytes(2 * PAGE_SIZE) > ce.cost_for_bytes(PAGE_SIZE)


class TestChunkAllocator:
    def test_allocates_all_chunks(self):
        alloc = ChunkAllocator(4)
        chunks = [alloc.allocate() for _ in range(4)]
        assert sorted(chunks) == [0, 1, 2, 3]
        assert alloc.allocate() is None

    def test_free_and_reuse(self):
        alloc = ChunkAllocator(1)
        chunk = alloc.allocate()
        assert alloc.allocate() is None
        alloc.free(chunk)
        assert alloc.allocate() == chunk

    def test_counters(self):
        alloc = ChunkAllocator(2)
        alloc.free(alloc.allocate())
        assert alloc.total_allocs == 1
        assert alloc.total_frees == 1
        assert alloc.free_chunks == 2
        assert alloc.used_chunks == 0

    def test_invalid_free(self):
        with pytest.raises(SimulationError):
            ChunkAllocator(2).free(5)

    def test_double_free_guarded(self):
        alloc = ChunkAllocator(2)
        chunk = alloc.allocate()
        alloc.free(chunk)
        with pytest.raises(SimulationError):
            alloc.free(chunk)


class TestGpuDevice:
    def make(self, num_sms=8, mem_mb=16):
        cfg = GpuConfig(num_sms=num_sms, memory_bytes=mem_mb * MB)
        return GpuDevice(cfg, copy_bandwidth_bytes_per_usec=12884.9, copy_latency_usec=4.0)

    def test_structure(self):
        dev = self.make()
        assert len(dev.sms) == 8
        assert len(dev.utlbs) == 4
        assert dev.chunks.total_chunks == 8  # 16 MiB / 2 MiB

    def test_utlb_for_sm(self):
        dev = self.make()
        assert dev.utlb_for_sm(0) is dev.utlbs[0]
        assert dev.utlb_for_sm(3) is dev.utlbs[1]

    def test_replay_all(self):
        dev = self.make()
        dev.utlbs[0].request(1)
        dev.replay_all()
        assert all(u.outstanding == 0 for u in dev.utlbs)

    def test_idle_initially(self):
        assert self.make().idle

    def test_reset_scheduling(self):
        from repro.gpu.warp import Phase, WarpProgram

        dev = self.make()
        dev.sms[0].enqueue(WarpProgram([Phase.of([1])]))
        assert not dev.idle
        dev.reset_scheduling()
        assert dev.idle
