"""Unit tests for the cost model's composite functions and calibration
relationships the figures depend on."""

import numpy as np
import pytest

from repro.hostos.cost_model import CostModel
from repro.units import PAGE_SIZE


class TestComposites:
    def make(self):
        return CostModel()

    def test_fetch_cost_affine(self):
        cm = self.make()
        assert cm.fetch_cost(0) == cm.fetch_base_usec
        assert cm.fetch_cost(10) == pytest.approx(
            cm.fetch_base_usec + 10 * cm.fetch_per_fault_usec
        )

    def test_preprocess_cost_affine(self):
        cm = self.make()
        assert cm.preprocess_cost(100) > cm.preprocess_cost(0)

    def test_population_linear(self):
        cm = self.make()
        assert cm.population_cost(10) == pytest.approx(10 * cm.population_per_page_usec)

    def test_unmap_zero_pages_free(self):
        assert self.make().unmap_cost(0, 5) == 0.0

    def test_unmap_single_thread_baseline(self):
        cm = self.make()
        cost = cm.unmap_cost(100, 1)
        assert cost == pytest.approx(cm.unmap_base_usec + 100 * cm.unmap_per_page_usec)

    def test_unmap_inflates_with_threads(self):
        cm = self.make()
        assert cm.unmap_cost(100, 8) > cm.unmap_cost(100, 1)

    def test_unmap_thread_cap(self):
        cm = self.make()
        assert cm.unmap_cost(100, cm.unmap_thread_cap) == pytest.approx(
            cm.unmap_cost(100, cm.unmap_thread_cap + 50)
        )

    def test_dma_cost_components(self):
        cm = self.make()
        base = cm.dma_cost(10, 0, 0)
        with_nodes = cm.dma_cost(10, 3, 0)
        with_refill = cm.dma_cost(10, 3, 1)
        assert with_nodes == pytest.approx(base + 3 * cm.radix_node_alloc_usec)
        assert with_refill == pytest.approx(with_nodes + cm.radix_slab_refill_usec)

    def test_link_bandwidth_conversion(self):
        cm = self.make()
        assert cm.link_bandwidth_bytes_per_usec == pytest.approx(
            cm.link_bandwidth_bytes_per_sec / 1e6
        )


class TestJitter:
    def test_no_rng_passthrough(self):
        cm = CostModel()
        assert cm.jitter(None, 10.0) == 10.0

    def test_zero_frac_passthrough(self):
        cm = CostModel(jitter_frac=0.0)
        rng = np.random.default_rng(0)
        assert cm.jitter(rng, 10.0) == 10.0

    def test_jitter_bounded_positive(self):
        cm = CostModel(jitter_frac=0.5)
        rng = np.random.default_rng(0)
        values = [cm.jitter(rng, 10.0) for _ in range(200)]
        assert all(v > 0 for v in values)

    def test_jitter_centered(self):
        cm = CostModel(jitter_frac=0.05)
        rng = np.random.default_rng(0)
        values = [cm.jitter(rng, 10.0) for _ in range(2000)]
        assert np.mean(values) == pytest.approx(10.0, rel=0.02)

    def test_zero_base_passthrough(self):
        cm = CostModel()
        rng = np.random.default_rng(0)
        assert cm.jitter(rng, 0.0) == 0.0


class TestOverrides:
    def test_apply_overrides(self):
        cm = CostModel().apply_overrides({"replay_usec": 99.0})
        assert cm.replay_usec == 99.0

    def test_unknown_override_rejected(self):
        with pytest.raises(AttributeError):
            CostModel().apply_overrides({"nope": 1})


class TestCalibration:
    """Relationships the paper's figures rely on."""

    def test_management_dominates_wire_time(self):
        """Fig 7: per-page management cost exceeds 3x the wire time, so
        transfer stays below ~25 % of batch time."""
        cm = CostModel()
        wire = PAGE_SIZE / cm.link_bandwidth_bytes_per_usec
        per_page_mgmt = (
            cm.fetch_per_fault_usec
            + cm.preprocess_per_fault_usec
            + cm.fault_service_per_page_usec
            + cm.migration_prep_per_page_usec
            + cm.pagetable_per_page_usec
        )
        assert per_page_mgmt > 3 * wire

    def test_batch_overhead_beats_duplicate_cost(self):
        """Fig 9: one extra batch costs more than fetching a modest number
        of extra duplicates, so larger batch caps win."""
        cm = CostModel()
        per_batch_fixed = cm.fetch_base_usec + cm.preprocess_base_usec + cm.replay_usec
        dup_cost_100 = 100 * (cm.fetch_per_fault_usec + cm.preprocess_per_fault_usec)
        assert per_batch_fixed > dup_cost_100

    def test_unmap_is_significant_per_block(self):
        """§4.4: a fully-mapped block's unmap cost is a significant fraction
        of its transfer cost."""
        cm = CostModel()
        unmap = cm.unmap_cost(512, 1)
        transfer = 512 * PAGE_SIZE / cm.link_bandwidth_bytes_per_usec
        assert unmap > 0.3 * transfer

    def test_dma_block_init_is_heavy(self):
        """§5.2: first-access DMA-state creation for a full block rivals the
        block's transfer time."""
        cm = CostModel()
        dma = cm.dma_cost(512, 9, 0)
        transfer = 512 * PAGE_SIZE / cm.link_bandwidth_bytes_per_usec
        assert dma > 0.8 * transfer
