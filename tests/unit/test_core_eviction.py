"""Unit tests for the LRU VABlock eviction policy (§5.1, §5.4)."""

import pytest

from repro.core.eviction import LruEvictionPolicy
from repro.errors import OutOfDeviceMemory


class TestOrdering:
    def test_victim_is_earliest_allocated(self):
        lru = LruEvictionPolicy()
        for block in (1, 2, 3):
            lru.on_gpu_allocated(block)
        assert lru.pick_victim(set()) == 1

    def test_fault_service_refreshes(self):
        lru = LruEvictionPolicy()
        for block in (1, 2, 3):
            lru.on_gpu_allocated(block)
        lru.on_fault_service(1)
        assert lru.pick_victim(set()) == 2

    def test_reallocation_moves_to_mru(self):
        lru = LruEvictionPolicy()
        lru.on_gpu_allocated(1)
        lru.on_gpu_allocated(2)
        lru.on_gpu_allocated(1)  # re-allocated
        assert lru.pick_victim(set()) == 2

    def test_dense_access_degenerates_to_fifo(self):
        """§5.4: with no hit information, LRU = earliest allocated."""
        lru = LruEvictionPolicy()
        for block in range(10):
            lru.on_gpu_allocated(block)
        order = []
        while len(lru):
            victim = lru.pick_victim(set())
            order.append(victim)
            lru.on_evicted(victim)
        assert order == list(range(10))

    def test_lru_order_iterator(self):
        lru = LruEvictionPolicy()
        for block in (5, 3, 9):
            lru.on_gpu_allocated(block)
        assert list(lru.lru_order()) == [5, 3, 9]


class TestExclusion:
    def test_exclude_skips(self):
        lru = LruEvictionPolicy()
        lru.on_gpu_allocated(1)
        lru.on_gpu_allocated(2)
        assert lru.pick_victim({1}) == 2

    def test_all_excluded_returns_none(self):
        lru = LruEvictionPolicy()
        lru.on_gpu_allocated(1)
        assert lru.pick_victim({1}) is None

    def test_require_victim_raises(self):
        lru = LruEvictionPolicy()
        with pytest.raises(OutOfDeviceMemory):
            lru.require_victim(set())

    def test_require_victim_raises_when_pinned(self):
        lru = LruEvictionPolicy()
        lru.on_gpu_allocated(1)
        with pytest.raises(OutOfDeviceMemory):
            lru.require_victim({1})


class TestBookkeeping:
    def test_eviction_removes_and_counts(self):
        lru = LruEvictionPolicy()
        lru.on_gpu_allocated(1)
        lru.on_evicted(1)
        assert 1 not in lru
        assert lru.total_evictions == 1
        assert len(lru) == 0

    def test_fault_service_on_absent_block_harmless(self):
        lru = LruEvictionPolicy()
        lru.on_fault_service(42)  # never allocated
        assert len(lru) == 0

    def test_evict_absent_block_still_counts(self):
        lru = LruEvictionPolicy()
        lru.on_evicted(42)
        assert lru.total_evictions == 1

    def test_contains(self):
        lru = LruEvictionPolicy()
        lru.on_gpu_allocated(7)
        assert 7 in lru
        assert 8 not in lru
