"""Unit tests for the fault buffer, GMMU routing, and GPU page table."""

import pytest

from repro.gpu.fault import AccessType, Fault
from repro.gpu.fault_buffer import FaultBuffer
from repro.gpu.gmmu import Gmmu
from repro.gpu.page_table import GpuPageTable


def fault(page=1, access=AccessType.READ, sm=0, ts=0.0):
    return Fault(page, access, sm, sm // 2, warp_uid=1, timestamp=ts)


class TestFaultBuffer:
    def test_push_and_len(self):
        buf = FaultBuffer(4)
        assert buf.push(fault(1))
        assert len(buf) == 1

    def test_overflow_drops(self):
        buf = FaultBuffer(2)
        assert buf.push(fault(1))
        assert buf.push(fault(2))
        assert not buf.push(fault(3))
        assert buf.total_overflow_dropped == 1
        assert len(buf) == 2

    def test_fetch_fifo_order(self):
        buf = FaultBuffer(8)
        for p in (10, 11, 12):
            buf.push(fault(p))
        fetched = buf.fetch(2)
        assert [f.page for f in fetched] == [10, 11]
        assert len(buf) == 1

    def test_fetch_more_than_present(self):
        buf = FaultBuffer(8)
        buf.push(fault(1))
        assert len(buf.fetch(100)) == 1

    def test_flush_returns_dropped(self):
        buf = FaultBuffer(8)
        for p in range(3):
            buf.push(fault(p))
        buf.fetch(1)
        dropped = buf.flush()
        assert [f.page for f in dropped] == [1, 2]
        assert buf.total_flush_dropped == 2
        assert len(buf) == 0

    def test_counters(self):
        buf = FaultBuffer(2)
        buf.push(fault(1))
        buf.push(fault(2))
        buf.push(fault(3))  # overflow
        assert buf.total_pushed == 2


class TestGmmu:
    def test_deliver_sets_utlb_from_sm(self):
        gmmu = Gmmu(FaultBuffer(8), sms_per_utlb=2)
        f = gmmu.deliver(7, AccessType.READ, sm_id=5, warp_uid=1, timestamp=1.0)
        assert f.utlb_id == 2

    def test_interrupt_latched_on_first_fault(self):
        gmmu = Gmmu(FaultBuffer(8), sms_per_utlb=2)
        assert not gmmu.interrupt_pending
        gmmu.deliver(1, AccessType.READ, 0, 1, 5.0)
        assert gmmu.interrupt_pending
        assert gmmu.first_arrival == 5.0

    def test_first_arrival_not_overwritten(self):
        gmmu = Gmmu(FaultBuffer(8), sms_per_utlb=2)
        gmmu.deliver(1, AccessType.READ, 0, 1, 5.0)
        gmmu.deliver(2, AccessType.READ, 0, 1, 6.0)
        assert gmmu.first_arrival == 5.0

    def test_acknowledge_clears(self):
        gmmu = Gmmu(FaultBuffer(8), sms_per_utlb=2)
        gmmu.deliver(1, AccessType.READ, 0, 1, 5.0)
        gmmu.acknowledge()
        assert not gmmu.interrupt_pending
        assert gmmu.first_arrival is None

    def test_full_buffer_returns_none(self):
        gmmu = Gmmu(FaultBuffer(1), sms_per_utlb=2)
        assert gmmu.deliver(1, AccessType.READ, 0, 1, 0.0) is not None
        assert gmmu.deliver(2, AccessType.READ, 0, 1, 0.0) is None


class TestGpuPageTable:
    def test_map_and_query(self):
        pt = GpuPageTable()
        added = pt.map_pages([1, 2, 3])
        assert added == 3
        assert pt.is_resident(2)
        assert not pt.is_resident(4)

    def test_remap_counts_once(self):
        pt = GpuPageTable()
        pt.map_pages([1, 2])
        assert pt.map_pages([2, 3]) == 1
        assert pt.total_mapped == 3

    def test_unmap(self):
        pt = GpuPageTable()
        pt.map_pages([1, 2, 3])
        removed = pt.unmap_pages([2, 99])
        assert removed == 1
        assert not pt.is_resident(2)
        assert len(pt) == 2

    def test_len(self):
        pt = GpuPageTable()
        pt.map_pages(range(10))
        assert len(pt) == 10


class TestFaultRecord:
    def test_flags(self):
        f = fault(access=AccessType.PREFETCH)
        assert f.is_prefetch and not f.is_write
        w = fault(access=AccessType.WRITE)
        assert w.is_write and not w.is_prefetch
