"""Unit tests for the persistent campaign run ledger.

The contracts under test: per-job state transitions are committed as they
happen and audited in ``transitions``; ``begin(resume=True)`` validates
spec identity and distrusts stale in-flight rows; stored ``done`` rows
round-trip to the exact canonical bytes :func:`repro.campaign.to_ndjson`
emits, which is what makes resume byte-identical.
"""

import json

import pytest

from repro.campaign import CampaignSpec, RunLedger, spec_hash, to_ndjson
from repro.campaign.ledger import DONE, FAILED, PENDING, RUNNING
from repro.errors import ConfigError

SPEC_DOC = {
    "name": "ledger-unit",
    "workloads": ["vecadd"],
    "configs": [{"label": "base", "overrides": {}}],
    "seeds": [0, 1],
    "base_overrides": {"gpu.memory_bytes": 33554432},
}


@pytest.fixture()
def spec():
    return CampaignSpec.from_dict(SPEC_DOC)


@pytest.fixture()
def ledger(tmp_path):
    with RunLedger(tmp_path / "run.ledger") as led:
        yield led


class TestBegin:
    def test_fresh_begin_seeds_pending_jobs(self, ledger, spec):
        ledger.begin(spec)
        jobs = ledger.jobs()
        assert [j.index for j in jobs] == [0, 1]
        assert all(j.state == PENDING and j.attempts == 0 for j in jobs)
        assert ledger.stored_spec_hash == spec_hash(spec)
        assert ledger.campaign_name == "ledger-unit"

    def test_fresh_begin_resets_a_prior_run(self, ledger, spec):
        ledger.begin(spec)
        ledger.job_started(0, 1, resume=False)
        ledger.begin(spec)
        assert all(j.state == PENDING for j in ledger.jobs())
        assert ledger.transitions() == []

    def test_resume_requires_a_prior_run(self, ledger, spec):
        with pytest.raises(ConfigError, match="nothing to resume"):
            ledger.begin(spec, resume=True)

    def test_resume_rejects_a_different_spec(self, ledger, spec):
        ledger.begin(spec)
        other = CampaignSpec.from_dict({**SPEC_DOC, "seeds": [7]})
        with pytest.raises(ConfigError, match="spec hash mismatch"):
            ledger.begin(other, resume=True)

    def test_resume_fails_stale_running_rows(self, ledger, spec):
        ledger.begin(spec)
        ledger.job_started(0, 1, resume=False)
        assert ledger.job(0).state == RUNNING
        ledger.begin(spec, resume=True)
        stale = ledger.job(0)
        assert stale.state == FAILED
        assert stale.failure_class == "interrupt"
        assert ledger.transitions(0)[-1]["event"] == "stale-failed"
        # The untouched job is unaffected.
        assert ledger.job(1).state == PENDING


class TestTransitions:
    def test_full_lifecycle_is_audited(self, ledger, spec):
        ledger.begin(spec)
        ledger.job_started(0, 1, resume=False)
        ledger.job_checkpoint(0, 1, "/tmp/cell-0.ckpt", 8)
        ledger.job_killed(0, 1, "SIGTERM")
        ledger.job_retry(0, 1, "hang", "stalled", 0.25)
        ledger.job_started(0, 2, resume=True)
        ledger.job_resumed(0, 2, 8)
        row = {"index": 0, "status": "ok", "result": {"batches": 9}}
        ledger.job_done(0, 2, row)
        events = [t["event"] for t in ledger.transitions(0)]
        assert events == [
            "start", "checkpoint", "kill", "retry", "start", "resume", "done",
        ]
        info = ledger.job(0)
        assert info.state == DONE
        assert info.attempts == 2
        assert info.checkpoint_path == "/tmp/cell-0.ckpt"
        assert info.checkpoint_batches == 8
        assert info.row == row

    def test_retry_returns_job_to_pending(self, ledger, spec):
        ledger.begin(spec)
        ledger.job_started(0, 1, resume=False)
        ledger.job_retry(0, 1, "crash", "worker died", 0.5)
        info = ledger.job(0)
        assert info.state == PENDING
        assert info.failure_class == "crash"

    def test_failed_row_is_stored(self, ledger, spec):
        ledger.begin(spec)
        ledger.job_started(1, 1, resume=False)
        row = {
            "index": 1,
            "status": "failed",
            "error": {"class": "injected", "type": "InjectedCrash"},
        }
        ledger.job_failed(1, 1, "injected", row, "boom")
        info = ledger.job(1)
        assert info.state == FAILED
        assert info.failure_class == "injected"
        assert info.row == row

    def test_writes_counter_counts_mutations(self, ledger, spec):
        ledger.begin(spec)
        before = ledger.writes
        ledger.job_started(0, 1, resume=False)
        ledger.job_done(0, 1, {"index": 0})
        assert ledger.writes == before + 2


class TestCanonicalRows:
    def test_completed_rows_round_trip_to_identical_bytes(self, ledger, spec):
        ledger.begin(spec)
        rows = [
            {"index": 0, "status": "ok", "seed": 0,
             "result": {"batches": 2, "clock_usec": 1234}},
            {"index": 1, "status": "ok", "seed": 1,
             "result": {"batches": 2, "clock_usec": 5678}},
        ]
        for row in rows:
            ledger.job_done(row["index"], 1, row)
        replayed = ledger.completed_rows()
        assert to_ndjson([replayed[0], replayed[1]]) == to_ndjson(rows)

    def test_completed_rows_skips_unfinished_jobs(self, ledger, spec):
        ledger.begin(spec)
        ledger.job_done(0, 1, {"index": 0})
        ledger.job_started(1, 1, resume=False)
        assert set(ledger.completed_rows()) == {0}

    def test_ledger_survives_reopen(self, tmp_path, spec):
        path = tmp_path / "run.ledger"
        with RunLedger(path) as led:
            led.begin(spec)
            led.job_done(0, 1, {"index": 0, "status": "ok"})
        with RunLedger(path) as led:
            assert led.stored_spec_hash == spec_hash(spec)
            assert led.completed_rows()[0] == {"index": 0, "status": "ok"}


class TestSpecHash:
    def test_hash_is_stable_and_sensitive(self, spec):
        assert spec_hash(spec) == spec_hash(CampaignSpec.from_dict(SPEC_DOC))
        other = CampaignSpec.from_dict({**SPEC_DOC, "seeds": [0, 2]})
        assert spec_hash(spec) != spec_hash(other)

    def test_hash_is_json_canonical(self, spec):
        # Implementation detail worth pinning: the digest must not depend
        # on dict iteration order.
        digest = spec_hash(spec)
        assert len(digest) == 64 and int(digest, 16) >= 0
