"""Unit tests for the content-addressed campaign result cache."""

from repro.campaign import ResultCache, cache_key, code_version
from repro.campaign.cache import canonical_config_doc
from repro.config import default_config


class TestCacheKey:
    def test_stable_for_identical_inputs(self):
        assert cache_key("vecadd", 0, default_config()) == cache_key(
            "vecadd", 0, default_config()
        )

    def test_varies_with_workload_seed_and_config(self):
        base = cache_key("vecadd", 0, default_config())
        assert cache_key("stream", 0, default_config()) != base
        assert cache_key("vecadd", 1, default_config()) != base
        cfg = default_config()
        cfg.driver.batch_size //= 2
        assert cache_key("vecadd", 0, cfg) != base

    def test_obs_settings_do_not_invalidate(self):
        cfg = default_config()
        dark = default_config()
        dark.obs = dark.obs.disabled()
        assert cache_key("vecadd", 0, cfg) == cache_key("vecadd", 0, dark)

    def test_canonical_doc_drops_obs_only(self):
        doc = canonical_config_doc(default_config())
        assert "obs" not in doc
        assert {"gpu", "driver", "host", "check", "inject", "seed"} <= set(doc)

    def test_code_version_is_hex_digest(self):
        version = code_version()
        assert len(version) == 64
        int(version, 16)


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("ab" * 32) is None
        cache.put("ab" * 32, {"result": {"x": 1}})
        assert cache.get("ab" * 32) == {"result": {"x": 1}}
        assert (cache.hits, cache.misses) == (1, 1)

    def test_sharded_layout(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "cd" * 32
        cache.put(key, {})
        assert (tmp_path / "cd" / (key + ".json")).exists()

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ef" * 32
        cache.put(key, {"ok": True})
        path = tmp_path / "ef" / (key + ".json")
        path.write_text("{torn")
        assert cache.get(key) is None
        assert (cache.hits, cache.misses) == (0, 1)

    def test_no_tmp_files_left_behind(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("12" * 32, {"x": 1})
        leftovers = [p for p in tmp_path.rglob("*") if p.name.endswith(".tmp")]
        assert leftovers == []

    def test_blob_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get_blob("34" * 32) is None
        cache.put_blob("34" * 32, b"\x00payload")
        assert cache.get_blob("34" * 32) == b"\x00payload"

    def test_stats(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.get("56" * 32)
        assert cache.stats() == {"root": str(tmp_path), "hits": 0, "misses": 1}
