"""Unit tests for engine internals: throttle windows, staggering, requeue
paths, host-touch edge cases, and hint/eviction interplay."""

import pytest

from repro.api import UvmSystem
from repro.config import default_config
from repro.errors import DeadlockError, OutOfDeviceMemory
from repro.gpu.fault import AccessType
from repro.gpu.warp import KernelLaunch, Phase, WarpProgram
from repro.units import MB, PAGE_SIZE, PAGES_PER_VABLOCK


def make_system(gpu_mem_mb=16, num_sms=8, prefetch=False, **kw):
    cfg = default_config(prefetch_enabled=prefetch, **kw)
    cfg.gpu.num_sms = num_sms
    cfg.gpu.memory_bytes = gpu_mem_mb * MB
    cfg.cost_overrides = {"jitter_frac": 0.0}
    return UvmSystem(cfg)


class TestThrottleWindows:
    def test_burst_after_sleep(self):
        """The first batch after a sleeping driver reaches the µTLB cap."""
        system = make_system()
        alloc = system.managed_alloc(2 * MB)
        reads = [alloc.page(i) for i in range(100)]
        kernel = KernelLaunch("burst", [WarpProgram([Phase.of(reads)])])
        res = system.launch(kernel)
        assert res.records[0].num_faults_raw == system.config.gpu.utlb_outstanding_limit

    def test_window_quota_scales_with_service_time(self):
        """Longer batch servicing windows admit more faults per SM."""
        system = make_system()
        alloc = system.managed_alloc(4 * MB)
        system.host_touch(alloc)
        # Two phases per warp so the second round runs with a busy driver.
        programs = []
        for k in range(4):
            base = k * 256
            phases = [
                Phase.of([alloc.page(base + i) for i in range(128)]),
                Phase.of([alloc.page(base + 128 + i) for i in range(128)]),
            ]
            programs.append(WarpProgram(phases))
        res = system.launch(KernelLaunch("w", programs))
        later = [r.num_faults_raw for r in res.records[1:]]
        # Steady-state batches exceed the base per-round quota because the
        # window length (≈ previous service time) scales the quota.
        assert max(later) > system.config.gpu.sm_fault_rate_limit * 4

    def test_launch_stagger_spreads_starts(self):
        """Warps on the same SM start with a skew between waves."""
        system = make_system(num_sms=2)
        alloc = system.managed_alloc(2 * MB)
        programs = [
            WarpProgram([Phase.of([alloc.page(i)], compute_usec=0.0)])
            for i in range(8)
        ]
        kernel = KernelLaunch("stagger", programs, occupancy=4)
        system.launch(kernel)
        # All warps completed despite staggered ready times.
        assert system.engine.device.idle


class TestRequeuePaths:
    def test_flush_dropped_faults_reissue(self):
        """Faults flushed behind a tiny batch cap are reissued and served."""
        system = make_system(batch_size=4)
        alloc = system.managed_alloc(2 * MB)
        reads = [alloc.page(i) for i in range(64)]
        res = system.launch(KernelLaunch("f", [WarpProgram([Phase.of(reads)])]))
        pt = system.engine.device.page_table
        assert all(pt.is_resident(p) for p in reads)
        assert sum(r.dropped_at_flush for r in res.records) > 0

    def test_hw_buffer_overflow_recovers(self):
        """A 16-entry hardware buffer drops floods but the run completes."""
        cfg = default_config(prefetch_enabled=False)
        cfg.gpu.num_sms = 8
        cfg.gpu.memory_bytes = 16 * MB
        cfg.gpu.fault_buffer_entries = 16
        cfg.cost_overrides = {"jitter_frac": 0.0}
        system = UvmSystem(cfg)
        alloc = system.managed_alloc(2 * MB)
        reads = [alloc.page(i) for i in range(256)]
        programs = [
            WarpProgram([Phase.of(reads[i::4])]) for i in range(4)
        ]
        res = system.launch(KernelLaunch("flood", programs))
        pt = system.engine.device.page_table
        assert all(pt.is_resident(p) for p in reads)

    def test_page_in_two_warps_one_fault(self):
        """Same-µTLB same-page requests merge into one buffer entry."""
        system = make_system(num_sms=2)
        alloc = system.managed_alloc(PAGE_SIZE)
        programs = [
            WarpProgram([Phase.of([alloc.page(0)])]) for _ in range(2)
        ]
        # Both programs land on SM 0 and 1 (µTLB 0): the second request of
        # page 0 merges (or emits a spurious duplicate at the cadence).
        res = system.launch(KernelLaunch("merge", programs))
        assert sum(r.num_faults_raw for r in res.records) <= 2
        assert sum(r.num_faults_unique for r in res.records) == 1


class TestHostTouchEdges:
    def test_empty_touch_is_noop(self):
        system = make_system()
        t0 = system.clock.now
        system.engine.host_touch([])
        assert system.clock.now == t0

    def test_retouch_after_eviction_rearms_unmap(self):
        """CPU re-touch restores mappings: the next GPU touch pays unmap."""
        system = make_system(gpu_mem_mb=4)
        alloc = system.managed_alloc(2 * MB)
        system.host_touch(alloc)
        reads = list(alloc.pages(0, 64))
        system.launch(KernelLaunch("k1", [WarpProgram([Phase.of(reads)])]))
        first_unmaps = sum(r.unmap_calls for r in system.records)
        system.host_touch(alloc)  # CPU re-touches → remapped
        system.launch(KernelLaunch("k2", [WarpProgram([Phase.of(reads)])]))
        assert sum(r.unmap_calls for r in system.records) > first_unmaps

    def test_touch_migrates_only_resident(self):
        system = make_system()
        alloc = system.managed_alloc(2 * MB)
        system.launch(
            KernelLaunch("k", [WarpProgram([Phase.of(list(alloc.pages(0, 8)))])])
        )
        before_d2h = system.engine.device.copy_engine.bytes_d2h
        system.host_touch(alloc)
        moved = system.engine.device.copy_engine.bytes_d2h - before_d2h
        assert moved == 8 * PAGE_SIZE


class TestHintEvictionInterplay:
    def test_bulk_migrate_evicts_under_pressure(self):
        system = make_system(gpu_mem_mb=4)  # 2 chunks
        a = system.managed_alloc(2 * MB, "a")
        b = system.managed_alloc(2 * MB, "b")
        c = system.managed_alloc(2 * MB, "c")
        for alloc in (a, b, c):
            system.host_touch(alloc)
        system.mem_prefetch(a)
        system.mem_prefetch(b)
        record = system.mem_prefetch(c)  # must evict a
        assert record.evictions >= 1
        assert not system.engine.device.page_table.is_resident(a.page(0))

    def test_bulk_migrate_eviction_disabled_raises(self):
        system = make_system(gpu_mem_mb=4, eviction_enabled=False)
        a = system.managed_alloc(2 * MB)
        b = system.managed_alloc(2 * MB)
        c = system.managed_alloc(2 * MB)
        system.mem_prefetch(a)
        system.mem_prefetch(b)
        with pytest.raises(OutOfDeviceMemory):
            system.mem_prefetch(c)

    def test_read_mostly_block_eviction_keeps_host_copy(self):
        system = make_system(gpu_mem_mb=4)
        a = system.managed_alloc(2 * MB, "a")
        system.host_touch(a)
        system.mem_advise_read_mostly(a)
        system.mem_prefetch(a)
        # Force eviction of a's block.
        b = system.managed_alloc(2 * MB, "b")
        c = system.managed_alloc(2 * MB, "c")
        system.mem_prefetch(b)
        system.mem_prefetch(c)
        assert not system.engine.device.page_table.is_resident(a.page(0))
        # The duplicate host copy was never invalidated.
        assert system.engine.host_vm.has_valid_data(a.page(0))
        assert a.page(0) in system.engine.host_vm.mapped

    def test_accessed_by_pages_never_evicted(self):
        system = make_system(gpu_mem_mb=4)
        zero_copy = system.managed_alloc(2 * MB, "zc")
        system.host_touch(zero_copy)
        system.mem_advise_accessed_by(zero_copy)
        # Fill device memory with other data.
        for name in ("b", "c", "d"):
            alloc = system.managed_alloc(2 * MB, name)
            system.mem_prefetch(alloc)
        # The remote mapping is untouched by eviction churn.
        assert system.engine.device.page_table.is_resident(zero_copy.page(0))


class TestMultiKernelSequences:
    def test_warm_data_reused_across_kernels(self):
        system = make_system()
        alloc = system.managed_alloc(2 * MB)
        reads = list(alloc.pages(0, 64))
        r1 = system.launch(KernelLaunch("k1", [WarpProgram([Phase.of(reads)])]))
        r2 = system.launch(KernelLaunch("k2", [WarpProgram([Phase.of(reads)])]))
        assert r1.total_faults > 0
        assert r2.total_faults == 0  # warm: everything hits

    def test_many_small_kernels(self):
        system = make_system()
        alloc = system.managed_alloc(4 * MB)
        for i in range(16):
            reads = list(alloc.pages(i * 32, (i + 1) * 32))
            res = system.launch(
                KernelLaunch(f"k{i}", [WarpProgram([Phase.of(reads)])])
            )
            assert res.num_batches >= 1
        assert len(system.records) >= 16
