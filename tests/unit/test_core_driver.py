"""Unit tests for the UvmDriver servicing path, driven by hand-crafted
faults injected straight into the hardware buffer."""

import pytest

from repro.api import UvmSystem
from repro.config import default_config
from repro.errors import InvalidAccess, OutOfDeviceMemory
from repro.gpu.fault import AccessType
from repro.units import MB, PAGES_PER_VABLOCK, PAGE_SIZE


def make_system(gpu_mem_mb=8, prefetch=False, trace=False, **driver_kw):
    cfg = default_config(prefetch_enabled=prefetch, **driver_kw)
    cfg.gpu.num_sms = 8
    cfg.gpu.memory_bytes = gpu_mem_mb * MB
    cfg.cost_overrides = {"jitter_frac": 0.0}
    return UvmSystem(cfg, trace=trace)


def inject(system, pages, access=AccessType.READ, sm=0):
    gmmu = system.engine.device.gmmu
    for i, page in enumerate(pages):
        assert gmmu.deliver(page, access, sm, warp_uid=0, timestamp=float(i)) is not None


def service(system, slept=False):
    return system.engine.driver.service_next_batch(slept=slept)


class TestBasicService:
    def test_faulted_pages_become_resident(self):
        system = make_system()
        alloc = system.managed_alloc(10 * PAGE_SIZE)
        inject(system, [alloc.page(0), alloc.page(3)])
        outcome = service(system)
        assert set(outcome.serviced_pages) == {alloc.page(0), alloc.page(3)}
        assert system.engine.device.page_table.is_resident(alloc.page(0))

    def test_record_counts(self):
        system = make_system()
        alloc = system.managed_alloc(10 * PAGE_SIZE)
        inject(system, [alloc.page(0), alloc.page(0), alloc.page(1)])
        outcome = service(system)
        r = outcome.record
        assert r.num_faults_raw == 3
        assert r.num_faults_unique == 2
        assert r.duplicate_count == 1
        assert r.num_vablocks == 1

    def test_clock_advances_by_service_time(self):
        system = make_system()
        alloc = system.managed_alloc(PAGE_SIZE)
        inject(system, [alloc.page(0)])
        t0 = system.clock.now
        outcome = service(system)
        assert system.clock.now - t0 == pytest.approx(outcome.record.duration)
        assert outcome.record.duration == pytest.approx(outcome.record.service_time)

    def test_wake_cost_only_when_slept(self):
        system = make_system()
        alloc = system.managed_alloc(10 * PAGE_SIZE)
        inject(system, [alloc.page(0)])
        slept_rec = service(system, slept=True).record
        inject(system, [alloc.page(1)])
        busy_rec = service(system, slept=False).record
        assert slept_rec.time_wake > 0
        assert busy_rec.time_wake == 0

    def test_unregistered_page_raises(self):
        system = make_system()
        system.managed_alloc(PAGE_SIZE)
        inject(system, [10_000_000])
        with pytest.raises(InvalidAccess):
            service(system)

    def test_flush_drops_beyond_batch(self):
        system = make_system(batch_size=2)
        alloc = system.managed_alloc(10 * PAGE_SIZE)
        inject(system, [alloc.page(i) for i in range(5)])
        outcome = service(system)
        assert outcome.record.num_faults_raw == 2
        assert outcome.record.dropped_at_flush == 3
        assert len(outcome.dropped_faults) == 3
        assert len(system.engine.device.fault_buffer) == 0

    def test_replay_clears_utlbs(self):
        system = make_system()
        alloc = system.managed_alloc(PAGE_SIZE)
        system.engine.device.utlbs[0].request(alloc.page(0))
        inject(system, [alloc.page(0)])
        service(system)
        assert all(u.outstanding == 0 for u in system.engine.device.utlbs)


class TestMigrationPaths:
    def test_host_valid_pages_transfer(self):
        system = make_system()
        alloc = system.managed_alloc(10 * PAGE_SIZE)
        system.host_touch(alloc)
        inject(system, [alloc.page(0)])
        r = service(system).record
        assert r.pages_migrated_h2d == 1
        assert r.bytes_h2d == PAGE_SIZE
        assert r.time_transfer_h2d > 0

    def test_untouched_pages_populate(self):
        system = make_system()
        alloc = system.managed_alloc(10 * PAGE_SIZE)
        inject(system, [alloc.page(0)])
        r = service(system).record
        assert r.pages_migrated_h2d == 0
        assert r.pages_populated == 1
        assert r.time_population > 0

    def test_unmap_on_first_gpu_touch_of_mapped_block(self):
        system = make_system()
        alloc = system.managed_alloc(10 * PAGE_SIZE)
        system.host_touch(alloc)
        inject(system, [alloc.page(0)])
        r = service(system).record
        assert r.unmap_calls == 1
        assert r.pages_unmapped == 10
        assert r.time_unmap > 0

    def test_unmap_not_repeated(self):
        system = make_system()
        alloc = system.managed_alloc(10 * PAGE_SIZE)
        system.host_touch(alloc)
        inject(system, [alloc.page(0)])
        service(system)
        inject(system, [alloc.page(1)])
        r = service(system).record
        assert r.unmap_calls == 0

    def test_dma_state_once_per_block(self):
        system = make_system()
        alloc = system.managed_alloc(10 * PAGE_SIZE)
        inject(system, [alloc.page(0)])
        first = service(system).record
        inject(system, [alloc.page(1)])
        second = service(system).record
        assert first.new_dma_blocks == 1
        assert first.dma_mappings_created == 10
        assert second.new_dma_blocks == 0
        assert second.time_dma == 0.0

    def test_gpu_write_invalidates_host_copy(self):
        system = make_system()
        alloc = system.managed_alloc(10 * PAGE_SIZE)
        system.host_touch(alloc)
        inject(system, [alloc.page(0)], access=AccessType.WRITE)
        service(system)
        assert not system.engine.host_vm.has_valid_data(alloc.page(0))


class TestPrefetchIntegration:
    def test_prefetch_expands_target(self):
        system = make_system(prefetch=True)
        alloc = system.managed_alloc(2 * MB)
        inject(system, [alloc.page(0)])
        r = service(system).record
        assert r.pages_prefetched >= 15  # at least the 64 KiB upgrade

    def test_prefetch_disabled_services_only_faults(self):
        system = make_system(prefetch=False)
        alloc = system.managed_alloc(2 * MB)
        inject(system, [alloc.page(0)])
        r = service(system).record
        assert r.pages_prefetched == 0
        assert len(system.engine.device.page_table) == 1


class TestEviction:
    def fill_device(self, system, blocks):
        """Fault one page in each of `blocks` distinct VABlocks."""
        alloc = system.managed_alloc(blocks * 2 * MB)
        for b in range(blocks):
            inject(system, [alloc.page(b * PAGES_PER_VABLOCK)])
            service(system)
        return alloc

    def test_eviction_on_memory_pressure(self):
        system = make_system(gpu_mem_mb=4)  # 2 chunks
        alloc = self.fill_device(system, 2)
        extra = system.managed_alloc(2 * MB)
        inject(system, [extra.page(0)])
        r = service(system).record
        assert r.evictions == 1
        # The LRU victim is the first allocated block.
        assert not system.engine.device.page_table.is_resident(alloc.page(0))

    def test_eviction_lands_data_on_host_unmapped(self):
        system = make_system(gpu_mem_mb=4)
        alloc = self.fill_device(system, 2)
        extra = system.managed_alloc(2 * MB)
        inject(system, [extra.page(0)])
        service(system)
        page = alloc.page(0)
        assert system.engine.host_vm.has_valid_data(page)
        assert page not in system.engine.host_vm.mapped

    def test_refault_after_eviction_skips_unmap(self):
        """The Fig 13 'levels' mechanism."""
        system = make_system(gpu_mem_mb=4)
        alloc = self.fill_device(system, 2)
        extra = system.managed_alloc(2 * MB)
        inject(system, [extra.page(0)])
        service(system)
        # Page back in the evicted block: data transfers, but no unmap.
        inject(system, [alloc.page(0)])
        r = service(system).record
        assert r.pages_migrated_h2d == 1
        assert r.unmap_calls == 0

    def test_eviction_disabled_raises(self):
        system = make_system(gpu_mem_mb=4, eviction_enabled=False)
        self.fill_device(system, 2)
        extra = system.managed_alloc(2 * MB)
        inject(system, [extra.page(0)])
        with pytest.raises(OutOfDeviceMemory):
            service(system)

    def test_evicted_block_counter(self):
        system = make_system(gpu_mem_mb=4)
        alloc = self.fill_device(system, 2)
        extra = system.managed_alloc(2 * MB)
        inject(system, [extra.page(0)])
        service(system)
        assert system.driver.vablocks.get_for_page(alloc.page(0)).evict_count == 1


class TestPolicies:
    def test_adaptive_batch_shrinks_on_dups(self):
        system = make_system(adaptive_batch=True, batch_size=256, adaptive_batch_min=64)
        alloc = system.managed_alloc(10 * PAGE_SIZE)
        inject(system, [alloc.page(0)] * 100)  # all duplicates
        service(system)
        assert system.driver.effective_batch_size == 128

    def test_adaptive_batch_grows_back(self):
        system = make_system(adaptive_batch=True, batch_size=256, adaptive_batch_min=64)
        system.driver._current_batch_size = 64
        alloc = system.managed_alloc(10 * PAGE_SIZE)
        inject(system, [alloc.page(i) for i in range(8)])  # no duplicates
        service(system)
        assert system.driver.effective_batch_size == 128

    def test_async_unmap_not_on_critical_path(self):
        sync = make_system()
        a1 = sync.managed_alloc(10 * PAGE_SIZE)
        sync.host_touch(a1)
        inject(sync, [a1.page(0)])
        sync_rec = service(sync).record

        async_sys = make_system(async_unmap=True)
        a2 = async_sys.managed_alloc(10 * PAGE_SIZE)
        async_sys.host_touch(a2)
        inject(async_sys, [a2.page(0)])
        async_rec = service(async_sys).record

        assert async_rec.time_unmap == pytest.approx(sync_rec.time_unmap)
        assert async_rec.duration < sync_rec.duration
        assert async_sys.driver.async_unmap_backlog_usec > 0

    def test_service_threads_shorten_wallclock(self):
        serial = make_system()
        a1 = serial.managed_alloc(8 * MB)
        serial.host_touch(a1)
        inject(serial, [a1.page(b * PAGES_PER_VABLOCK) for b in range(4)])
        serial_rec = service(serial).record

        parallel = make_system(service_threads=4)
        a2 = parallel.managed_alloc(8 * MB)
        parallel.host_touch(a2)
        inject(parallel, [a2.page(b * PAGES_PER_VABLOCK) for b in range(4)])
        parallel_rec = service(parallel).record

        assert parallel_rec.duration < serial_rec.duration
        # Work (component sums) is the same either way.
        assert parallel_rec.service_time == pytest.approx(
            serial_rec.service_time, rel=0.01
        )
