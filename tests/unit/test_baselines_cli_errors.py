"""Unit tests for the explicit baseline, the CLI, and the error hierarchy."""

import pytest

from repro.baselines.explicit import ExplicitTransferModel, explicit_run_time
from repro.cli import build_parser, main
from repro.errors import (
    AllocationError,
    ConfigError,
    DeadlockError,
    FaultBufferOverflow,
    InvalidAccess,
    OutOfDeviceMemory,
    SimulationError,
    UvmError,
)
from repro.hostos.cost_model import CostModel
from repro.units import MB


class TestExplicitBaseline:
    def make(self):
        return ExplicitTransferModel(CostModel())

    def test_h2d_time_positive(self):
        assert self.make().h2d_time(1 * MB) > 0

    def test_zero_bytes_free(self):
        assert self.make().h2d_time(0) == 0.0

    def test_run_time_includes_both_directions(self):
        m = self.make()
        combined = m.run_time(bytes_in=1 * MB, bytes_out=1 * MB)
        assert combined == pytest.approx(m.h2d_time(1 * MB) + m.d2h_time(1 * MB))

    def test_chunking_adds_latency(self):
        m = self.make()
        one = m.run_time(bytes_in=64 * MB, bytes_out=0, chunk_bytes=64 * MB)
        many = m.run_time(bytes_in=64 * MB, bytes_out=0, chunk_bytes=16 * MB)
        assert many > one

    def test_per_access_latency(self):
        m = self.make()
        lat = m.per_access_latency(1 * MB, 1 * MB, num_page_accesses=512)
        assert lat > 0

    def test_per_access_latency_requires_accesses(self):
        with pytest.raises(ValueError):
            self.make().per_access_latency(1, 1, 0)

    def test_convenience_wrapper(self):
        assert explicit_run_time(1 * MB, 0) > 0

    def test_uvm_fault_path_slower_than_explicit(self, system_factory):
        """Fig 1's core claim at unit scale: servicing one page through the
        fault path costs more than its share of a bulk copy."""
        from repro.gpu.fault import AccessType

        system = system_factory(prefetch_enabled=False)
        alloc = system.managed_alloc(1 * MB)
        system.host_touch(alloc)
        gmmu = system.engine.device.gmmu
        for page in alloc.pages():
            gmmu.deliver(page, AccessType.READ, 0, 0, 0.0)
        outcome = system.engine.driver.service_next_batch(slept=True)
        per_page_uvm = outcome.record.duration / outcome.record.num_faults_unique
        per_page_explicit = self.make().h2d_time(1 * MB) / 256
        assert per_page_uvm > 2 * per_page_explicit


class TestErrors:
    @pytest.mark.parametrize(
        "exc",
        [
            ConfigError,
            AllocationError,
            OutOfDeviceMemory,
            FaultBufferOverflow,
            InvalidAccess,
            SimulationError,
            DeadlockError,
        ],
    )
    def test_all_derive_from_uvm_error(self, exc):
        assert issubclass(exc, UvmError)

    def test_oom_is_allocation_error(self):
        assert issubclass(OutOfDeviceMemory, AllocationError)

    def test_deadlock_is_simulation_error(self):
        assert issubclass(DeadlockError, SimulationError)


class TestCli:
    def test_list_returns_zero(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig07" in out and "tab02" in out

    def test_no_command_lists(self, capsys):
        assert main([]) == 0
        assert "fig03" in capsys.readouterr().out

    def test_unknown_experiment_errors(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_fig05(self, capsys):
        assert main(["run", "fig05"]) == 0
        out = capsys.readouterr().out
        assert "fig05" in out
        assert "completed" in out

    def test_parser_structure(self):
        parser = build_parser()
        args = parser.parse_args(["run", "fig03", "tab02"])
        assert args.command == "run"
        assert args.experiments == ["fig03", "tab02"]

    def test_list_includes_workloads(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gauss-seidel" in out

    def test_breakdown_subcommand(self, capsys):
        assert main(["breakdown", "vecadd", "--no-prefetch", "--gpu-mb", "16"]) == 0
        out = capsys.readouterr().out
        assert "cost attribution" in out
        assert "host-OS share" in out

    def test_breakdown_unknown_workload(self, capsys):
        assert main(["breakdown", "nope"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_export_subcommand(self, capsys, tmp_path):
        out_dir = str(tmp_path / "exp")
        assert main(["export", "vecadd", "--gpu-mb", "16", "--out", out_dir]) == 0
        out = capsys.readouterr().out
        assert "timeline.csv" in out
        assert (tmp_path / "exp" / "vecadd_timeline.csv").exists()
