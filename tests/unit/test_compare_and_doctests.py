"""Tests for the A/B comparison tool, the compare CLI, and module doctests."""

import doctest

import pytest

from repro.analysis.compare import Comparison, ComparisonRow, compare_configs
from repro.cli import main
from repro.config import default_config
from repro.units import MB
from repro.workloads import StreamTriad


class TestCompareConfigs:
    def make(self):
        def cfg(**kw):
            c = default_config(**kw)
            c.gpu.memory_bytes = 32 * MB
            return c

        return compare_configs(
            lambda: StreamTriad(nbytes=4 * MB),
            cfg(prefetch_enabled=True),
            cfg(prefetch_enabled=False),
            label_a="pf on",
            label_b="pf off",
        )

    def test_prefetch_wins_on_batches(self):
        comparison = self.make()
        assert comparison.metric("batches").ratio < 0.6

    def test_unmap_unchanged(self):
        """§5.2: prefetching cannot mitigate the unmap cost."""
        comparison = self.make()
        row = comparison.metric("time: unmap_mapping_range (host OS)")
        assert row.a == pytest.approx(row.b, rel=0.2)

    def test_fault_service_mostly_eliminated(self):
        comparison = self.make()
        row = comparison.metric("time: per-page fault service + block locks")
        assert row.ratio < 0.6

    def test_render_contains_labels(self):
        out = self.make().render()
        assert "pf on" in out and "pf off" in out

    def test_unknown_metric_raises(self):
        with pytest.raises(KeyError):
            self.make().metric("nope")

    def test_ratio_guards_zero(self):
        row = ComparisonRow("x", 1.0, 0.0)
        assert row.ratio == float("inf")


class TestCompareCli:
    def test_compare_default(self, capsys):
        assert main(["compare", "vecadd", "--gpu-mb", "16"]) == 0
        out = capsys.readouterr().out
        assert "prefetch on" in out and "prefetch off" in out

    def test_compare_batch_sizes(self, capsys):
        assert main(["compare", "vecadd", "--gpu-mb", "16",
                     "--batch-sizes", "64", "512"]) == 0
        out = capsys.readouterr().out
        assert "cap 64" in out and "cap 512" in out

    def test_compare_unknown(self, capsys):
        assert main(["compare", "nope"]) == 2


class TestDoctests:
    """Run the executable examples embedded in docstrings."""

    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.units",
            "repro.sim.rng",
            "repro.sim.clock",
            "repro.gpu.copy_engine",
            "repro.hostos.cpu",
            "repro.hostos.radix_tree",
            "repro.core.residency",
            "repro.analysis.fits",
            "repro.analysis.timeseries",
            "repro.analysis.report",
            "repro.apps.gemm",
            "repro.apps.triad",
            "repro.apps.fft",
            "repro.apps.multigrid",
            "repro.apps.graph",
        ],
    )
    def test_module_doctests(self, module_name):
        module = __import__(module_name, fromlist=["_"])
        results = doctest.testmod(module, verbose=False)
        assert results.failed == 0, f"{results.failed} doctest failures in {module_name}"
