"""Engine-side retry accounting on the CPU-touch D2H path.

``Engine._d2h_with_retry`` has no BatchRecord to charge, so its retries,
failovers, and backoff time land on :class:`repro.sim.engine.EngineCounters`
and tick the same metric families the driver uses.  These are regression
tests for the gap where backoff time was charged to the clock while the
counters never moved.
"""

import pytest

from repro.errors import RetryExhausted
from repro.sim.checkpoint import EngineCheckpoint
from repro.units import MB


class ScriptedCeInjector:
    """Injector double: scripted fire() outcomes for the ``ce.*`` sites."""

    enabled = True

    def __init__(self, fires):
        self._fires = {site: list(seq) for site, seq in fires.items()}

    def fire(self, site):
        seq = self._fires.get(site)
        return bool(seq.pop(0)) if seq else False

    def factor(self, site):
        return 2.0

    def waste_frac(self, site):
        return 0.5


def metric_value(system, name, **labels):
    family = system.metrics_snapshot().get(name)
    if family is None:
        return 0.0
    for series in family["series"]:
        if series["labels"] == labels:
            return series["value"]
    return 0.0


@pytest.fixture
def resident_system(system_factory):
    """A system with 1 MiB device-resident (prefetched) managed memory."""
    system = system_factory()
    alloc = system.managed_alloc(1 * MB)
    system.host_touch(alloc)
    system.mem_prefetch(alloc)
    return system, alloc


def arm(system, fires):
    stub = ScriptedCeInjector(fires)
    for ce in system.engine.device.copy_engines:
        ce.attach_injector(stub)
    return stub


class TestD2hRetryAccounting:
    def test_clean_touch_leaves_counters_zero(self, resident_system):
        system, alloc = resident_system
        system.host_touch(alloc)
        counters = system.engine.counters
        assert counters.d2h_retries == 0
        assert counters.d2h_failovers == 0
        assert counters.d2h_backoff_usec == 0.0

    def test_transient_fault_counts_a_retry(self, resident_system):
        system, alloc = resident_system
        arm(system, {"ce.transfer_fault": [True]})
        before = system.clock.now
        system.host_touch(alloc)
        counters = system.engine.counters
        assert counters.d2h_retries == 1
        assert counters.d2h_failovers == 0
        assert counters.d2h_backoff_usec > 0.0
        # Backoff time is charged to the simulated clock, not just counted.
        assert system.clock.now - before >= counters.d2h_backoff_usec

    def test_retry_ticks_shared_ce_metric_family(self, resident_system):
        system, alloc = resident_system
        arm(system, {"ce.transfer_fault": [True, True]})
        system.host_touch(alloc)
        assert metric_value(system, "uvm_retries_total", site="ce") == 2
        assert metric_value(system, "uvm_ce_failovers_total") == 0

    def test_stuck_burst_fails_over_to_sibling(self, resident_system):
        system, alloc = resident_system
        arm(system, {"ce.stuck": [True]})
        system.host_touch(alloc)
        counters = system.engine.counters
        assert counters.d2h_failovers == 1
        assert counters.d2h_retries == 0
        deadline = system.engine.driver.retry.deadline_usec
        assert counters.d2h_backoff_usec == pytest.approx(deadline)
        assert metric_value(system, "uvm_ce_failovers_total") == 1
        # Stuck is a failover, never a retry (the driver's convention).
        assert metric_value(system, "uvm_retries_total", site="ce") == 0

    def test_exhaustion_raises_and_counts_every_attempt(self, resident_system):
        system, alloc = resident_system
        max_attempts = system.engine.driver.retry.max_attempts
        arm(system, {"ce.transfer_fault": [True] * max_attempts})
        with pytest.raises(RetryExhausted):
            system.host_touch(alloc)
        # The exhausted final attempt counts too.
        assert system.engine.counters.d2h_retries == max_attempts
        assert metric_value(system, "uvm_retries_total", site="ce") == max_attempts

    def test_stuck_exhaustion_raises(self, resident_system):
        system, alloc = resident_system
        max_attempts = system.engine.driver.retry.max_attempts
        arm(system, {"ce.stuck": [True] * max_attempts})
        with pytest.raises(RetryExhausted):
            system.host_touch(alloc)
        assert system.engine.counters.d2h_failovers == max_attempts


class TestCountersVsCheckpoint:
    def test_restore_never_rewinds_engine_counters(self, resident_system):
        """Like metrics, engine counters are instrumentation: a checkpoint
        restore rewinds the simulated world but not the failure ledger."""
        system, alloc = resident_system
        ckpt = EngineCheckpoint.capture(system.engine)
        arm(system, {"ce.transfer_fault": [True]})
        system.host_touch(alloc)
        assert system.engine.counters.d2h_retries == 1
        ckpt.restore_into(system.engine)
        assert system.engine.counters.d2h_retries == 1


class TestSanitizerGate:
    def test_nonzero_counters_without_injection_violate(self, system_factory):
        system = system_factory()
        system.config.check.enabled = True
        engine = system.engine
        from repro.check.sanitizer import make_sanitizer

        san = make_sanitizer(system.config.check, engine.clock)
        san.mode = "report"
        engine.counters.d2h_retries = 3
        san._check_engine_counters(engine)
        assert san.total_violations == 1
        assert "engine counter" in str(san.violations[0])

    def test_counters_allowed_under_injection(self, system_factory):
        system = system_factory()
        system.config.check.enabled = True
        system.config.inject.enabled = True
        engine = system.engine
        from repro.check.sanitizer import make_sanitizer

        san = make_sanitizer(system.config.check, engine.clock)
        san.mode = "report"
        # Stand-in for an armed injector; never mutate the shared null one.
        engine.injector = type("ArmedInjector", (), {"enabled": True})()
        engine.counters.d2h_retries = 3
        san._check_engine_counters(engine)
        assert san.total_violations == 0
