"""Integration tests for §3's fault-generation behaviours (Figs 3-5)."""

import pytest

from repro.api import UvmSystem
from repro.config import default_config
from repro.units import MB
from repro.workloads import (
    CoalescedVecAdd,
    PrefetchVectorKernel,
    VecAddPageStride,
)


def titan_config(prefetch=False, **kw):
    cfg = default_config(prefetch_enabled=prefetch, **kw)
    cfg.cost_overrides = {"jitter_frac": 0.0}
    return cfg


class TestVecAddListing1:
    """The paper's Listing 1 experiment, Figs 3-4."""

    @pytest.fixture(scope="class")
    def result(self):
        system = UvmSystem(titan_config())
        return system, VecAddPageStride().run(system)

    def test_first_batch_is_exactly_56(self, result):
        """The µTLB outstanding-fault cap (§3.2)."""
        _, res = result
        assert res.records[0].num_faults_raw == 56

    def test_later_batches_throttled(self, result):
        """Far-fault rate throttling: steady-state batches are far below 56.

        Batches at phase starts may hit the µTLB cap again (the worker slept
        between phases, leaving a burst window), but the batches that follow
        a busy driver are rate-throttled."""
        _, res = result
        later = [r.num_faults_raw for r in res.records[1:]]
        assert later
        assert min(later) < 56 / 2
        # Burst-sized batches only at the (at most two) later phase starts.
        assert sum(1 for x in later if x >= 56) <= 2

    def test_total_faults_match_accesses(self, result):
        """3 phases x (64 reads + 32 writes) for 32 threads = 288 accesses."""
        _, res = result
        assert res.total_faults == 288

    def test_single_utlb_origin(self, result):
        """One warp -> one SM -> every fault from SM 0."""
        _, res = result
        for r in res.records:
            assert r.sm_fault_counts[0] == r.num_faults_raw

    def test_arrival_clusters_tight(self, result):
        """Fig 4: faults of one batch arrive in rapid succession."""
        _, res = result
        for r in res.records:
            span = r.t_last_fault - r.t_first_fault
            assert span < r.duration

    def test_batches_ordered_in_time(self, result):
        _, res = result
        for prev, cur in zip(res.records, res.records[1:]):
            assert cur.t_start >= prev.t_end


class TestScoreboardSerialization:
    def test_writes_after_reads(self):
        """§3.2: no write fault can appear before the phase's 64 reads are
        fulfilled."""
        system = UvmSystem(titan_config(), trace=True)
        res = VecAddPageStride().run(system)
        a, b, c = system.allocations
        c_pages = set(c.pages())
        reads_done_batch = None
        first_write_batch = None
        seen_reads = 0
        for r in res.records:
            for e in system.trace.select("migrate"):
                if e.payload[0] != r.batch_id:
                    continue
                _, _block, lo, hi, n = e.payload
                if lo in c_pages and first_write_batch is None:
                    first_write_batch = r.batch_id
        # First write occurs strictly after the first batch (which holds
        # only reads capped at 56 < 64 prerequisites).
        assert first_write_batch is not None and first_write_batch >= 2

    def test_coalesced_needs_two_rounds_per_warp(self):
        """A coalescing vecadd warp needs at least two batches (§3.2)."""
        system = UvmSystem(titan_config())
        res = CoalescedVecAdd(num_warps=1, pages_per_warp=4).run(system)
        assert res.num_batches >= 2

    def test_coalesced_generates_type1_duplicates(self):
        system = UvmSystem(titan_config())
        res = CoalescedVecAdd(num_warps=4, pages_per_warp=4).run(system)
        assert sum(r.dup_same_utlb for r in res.records) > 0


class TestPrefetchInstructions:
    """Fig 5: prefetch escapes the µTLB cap and SM throttle."""

    def test_single_warp_fills_batch(self):
        system = UvmSystem(titan_config())
        res = PrefetchVectorKernel(pages_per_vector=100).run(system)
        assert max(r.num_faults_raw for r in res.records) == 256

    def test_overflow_dropped_not_reissued(self):
        system = UvmSystem(titan_config())
        res = PrefetchVectorKernel(pages_per_vector=100).run(system)
        # 300 prefetches, batch cap 256: the 44 dropped are never reissued.
        assert res.total_faults == 256
        assert sum(r.dropped_at_flush for r in res.records) == 44

    def test_prefetched_then_touched_no_refault(self):
        """Every page migrates exactly once: the demand accesses racing the
        in-flight prefetch faults deduplicate inside the batch."""
        system = UvmSystem(titan_config())
        res = PrefetchVectorKernel(pages_per_vector=60, touch_after=True).run(system)
        total_pages = 180
        assert sum(r.num_faults_unique for r in res.records) == total_pages
        assert sum(r.pages_migrated_h2d + r.pages_populated for r in res.records) == total_pages

    def test_below_cap_single_batch(self):
        system = UvmSystem(titan_config())
        res = PrefetchVectorKernel(pages_per_vector=50).run(system)
        assert res.num_batches == 1
        assert res.records[0].num_faults_raw == 150
