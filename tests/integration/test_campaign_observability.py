"""Campaign failure classification, crash-bundle forensics, and live
telemetry — and the determinism contract with all of them switched on:
merged rows stay byte-identical across worker counts.
"""

import json

import pytest

from repro.campaign import CampaignSpec, ResultCache, run_campaign, to_ndjson
from repro.campaign.telemetry import CampaignMonitor, read_telemetry
from repro.cli import main
from repro.obs.bundle import is_bundle_dir, read_manifest

#: Two healthy cells and two that die at batch 2 (inline crash site with
#: recovery off), so every run exercises both row shapes.
SPEC_DOC = {
    "name": "obs-camp",
    "workloads": ["stream"],
    "configs": [
        {"label": "base", "overrides": {}},
        {
            "label": "crash",
            "overrides": {
                "inject.enabled": True,
                "inject.crash_recovery": False,
                "inject.sites": {"engine.crash": {"at_batch": 2}},
            },
        },
    ],
    "seeds": [0, 1],
    "base_overrides": {"gpu.memory_bytes": 33554432},
}


@pytest.fixture(scope="module")
def spec():
    return CampaignSpec.from_dict(SPEC_DOC)


class TestFailureClassification:
    def test_failed_cells_become_rows_not_aborts(self, spec):
        outcome = run_campaign(spec, jobs=1)
        by_status = {}
        for row in outcome.rows:
            by_status.setdefault(row["status"], []).append(row)
        assert len(by_status["ok"]) == 2
        assert len(by_status["failed"]) == 2
        for row in by_status["failed"]:
            assert row["config"] == "crash"
            assert row["error"]["type"] == "InjectedCrash"
            assert row["bundle"] is None  # bundles not armed
            assert "result" not in row
        for row in by_status["ok"]:
            assert row["result"]["batches"] > 0

    def test_bundle_dir_arms_per_cell_forensics(self, spec, tmp_path):
        outcome = run_campaign(spec, jobs=1, bundle_dir=str(tmp_path))
        failed = [r for r in outcome.rows if r["status"] == "failed"]
        assert len(failed) == 2
        for row in failed:
            assert row["bundle"] is not None
            assert f"cell-{row['index']}" in row["bundle"]
            assert is_bundle_dir(row["bundle"])
            manifest = read_manifest(row["bundle"])
            assert manifest["error"]["batch_id"] == 2
            assert manifest["seed"] == row["seed"]

    def test_failures_never_cached(self, spec, tmp_path):
        cold = run_campaign(spec, jobs=1, cache=ResultCache(tmp_path / "c"))
        assert (cold.cache_hits, cold.cache_misses) == (0, 4)
        warm = run_campaign(spec, jobs=1, cache=ResultCache(tmp_path / "c"))
        # Only the two ok cells hit; the failed cells re-execute.
        assert (warm.cache_hits, warm.cache_misses) == (2, 2)
        assert to_ndjson(warm.rows) == to_ndjson(cold.rows)


class TestByteIdentity:
    def test_jobs_parallel_identical_with_failures(self, spec):
        serial = to_ndjson(run_campaign(spec, jobs=1).rows)
        parallel = to_ndjson(run_campaign(spec, jobs=2).rows)
        assert parallel == serial

    def test_identical_with_telemetry_and_bundles(self, spec, tmp_path):
        with CampaignMonitor(len(spec.cells), jobs=1) as mon_a:
            serial = run_campaign(
                spec, jobs=1, bundle_dir=str(tmp_path / "a"), monitor=mon_a
            )
        with CampaignMonitor(len(spec.cells), jobs=2) as mon_b:
            parallel = run_campaign(
                spec, jobs=2, bundle_dir=str(tmp_path / "b"), monitor=mon_b
            )
        # Bundle paths embed the (different) root dirs; normalize those and
        # the rest of the bytes must match exactly.
        text_a = to_ndjson(serial.rows).replace(str(tmp_path / "a"), "ROOT")
        text_b = to_ndjson(parallel.rows).replace(str(tmp_path / "b"), "ROOT")
        assert text_a == text_b


class TestTelemetryRoundTrip:
    def test_event_stream_shape(self, spec, tmp_path):
        path = tmp_path / "telemetry.ndjson"
        with CampaignMonitor(len(spec.cells), jobs=1, path=path) as monitor:
            run_campaign(spec, jobs=1, monitor=monitor)
        events = read_telemetry(path)
        types = [e["type"] for e in events]
        assert types[0] == "campaign.start"
        assert types[-1] == "campaign.done"
        assert types.count("job.start") == 4
        assert types.count("job.done") == 2
        assert types.count("job.failed") == 2
        start = events[0]
        assert start["cells"] == 4 and start["cached"] == 0
        done = events[-1]
        assert done["failed"] == 2
        for event in events:
            if event["type"] == "job.failed":
                assert event["error"] == "InjectedCrash"
        # Arrival stamps are monotonic.
        stamps = [e["t"] for e in events]
        assert stamps == sorted(stamps)

    def test_monitor_progress_counts(self, spec):
        with CampaignMonitor(len(spec.cells), jobs=1) as monitor:
            run_campaign(spec, jobs=1, monitor=monitor)
            progress = monitor.progress
        assert progress.done == 2
        assert progress.failed == 2
        assert progress.finished == 4
        assert progress.running == {}


class TestCampaignCli:
    def run_cli(self, tmp_path, *extra):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(SPEC_DOC))
        out = tmp_path / "out.ndjson"
        argv = ["campaign", str(spec_path), "--out", str(out), "--no-cache",
                *extra]
        return main(argv), out

    def test_failed_cells_reported_and_exit_1(self, tmp_path, capsys):
        code, out = self.run_cli(
            tmp_path, "--bundle-dir", str(tmp_path / "bundles")
        )
        assert code == 1
        rows = [json.loads(line) for line in out.read_text().splitlines()]
        assert [r["status"] for r in rows] == ["ok", "ok", "failed", "failed"]
        text = capsys.readouterr().out
        assert "2 cells FAILED" in text
        assert "InjectedCrash" in text
        assert "[bundle:" in text

    def test_watch_and_telemetry_flags(self, tmp_path, capsys):
        tele = tmp_path / "tele.ndjson"
        code, _ = self.run_cli(
            tmp_path, "--watch", "--telemetry", str(tele), "--jobs", "2"
        )
        assert code == 1
        events = read_telemetry(tele)
        assert events[0]["type"] == "campaign.start"
        assert events[-1]["type"] == "campaign.done"
        # --watch renders progress frames on stderr.
        err = capsys.readouterr().err
        assert "campaign:" in err and "/4 cells" in err

    def test_all_ok_campaign_exits_0(self, tmp_path, capsys):
        doc = {**SPEC_DOC, "configs": [{"label": "base", "overrides": {}}]}
        spec_path = tmp_path / "ok.json"
        spec_path.write_text(json.dumps(doc))
        out = tmp_path / "ok.ndjson"
        code = main(
            ["campaign", str(spec_path), "--out", str(out), "--no-cache",
             "--watch"]
        )
        assert code == 0
        assert "FAILED" not in capsys.readouterr().out
