"""Integration tests for the supervised campaign fleet.

The robustness contract under test: a campaign survives worker deaths and
hangs — killed jobs are classified, retried with bounded backoff, and
resumed from their latest engine checkpoint — and the merged NDJSON stays
byte-identical to an uninterrupted ``--jobs 1`` run for any kill pattern
or resume path.  The chaos harness (``kill_at``/``hang_at``) makes the
process-level faults deterministic: "the worker running cell 0 dies at
batch 10" reproduces exactly.
"""

import json
import random

import pytest

from repro.campaign import (
    CampaignInterrupted,
    CampaignSpec,
    FleetChaos,
    FleetConfig,
    FleetRetryPolicy,
    RunLedger,
    run_campaign,
    to_ndjson,
)
from repro.cli import main

#: stream cells run ~40 batches at 32 MiB — long enough to checkpoint,
#: kill, and resume mid-flight.
SPEC_DOC = {
    "name": "fleet-itest",
    "workloads": ["stream"],
    "configs": [{"label": "base", "overrides": {}}],
    "seeds": [1, 2],
    "base_overrides": {"gpu.memory_bytes": 33554432},
}

FAST_RETRY = FleetRetryPolicy(max_attempts=3, backoff_base_sec=0.05)


@pytest.fixture(scope="module")
def spec():
    return CampaignSpec.from_dict(SPEC_DOC)


@pytest.fixture(scope="module")
def clean_ndjson(spec):
    return to_ndjson(run_campaign(spec, jobs=1).rows)


def _fleet_config(**kwargs):
    defaults = dict(
        retry=FAST_RETRY,
        stall_timeout_sec=15.0,
        checkpoint_every=4,
        heartbeat_sec=0.2,
    )
    defaults.update(kwargs)
    return FleetConfig(**defaults)


# Two chaos profiles (which cell dies) × two seeds drawing the kill batch
# at a randomized point mid-run: the satellite contract for crash/resume
# coverage.  The draw is seeded, so every run replays the same points.
KILL_PROFILES = [
    pytest.param(cell, seed, id=f"cell{cell}-draw{seed}")
    for cell in (0, 1)
    for seed in (101, 202)
]


class TestKillRetryResume:
    @pytest.mark.parametrize(("cell", "draw_seed"), KILL_PROFILES)
    def test_sigkill_mid_cell_is_retried_and_resumed(
        self, spec, clean_ndjson, tmp_path, cell, draw_seed
    ):
        kill_batch = random.Random(draw_seed).randrange(6, 38)
        config = _fleet_config(chaos=FleetChaos(kill_at={cell: kill_batch}))
        with RunLedger(tmp_path / "run.ledger") as ledger:
            outcome = run_campaign(
                spec, jobs=2, ledger=ledger, fleet_config=config
            )
            assert to_ndjson(outcome.rows) == clean_ndjson
            assert outcome.fleet["worker_deaths"] == 1
            assert outcome.fleet["retries"] == 1
            assert outcome.fleet["resumes"] == 1
            events = [t["event"] for t in ledger.transitions(cell)]
            # Retried and resumed — not rerun from scratch.
            assert "retry" in events
            resume_idx = events.index("resume")
            assert events[resume_idx - 1] == "start"
            detail = ledger.transitions(cell)[resume_idx]["detail"]
            assert int(detail.split("=")[1]) > 0  # resumed past batch 0
            assert ledger.job(cell).state == "done"

    def test_metrics_snapshot_records_the_chaos(self, spec, tmp_path):
        config = _fleet_config(chaos=FleetChaos(kill_at={0: 10}))
        outcome = run_campaign(spec, jobs=2, fleet_config=config,
                               ledger=RunLedger(tmp_path / "l"))
        metrics = outcome.fleet["metrics"]
        retry_series = metrics["uvm_fleet_retries_total"]["series"]
        assert retry_series == [{"labels": {"class": "crash"}, "value": 1.0}]
        assert metrics["uvm_fleet_resumes_total"]["series"][0]["value"] == 1.0
        assert (
            metrics["uvm_fleet_ledger_writes_total"]["series"][0]["value"] > 0
        )


class TestHangEscalation:
    def test_stalled_worker_is_escalated_within_timeout(
        self, spec, clean_ndjson, tmp_path
    ):
        config = _fleet_config(
            stall_timeout_sec=1.0,
            term_grace_sec=0.3,
            chaos=FleetChaos(hang_at={0: 10}),
        )
        with RunLedger(tmp_path / "run.ledger") as ledger:
            outcome = run_campaign(
                spec, jobs=1, ledger=ledger, fleet_config=config
            )
            assert to_ndjson(outcome.rows) == clean_ndjson
            # SIGTERM cannot reach a SIGSTOPped process; the grace period
            # lapses and SIGKILL finishes the escalation.
            assert outcome.fleet["kills"] == 2
            details = [
                t["detail"] for t in ledger.transitions(0)
                if t["event"] == "kill"
            ]
            assert details == ["SIGTERM", "SIGKILL"]
            retries = [
                t for t in ledger.transitions(0) if t["event"] == "retry"
            ]
            assert retries and retries[0]["detail"].startswith("hang:")


class TestCoordinatorRestart:
    def test_failed_run_resumes_from_checkpoint(
        self, spec, clean_ndjson, tmp_path
    ):
        """Exhaust the retry budget so the first campaign *fails* the killed
        cell, then ``--resume``: the second coordinator must replay done
        rows verbatim and restart the failed cell from its checkpoint."""
        ledger_path = tmp_path / "run.ledger"
        chaos = FleetChaos(kill_at={0: 10})
        with RunLedger(ledger_path) as ledger:
            first = run_campaign(
                spec,
                jobs=2,
                ledger=ledger,
                fleet_config=_fleet_config(
                    retry=FleetRetryPolicy(max_attempts=1), chaos=chaos
                ),
            )
            assert first.rows[0]["status"] == "failed"
            assert first.rows[0]["error"]["class"] == "crash"
            assert first.rows[1]["status"] == "ok"
        with RunLedger(ledger_path) as ledger:
            second = run_campaign(
                spec, jobs=2, ledger=ledger, resume=True,
                fleet_config=_fleet_config(),
            )
            assert to_ndjson(second.rows) == clean_ndjson
            assert second.resumed == 1  # the ok row replayed verbatim
            events = [t["event"] for t in ledger.transitions(0)]
            assert "resume" in events  # restarted from checkpoint, not scratch

    def test_stale_running_rows_fail_on_restart(self, spec, tmp_path):
        ledger_path = tmp_path / "run.ledger"
        with RunLedger(ledger_path) as ledger:
            ledger.begin(spec)
            ledger.job_started(0, 1, resume=False)
        with RunLedger(ledger_path) as ledger:
            outcome = run_campaign(spec, jobs=1, ledger=ledger, resume=True)
            # The stale row was distrusted and rerun to completion.
            assert outcome.rows[0]["status"] == "ok"
            assert any(
                t["event"] == "stale-failed" for t in ledger.transitions(0)
            )


class TestInterrupt:
    def test_serial_interrupt_drains_finished_rows(
        self, spec, tmp_path, monkeypatch
    ):
        """Ctrl-C mid-campaign: finished rows reach the ledger, the
        in-flight job is marked failed/interrupt, and the caller gets
        CampaignInterrupted with the partial rows."""
        from repro.campaign import runner as runner_mod

        real = runner_mod.execute_cell
        calls = []

        def flaky(payload):
            calls.append(payload["index"])
            if len(calls) == 2:
                raise KeyboardInterrupt()
            return real(payload)

        monkeypatch.setattr(runner_mod, "execute_cell", flaky)
        with RunLedger(tmp_path / "run.ledger") as ledger:
            with pytest.raises(CampaignInterrupted) as excinfo:
                run_campaign(spec, jobs=1, ledger=ledger)
            rows = excinfo.value.rows
            assert rows[0] is not None and rows[0]["status"] == "ok"
            assert rows[1] is None
            assert ledger.job(0).state == "done"
            interrupted = ledger.job(1)
            assert interrupted.state == "failed"
            assert interrupted.failure_class == "interrupt"

    def test_cli_maps_interrupt_to_exit_2(self, spec, tmp_path, monkeypatch):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(SPEC_DOC), encoding="utf-8")
        import repro.cli as cli_mod

        def interrupted(*args, **kwargs):
            raise CampaignInterrupted([None] * len(spec.cells))

        monkeypatch.setattr("repro.campaign.runner.run_campaign", interrupted)
        monkeypatch.setattr("repro.campaign.run_campaign", interrupted)
        rc = cli_mod.main(
            ["campaign", str(spec_path), "--out",
             str(tmp_path / "out.ndjson"), "--no-cache"]
        )
        assert rc == 2


class TestCliChaosRoundTrip:
    def test_kill_fail_then_resume_byte_identical(
        self, clean_ndjson, tmp_path, capsys
    ):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(SPEC_DOC), encoding="utf-8")
        out = tmp_path / "out.ndjson"
        ledger = tmp_path / "run.ledger"
        base = [
            "campaign", str(spec_path), "--out", str(out),
            "--ledger", str(ledger), "--no-cache", "--jobs", "2",
            "--checkpoint-every", "4",
        ]
        rc = main(base + ["--kill-worker", "0:10", "--max-attempts", "1"])
        assert rc == 1  # the killed cell exhausted its budget and failed
        first = out.read_text(encoding="utf-8")
        assert '"status":"failed"' in first

        rc = main(base + ["--resume"])
        assert rc == 0
        assert out.read_text(encoding="utf-8") == clean_ndjson
        captured = capsys.readouterr().out
        assert "resumed: 1 rows replayed from ledger" in captured

    def test_malformed_chaos_spec_exits_2(self, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(SPEC_DOC), encoding="utf-8")
        rc = main(
            ["campaign", str(spec_path), "--kill-worker", "nope",
             "--out", str(tmp_path / "o.ndjson"), "--no-cache"]
        )
        assert rc == 2

    def test_resume_without_ledger_exits_2(self, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(SPEC_DOC), encoding="utf-8")
        rc = main(
            ["campaign", str(spec_path), "--resume",
             "--out", str(tmp_path / "o.ndjson"), "--no-cache"]
        )
        assert rc == 2
