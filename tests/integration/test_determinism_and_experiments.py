"""Determinism guarantees, JSONL round-trips, and experiment smoke runs."""

import numpy as np
import pytest

from repro.analysis.experiments import (
    EXPERIMENTS,
    fig01_latency,
    fig03_vecadd_batches,
    fig04_vecadd_timing,
    fig05_prefetch_warp,
    run_experiment,
)
from repro.api import UvmSystem
from repro.config import default_config
from repro.core.instrumentation import BatchLog
from repro.units import MB
from repro.workloads import Sgemm, StreamTriad


def make_system(seed=0, **kw):
    cfg = default_config(**kw)
    cfg.gpu.memory_bytes = 32 * MB
    cfg.seed = seed
    return UvmSystem(cfg)


class TestDeterminism:
    def test_identical_runs_identical_records(self):
        logs = []
        for _ in range(2):
            system = make_system(seed=3)
            res = StreamTriad(nbytes=4 * MB).run(system)
            logs.append(
                [(r.num_faults_raw, round(r.duration, 9), r.num_vablocks) for r in res.records]
            )
        assert logs[0] == logs[1]

    def test_different_seed_changes_jitter_not_structure(self):
        runs = []
        for seed in (0, 1):
            system = make_system(seed=seed)
            res = StreamTriad(nbytes=4 * MB).run(system)
            runs.append(res)
        sizes0 = [r.num_faults_raw for r in runs[0].records]
        sizes1 = [r.num_faults_raw for r in runs[1].records]
        assert sizes0 == sizes1  # structure identical
        assert runs[0].batch_time_usec != runs[1].batch_time_usec  # jitter differs

    def test_sgemm_deterministic(self):
        times = set()
        for _ in range(2):
            system = make_system(seed=9)
            res = Sgemm(n=512, tile=128).run(system)
            times.add(round(res.kernel_time_usec, 6))
        assert len(times) == 1


class TestJsonlRoundTrip:
    def test_full_run_roundtrip(self, tmp_path):
        system = make_system()
        res = StreamTriad(nbytes=4 * MB).run(system)
        log = res.batch_log()
        path = tmp_path / "run.jsonl"
        log.to_jsonl(path)
        loaded = BatchLog.from_jsonl(path)
        assert len(loaded) == len(log)
        assert loaded.total_batch_time == pytest.approx(log.total_batch_time)
        assert loaded.total_faults_raw == log.total_faults_raw
        for orig, back in zip(log, loaded):
            assert orig.num_vablocks == back.num_vablocks
            assert (orig.sm_fault_counts == back.sm_fault_counts).all()


class TestExperimentRegistry:
    def test_all_experiments_registered(self):
        expected = {
            "fig01", "fig03", "fig04", "fig05", "tab02", "fig06", "fig07",
            "fig08", "fig09", "tab03", "fig10", "fig11", "fig12", "fig13",
            "fig14", "fig15", "tab04", "fig16", "fig17",
            "ablation_dup_adaptive", "ablation_driver_parallel",
            "ablation_async_unmap", "ablation_prefetch_scope",
        }
        assert expected <= set(EXPERIMENTS)

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")


class TestMicrobenchExperiments:
    """The cheap experiments run in CI; assertions mirror the paper."""

    def test_fig01_orderings(self):
        result = fig01_latency(nbytes_per_array=2 * MB)
        assert result.data["uvm_slowdown"] > 1.5
        assert result.data["oversub_slowdown"] > result.data["uvm_slowdown"]

    def test_fig03_first_batch(self):
        result = fig03_vecadd_batches()
        assert result.data["first_batch_size"] == 56
        # Batch 0 contains all 32 A-page reads and 24 B-page reads.
        comp = result.data["composition"][0]
        assert comp["A"] == 32 and comp["B"] == 24 and comp["C"] == 0

    def test_fig04_arrivals_fast(self):
        result = fig04_vecadd_timing()
        assert result.data["mean_span_over_service"] < 0.5

    def test_fig05_fills_batch(self):
        result = fig05_prefetch_warp()
        assert result.data["max_batch"] == 256
        assert result.data["dropped"] == 44
