"""Metrics totals reconcile exactly with the per-batch + engine ledgers.

Resilience events are double-entry bookkeeping: each one lands in a
BatchRecord counter (or, for the CPU-touch D2H path, an EngineCounters
field) *and* ticks a metric family.  Across every bundled chaos profile and
several seeds the two ledgers must agree to the unit — a drift means some
path charges one ledger without the other (the engine-side gap these
identities were added to catch).
"""

from pathlib import Path

import pytest

from repro.api import UvmSystem
from repro.config import default_config
from repro.units import MB
from repro.workloads import RegularStream

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples" / "chaos"
PROFILES = sorted(EXAMPLES_DIR.glob("*.json"))


def metric_value(snap, name, **labels):
    family = snap.get(name)
    if family is None:
        return 0.0
    for series in family["series"]:
        if series["labels"] == labels:
            return series["value"]
    return 0.0


def run_profile(profile, seed):
    cfg = default_config()
    cfg.seed = seed
    cfg.gpu.memory_bytes = 16 * MB
    cfg.gpu.num_sms = 8
    cfg.check.enabled = True
    cfg.check.mode = "report"
    cfg.inject.enabled = True
    cfg.inject.profile = str(profile)
    cfg.inject.checkpoint_every = 8
    cfg.validate()
    system = UvmSystem(cfg)
    RegularStream().run(system)
    return system


def assert_reconciles(system):
    records = system.records
    engine = system.engine
    snap = system.metrics_snapshot()

    def total(name):
        return sum(getattr(r, name) for r in records)

    assert metric_value(snap, "uvm_retries_total", site="dma") == total("retries_dma")
    assert metric_value(snap, "uvm_retries_total", site="populate") == total(
        "retries_populate"
    )
    # The ce site is shared: driver in-batch retries + engine D2H retries.
    assert (
        metric_value(snap, "uvm_retries_total", site="ce")
        == total("retries_transfer") + engine.counters.d2h_retries
    )
    assert (
        metric_value(snap, "uvm_ce_failovers_total")
        == total("ce_failovers") + engine.counters.d2h_failovers
    )
    assert metric_value(snap, "uvm_degrade_total", kind="prefetch-fallback") == total(
        "prefetch_fallbacks"
    )
    assert metric_value(snap, "uvm_degrade_total", kind="dma-defer") + metric_value(
        snap, "uvm_degrade_total", kind="transfer-defer"
    ) == total("blocks_deferred")
    assert system.sanitizer.total_violations == 0


@pytest.mark.parametrize("profile", PROFILES, ids=lambda p: p.stem)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_profile_totals_reconcile(profile, seed):
    assert_reconciles(run_profile(profile, seed))


@pytest.mark.parametrize("seed", [0, 7])
def test_engine_d2h_path_reconciles(seed):
    """Force traffic through the no-BatchRecord path: device-resident pages
    touched from the CPU under a flaky interconnect."""
    cfg = default_config()
    cfg.seed = seed
    cfg.gpu.memory_bytes = 16 * MB
    cfg.check.enabled = True
    cfg.check.mode = "report"
    cfg.inject.enabled = True
    cfg.inject.sites = {"ce.transfer_fault": {"rate": 0.4}, "ce.stuck": {"rate": 0.2}}
    cfg.validate()
    system = UvmSystem(cfg)
    alloc = system.managed_alloc(2 * MB)
    system.host_touch(alloc)
    engine = system.engine
    from repro.errors import RetryExhausted

    for _ in range(16):
        try:
            system.mem_prefetch(alloc)
            system.host_touch(alloc)
        except RetryExhausted:
            # Exhaustion mid-burst still keeps both ledgers in step.
            break
        if engine.counters.d2h_retries + engine.counters.d2h_failovers > 0:
            break
    assert engine.counters.d2h_retries + engine.counters.d2h_failovers > 0
    assert engine.counters.d2h_backoff_usec > 0
    assert_reconciles(system)
