"""End-to-end observability: spans/metrics/trace reconcile with the run.

The span profiler, metrics registry, and Chrome trace are three views of the
same simulated fault path; these tests run real workloads and check the
views agree with the ground truth (:class:`~repro.core.batch_record.BatchRecord`).
"""

from __future__ import annotations

import json

import pytest

from repro.api import UvmSystem
from repro.cli import main as cli_main
from repro.config import default_config
from repro.obs import read_ndjson
from repro.units import MB
from repro.workloads import StreamTriad


def make_system(
    chrome: bool = False,
    ndjson_path=None,
    obs_off: bool = False,
    gpu_mem_mb: int = 32,
) -> UvmSystem:
    cfg = default_config()
    cfg.gpu.memory_bytes = gpu_mem_mb * MB
    cfg.cost_overrides = {"jitter_frac": 0.0}
    if obs_off:
        cfg.obs = cfg.obs.disabled()
    else:
        cfg.obs.chrome_trace = chrome
        if ndjson_path is not None:
            cfg.obs.ndjson_path = str(ndjson_path)
    return UvmSystem(cfg)


@pytest.fixture(scope="module")
def observed_run():
    system = make_system(chrome=True)
    result = StreamTriad(nbytes=8 * MB).run(system)
    return system, result


class TestSpanReconciliation:
    def test_batch_spans_match_record_durations(self, observed_run):
        """One `driver.batch` span per record, with the record's duration."""
        system, _ = observed_run
        records = system.records
        spans = system.spans.select("driver.batch")
        assert len(spans) == len(records) > 0
        by_batch = {s.args_dict()["batch"]: s for s in spans}
        for record in records:
            span = by_batch[record.batch_id]
            assert span.sim_start == pytest.approx(record.t_start)
            assert span.sim_dur == pytest.approx(record.duration)

    def test_phase_spans_sum_to_service_time(self, observed_run):
        """wake + fetch + preprocess + vablocks + replay == the serial
        driver's accounted service time (the paper's decomposition)."""
        system, _ = observed_run
        fault_records = [r for r in system.records if not r.hinted]
        assert fault_records
        fault_ids = {r.batch_id for r in fault_records}
        spans = system.spans
        phase_total = sum(
            spans.sim_total(name)
            for name in (
                "driver.wake",
                "driver.fetch",
                "driver.preprocess",
                "driver.replay",
            )
        )
        vablock_total = sum(
            s.sim_dur
            for s in spans.select("driver.vablock")
            if s.args_dict()["batch"] in fault_ids
        )
        expected = sum(r.service_time for r in fault_records)
        assert phase_total + vablock_total == pytest.approx(expected, rel=1e-9)

    def test_service_time_equals_duration_for_serial_driver(self, observed_run):
        system, _ = observed_run
        for record in system.records:
            assert record.service_time == pytest.approx(record.duration, rel=1e-9)

    def test_spans_report_wall_clock(self, observed_run):
        system, _ = observed_run
        launch_spans = system.spans.select("engine.launch")
        assert launch_spans
        assert all(s.wall_dur > 0.0 for s in launch_spans)


class TestMetricsReconciliation:
    def test_counters_match_records(self, observed_run):
        system, _ = observed_run
        records = system.records
        snap = system.metrics_snapshot()

        def series_sum(name):
            return sum(s["value"] for s in snap[name]["series"])

        assert series_sum("uvm_batches_total") == len(records)
        faults_raw = next(
            s["value"]
            for s in snap["uvm_faults_total"]["series"]
            if s["labels"]["kind"] == "raw"
        )
        assert faults_raw == sum(r.num_faults_raw for r in records)
        bytes_h2d = next(
            s["value"]
            for s in snap["uvm_ce_bytes_total"]["series"]
            if s["labels"]["dir"] == "h2d"
        )
        assert bytes_h2d == system.engine.device.copy_engine.bytes_h2d > 0

    def test_batch_histogram_counts_every_batch(self, observed_run):
        system, _ = observed_run
        snap = system.metrics_snapshot()
        hist = snap["uvm_batch_service_usec"]["series"][0]["value"]
        assert hist["count"] == len(system.records)
        assert hist["sum"] == pytest.approx(
            sum(r.duration for r in system.records), rel=1e-9
        )

    def test_prometheus_export_runs(self, observed_run):
        system, _ = observed_run
        text = system.prometheus_metrics()
        assert "# TYPE uvm_batches_total counter" in text
        assert "uvm_kernels_total" in text


class TestChromeTraceOutput:
    def test_trace_is_valid_and_multi_track(self, observed_run, tmp_path):
        system, _ = observed_run
        path = system.export_chrome_trace(tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        assert len(events) >= 100
        real = [e for e in events if e["ph"] != "M"]
        assert len({e["pid"] for e in real}) >= 4
        for e in real:
            assert {"name", "ph", "ts", "pid", "tid"} <= set(e)
        ts = [e["ts"] for e in real]
        assert ts == sorted(ts)

    def test_batch_envelopes_cover_records(self, observed_run):
        system, _ = observed_run
        batch_events = [
            e
            for e in system.obs.chrome.events
            if e.get("ph") == "X" and e["name"].startswith("batch ")
        ]
        fault_records = [r for r in system.records if not r.hinted]
        assert len(batch_events) == len(fault_records)


class TestSinkAndDisabled:
    def test_ndjson_sink_logs_every_batch(self, tmp_path):
        path = tmp_path / "run.ndjson"
        system = make_system(ndjson_path=path)
        StreamTriad(nbytes=4 * MB).run(system)
        system.obs.close()
        rows = read_ndjson(path)
        batch_rows = [r for r in rows if r["type"] == "batch_record"]
        assert len(batch_rows) == len(system.records)
        assert batch_rows[0]["num_faults_raw"] == system.records[0].num_faults_raw

    def test_fully_disabled_obs_records_nothing(self):
        system = make_system(obs_off=True)
        result = StreamTriad(nbytes=4 * MB).run(system)
        assert result.num_batches > 0
        assert len(system.spans) == 0
        assert len(system.obs.chrome) == 0
        assert system.metrics_snapshot() == {}

    def test_disabled_and_enabled_runs_agree_on_sim_time(self):
        on = make_system(chrome=True)
        off = make_system(obs_off=True)
        r_on = StreamTriad(nbytes=4 * MB).run(on)
        r_off = StreamTriad(nbytes=4 * MB).run(off)
        assert r_on.total_time_usec == pytest.approx(r_off.total_time_usec)
        assert r_on.num_batches == r_off.num_batches


class TestCli:
    def test_trace_subcommand(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert cli_main(["trace", "stream", "--out", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert len(doc["traceEvents"]) > 0
        assert "wrote" in capsys.readouterr().out

    def test_metrics_subcommand(self, capsys):
        assert cli_main(["metrics", "stream"]) == 0
        assert "# TYPE uvm_batches_total counter" in capsys.readouterr().out

    def test_metrics_json_subcommand(self, capsys):
        assert cli_main(["metrics", "stream", "--json", "--seed", "3"]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert "uvm_batches_total" in snap

    def test_export_trace_flag(self, tmp_path, capsys):
        assert (
            cli_main(
                ["export", "stream", "--out", str(tmp_path), "--trace", "--seed", "1"]
            )
            == 0
        )
        trace = tmp_path / "stream_trace.json"
        assert trace.exists()
        assert json.loads(trace.read_text())["traceEvents"]
