"""Chaos integration: every bundled profile completes tier-1 workloads with
zero UVMSan violations, degradation counters behave, and the ``chaos`` /
``validate`` CLI exit-code + JSON contracts hold."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.api import UvmSystem
from repro.cli import main
from repro.config import default_config
from repro.inject.profiles import BUILTIN_PROFILES
from repro.units import MB
from repro.validate import validate_system
from repro.workloads import BfsWorkload, RegularStream, VecAddPageStride

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples" / "chaos"

WORKLOADS = {
    "vecadd": lambda: VecAddPageStride(tsize=8),
    "stream": lambda: RegularStream(),
    "bfs": lambda: BfsWorkload(),
}


def chaos_config(profile=None, sites=None, seed=0, gpu_mem_mb=16,
                 checkpoint_every=8, **driver_kw):
    cfg = default_config(**driver_kw)
    cfg.seed = seed
    cfg.gpu.memory_bytes = gpu_mem_mb * MB
    cfg.gpu.num_sms = 8
    cfg.check.enabled = True
    cfg.check.mode = "report"
    cfg.inject.enabled = True
    cfg.inject.profile = profile
    cfg.inject.sites = dict(sites or {})
    cfg.inject.checkpoint_every = checkpoint_every
    cfg.validate()
    return cfg


def run_chaos(workload="stream", **cfg_kw):
    system = UvmSystem(chaos_config(**cfg_kw))
    result = WORKLOADS[workload]().run(system)
    return system, result


class TestProfilesRunClean:
    """Every bundled profile must leave all invariants intact: the chaos
    layer perturbs the stack but never breaks its conservation laws."""

    @pytest.mark.parametrize("profile", sorted(BUILTIN_PROFILES))
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_builtin_profile_runs_clean(self, profile, workload):
        system, result = run_chaos(workload, profile=profile)
        assert result.num_batches > 0
        assert system.sanitizer.total_violations == 0
        assert validate_system(system) == []

    @pytest.mark.parametrize(
        "path", sorted(EXAMPLES_DIR.glob("*.json")), ids=lambda p: p.stem
    )
    def test_example_profile_runs_clean(self, path):
        system, result = run_chaos("stream", profile=str(path))
        assert result.num_batches > 0
        assert system.sanitizer.total_violations == 0
        assert validate_system(system) == []

    def test_kitchen_sink_actually_injects(self):
        system, _ = run_chaos("stream", profile="kitchen-sink")
        assert system.injector.summary()["fired_total"] > 0

    def test_chaos_under_fail_fast_mode_still_bounded(self):
        """fail-fast mode may raise RetryExhausted but must never corrupt
        state: either the run completes clean or it fails loudly."""
        from repro.errors import UvmError

        try:
            system, _ = run_chaos(
                "stream", profile="flaky-interconnect", failure_mode="fail-fast"
            )
        except UvmError:
            return
        assert system.sanitizer.total_violations == 0


class TestGracefulDegradation:
    def test_transfer_retries_counted_and_timed(self):
        system, result = run_chaos(
            "stream", sites={"ce.transfer_fault": {"rate": 0.2}}
        )
        records = result.records
        assert sum(r.retries_transfer for r in records) > 0
        assert sum(r.time_retry_backoff for r in records) > 0
        assert system.sanitizer.total_violations == 0

    def test_stuck_engine_fails_over_to_sibling(self):
        system, _ = run_chaos("stream", sites={"ce.stuck": {"rate": 0.1}})
        records = system.records
        assert sum(r.ce_failovers for r in records) > 0
        # failover moved real traffic onto the sibling engine
        assert system.engine.device.copy_engines[1].bytes_h2d > 0
        assert system.sanitizer.total_violations == 0

    def test_dma_failures_retry_or_defer(self):
        system, _ = run_chaos("stream", sites={"dma.map_fail": {"rate": 0.3}})
        records = system.records
        assert sum(r.retries_dma for r in records) > 0
        assert system.sanitizer.total_violations == 0

    def test_populate_enomem_retries(self):
        system, _ = run_chaos(
            "stream", sites={"host.populate_enomem": {"rate": 0.3}}, gpu_mem_mb=8
        )
        assert sum(r.retries_populate for r in system.records) > 0
        assert system.sanitizer.total_violations == 0

    def test_resilience_counters_zero_without_injection(self):
        cfg = default_config()
        cfg.gpu.memory_bytes = 16 * MB
        cfg.gpu.num_sms = 8
        cfg.check.enabled = True
        cfg.check.mode = "report"
        system = UvmSystem(cfg)
        RegularStream().run(system)
        for r in system.records:
            assert r.retries_dma == 0
            assert r.retries_transfer == 0
            assert r.retries_populate == 0
            assert r.ce_failovers == 0
            assert r.prefetch_fallbacks == 0
            assert r.blocks_deferred == 0
            assert r.time_retry_backoff == 0.0
        assert system.sanitizer.total_violations == 0

    def test_metrics_families_present_under_chaos(self):
        system, _ = run_chaos("stream", profile="kitchen-sink")
        snap = system.metrics_snapshot()
        assert "uvm_injected_total" in snap
        assert "uvm_crash_recoveries_total" in snap


class TestChaosCliContract:
    def test_list_profiles(self, capsys):
        assert main(["chaos", "--list-profiles"]) == 0
        out = capsys.readouterr().out
        for name in BUILTIN_PROFILES:
            assert name in out

    def test_workload_required(self, capsys):
        assert main(["chaos"]) == 2
        assert "workload is required" in capsys.readouterr().err

    def test_unknown_workload(self, capsys):
        assert main(["chaos", "nope", "--gpu-mb", "16"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_unknown_profile_is_config_error(self, capsys):
        assert main(
            ["chaos", "stream", "--profile", "no-such-profile", "--gpu-mb", "16"]
        ) == 2
        assert "chaos profile" in capsys.readouterr().err

    def test_human_report(self, capsys):
        rc = main(
            ["chaos", "stream", "--profile", "flaky-interconnect",
             "--gpu-mb", "16", "--seed", "0"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "chaos run OK" in out

    def test_json_report_shape(self, capsys):
        rc = main(
            ["chaos", "stream", "--profile", "kitchen-sink",
             "--gpu-mb", "16", "--seed", "0", "--json"]
        )
        report = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert report["ok"] is True
        assert report["workload"] == "stream"
        assert report["violations"] == []
        assert report["injection"]["enabled"] is True
        assert report["injection"]["fired_total"] > 0
        assert set(report["resilience"]) >= {
            "retries_dma",
            "retries_transfer",
            "retries_populate",
            "ce_failovers",
            "prefetch_fallbacks",
            "blocks_deferred",
            "time_retry_backoff_usec",
        }
        assert report["sanitizer"]["violations"] == 0

    def test_file_profile(self, capsys):
        profile = EXAMPLES_DIR / "flaky_link.json"
        rc = main(
            ["chaos", "stream", "--profile", str(profile), "--gpu-mb", "16",
             "--json"]
        )
        report = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert report["ok"] is True


class TestValidateCliContract:
    def test_ok_run_exits_zero(self, capsys):
        rc = main(["validate", "stream", "--gpu-mb", "16", "--json"])
        report = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert report["ok"] is True
        assert report["violations"] == []

    def test_unknown_workload(self, capsys):
        assert main(["validate", "nope", "--gpu-mb", "16"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_human_output_mentions_verdict(self, capsys):
        assert main(["validate", "vecadd", "--gpu-mb", "16"]) == 0
        assert "validation OK" in capsys.readouterr().out
