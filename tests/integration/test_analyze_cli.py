"""CLI integration for the report engine: ``uvm-repro analyze`` over real
run logs, the A/B diff exit codes, the ``bench --check`` perf gate, and
``metrics --percentiles``.
"""

import json

import pytest

from repro.cli import main

@pytest.fixture()
def run_log(tmp_path):
    """A real observability NDJSON log from one small run."""
    from repro.api import UvmSystem
    from repro.config import default_config
    from repro.units import MB
    from repro.workloads import WORKLOAD_REGISTRY

    path = tmp_path / "run.ndjson"
    cfg = default_config()
    cfg.gpu.memory_bytes = 32 * MB
    cfg.obs.ndjson_path = str(path)
    system = UvmSystem(cfg)
    WORKLOAD_REGISTRY["stream"]().run(system)
    system.obs.sink.close()
    return path


class TestAnalyzeRecords:
    def test_report_on_real_log(self, run_log, capsys):
        assert main(["analyze", str(run_log)]) == 0
        out = capsys.readouterr().out
        assert "fault latency" in out
        assert "p50" in out and "p99" in out
        assert "phase attribution:" in out
        assert "gpu stall" in out

    def test_json_report(self, run_log, capsys):
        assert main(["analyze", str(run_log), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["batches"] > 0
        assert set(report["detectors"]) == {"overflow_storms", "thrashing"}

    def test_self_diff_identical_exit_0(self, run_log, capsys):
        code = main(["analyze", str(run_log), str(run_log), "--diff"])
        assert code == 0
        assert "reports identical" in capsys.readouterr().out

    def test_diff_against_perturbed_log_exit_1(self, run_log, tmp_path, capsys):
        other = tmp_path / "other.ndjson"
        lines = []
        for line in run_log.read_text().splitlines():
            obj = json.loads(line)
            if obj.get("type") == "batch_record":
                obj["duration"] = obj["duration"] * 3.0
            lines.append(json.dumps(obj))
        other.write_text("\n".join(lines) + "\n")
        code = main(["analyze", str(run_log), str(other), "--diff"])
        assert code == 1
        assert "changes beyond tolerance" in capsys.readouterr().out

    def test_diff_needs_exactly_two_inputs(self, run_log):
        assert main(["analyze", str(run_log), "--diff"]) == 2

    def test_missing_input_exit_2(self, tmp_path):
        assert main(["analyze", str(tmp_path / "absent.ndjson")]) == 2


def _bench_report():
    return {
        "end_to_end": {"batches": 42, "clock_usec": 18955.3, "wall_sec": 0.1},
        "uvmsan": {"timeline_identical": True},
        "hot_paths": {
            "checkpoint": {"speedup": 6.0},
            "metric_labels": {"speedup": 5.0},
        },
    }


class TestBenchCheckCli:
    def _write(self, path, report):
        path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    def test_pass_against_matching_baseline(self, tmp_path, capsys):
        fresh, base = tmp_path / "fresh.json", tmp_path / "base.json"
        self._write(fresh, _bench_report())
        self._write(base, _bench_report())
        code = main(
            ["bench", "--check", "--report", str(fresh),
             "--baseline", str(base)]
        )
        assert code == 0
        assert "bench check OK" in capsys.readouterr().out

    def test_synthetic_slowdown_fails(self, tmp_path, capsys):
        slow = _bench_report()
        for stats in slow["hot_paths"].values():
            stats["speedup"] /= 2.0  # a 2x slowdown on every hot path
        slow["end_to_end"]["wall_sec"] *= 2.0
        fresh, base = tmp_path / "fresh.json", tmp_path / "base.json"
        self._write(fresh, slow)
        self._write(base, _bench_report())
        code = main(
            ["bench", "--check", "--report", str(fresh),
             "--baseline", str(base)]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "bench check FAILED" in out
        assert "hot_paths.checkpoint.speedup" in out
        assert "wall_sec" in out

    def test_determinism_drift_fails_even_when_faster(self, tmp_path, capsys):
        drifted = _bench_report()
        drifted["end_to_end"]["batches"] = 43
        fresh, base = tmp_path / "fresh.json", tmp_path / "base.json"
        self._write(fresh, drifted)
        self._write(base, _bench_report())
        code = main(
            ["bench", "--check", "--report", str(fresh),
             "--baseline", str(base)]
        )
        assert code == 1
        assert "determinism anchor" in capsys.readouterr().out

    def test_report_without_check_prints_speedups(self, tmp_path, capsys):
        fresh = tmp_path / "fresh.json"
        self._write(fresh, _bench_report())
        assert main(["bench", "--report", str(fresh)]) == 0
        out = capsys.readouterr().out
        assert "checkpoint: 6.00x speedup" in out

    def test_missing_baseline_exit_2(self, tmp_path):
        fresh = tmp_path / "fresh.json"
        self._write(fresh, _bench_report())
        code = main(
            ["bench", "--check", "--report", str(fresh),
             "--baseline", str(tmp_path / "absent.json")]
        )
        assert code == 2

    def test_committed_baseline_is_valid_gate_input(self, tmp_path, capsys):
        # The repo's committed baseline must gate itself clean: same file as
        # fresh report and baseline is the degenerate no-regression case.
        from pathlib import Path

        baseline = Path(__file__).resolve().parents[2] / "BENCH_baseline.json"
        assert baseline.is_file()
        code = main(
            ["bench", "--check", "--report", str(baseline),
             "--baseline", str(baseline)]
        )
        assert code == 0


class TestMetricsPercentilesCli:
    def test_percentiles_printed(self, capsys):
        code = main(
            ["metrics", "stream", "--gpu-mb", "32", "--seed", "0",
             "--percentiles"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "# histogram percentiles (p50/p95/p99)" in out
        assert "uvm_batch_service_usec" in out
        assert "p50=" in out and "p99=" in out
