"""Integration tests for the campaign runner and its CLI surface.

The determinism contract under test: merged campaign output is a pure
function of the spec — byte-identical across worker counts and cache
temperatures.
"""

import json

import pytest

from repro.campaign import CampaignSpec, ResultCache, run_campaign, to_ndjson
from repro.cli import main

SPEC_DOC = {
    "name": "itest",
    "workloads": ["vecadd", "stream"],
    "configs": [
        {"label": "base", "overrides": {}},
        {"label": "no-prefetch", "overrides": {"driver.prefetch_enabled": False}},
    ],
    "seeds": [0],
    "base_overrides": {"gpu.memory_bytes": 33554432},
}


@pytest.fixture(scope="module")
def spec():
    return CampaignSpec.from_dict(SPEC_DOC)


@pytest.fixture(scope="module")
def serial_ndjson(spec):
    return to_ndjson(run_campaign(spec, jobs=1).rows)


class TestRunner:
    def test_rows_in_spec_order(self, spec):
        outcome = run_campaign(spec, jobs=1)
        assert [row["index"] for row in outcome.rows] == [0, 1, 2, 3]
        assert [row["workload"] for row in outcome.rows] == [
            "vecadd",
            "vecadd",
            "stream",
            "stream",
        ]

    def test_jobs_parallel_byte_identical(self, spec, serial_ndjson):
        parallel = to_ndjson(run_campaign(spec, jobs=2).rows)
        assert parallel == serial_ndjson

    def test_summary_shape(self, spec, serial_ndjson):
        row = json.loads(serial_ndjson.splitlines()[0])
        result = row["result"]
        assert result["batches"] > 0 and result["faults"] > 0
        assert result["clock_usec"] > 0
        assert "engine_d2h_retries" in result["resilience"]
        # Injection is off in campaign cells: resilience counters are 0.
        assert all(v == 0 for v in result["resilience"].values())

    def test_no_cache_counts_every_cell_a_miss(self, spec):
        outcome = run_campaign(spec, jobs=1)
        assert (outcome.cache_hits, outcome.cache_misses) == (0, 4)

    def test_warm_cache_hits_everything_and_matches(
        self, spec, serial_ndjson, tmp_path
    ):
        cache = ResultCache(tmp_path / "cache")
        cold = run_campaign(spec, jobs=1, cache=cache)
        assert (cold.cache_hits, cold.cache_misses) == (0, 4)
        warm_cache = ResultCache(tmp_path / "cache")
        warm = run_campaign(spec, jobs=1, cache=warm_cache)
        assert (warm.cache_hits, warm.cache_misses) == (4, 0)
        assert to_ndjson(cold.rows) == serial_ndjson
        assert to_ndjson(warm.rows) == serial_ndjson

    def test_partial_cache_mixes_hit_and_computed_rows(self, spec, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        half = CampaignSpec.from_dict({**SPEC_DOC, "workloads": ["vecadd"]})
        run_campaign(half, jobs=1, cache=cache)
        mixed = run_campaign(spec, jobs=1, cache=ResultCache(tmp_path / "cache"))
        assert (mixed.cache_hits, mixed.cache_misses) == (2, 2)
        assert to_ndjson(mixed.rows) == to_ndjson(run_campaign(spec, jobs=1).rows)


class TestCampaignCli:
    def run_cli(self, tmp_path, *extra, doc=SPEC_DOC):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(doc))
        out = tmp_path / "out.ndjson"
        cache = tmp_path / "cache"
        argv = [
            "campaign",
            str(spec_path),
            "--out",
            str(out),
            "--cache-dir",
            str(cache),
            *extra,
        ]
        return main(argv), out

    def test_writes_ndjson_and_reports_cache(self, tmp_path, capsys):
        code, out = self.run_cli(tmp_path)
        assert code == 0
        lines = out.read_text().splitlines()
        assert len(lines) == 4
        assert json.loads(lines[0])["workload"] == "vecadd"
        text = capsys.readouterr().out
        assert "4 cells" in text and "misses 4" in text

    def test_warm_rerun_all_hits_same_bytes(self, tmp_path, capsys):
        _, out = self.run_cli(tmp_path)
        cold = out.read_bytes()
        code, out = self.run_cli(tmp_path)
        assert code == 0
        assert out.read_bytes() == cold
        assert "hits 4, misses 0" in capsys.readouterr().out

    def test_jobs_2_same_bytes(self, tmp_path):
        _, out = self.run_cli(tmp_path, "--no-cache")
        serial = out.read_bytes()
        out.unlink()
        _, out = self.run_cli(tmp_path, "--no-cache", "--jobs", "2")
        assert out.read_bytes() == serial

    def test_bad_spec_exits_2(self, tmp_path):
        code, _ = self.run_cli(tmp_path, doc={"name": "x", "workloads": ["nope"]})
        assert code == 2

    def test_missing_spec_file_exits_2(self, tmp_path):
        assert main(["campaign", str(tmp_path / "absent.json")]) == 2

    def test_bad_jobs_exits_2(self, tmp_path):
        code, _ = self.run_cli(tmp_path, "--jobs", "0")
        assert code == 2
