"""Integration tests for §4's driver-workload findings (Figs 6-11)."""

import numpy as np
import pytest

from repro.analysis.fits import fit_time_vs_bytes
from repro.analysis.stats import duplicate_summary, per_sm_stats, vablock_stats
from repro.api import UvmSystem
from repro.config import default_config
from repro.units import MB
from repro.workloads import GaussSeidel, Hpgmg, RegularStream, Sgemm, StreamTriad


def make_system(prefetch=False, gpu_mem_mb=64, host_threads=1, **kw):
    cfg = default_config(prefetch_enabled=prefetch, **kw)
    cfg.gpu.memory_bytes = gpu_mem_mb * MB
    cfg.host.num_threads = host_threads
    return UvmSystem(cfg)


@pytest.fixture(scope="module")
def sgemm_run():
    system = make_system()
    return Sgemm(n=1024, tile=256).run(system)


class TestDataMovement:
    def test_batch_time_rises_with_bytes(self, sgemm_run):
        """Fig 6: positive linear trend of batch time vs bytes migrated."""
        fit, x, y = fit_time_vs_bytes(sgemm_run.records)
        assert fit.slope > 0
        assert fit.n > 10

    def test_transfer_is_minority_cost(self, sgemm_run):
        """Fig 7: migration takes at most ~25-30 % of any batch."""
        fracs = [r.transfer_fraction for r in sgemm_run.records if r.duration > 0]
        assert np.mean(fracs) < 0.25
        assert max(fracs) < 0.40

    def test_management_exceeds_transfer_total(self, sgemm_run):
        total = sum(r.duration for r in sgemm_run.records)
        transfer = sum(r.time_transfer_h2d + r.time_transfer_d2h for r in sgemm_run.records)
        assert transfer < 0.3 * total


class TestDuplicates:
    def test_sgemm_has_heavy_duplication(self, sgemm_run):
        """Fig 8: panel sharing makes sgemm duplicate-rich."""
        d = duplicate_summary(sgemm_run.records)
        assert d.dup_fraction > 0.3
        assert d.dup_cross_utlb > 0  # data sharing among blocks

    def test_stream_has_moderate_duplication(self):
        system = make_system()
        res = StreamTriad(nbytes=8 * MB).run(system)
        d = duplicate_summary(res.records)
        assert 0.05 < d.dup_fraction < 0.7

    def test_larger_batch_cap_fewer_batches(self):
        """Fig 9: the batch-size tradeoff tips toward larger caps.

        Needs a problem big enough that steady-state generation exceeds the
        default cap (the fig09 experiment's n=1536)."""
        results = {}
        for cap in (256, 1024):
            system = make_system(batch_size=cap)
            res = Sgemm(n=1536, tile=256).run(system)
            results[cap] = res
        assert results[1024].num_batches < results[256].num_batches
        assert results[1024].batch_time_usec <= results[256].batch_time_usec * 1.05

    def test_unique_per_batch_saturates(self):
        """Fig 9: unique faults per batch hit a generation ceiling."""
        means = {}
        for cap in (256, 4096):
            system = make_system(batch_size=cap)
            res = Sgemm(n=1024, tile=256).run(system)
            means[cap] = np.mean([r.num_faults_unique for r in res.records])
        assert means[4096] < cap  # far below the cap: generation-limited


class TestAccessPattern:
    def test_regular_spreads_over_blocks(self):
        """Table 3: per-SM streaming touches many VABlocks per batch."""
        system = make_system(gpu_mem_mb=96)
        res = RegularStream(nbytes=80 * MB, num_programs=80).run(system)
        stats = vablock_stats(res.records)
        assert stats.vablocks_per_batch > 10

    def test_stencil_stays_local(self):
        """Table 3: Gauss-Seidel's narrow frontier touches ~2 blocks."""
        system = make_system()
        res = GaussSeidel(n=1024).run(system)
        stats = vablock_stats(res.records)
        assert stats.vablocks_per_batch < 5

    def test_per_sm_ceiling(self):
        """Table 2: per-SM contribution never exceeds batch/num_sms."""
        system = make_system(gpu_mem_mb=96)
        res = RegularStream(nbytes=80 * MB, num_programs=80).run(system)
        stats = per_sm_stats(res.records, 80)
        assert stats.max <= 256 / 80 + 1e-9

    def test_apps_below_synthetic_ceiling(self):
        """Table 2 ordering: application kernels contribute fewer
        faults/SM/batch than saturating synthetic streams."""
        sys_reg = make_system(gpu_mem_mb=96)
        reg = per_sm_stats(
            RegularStream(nbytes=80 * MB, num_programs=80).run(sys_reg).records, 80
        )
        sys_gs = make_system()
        gs = per_sm_stats(GaussSeidel(n=1024).run(sys_gs).records, 80)
        assert gs.mean < reg.mean


class TestHostInteraction:
    def test_multithreaded_init_slower(self):
        """Fig 11: default-OpenMP first-touch inflates unmap cost ~2x."""
        times = {}
        for threads in (1, 64):
            system = make_system(prefetch=True, host_threads=threads)
            res = Hpgmg(n=1024, levels=3, cycles=2).run(system)
            times[threads] = res.kernel_time_usec
        assert times[64] > 1.4 * times[1]

    def test_unmap_on_fault_path(self):
        """§4.4: host-initialized data pays unmap when the GPU touches it."""
        system = make_system()
        res = StreamTriad(nbytes=4 * MB).run(system)
        assert sum(r.unmap_calls for r in res.records) > 0
        assert sum(r.time_unmap for r in res.records) > 0

    def test_unmap_fraction_higher_with_threads(self):
        fracs = {}
        for threads in (1, 64):
            system = make_system(prefetch=True, host_threads=threads)
            res = Hpgmg(n=1024, levels=3, cycles=2).run(system)
            recs = [r for r in res.records if r.duration > 0]
            fracs[threads] = np.mean([r.unmap_fraction for r in recs])
        assert fracs[64] > fracs[1]
