"""Every registered workload runs end-to-end and leaves a valid system.

This is the suite-wide contract for the CLI surface (`uvm-repro breakdown`
/ `export` / `compare` accept any registry name) and the broadest
integration coverage: all workloads × {prefetch on, off} × the invariant
validator.
"""

import pytest

from repro import UvmSystem, default_config
from repro.units import MB
from repro.validate import validate_system
from repro.workloads import WORKLOAD_REGISTRY


@pytest.mark.parametrize("name", sorted(WORKLOAD_REGISTRY))
@pytest.mark.parametrize("prefetch", [False, True], ids=["pf-off", "pf-on"])
def test_registry_workload_runs_and_validates(name, prefetch):
    cfg = default_config(prefetch_enabled=prefetch)
    cfg.gpu.memory_bytes = 64 * MB
    if name in ("regular", "random"):
        cfg.gpu.memory_bytes = 96 * MB  # their default arrays are larger
    system = UvmSystem(cfg)
    workload = WORKLOAD_REGISTRY[name]()
    result = workload.run(system)
    assert result.num_batches >= (0 if prefetch else 1)
    assert system.engine.device.idle
    violations = validate_system(system)
    assert violations == [], f"{name}: " + "; ".join(str(v) for v in violations)


@pytest.mark.parametrize("name", sorted(WORKLOAD_REGISTRY))
def test_registry_workload_deterministic(name):
    """Two identical runs produce identical batch structures."""
    def run_once():
        cfg = default_config(prefetch_enabled=False)
        cfg.gpu.memory_bytes = 96 * MB
        system = UvmSystem(cfg)
        result = WORKLOAD_REGISTRY[name]().run(system)
        return [
            (r.num_faults_raw, r.num_faults_unique, r.num_vablocks)
            for r in result.records
        ]

    assert run_once() == run_once()
