"""Crash-bundle integration: every chaos profile, crashed at the same
batch, writes a schema-valid diagnostic bundle; equal seeds produce
byte-identical bundles; and the flight recorder never moves the timeline.
"""

import json
from pathlib import Path

import jsonschema
import pytest

from repro.api import UvmSystem
from repro.config import default_config
from repro.errors import InjectedCrash
from repro.inject.profiles import BUILTIN_PROFILES
from repro.obs.analyze import analyze_bundle
from repro.obs.bundle import (
    BUNDLE_SCHEMA,
    EVENTS_NAME,
    MANIFEST_NAME,
    read_manifest,
)
from repro.units import MB
from repro.workloads import WORKLOAD_REGISTRY

REPO_ROOT = Path(__file__).resolve().parents[2]
SCHEMA = json.loads(
    (REPO_ROOT / "docs" / "schemas" / "bundle.schema.json").read_text()
)
EXAMPLE_PROFILES = sorted(
    str(p) for p in (REPO_ROOT / "examples" / "chaos").glob("*.json")
)
PROFILES = sorted(BUILTIN_PROFILES) + EXAMPLE_PROFILES

CRASH_BATCH = 4


def _crash_run(profile, seed, bundle_root):
    """Run stream under ``profile`` with a forced unrecovered crash; the
    inline site merges over the profile, so every profile dies at the same
    batch and the bundle is the only artifact under test."""
    cfg = default_config()
    cfg.gpu.memory_bytes = 32 * MB
    cfg.seed = seed
    cfg.inject.enabled = True
    cfg.inject.profile = profile
    cfg.inject.sites = {"engine.crash": {"at_batch": CRASH_BATCH}}
    cfg.inject.crash_recovery = False
    cfg.inject.checkpoint_every = 2
    cfg.obs.bundle_dir = str(bundle_root)
    system = UvmSystem(cfg)
    with pytest.raises(InjectedCrash):
        WORKLOAD_REGISTRY["stream"]().run(system)
    bundle = system.engine.last_bundle
    assert bundle is not None
    return bundle


class TestBundleOnCrash:
    @pytest.mark.parametrize("seed", [0, 1])
    @pytest.mark.parametrize(
        "profile", PROFILES, ids=[Path(p).stem for p in PROFILES]
    )
    def test_schema_valid_and_analyzable(self, profile, seed, tmp_path):
        bundle = _crash_run(profile, seed, tmp_path)
        manifest = read_manifest(bundle)
        jsonschema.validate(manifest, SCHEMA)
        assert manifest["schema"] == BUNDLE_SCHEMA
        assert manifest["error"]["type"] == "InjectedCrash"
        assert manifest["error"]["batch_id"] == CRASH_BATCH
        assert manifest["seed"] == seed
        report = analyze_bundle(bundle)
        assert report["failing_batch"] == CRASH_BATCH
        assert report["checkpoint"] is not None
        assert report["event_tail"]

    @pytest.mark.parametrize("profile", ["crashy", "kitchen-sink"])
    def test_equal_seeds_byte_identical(self, profile, tmp_path):
        a = _crash_run(profile, 0, tmp_path / "a")
        b = _crash_run(profile, 0, tmp_path / "b")
        assert (a / EVENTS_NAME).read_bytes() == (b / EVENTS_NAME).read_bytes()
        assert (a / MANIFEST_NAME).read_bytes() == (
            b / MANIFEST_NAME
        ).read_bytes()

    def test_analyze_cli_renders_bundle(self, tmp_path, capsys):
        from repro.cli import main

        bundle = _crash_run("crashy", 0, tmp_path)
        assert main(["analyze", str(bundle)]) == 0
        out = capsys.readouterr().out
        assert "crash bundle" in out
        assert "InjectedCrash" in out
        assert f"failing batch: {CRASH_BATCH}" in out
        assert "flight-recorder tail:" in out


class TestTimelineNeutrality:
    def _run(self, flight: bool):
        cfg = default_config()
        cfg.gpu.memory_bytes = 32 * MB
        cfg.obs.flight_recorder = flight
        system = UvmSystem(cfg)
        result = WORKLOAD_REGISTRY["stream"]().run(system)
        return system, result

    def test_flight_on_off_identical_timeline(self):
        sys_on, res_on = self._run(flight=True)
        sys_off, res_off = self._run(flight=False)
        assert sys_on.clock.now == sys_off.clock.now
        assert res_on.num_batches == res_off.num_batches
        assert [r.to_dict() for r in res_on.records] == [
            r.to_dict() for r in res_off.records
        ]
        # The on-run actually recorded something; the off-run is the null.
        assert len(sys_on.engine.flight) > 0
        assert len(sys_off.engine.flight) == 0
