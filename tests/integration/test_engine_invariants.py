"""System-level invariants the engine must preserve on any workload."""

import pytest

from repro.api import UvmSystem
from repro.config import default_config
from repro.errors import DeadlockError
from repro.gpu.warp import KernelLaunch, Phase, WarpProgram
from repro.units import MB, PAGE_SIZE
from repro.workloads import CuFft, GaussSeidel, StreamTriad


def make_system(prefetch=False, gpu_mem_mb=16, **kw):
    cfg = default_config(prefetch_enabled=prefetch, **kw)
    cfg.gpu.num_sms = 8
    cfg.gpu.memory_bytes = gpu_mem_mb * MB
    return UvmSystem(cfg)


class TestCompletionInvariants:
    def run_and_check(self, system, workload):
        res = workload.run(system)
        # 1. Clock is monotonic and nonzero.
        assert system.clock.now > 0
        # 2. Every batch interval is well-formed and ordered.
        records = res.records
        for r in records:
            assert r.t_end >= r.t_start
            assert r.num_faults_unique <= r.num_faults_raw
            assert r.num_faults_unique == 0 or r.num_vablocks > 0
        # 3. Resident pages fit device memory.
        assert (
            len(system.engine.device.page_table)
            <= system.config.gpu.memory_bytes // PAGE_SIZE
        )
        # 4. Block residency agrees with the page table.
        pt = system.engine.device.page_table
        for block in system.driver.vablocks.blocks():
            for page in block.resident_pages:
                assert pt.is_resident(page)
        # 5. Chunk accounting agrees with block allocation.
        allocated = sum(
            1 for b in system.driver.vablocks.blocks() if b.is_gpu_allocated
        )
        assert allocated == system.engine.device.chunks.used_chunks
        return res

    def test_stream_invariants(self):
        self.run_and_check(make_system(), StreamTriad(nbytes=2 * MB))

    def test_stream_oversubscribed_invariants(self):
        self.run_and_check(make_system(gpu_mem_mb=4), StreamTriad(nbytes=2 * MB))

    def test_fft_invariants(self):
        self.run_and_check(make_system(), CuFft(nbytes=2 * MB, num_programs=8))

    def test_gauss_seidel_prefetch_invariants(self):
        self.run_and_check(
            make_system(prefetch=True), GaussSeidel(n=512, num_programs=4, band_rows=8)
        )

    def test_all_touched_pages_eventually_resident_or_evicted(self):
        system = make_system()
        alloc = system.managed_alloc(8 * PAGE_SIZE)
        kernel = KernelLaunch(
            "touch-all",
            [WarpProgram([Phase.of(list(alloc.pages()))])],
        )
        system.launch(kernel)
        pt = system.engine.device.page_table
        assert all(pt.is_resident(p) for p in alloc.pages())


class TestWarpCompletion:
    def test_every_warp_retires(self):
        system = make_system()
        res = StreamTriad(nbytes=2 * MB).run(system)
        assert system.engine.device.idle
        assert all(not sm.active and not sm.queued for sm in system.engine.device.sms)

    def test_fault_conservation(self):
        """Raw faults fetched = pushed - flush-dropped - residual buffer."""
        system = make_system()
        res = StreamTriad(nbytes=2 * MB).run(system)
        buf = system.engine.device.fault_buffer
        fetched = sum(r.num_faults_raw for r in res.records)
        assert fetched == buf.total_pushed - buf.total_flush_dropped - len(buf)

    def test_occupancy_limits_held(self):
        system = make_system()
        programs = [WarpProgram([Phase.of([i])]) for i in range(64)]
        alloc = system.managed_alloc(64 * PAGE_SIZE)
        programs = [
            WarpProgram([Phase.of([alloc.page(i)])]) for i in range(64)
        ]
        kernel = KernelLaunch("many", programs, occupancy=2)
        res = system.launch(kernel)
        assert res.num_warps == 64
        assert system.engine.device.idle


class TestDeadlockDetection:
    def test_unbacked_access_is_detected(self):
        system = make_system()
        # A program touching a page outside any allocation: the driver
        # raises InvalidAccess when the fault is serviced.
        from repro.errors import InvalidAccess

        kernel = KernelLaunch("bad", [WarpProgram([Phase.of([10_000_000])])])
        with pytest.raises(InvalidAccess):
            system.launch(kernel)

    def test_empty_kernel_completes(self):
        system = make_system()
        res = system.launch(KernelLaunch("empty", []))
        assert res.num_batches == 0
        assert res.kernel_time_usec == 0.0

    def test_no_fault_kernel_completes(self):
        system = make_system()
        alloc = system.managed_alloc(4 * PAGE_SIZE)
        # Pre-fault the pages, then run a kernel that only hits.
        k1 = KernelLaunch("warm", [WarpProgram([Phase.of(list(alloc.pages()))])])
        system.launch(k1)
        k2 = KernelLaunch(
            "hits", [WarpProgram([Phase.of(list(alloc.pages()), compute_usec=5.0)])]
        )
        res = system.launch(k2)
        assert res.num_batches == 0
        assert res.kernel_time_usec > 0  # compute still takes time
