"""Batch records are closed even when servicing raises mid-batch.

Under ``failure_mode="fail-fast"`` an injected failure escapes a hinted or
fault batch as :class:`repro.errors.RetryExhausted` *after*
``san.on_batch_start`` has opened the record.  The driver's abort path must
still append the (partial) record — flagged ``aborted`` — and hand it to
UVMSan's ``on_batch_abort`` hook, which skips the reconciliation checks
that only hold for completed batches.
"""

import pytest

from repro.api import UvmSystem
from repro.config import default_config
from repro.errors import RetryExhausted
from repro.units import MB
from repro.workloads import RegularStream


def fail_fast_system(sites, seed=0):
    cfg = default_config(failure_mode="fail-fast")
    cfg.seed = seed
    cfg.gpu.memory_bytes = 16 * MB
    cfg.gpu.num_sms = 8
    cfg.check.enabled = True
    cfg.check.mode = "report"
    cfg.inject.enabled = True
    cfg.inject.sites = dict(sites)
    cfg.validate()
    return UvmSystem(cfg)


class TestHintedBatchAbort:
    def test_advise_accessed_by_abort_closes_record(self):
        system = fail_fast_system({"dma.map_fail": {"rate": 1.0}})
        alloc = system.managed_alloc(1 * MB)
        system.host_touch(alloc)
        with pytest.raises(RetryExhausted):
            system.mem_advise_accessed_by(alloc)
        records = system.records
        assert len(records) == 1
        record = records[0]
        assert record.aborted
        assert record.hinted
        assert record.t_end >= record.t_start
        assert system.sanitizer.total_violations == 0

    def test_prefetch_abort_closes_record(self):
        system = fail_fast_system({"ce.transfer_fault": {"rate": 1.0}})
        alloc = system.managed_alloc(1 * MB)
        system.host_touch(alloc)
        with pytest.raises(RetryExhausted):
            system.mem_prefetch(alloc)
        assert system.records[-1].aborted
        assert system.sanitizer.total_violations == 0

    def test_next_batch_clean_after_abort(self):
        system = fail_fast_system({"dma.map_fail": {"rate": 1.0}})
        alloc = system.managed_alloc(1 * MB)
        system.host_touch(alloc)
        with pytest.raises(RetryExhausted):
            system.mem_advise_accessed_by(alloc)
        # Disarm the injected failure at the component and retry: the next
        # hinted batch must run to completion with a fresh record.
        system.engine.dma._inj = None
        record = system.mem_advise_accessed_by(alloc)
        assert not record.aborted
        assert system.records[-1] is record
        assert record.batch_id > system.records[0].batch_id
        assert system.sanitizer.total_violations == 0


class TestFaultBatchAbort:
    def test_service_batch_abort_closes_record(self):
        system = fail_fast_system({"ce.transfer_fault": {"rate": 1.0}})
        with pytest.raises(RetryExhausted):
            RegularStream(nbytes=4 * MB).run(system)
        records = system.records
        assert records, "the aborted fault batch must still be logged"
        assert records[-1].aborted
        assert records[-1].t_end >= records[-1].t_start
        assert system.sanitizer.total_violations == 0

    def test_aborted_records_round_trip_serialization(self):
        system = fail_fast_system({"ce.transfer_fault": {"rate": 1.0}})
        with pytest.raises(RetryExhausted):
            RegularStream(nbytes=4 * MB).run(system)
        record = system.records[-1]
        clone = type(record).from_dict(record.to_dict())
        assert clone.aborted is True

    def test_completed_records_not_marked_aborted(self):
        system = fail_fast_system({"ce.transfer_fault": {"rate": 0.0}})
        RegularStream(nbytes=4 * MB).run(system)
        assert system.records
        assert not any(r.aborted for r in system.records)
        assert system.sanitizer.total_violations == 0
