"""Integration tests for §5: prefetching, oversubscription, and their
combination (Figs 12-17, Table 4)."""

import numpy as np
import pytest

from repro.analysis.timeseries import eviction_groups
from repro.api import UvmSystem
from repro.config import default_config
from repro.units import MB, PAGES_PER_VABLOCK
from repro.workloads import Dgemm, GaussSeidel, Sgemm, StreamTriad


def make_system(prefetch=False, gpu_mem_mb=64, trace=False, **kw):
    cfg = default_config(prefetch_enabled=prefetch, **kw)
    cfg.gpu.memory_bytes = gpu_mem_mb * MB
    return UvmSystem(cfg, trace=trace)


class TestOversubscription:
    def test_in_core_never_evicts(self):
        system = make_system()
        res = StreamTriad(nbytes=8 * MB).run(system)  # 24 MB < 64 MB
        assert sum(r.evictions for r in res.records) == 0

    def test_oversubscribed_evicts(self):
        system = make_system(gpu_mem_mb=16)
        res = StreamTriad(nbytes=8 * MB).run(system)  # 24 MB > 16 MB
        assert sum(r.evictions for r in res.records) > 0

    def test_memory_budget_respected(self):
        """Resident pages never exceed device capacity."""
        system = make_system(gpu_mem_mb=16)
        res = StreamTriad(nbytes=8 * MB).run(system)
        capacity_pages = 16 * MB // 4096
        assert len(system.engine.device.page_table) <= capacity_pages
        assert system.engine.device.chunks.used_chunks <= 8

    def test_eviction_batches_cost_more(self):
        """Fig 12: batches containing evictions are slower on average."""
        system = make_system(gpu_mem_mb=16)
        res = StreamTriad(nbytes=8 * MB, sweeps=2).run(system)
        groups = eviction_groups(res.records)
        no_evict = np.mean([r.duration for r in groups.get(0, [])])
        with_evict = np.mean(
            [r.duration for k, recs in groups.items() if k > 0 for r in recs]
        )
        assert with_evict > no_evict

    def test_eviction_preserves_data_on_host(self):
        system = make_system(gpu_mem_mb=16)
        StreamTriad(nbytes=8 * MB).run(system)
        host_vm = system.engine.host_vm
        pt = system.engine.device.page_table
        # Every input page is valid somewhere (host copy or device copy).
        for alloc in system.allocations[1:]:  # b, c were host-initialized
            for page in alloc.pages():
                assert host_vm.has_valid_data(page) or pt.is_resident(page)

    def test_lru_evicts_earliest_allocated(self):
        """Fig 16c/17c: dense sweeps evict in allocation order."""
        system = make_system(gpu_mem_mb=16, trace=True)
        StreamTriad(nbytes=8 * MB).run(system)
        evicts = [e.payload[1] for e in system.trace.select("evict")]
        migrates = []
        for e in system.trace.select("migrate"):
            if e.payload[1] not in migrates:
                migrates.append(e.payload[1])
        # First evicted block is among the first allocated blocks.
        assert evicts[0] in migrates[:4]

    def test_refault_after_eviction_skips_unmap(self):
        """Fig 13 levels: second sweep pages blocks back without unmap."""
        system = make_system(gpu_mem_mb=16)
        res = StreamTriad(nbytes=8 * MB, sweeps=2).run(system)
        recs = res.records
        # Late batches (second sweep refaults) should include migrating
        # batches with zero unmap time.
        late = recs[len(recs) // 2 :]
        assert any(
            r.pages_migrated_h2d > 0 and r.time_unmap == 0.0 for r in late
        )


class TestPrefetching:
    def test_prefetch_eliminates_most_batches(self):
        """Fig 14: ~90 % fewer batches with prefetching."""
        off = Sgemm(n=1024, tile=256).run(make_system(prefetch=False))
        on = Sgemm(n=1024, tile=256).run(make_system(prefetch=True))
        assert on.num_batches < 0.35 * off.num_batches

    def test_prefetch_improves_total_time(self):
        off = Sgemm(n=1024, tile=256).run(make_system(prefetch=False))
        on = Sgemm(n=1024, tile=256).run(make_system(prefetch=True))
        assert on.kernel_time_usec < off.kernel_time_usec

    def test_prefetch_cannot_eliminate_dma_batches(self):
        """§5.2: compulsory first-access DMA batches survive prefetching."""
        on = Sgemm(n=1024, tile=256).run(make_system(prefetch=True))
        dma_blocks = sum(r.new_dma_blocks for r in on.records)
        # Every touched block (3 matrices x 4 MiB = 6 blocks) paid its
        # compulsory DMA-state batch despite prefetching.
        assert dma_blocks >= 3 * (1024 * 1024 * 4) // (2 * MB)

    def test_prefetch_respects_block_boundary(self):
        """The prefetcher never maps pages of untouched blocks."""
        system = make_system(prefetch=True)
        alloc = system.managed_alloc(8 * MB, "data")
        system.host_touch(alloc)
        from repro.gpu.warp import KernelLaunch, Phase, WarpProgram

        kernel = KernelLaunch(
            "one-block", [WarpProgram([Phase.of([alloc.page(0)])])]
        )
        system.launch(kernel)
        pt = system.engine.device.page_table
        for page in alloc.pages(PAGES_PER_VABLOCK):
            assert not pt.is_resident(page)

    def test_prefetch_speedup_under_modest_oversubscription(self):
        """Table 4: prefetching still wins at ~19 % oversubscription."""
        off = GaussSeidel(n=1024, sweeps=1).run(make_system(prefetch=False, gpu_mem_mb=14))
        on = GaussSeidel(n=1024, sweeps=1).run(make_system(prefetch=True, gpu_mem_mb=14))
        assert on.kernel_time_usec < off.kernel_time_usec

    def test_batch_time_below_kernel_time(self):
        """Table 4: aggregate batch time excludes GPU compute."""
        res = GaussSeidel(n=1024).run(make_system(prefetch=True))
        assert res.batch_time_usec < res.kernel_time_usec


class TestEvictionPlusPrefetch:
    @pytest.fixture(scope="class")
    def dgemm_run(self):
        system = make_system(prefetch=True, gpu_mem_mb=16)
        return Dgemm(n=1024, tile=256).run(system)  # 24 MB data vs 16 MB

    def test_all_four_populations_present(self, dgemm_run):
        """Fig 15: prefetch, eviction, unmap, and DMA batches coexist."""
        recs = dgemm_run.records
        assert any(r.pages_prefetched > 0 for r in recs)
        assert any(r.evictions > 0 for r in recs)
        assert any(r.unmap_calls > 0 for r in recs)
        assert any(r.new_dma_blocks > 0 for r in recs)

    def test_eviction_interplay_with_prefetch(self, dgemm_run):
        """§5.3: prefetched-then-evicted data pays both costs."""
        assert sum(r.pages_evicted for r in dgemm_run.records) > 0
        assert sum(r.pages_prefetched for r in dgemm_run.records) > 0

    def test_result_completes(self, dgemm_run):
        assert dgemm_run.num_batches > 0
        assert dgemm_run.kernel_time_usec > 0
