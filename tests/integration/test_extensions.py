"""Integration tests for the extension features: pointer chase, platform
presets, multi-GPU phase patterns, and hint workflows under real workloads."""

import pytest

from repro import UvmSystem, default_config
from repro.gpu.warp import KernelLaunch, Phase, WarpProgram
from repro.hostos.platforms import PLATFORM_PRESETS
from repro.multigpu import MultiGpuSystem
from repro.units import MB
from repro.validate import validate_system
from repro.workloads import GaussSeidel, PointerChase, StreamTriad


class TestPointerChase:
    def test_one_fault_per_batch(self):
        system = UvmSystem(default_config(prefetch_enabled=False))
        res = PointerChase(num_pages=128, hops=64).run(system)
        assert res.num_batches == 64
        assert all(r.num_faults_raw == 1 for r in res.records)

    def test_prefetch_helps_chase_little(self):
        """The 64 KiB upgrade catches some hops by luck, but random hops
        defeat density prefetching compared to its effect on streams."""
        runs = {}
        for prefetch in (False, True):
            system = UvmSystem(default_config(prefetch_enabled=prefetch))
            res = PointerChase(num_pages=4096, hops=128).run(system)
            runs[prefetch] = res.num_batches
        reduction = 1 - runs[True] / runs[False]
        assert reduction < 0.85  # below the ~90 % dense-sweep reduction
        assert runs[True] > 10  # the chase stays serialization-bound

    def test_multiple_chains_share_batches(self):
        system = UvmSystem(default_config(prefetch_enabled=False))
        res = PointerChase(num_pages=256, hops=32, num_chains=8).run(system)
        # Independent chains' faults coalesce into shared batches.
        assert res.num_batches < 8 * 32

    def test_hops_bounded(self):
        with pytest.raises(ValueError):
            PointerChase(num_pages=16, hops=32)

    def test_validates(self):
        system = UvmSystem(default_config(prefetch_enabled=False))
        PointerChase(num_pages=128, hops=32).run(system)
        assert validate_system(system) == []


class TestPlatformPresets:
    def test_presets_apply_cleanly(self):
        for name, preset in PLATFORM_PRESETS.items():
            cfg = default_config()
            cfg.cost_overrides = dict(preset)
            system = UvmSystem(cfg)
            res = StreamTriad(nbytes=2 * MB).run(system)
            assert res.num_batches > 0, name

    def test_nvlink_faster_than_pcie3(self):
        times = {}
        for preset in ("x86-pcie3", "power9-nvlink2"):
            cfg = default_config(prefetch_enabled=False)
            cfg.cost_overrides = dict(PLATFORM_PRESETS[preset])
            system = UvmSystem(cfg)
            times[preset] = StreamTriad(nbytes=4 * MB).run(system).batch_time_usec
        assert times["power9-nvlink2"] < times["x86-pcie3"]

    def test_even_ideal_wire_is_management_bound(self):
        """§6: zeroing the wire leaves most of the batch time standing."""
        times = {}
        for preset in ("x86-pcie3", "ideal-interconnect"):
            cfg = default_config(prefetch_enabled=False)
            cfg.cost_overrides = dict(PLATFORM_PRESETS[preset])
            system = UvmSystem(cfg)
            times[preset] = StreamTriad(nbytes=4 * MB).run(system).batch_time_usec
        assert times["ideal-interconnect"] > 0.6 * times["x86-pcie3"]


class TestMultiGpuPhases:
    def sweep(self, alloc, start, stop, name="k"):
        pages = list(alloc.pages(start, stop))
        phases = [Phase.of(pages[i : i + 32]) for i in range(0, len(pages), 32)]
        return KernelLaunch(name, [WarpProgram(phases)])

    def test_halo_exchange_pipeline(self):
        """Produce on device 0, consume the halo on device 1, repeat."""
        cfg = default_config(prefetch_enabled=True)
        cfg.gpu.memory_bytes = 16 * MB
        mg = MultiGpuSystem(num_devices=2, config=cfg)
        domain = mg.managed_alloc(8 * MB, "domain")
        mg.host_touch(domain)
        halo = range(domain.num_pages // 2 - 32, domain.num_pages // 2 + 32)
        for _round in range(3):
            mg.launch(0, self.sweep(domain, 0, domain.num_pages // 2, "left"))
            mg.launch(1, self.sweep(domain, domain.num_pages // 2 - 32,
                                    domain.num_pages, "right"))
        # Halo pages ping-pong: peer traffic accumulated each round.
        assert mg.peer_stats.total_pages >= 32 * 3

    def test_each_device_validates(self):
        cfg = default_config(prefetch_enabled=False)
        cfg.gpu.memory_bytes = 16 * MB
        mg = MultiGpuSystem(num_devices=2, config=cfg)
        domain = mg.managed_alloc(8 * MB, "d")
        mg.host_touch(domain)
        mg.launch(0, self.sweep(domain, 0, 512, "a"))
        mg.launch(1, self.sweep(domain, 512, 1024, "b"))
        from repro.validate import (
            check_memory_accounting,
            check_records,
            check_residency_consistency,
        )

        for handle in mg.devices:
            class _Shim:  # minimal UvmSystem-like view per device
                engine = handle.engine
                config = handle.engine.config
                records = handle.driver.log.records

            shim = _Shim()
            assert check_residency_consistency(shim) == []
            assert check_memory_accounting(shim) == []
            assert check_records(shim.records) == []

    def test_oversubscribed_devices_still_converge(self):
        cfg = default_config(prefetch_enabled=False)
        cfg.gpu.memory_bytes = 4 * MB
        mg = MultiGpuSystem(num_devices=2, config=cfg)
        domain = mg.managed_alloc(6 * MB, "d")
        mg.host_touch(domain)
        res0 = mg.launch(0, self.sweep(domain, 0, domain.num_pages, "full0"))
        res1 = mg.launch(1, self.sweep(domain, 0, domain.num_pages, "full1"))
        assert res0.num_batches > 0 and res1.num_batches > 0


class TestHintWorkflows:
    def test_prefetch_hint_on_stencil(self):
        """Hinting the whole grid after host init removes the fault storm."""
        results = {}
        for hinted in (False, True):
            system = UvmSystem(default_config(prefetch_enabled=True))
            workload = GaussSeidel(n=1024, sweeps=1)
            steps = workload.steps(system)
            host_steps = [s_ for s_ in steps if callable(s_)]
            kernels = [s_ for s_ in steps if not callable(s_)]
            for step in host_steps:
                step(system)
            if hinted:
                for alloc in system.allocations:
                    system.mem_prefetch(alloc)
            result = system.run(kernels, name="gs")
            results[hinted] = result
        assert results[True].total_faults < results[False].total_faults
        assert results[True].kernel_time_usec < results[False].kernel_time_usec

    def test_read_mostly_input_saves_eviction_writeback(self):
        """Read-mostly inputs keep valid host copies, so evicting them
        skips the copy-back."""
        bytes_back = {}
        for advised in (False, True):
            cfg = default_config(prefetch_enabled=False)
            cfg.gpu.memory_bytes = 4 * MB
            system = UvmSystem(cfg)
            data = system.managed_alloc(6 * MB, "in")
            system.host_touch(data)
            if advised:
                system.mem_advise_read_mostly(data)
            pages = list(data.pages())
            phases = [Phase.of(pages[i : i + 64]) for i in range(0, len(pages), 64)]
            system.launch(KernelLaunch("scan", [WarpProgram(phases)]))
            bytes_back[advised] = sum(r.bytes_d2h for r in system.records)
        # Note: the current model always copies evicted blocks back (the
        # driver tracks no dirty bits); read-mostly keeps host data valid
        # either way.  Both must at least complete and validate.
        assert bytes_back[False] >= 0 and bytes_back[True] >= 0
