"""Property-based tests for multi-GPU ownership and the hint APIs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import UvmSystem, default_config
from repro.gpu.warp import KernelLaunch, Phase, WarpProgram
from repro.multigpu import MultiGpuSystem
from repro.units import MB, PAGE_SIZE


def mg_config():
    cfg = default_config(prefetch_enabled=False)
    cfg.gpu.num_sms = 4
    cfg.gpu.memory_bytes = 8 * MB
    cfg.cost_overrides = {"jitter_frac": 0.0}
    return cfg


def kernel_for(alloc, offsets, name="k"):
    pages = [alloc.page(o) for o in sorted(set(offsets))]
    return KernelLaunch(name, [WarpProgram([Phase.of(pages)])])


launch_plan = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1),  # device
        st.sets(st.integers(min_value=0, max_value=255), min_size=1, max_size=24),
    ),
    min_size=1,
    max_size=6,
)


class TestMultiGpuOwnershipProps:
    @given(launch_plan)
    @settings(max_examples=25, deadline=None)
    def test_single_owner_invariant(self, plan):
        """No page is ever resident on two devices at once."""
        mg = MultiGpuSystem(num_devices=2, config=mg_config())
        alloc = mg.managed_alloc(1 * MB)
        mg.host_touch(alloc)
        for i, (device, offsets) in enumerate(plan):
            mg.launch(device, kernel_for(alloc, offsets, f"k{i}"))
            for page in alloc.pages():
                on = [
                    d.device_id
                    for d in mg.devices
                    if d.engine.device.page_table.is_resident(page)
                ]
                assert len(on) <= 1, f"page {page} on devices {on}"

    @given(launch_plan)
    @settings(max_examples=25, deadline=None)
    def test_owner_map_matches_residency(self, plan):
        """The coordinator's owner map agrees with device page tables."""
        mg = MultiGpuSystem(num_devices=2, config=mg_config())
        alloc = mg.managed_alloc(1 * MB)
        mg.host_touch(alloc)
        for i, (device, offsets) in enumerate(plan):
            mg.launch(device, kernel_for(alloc, offsets, f"k{i}"))
        for page, owner in mg._owner.items():
            assert mg.devices[owner].engine.device.page_table.is_resident(page)

    @given(launch_plan, st.booleans())
    @settings(max_examples=20, deadline=None)
    def test_clock_monotonic_and_stats_consistent(self, plan, peer):
        mg = MultiGpuSystem(num_devices=2, config=mg_config(), peer_enabled=peer)
        alloc = mg.managed_alloc(1 * MB)
        mg.host_touch(alloc)
        last = mg.clock.now
        for i, (device, offsets) in enumerate(plan):
            mg.launch(device, kernel_for(alloc, offsets, f"k{i}"))
            assert mg.clock.now >= last
            last = mg.clock.now
        stats = mg.peer_stats
        if peer:
            assert stats.bounce_pages == 0
        else:
            assert stats.peer_pages == 0


class TestHintProps:
    @given(
        st.sets(st.integers(min_value=0, max_value=511), min_size=1, max_size=64)
    )
    @settings(max_examples=25, deadline=None)
    def test_mem_prefetch_exact_residency(self, offsets):
        """Bulk migration makes exactly the hinted pages resident."""
        cfg = default_config(prefetch_enabled=False)
        cfg.gpu.num_sms = 4
        cfg.gpu.memory_bytes = 8 * MB
        system = UvmSystem(cfg)
        alloc = system.managed_alloc(2 * MB)
        pages = [alloc.page(o) for o in offsets]
        system.engine.driver.bulk_migrate(pages)
        pt = system.engine.device.page_table
        for off in range(alloc.num_pages):
            page = alloc.page(off)
            assert pt.is_resident(page) == (off in offsets)

    @given(
        st.sets(st.integers(min_value=0, max_value=511), min_size=1, max_size=64),
        st.sets(st.integers(min_value=0, max_value=511), min_size=1, max_size=64),
    )
    @settings(max_examples=25, deadline=None)
    def test_prefetch_then_kernel_no_faults_on_covered(self, hinted, touched):
        cfg = default_config(prefetch_enabled=False)
        cfg.gpu.num_sms = 4
        cfg.gpu.memory_bytes = 8 * MB
        system = UvmSystem(cfg)
        alloc = system.managed_alloc(2 * MB)
        system.host_touch(alloc)
        system.engine.driver.bulk_migrate([alloc.page(o) for o in hinted])
        kernel = kernel_for(alloc, touched)
        res = system.launch(kernel)
        uncovered = touched - hinted
        faults = sum(r.num_faults_unique for r in res.records)
        assert faults == len(uncovered)

    @given(st.sets(st.integers(min_value=0, max_value=511), min_size=1, max_size=64))
    @settings(max_examples=20, deadline=None)
    def test_accessed_by_consumes_no_chunks(self, offsets):
        cfg = default_config(prefetch_enabled=False)
        cfg.gpu.num_sms = 4
        cfg.gpu.memory_bytes = 8 * MB
        system = UvmSystem(cfg)
        alloc = system.managed_alloc(2 * MB)
        system.engine.driver.advise_accessed_by([alloc.page(o) for o in offsets])
        assert system.engine.device.chunks.used_chunks == 0
        pt = system.engine.device.page_table
        assert all(pt.is_resident(alloc.page(o)) for o in offsets)
