"""Property-based tests for core driver data structures: batch assembly,
LRU eviction, fault buffer, prefetcher, and region arithmetic."""

from collections import Counter, OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch import assemble_batch
from repro.core.eviction import LruEvictionPolicy
from repro.core.prefetch import DensityPrefetcher
from repro.core.residency import region_upgrade
from repro.core.vablock import VABlockState
from repro.gpu.fault import AccessType, Fault
from repro.gpu.fault_buffer import FaultBuffer
from repro.units import PAGES_PER_REGION, PAGES_PER_VABLOCK

NUM_SMS = 8

fault_st = st.builds(
    Fault,
    page=st.integers(min_value=0, max_value=2000),
    access=st.sampled_from(list(AccessType)),
    sm_id=st.integers(min_value=0, max_value=NUM_SMS - 1),
    utlb_id=st.integers(min_value=0, max_value=NUM_SMS // 2 - 1),
    warp_uid=st.integers(min_value=1, max_value=50),
    timestamp=st.floats(min_value=0, max_value=1e6, allow_nan=False),
)


class TestBatchAssemblyProps:
    @given(st.lists(fault_st, max_size=200))
    def test_conservation(self, faults):
        batch = assemble_batch(faults, NUM_SMS)
        assert batch.num_raw == len(faults)
        assert (
            batch.num_unique + batch.dup_same_utlb + batch.dup_cross_utlb
            == len(faults)
        )

    @given(st.lists(fault_st, max_size=200))
    def test_unique_equals_distinct_pages(self, faults):
        batch = assemble_batch(faults, NUM_SMS)
        assert batch.num_unique == len({f.page for f in faults})

    @given(st.lists(fault_st, max_size=200))
    def test_block_pages_disjoint_and_complete(self, faults):
        batch = assemble_batch(faults, NUM_SMS)
        all_pages = [p for w in batch.blocks for p in w.pages]
        assert len(all_pages) == len(set(all_pages))
        assert set(all_pages) == {f.page for f in faults}

    @given(st.lists(fault_st, max_size=200))
    def test_pages_grouped_into_right_blocks(self, faults):
        batch = assemble_batch(faults, NUM_SMS)
        for work in batch.blocks:
            for page in work.pages:
                assert page // PAGES_PER_VABLOCK == work.block_id

    @given(st.lists(fault_st, max_size=200))
    def test_sm_counts_total(self, faults):
        batch = assemble_batch(faults, NUM_SMS)
        assert batch.sm_fault_counts.sum() == len(faults)
        counts = Counter(f.sm_id for f in faults)
        for sm, n in counts.items():
            assert batch.sm_fault_counts[sm] == n

    @given(st.lists(fault_st, max_size=200))
    def test_write_pages_subset_of_pages(self, faults):
        batch = assemble_batch(faults, NUM_SMS)
        for work in batch.blocks:
            assert work.write_pages <= set(work.pages)
            assert not (work.write_pages & work.prefetch_only_pages)


class TestLruProps:
    @given(st.lists(st.integers(0, 20), max_size=60))
    def test_matches_ordered_dict_model(self, ops):
        """Allocation + fault-touch sequence: victim == model's oldest."""
        lru = LruEvictionPolicy()
        model = OrderedDict()
        for block in ops:
            if block in model:
                lru.on_fault_service(block)
                model.move_to_end(block)
            else:
                lru.on_gpu_allocated(block)
                model[block] = None
        if model:
            assert lru.pick_victim(set()) == next(iter(model))
        assert list(lru.lru_order()) == list(model)

    @given(
        st.lists(st.integers(0, 10), min_size=1, max_size=30),
        st.sets(st.integers(0, 10)),
    )
    def test_victim_never_excluded(self, blocks, exclude):
        lru = LruEvictionPolicy()
        for b in blocks:
            lru.on_gpu_allocated(b)
        victim = lru.pick_victim(exclude)
        if victim is not None:
            assert victim not in exclude
        else:
            assert set(blocks) <= exclude


class TestFaultBufferProps:
    @given(
        st.integers(min_value=1, max_value=64),
        st.lists(st.integers(0, 1000), max_size=200),
    )
    def test_never_exceeds_capacity(self, capacity, pages):
        buf = FaultBuffer(capacity)
        for p in pages:
            buf.push(Fault(p, AccessType.READ, 0, 0, 1, 0.0))
            assert len(buf) <= capacity

    @given(
        st.integers(min_value=1, max_value=64),
        st.lists(st.integers(0, 1000), max_size=200),
        st.integers(min_value=0, max_value=300),
    )
    def test_accounting_balances(self, capacity, pages, fetch_n):
        buf = FaultBuffer(capacity)
        for p in pages:
            buf.push(Fault(p, AccessType.READ, 0, 0, 1, 0.0))
        fetched = buf.fetch(fetch_n)
        flushed = buf.flush()
        assert buf.total_pushed == len(fetched) + len(flushed)
        assert buf.total_overflow_dropped == len(pages) - buf.total_pushed

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=64))
    def test_fifo_order_preserved(self, pages):
        buf = FaultBuffer(1000)
        for i, p in enumerate(pages):
            buf.push(Fault(p, AccessType.READ, 0, 0, 1, float(i)))
        fetched = buf.fetch(len(pages))
        assert [f.page for f in fetched] == pages


class TestPrefetcherProps:
    @given(
        st.sets(st.integers(0, PAGES_PER_VABLOCK - 1), min_size=1, max_size=64),
        st.sets(st.integers(0, PAGES_PER_VABLOCK - 1), max_size=128),
    )
    @settings(max_examples=50)
    def test_expansion_within_block_and_disjoint(self, fault_offsets, resident_offsets):
        block = VABlockState(
            block_id=0, valid_pages=set(range(PAGES_PER_VABLOCK))
        )
        block.resident_pages = set(resident_offsets)
        faulted = [o for o in fault_offsets]
        expanded = DensityPrefetcher().expand(block, faulted)
        assert expanded <= block.valid_pages
        assert not (expanded & set(faulted))
        assert not (expanded & block.resident_pages)

    @given(st.sets(st.integers(0, PAGES_PER_VABLOCK - 1), min_size=1, max_size=64))
    @settings(max_examples=50)
    def test_expansion_covers_region_upgrade(self, fault_offsets):
        block = VABlockState(block_id=0, valid_pages=set(range(PAGES_PER_VABLOCK)))
        expanded = DensityPrefetcher().expand(block, list(fault_offsets))
        upgraded = region_upgrade(fault_offsets) - fault_offsets
        assert upgraded <= expanded

    @given(st.sets(st.integers(0, PAGES_PER_VABLOCK - 1), min_size=1, max_size=32))
    @settings(max_examples=30)
    def test_monotone_in_threshold(self, fault_offsets):
        """A laxer threshold never prefetches less."""
        block = lambda: VABlockState(
            block_id=0, valid_pages=set(range(PAGES_PER_VABLOCK))
        )
        strict = DensityPrefetcher(threshold=0.9).expand(block(), list(fault_offsets))
        lax = DensityPrefetcher(threshold=0.3).expand(block(), list(fault_offsets))
        assert strict <= lax


class TestRegionUpgradeProps:
    @given(st.sets(st.integers(0, PAGES_PER_VABLOCK - 1), max_size=64))
    def test_region_aligned_and_covering(self, offsets):
        upgraded = region_upgrade(offsets)
        assert set(offsets) <= upgraded or not offsets
        assert len(upgraded) % PAGES_PER_REGION == 0
        for off in upgraded:
            base = off // PAGES_PER_REGION * PAGES_PER_REGION
            assert set(range(base, base + PAGES_PER_REGION)) <= upgraded
