"""Scalar-vs-SoA fault-pipeline equivalence (the ISSUE 9 tentpole gate).

The structure-of-arrays pipeline (``REPRO_SOA`` / ``config.soa``) must be a
pure representation change: every observable — assembled batches, buffer
counters, BatchRecords, the simulated clock — is byte-identical to the
scalar path.  Four layers of evidence:

1. **Assembler.**  200+ seeded random fault streams (duplicate-heavy,
   prefetch storms, single-page floods) through ``assemble_batch`` on a
   ``List[Fault]`` vs the vectorized ``assemble_batch_soa`` on a
   ``FaultArrays``: identical counters, block order, intra-block page
   order, write/prefetch sets, raw counts — and plain ``int`` types, so
   downstream cost models never see NumPy scalars.
2. **Buffer.**  Random push/fetch/flush interleavings against
   ``FaultBuffer`` and ``SoaFaultBuffer`` with overflow-inducing
   capacities: same accept/drop verdicts, same lifetime counters, same
   fetched rows.
3. **Engine.**  Whole-system runs with ``config.soa`` off vs on across
   workloads that exercise replay storms, eviction under fault, and
   prefetch instructions: identical record streams and final clock.
4. **Chaos.**  Every builtin chaos profile and every bundled
   ``examples/chaos/*.json`` profile, across seeds: injection forces the
   scalar fallback paths (per-fault pushes, injector sites) and the
   timelines must still match bit-for-bit.
"""

from __future__ import annotations

import random
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import UvmSystem
from repro.config import default_config
from repro.core.batch import assemble_batch, assemble_batch_soa
from repro.gpu.fault import AccessType, Fault, FaultArrays
from repro.gpu.fault_buffer import FaultBuffer, SoaFaultBuffer
from repro.inject.profiles import BUILTIN_PROFILES
from repro.units import MB
from repro.workloads import WORKLOAD_REGISTRY

CHAOS_DIR = Path(__file__).resolve().parents[2] / "examples" / "chaos"

NUM_SMS = 16


# --------------------------------------------------------------- generators


def random_fault_stream(rng: random.Random) -> list:
    """A fault stream shaped like the hot path produces them: bursty,
    duplicate-heavy, with occasional prefetch storms."""
    shape = rng.random()
    n = rng.randrange(1, 200)
    if shape < 0.15:
        # Single-page flood: every fault hits one page (max duplicates).
        page_space = 1
    elif shape < 0.5:
        # Duplicate-heavy: far fewer pages than faults.
        page_space = max(1, n // 8)
    else:
        # Sparse: mostly unique pages across many VABlocks.
        page_space = n * 4
    prefetch_storm = shape >= 0.85
    faults = []
    t = rng.random() * 100.0
    for _ in range(n):
        sm_id = rng.randrange(NUM_SMS)
        if prefetch_storm and rng.random() < 0.7:
            access = AccessType.PREFETCH
        else:
            access = AccessType(rng.randrange(3))
        faults.append(
            Fault(
                page=rng.randrange(page_space),
                access=access,
                sm_id=sm_id,
                utlb_id=sm_id // 2,
                warp_uid=rng.randrange(1, 500),
                timestamp=t,
            )
        )
        t += rng.random()
    return faults


def batch_fingerprint(batch):
    """Everything observable about an assembled batch, with type checks:
    the SoA assembler must hand downstream code plain Python ints."""
    blocks = []
    for work in batch.blocks:
        assert type(work.block_id) is int
        assert all(type(p) is int for p in work.pages)
        assert all(type(p) is int for p in work.write_pages)
        assert all(type(p) is int for p in work.prefetch_only_pages)
        assert type(work.raw_faults) is int
        blocks.append(
            (
                work.block_id,
                tuple(work.pages),
                frozenset(work.write_pages),
                frozenset(work.prefetch_only_pages),
                work.raw_faults,
                work.hinted,
            )
        )
    assert type(batch.num_unique) is int
    assert type(batch.dup_same_utlb) is int
    assert type(batch.dup_cross_utlb) is int
    return (
        tuple(blocks),
        batch.num_unique,
        batch.dup_same_utlb,
        batch.dup_cross_utlb,
        tuple(batch.sm_fault_counts.tolist()),
        batch.arrival_window,
        batch.num_raw,
    )


# ----------------------------------------------------- assembler equivalence


class TestAssemblerEquivalence:
    def test_200_seeded_random_streams(self):
        """Byte-identical AssembledBatch across 200 seeded random cases."""
        for seed in range(200):
            rng = random.Random(seed)
            faults = random_fault_stream(rng)
            scalar = assemble_batch(list(faults), NUM_SMS)
            soa = assemble_batch_soa(FaultArrays.from_faults(faults), NUM_SMS)
            assert batch_fingerprint(scalar) == batch_fingerprint(soa), seed

    def test_dispatch_on_fault_arrays(self):
        """``assemble_batch`` routes a FaultArrays to the SoA assembler."""
        faults = random_fault_stream(random.Random(42))
        arrs = FaultArrays.from_faults(faults)
        via_dispatch = assemble_batch(arrs, NUM_SMS)
        direct = assemble_batch_soa(FaultArrays.from_faults(faults), NUM_SMS)
        assert batch_fingerprint(via_dispatch) == batch_fingerprint(direct)
        assert via_dispatch.faults is arrs  # no copy on the hot path

    def test_empty_batch(self):
        fp = batch_fingerprint(assemble_batch_soa(FaultArrays(), NUM_SMS))
        assert fp == batch_fingerprint(assemble_batch([], NUM_SMS))

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_duplicate_conservation(self, seed):
        """§4.2 bookkeeping: unique + type-1 + type-2 == raw faults, on
        both paths, for arbitrary seeded streams."""
        faults = random_fault_stream(random.Random(seed))
        for batch in (
            assemble_batch(list(faults), NUM_SMS),
            assemble_batch_soa(FaultArrays.from_faults(faults), NUM_SMS),
        ):
            assert (
                batch.num_unique + batch.dup_same_utlb + batch.dup_cross_utlb
                == len(faults)
            )
            assert sum(b.raw_faults for b in batch.blocks) == len(faults)
            assert sum(len(b.pages) for b in batch.blocks) == batch.num_unique
            assert int(batch.sm_fault_counts.sum()) == len(faults)


# ------------------------------------------------------- buffer equivalence


def buffer_fingerprint(buf):
    return (
        len(buf),
        buf.total_pushed,
        buf.total_fetched,
        buf.total_overflow_dropped,
        buf.total_flush_dropped,
        buf.total_injected,
        buf.total_injector_dropped,
    )


def rows_of(fetched):
    return [
        (f.page, int(f.access), f.sm_id, f.utlb_id, f.warp_uid, f.timestamp)
        for f in fetched
    ]


class TestBufferEquivalence:
    def test_random_interleavings(self):
        """Same op sequence against both buffers: same verdicts, counters,
        and fetched/flushed rows — including overflow drops."""
        for seed in range(50):
            rng = random.Random(1000 + seed)
            capacity = rng.randrange(1, 24)
            scalar = FaultBuffer(capacity)
            soa = SoaFaultBuffer(capacity)
            t = 0.0
            for _ in range(rng.randrange(5, 120)):
                op = rng.random()
                if op < 0.7:
                    sm_id = rng.randrange(NUM_SMS)
                    args = (
                        rng.randrange(64),
                        AccessType(rng.randrange(3)),
                        sm_id,
                        sm_id // 2,
                        rng.randrange(1, 99),
                        t,
                    )
                    t += 0.25
                    assert scalar.push_scalar(*args) == soa.push_scalar(*args)
                elif op < 0.9:
                    n = rng.randrange(0, capacity + 4)
                    assert rows_of(scalar.fetch(n)) == rows_of(soa.fetch(n))
                else:
                    assert rows_of(scalar.flush()) == rows_of(soa.flush())
                assert buffer_fingerprint(scalar) == buffer_fingerprint(soa)

    def test_extend_bulk_matches_scalar_pushes(self):
        """A bulk burst lands exactly like the equivalent scalar pushes:
        same rows, same ``t += interval`` float timestamps."""
        rng = random.Random(7)
        events = []
        for _ in range(300):
            sm_id = rng.randrange(NUM_SMS)
            events.extend(
                (sm_id, sm_id // 2, rng.randrange(40),
                 AccessType(rng.randrange(3)), rng.randrange(1, 99))
            )
        t0, interval = 3.1, 0.0625
        soa = SoaFaultBuffer(4096)
        t_bulk = soa.extend_bulk(events, t0, interval)
        scalar = FaultBuffer(4096)
        t = t0
        for i in range(0, len(events), 5):
            sm, utlb, page, access, uid = events[i : i + 5]
            scalar.push_scalar(page, access, sm, utlb, uid, t)
            t += interval
        assert t_bulk == t
        assert rows_of(soa.fetch(300)) == rows_of(scalar.fetch(300))
        assert buffer_fingerprint(scalar) == buffer_fingerprint(soa)

    def test_partial_fetch_preserves_remainder(self):
        """take_front slices rows off the front; the remainder keeps
        arrival order (the peek → requeue regression family)."""
        arrs = FaultArrays()
        for i in range(10):
            arrs.append(i, AccessType.READ, 0, 0, i, float(i))
        front = arrs.take_front(4)
        assert [r.page for r in front] == [0, 1, 2, 3]
        assert [r.page for r in arrs] == [4, 5, 6, 7, 8, 9]
        assert arrs.take_front(99) is not arrs  # full drain hands lists over
        assert len(arrs) == 0


# -------------------------------------------------------- engine equivalence


def run_system(workload: str, *, soa: bool, seed: int = 0,
               gpu_mem_mb: int = 16, profile=None):
    cfg = default_config()
    cfg.seed = seed
    cfg.gpu.memory_bytes = gpu_mem_mb * MB
    cfg.gpu.num_sms = 8
    cfg.obs = cfg.obs.disabled()
    cfg.soa = soa
    if profile is not None:
        cfg.inject.enabled = True
        cfg.inject.profile = profile
    cfg.validate()
    system = UvmSystem(cfg)
    WORKLOAD_REGISTRY[workload]().run(system)
    return system


def timeline_fingerprint(system):
    return (
        system.clock.now,
        [tuple(sorted(r.to_dict().items())) for r in system.records],
    )


class TestEngineBitIdentity:
    # vecadd: replay-heavy streaming; stream: eviction under fault at
    # 16 MiB (oversubscribed); sgemm: reuse + write faults; bfs: irregular;
    # prefetch-kernel: PTX prefetch storms through the µTLB bypass path.
    @pytest.mark.parametrize(
        "workload", ["vecadd", "stream", "sgemm", "bfs", "prefetch-kernel"]
    )
    def test_soa_timeline_identity(self, workload):
        base = timeline_fingerprint(run_system(workload, soa=False))
        soa = timeline_fingerprint(run_system(workload, soa=True))
        assert base == soa

    def test_evict_under_fault_pressure(self):
        """4 MiB GPU forces continuous evict-under-fault; the SoA flush /
        re-demand path must track the scalar one exactly."""
        base = timeline_fingerprint(run_system("stream", soa=False, gpu_mem_mb=4))
        soa = timeline_fingerprint(run_system("stream", soa=True, gpu_mem_mb=4))
        assert base == soa


class TestChaosProfileBitIdentity:
    """Injection forces the scalar fallbacks (per-fault pushes, injector
    decision points); every profile × seed must stay timeline-identical."""

    @pytest.mark.parametrize("profile", sorted(BUILTIN_PROFILES))
    @pytest.mark.parametrize("seed", [0, 7])
    def test_builtin_profiles(self, profile, seed):
        base = timeline_fingerprint(
            run_system("vecadd", soa=False, seed=seed, profile=profile)
        )
        soa = timeline_fingerprint(
            run_system("vecadd", soa=True, seed=seed, profile=profile)
        )
        assert base == soa

    @pytest.mark.parametrize(
        "profile_file", sorted(p.name for p in CHAOS_DIR.glob("*.json"))
    )
    def test_example_profile_files(self, profile_file):
        path = str(CHAOS_DIR / profile_file)
        base = timeline_fingerprint(
            run_system("stream", soa=False, seed=3, profile=path)
        )
        soa = timeline_fingerprint(
            run_system("stream", soa=True, seed=3, profile=path)
        )
        assert base == soa
