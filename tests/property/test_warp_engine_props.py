"""Property-based tests on warp execution and end-to-end engine invariants
over randomly generated small workloads."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import UvmSystem
from repro.config import default_config
from repro.gpu.fault import AccessType
from repro.gpu.warp import KernelLaunch, Phase, WarpProgram, WarpState
from repro.units import MB, PAGE_SIZE

page_st = st.integers(min_value=0, max_value=63)


def phases_strategy(max_phases=4, max_pages=6):
    phase = st.builds(
        Phase.of,
        reads=st.lists(page_st, max_size=max_pages),
        writes=st.lists(page_st, max_size=max_pages),
        compute_usec=st.floats(min_value=0, max_value=5, allow_nan=False),
    )
    return st.lists(phase, min_size=1, max_size=max_phases)


class TestWarpStateProps:
    @given(phases_strategy())
    def test_warp_completes_with_all_resident(self, phases):
        warp = WarpState(WarpProgram(phases), uid=1, sm_id=0)
        resident = set(range(64))
        result = warp.advance(resident)
        assert result.finished

    @given(phases_strategy())
    @settings(max_examples=50)
    def test_manual_service_loop_terminates(self, phases):
        """Simulate a perfect driver: every demanded page gets serviced.

        The warp must finish within a bounded number of service rounds and
        its issued faults must cover every page it ever waited on.
        """
        warp = WarpState(WarpProgram(phases), uid=1, sm_id=0)
        resident = set()
        result = warp.advance(resident)
        rounds = 0
        issued = []
        while not result.finished:
            rounds += 1
            assert rounds < 100
            occs = warp.take_issuable(1000)
            issued.extend(occs)
            pages = {p for p, _ in occs} | set(warp.missing)
            resident |= pages
            assert warp.on_pages_resident(pages)
            result = warp.advance(resident)
        # Everything the program touches ends resident.
        assert warp.program.touched_pages <= resident or not warp.program.touched_pages

    @given(phases_strategy())
    def test_issued_pages_were_missing(self, phases):
        warp = WarpState(WarpProgram(phases), uid=1, sm_id=0)
        warp.advance(set())
        if warp.blocked:
            missing_before = set(warp.missing)
            occs = warp.take_issuable(1000)
            assert {p for p, _ in occs} <= missing_before


def small_kernels():
    """Random small kernels over a 64-page allocation."""
    return st.lists(
        phases_strategy(max_phases=3, max_pages=5),
        min_size=1,
        max_size=6,
    )


class TestEngineProps:
    def run_kernel(self, programs_phases, prefetch, gpu_mem_mb=4):
        cfg = default_config(prefetch_enabled=prefetch)
        cfg.gpu.num_sms = 4
        cfg.gpu.memory_bytes = gpu_mem_mb * MB
        system = UvmSystem(cfg)
        alloc = system.managed_alloc(64 * PAGE_SIZE)
        base = alloc.start_page

        def shift(phase):
            return Phase.of(
                [base + p for p in phase.reads],
                [base + p for p in phase.writes],
                compute_usec=phase.compute_usec,
            )

        programs = [
            WarpProgram([shift(ph) for ph in phases])
            for phases in programs_phases
        ]
        kernel = KernelLaunch("prop", programs)
        result = system.launch(kernel)
        return system, alloc, result

    @given(small_kernels(), st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_every_kernel_terminates_with_pages_resident(self, programs, prefetch):
        system, alloc, result = self.run_kernel(programs, prefetch)
        pt = system.engine.device.page_table
        touched = set()
        for phases in programs:
            for ph in phases:
                touched |= set(ph.reads) | set(ph.writes)
        for off in touched:
            assert pt.is_resident(alloc.start_page + off)
        assert system.engine.device.idle

    @given(small_kernels(), st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_full_invariant_suite_holds(self, programs, prefetch):
        """Every random workload leaves the system in a validated state."""
        from repro.validate import validate_system

        system, _, _ = self.run_kernel(programs, prefetch)
        violations = validate_system(system)
        assert violations == [], "\n".join(str(v) for v in violations)

    @given(small_kernels())
    @settings(max_examples=25, deadline=None)
    def test_invariants_under_eviction_pressure(self, programs):
        """The validator also passes when the run thrashes (2-chunk device)."""
        from repro.validate import validate_system

        system, _, _ = self.run_kernel(programs, prefetch=False, gpu_mem_mb=4)
        violations = validate_system(system)
        assert violations == [], "\n".join(str(v) for v in violations)

    @given(small_kernels())
    @settings(max_examples=30, deadline=None)
    def test_batch_times_are_ordered_and_positive(self, programs):
        system, _, result = self.run_kernel(programs, prefetch=False)
        prev_end = 0.0
        for r in result.records:
            assert r.t_start >= prev_end
            assert r.duration > 0
            prev_end = r.t_end

    @given(small_kernels())
    @settings(max_examples=30, deadline=None)
    def test_unique_faults_bounded_by_touched_pages(self, programs):
        """Without eviction pressure, each page faults at most once per
        distinct µTLB demand; unique faults per batch never exceed the
        touched footprint."""
        system, _, result = self.run_kernel(programs, prefetch=False, gpu_mem_mb=4)
        touched = set()
        for phases in programs:
            for ph in phases:
                touched |= set(ph.reads) | set(ph.writes)
        for r in result.records:
            assert r.num_faults_unique <= max(1, len(touched))

    @given(small_kernels(), st.booleans())
    @settings(max_examples=30, deadline=None)
    def test_component_times_sum_to_duration(self, programs, prefetch):
        """With the serial driver, duration == sum of component timers."""
        system, _, result = self.run_kernel(programs, prefetch)
        for r in result.records:
            assert abs(r.duration - r.service_time) < 1e-6 * max(1.0, r.duration)
