"""UVMSan whole-system properties: across seeds, workloads, memory
pressure, and driver ablations, (1) every runtime invariant holds — the
sanitizer in raise mode completes without firing — and (2) enabling the
sanitizer leaves the simulated timeline bit-identical (it only reads
state, never consumes RNG or advances the clock)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import UvmSystem
from repro.config import default_config
from repro.units import MB
from repro.validate import validate_system
from repro.workloads import (
    BfsWorkload,
    GaussSeidel,
    PointerChase,
    RegularStream,
    Sgemm,
    VecAddPageStride,
)

WORKLOADS = {
    "vecadd": lambda: VecAddPageStride(tsize=8),
    "stream": lambda: RegularStream(),
    "sgemm": lambda: Sgemm(),
    "bfs": lambda: BfsWorkload(),
    "pointer-chase": lambda: PointerChase(),
    "gauss-seidel": lambda: GaussSeidel(),
}


def build_config(seed=0, gpu_mem_mb=16, sanitize=False, **driver_kw):
    cfg = default_config(**driver_kw)
    cfg.seed = seed
    cfg.gpu.memory_bytes = gpu_mem_mb * MB
    cfg.gpu.num_sms = 8
    if sanitize:
        cfg.check.enabled = True
        cfg.check.mode = "raise"
    cfg.validate()
    return cfg


def run(workload_name, **cfg_kw):
    system = UvmSystem(build_config(**cfg_kw))
    WORKLOADS[workload_name]().run(system)
    return system


def timeline_fingerprint(system):
    """Everything observable about a run's simulated timeline."""
    return (
        system.clock.now,
        [
            (
                r.batch_id,
                r.t_start,
                r.t_end,
                r.service_time,
                r.num_faults_raw,
                r.num_faults_unique,
                r.duplicate_count,
                r.bytes_h2d,
                r.bytes_d2h,
                r.evictions,
                r.pages_prefetched,
                r.dropped_at_flush,
            )
            for r in system.records
        ],
    )


class TestInvariantsHoldEverywhere:
    """Raise-mode UVMSan completes silently on healthy runs."""

    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_workloads_run_clean(self, workload):
        system = run(workload, sanitize=True)
        assert system.sanitizer.enabled
        assert system.sanitizer.total_violations == 0
        assert validate_system(system) == []

    @pytest.mark.parametrize("workload", ["vecadd", "sgemm", "bfs"])
    def test_oversubscribed_runs_clean(self, workload):
        system = run(workload, sanitize=True, gpu_mem_mb=8)
        assert system.sanitizer.total_violations == 0

    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_any_seed_runs_clean(self, seed):
        system = run("vecadd", seed=seed, sanitize=True)
        assert system.sanitizer.total_violations == 0

    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        gpu_mem_mb=st.sampled_from([8, 16, 32]),
    )
    def test_memory_pressure_sweep(self, seed, gpu_mem_mb):
        system = run("stream", seed=seed, gpu_mem_mb=gpu_mem_mb, sanitize=True)
        assert system.sanitizer.total_violations == 0

    @pytest.mark.parametrize(
        "driver_kw",
        [
            {"prefetch_enabled": False},
            {"batch_size": 64},
            {"adaptive_batch": True},
            {"async_unmap": True},
            {"service_threads": 4},
        ],
        ids=["no-prefetch", "small-batch", "adaptive", "async-unmap", "parallel"],
    )
    def test_driver_ablations_run_clean(self, driver_kw):
        system = run("sgemm", sanitize=True, gpu_mem_mb=8, **driver_kw)
        assert system.sanitizer.total_violations == 0


class TestTimelineBitIdentity:
    """The sanitizer must be a pure observer."""

    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_records_identical_with_and_without(self, workload):
        base = timeline_fingerprint(run(workload, sanitize=False))
        checked = timeline_fingerprint(run(workload, sanitize=True))
        assert base == checked

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_identity_across_seeds(self, seed):
        base = timeline_fingerprint(run("vecadd", seed=seed, sanitize=False))
        checked = timeline_fingerprint(run("vecadd", seed=seed, sanitize=True))
        assert base == checked

    def test_identity_under_eviction_pressure(self):
        base = timeline_fingerprint(run("sgemm", gpu_mem_mb=8, sanitize=False))
        checked = timeline_fingerprint(run("sgemm", gpu_mem_mb=8, sanitize=True))
        assert base == checked

    def test_metrics_agree_modulo_sanitizer_families(self):
        """Report-mode runs add only ``uvm_san_*`` metric families."""
        cfg = build_config()
        cfg.check.enabled = True
        cfg.check.mode = "report"
        system = UvmSystem(cfg)
        WORKLOADS["vecadd"]().run(system)
        base = UvmSystem(build_config())
        WORKLOADS["vecadd"]().run(base)
        snap = system.metrics_snapshot()
        base_snap = base.metrics_snapshot()
        extra = set(snap) - set(base_snap)
        assert all(name.startswith("uvm_san_") for name in extra)
        for name in base_snap:
            assert snap[name] == base_snap[name]
