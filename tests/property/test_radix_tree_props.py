"""Property-based tests: the radix tree must behave exactly like a dict."""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.hostos.radix_tree import RadixTree

keys = st.integers(min_value=0, max_value=1 << 30)
values = st.integers(min_value=1, max_value=1 << 20)


@given(st.lists(st.tuples(keys, values)))
def test_insert_lookup_matches_dict(pairs):
    tree = RadixTree()
    model = {}
    for k, v in pairs:
        tree.insert(k, v)
        model[k] = v
    assert len(tree) == len(model)
    for k, v in model.items():
        assert tree.lookup(k) == v


@given(st.lists(st.tuples(keys, values)), st.lists(keys))
def test_delete_matches_dict(pairs, deletions):
    tree = RadixTree()
    model = {}
    for k, v in pairs:
        tree.insert(k, v)
        model[k] = v
    for k in deletions:
        assert tree.delete(k) == model.pop(k, None)
    for k, v in model.items():
        assert tree.lookup(k) == v
    assert len(tree) == len(model)


@given(st.lists(st.tuples(keys, values), min_size=1))
def test_items_sorted_and_complete(pairs):
    tree = RadixTree()
    model = {}
    for k, v in pairs:
        tree.insert(k, v)
        model[k] = v
    items = list(tree.items())
    assert items == sorted(model.items())


@given(st.lists(keys, unique=True))
def test_delete_all_frees_all_nodes(key_list):
    tree = RadixTree()
    for k in key_list:
        tree.insert(k, k + 1)
    for k in key_list:
        tree.delete(k)
    assert tree.nodes_live == 0
    assert len(tree) == 0


@given(st.lists(st.tuples(keys, values)))
def test_node_accounting_consistent(pairs):
    tree = RadixTree()
    for k, v in pairs:
        tree.insert(k, v)
    assert 0 <= tree.nodes_live <= tree.nodes_allocated


class RadixTreeMachine(RuleBasedStateMachine):
    """Stateful comparison against a dict model."""

    def __init__(self):
        super().__init__()
        self.tree = RadixTree()
        self.model = {}

    @rule(k=keys, v=values)
    def insert(self, k, v):
        was_new = k not in self.model
        assert self.tree.insert(k, v) == was_new
        self.model[k] = v

    @rule(k=keys)
    def delete(self, k):
        assert self.tree.delete(k) == self.model.pop(k, None)

    @rule(k=keys)
    def lookup(self, k):
        assert self.tree.lookup(k) == self.model.get(k)

    @invariant()
    def sizes_match(self):
        assert len(self.tree) == len(self.model)

    @invariant()
    def empty_tree_has_no_nodes(self):
        if not self.model:
            assert self.tree.nodes_live == 0


TestRadixTreeStateful = RadixTreeMachine.TestCase
TestRadixTreeStateful.settings = settings(max_examples=30, stateful_step_count=40)
