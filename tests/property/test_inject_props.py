"""Chaos-layer whole-system properties.

Three guarantees the fault-injection layer must keep (ISSUE: robustness):

1. **Disabled ⇒ byte-identical.**  With ``InjectConfig`` off — or on with no
   sites configured — the simulated timeline is bit-identical to a run
   without the layer: the null-object wiring consumes no RNG and adds no
   clock time.
2. **Seeded schedule determinism.**  The injected-event schedule is a pure
   function of (seed, profile): same pair ⇒ identical ``(clock, site)``
   event log and counters; different seed ⇒ a different schedule.
3. **Checkpoint/restore round-trips.**  Capturing a checkpoint at an
   arbitrary batch boundary, then restoring and resuming, reproduces the
   uninterrupted run's final BatchRecords and clock exactly — including
   under active injection and across repeated restores.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import UvmSystem
from repro.config import default_config
from repro.sim.checkpoint import EngineCheckpoint
from repro.units import MB
from repro.workloads import RegularStream, Sgemm, VecAddPageStride

WORKLOADS = {
    "vecadd": lambda: VecAddPageStride(tsize=8),
    "stream": lambda: RegularStream(),
    "sgemm": lambda: Sgemm(),
}


def build_config(seed=0, gpu_mem_mb=16, inject=None, profile=None, sites=None,
                 checkpoint_every=0, sanitize=False):
    cfg = default_config()
    cfg.seed = seed
    cfg.gpu.memory_bytes = gpu_mem_mb * MB
    cfg.gpu.num_sms = 8
    if inject is not None:
        cfg.inject.enabled = inject
        cfg.inject.profile = profile
        cfg.inject.sites = dict(sites or {})
        cfg.inject.checkpoint_every = checkpoint_every
    if sanitize:
        cfg.check.enabled = True
        cfg.check.mode = "report"
    cfg.validate()
    return cfg


def run(workload_name, **cfg_kw):
    system = UvmSystem(build_config(**cfg_kw))
    WORKLOADS[workload_name]().run(system)
    return system


def timeline_fingerprint(system):
    """Everything observable about a run's simulated timeline."""
    return (
        system.clock.now,
        [tuple(sorted(r.to_dict().items())) for r in system.records],
    )


class TestDisabledBitIdentity:
    """The inject layer must vanish completely when off."""

    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_default_equals_explicitly_disabled(self, workload):
        base = timeline_fingerprint(run(workload))
        off = timeline_fingerprint(run(workload, inject=False))
        assert base == off

    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_enabled_with_no_sites_is_identical(self, workload):
        """Turning the layer on without configuring any site must not shift
        the timeline either: sites absent from the profile never draw."""
        base = timeline_fingerprint(run(workload))
        empty = timeline_fingerprint(run(workload, inject=True))
        assert base == empty

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_identity_across_seeds(self, seed):
        base = timeline_fingerprint(run("vecadd", seed=seed))
        empty = timeline_fingerprint(run("vecadd", seed=seed, inject=True))
        assert base == empty

    def test_identity_under_memory_pressure(self):
        base = timeline_fingerprint(run("sgemm", gpu_mem_mb=8))
        empty = timeline_fingerprint(run("sgemm", gpu_mem_mb=8, inject=True))
        assert base == empty

    def test_zero_rate_sites_are_identical(self):
        """rate=0 sites short-circuit before touching their RNG stream."""
        base = timeline_fingerprint(run("vecadd"))
        zeroed = timeline_fingerprint(
            run(
                "vecadd",
                inject=True,
                sites={"ce.brownout": {"rate": 0.0}, "dma.map_fail": {"rate": 0.0}},
            )
        )
        assert base == zeroed


class TestScheduleDeterminism:
    """(seed, profile) fully determines the injected schedule."""

    @pytest.mark.parametrize(
        "profile", ["overflow-storm", "flaky-interconnect", "kitchen-sink"]
    )
    def test_same_seed_same_schedule(self, profile):
        a = run("stream", seed=11, inject=True, profile=profile, sanitize=True)
        b = run("stream", seed=11, inject=True, profile=profile, sanitize=True)
        assert a.injector.events == b.injector.events
        assert a.injector.fired == b.injector.fired
        assert a.injector.opportunities == b.injector.opportunities
        assert timeline_fingerprint(a) == timeline_fingerprint(b)

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_reproducible_for_any_seed(self, seed):
        a = run("vecadd", seed=seed, inject=True, profile="overflow-storm")
        b = run("vecadd", seed=seed, inject=True, profile="overflow-storm")
        assert a.injector.events == b.injector.events
        assert timeline_fingerprint(a) == timeline_fingerprint(b)

    def test_different_seed_different_schedule(self):
        a = run("stream", seed=1, inject=True, profile="overflow-storm")
        b = run("stream", seed=2, inject=True, profile="overflow-storm")
        assert a.injector.events != b.injector.events

    def test_injection_actually_happened(self):
        system = run("stream", seed=0, inject=True, profile="overflow-storm")
        assert system.injector.summary()["fired_total"] > 0


def run_with_checkpoint(at_batch, **cfg_kw):
    """Run stream to completion, capturing a checkpoint at ``at_batch``."""
    system = UvmSystem(build_config(**cfg_kw))
    captured = {}

    def hook(engine, batch_id):
        if batch_id == at_batch and "ckpt" not in captured:
            captured["ckpt"] = engine.checkpoint()

    system.engine._batch_hooks.append(hook)
    RegularStream().run(system)
    assert "ckpt" in captured, f"batch {at_batch} never completed"
    return system, captured["ckpt"]


class TestCheckpointRestore:
    """Restore + resume reproduces the uninterrupted run exactly."""

    @pytest.mark.parametrize("at_batch", [1, 5, 10])
    def test_roundtrip_reproduces_tail(self, at_batch):
        system, ckpt = run_with_checkpoint(at_batch, gpu_mem_mb=8)
        final = timeline_fingerprint(system)
        assert len(system.records) > at_batch + 1  # the checkpoint is mid-run
        ckpt.restore_into(system.engine)
        # batch ids are 0-based: a checkpoint at batch N holds records 0..N
        assert len(system.records) == at_batch + 1
        system.engine.resume()
        assert timeline_fingerprint(system) == final

    def test_double_restore_is_stable(self):
        system, ckpt = run_with_checkpoint(5, gpu_mem_mb=8)
        final = timeline_fingerprint(system)
        for _ in range(2):
            ckpt.restore_into(system.engine)
            system.engine.resume()
            assert timeline_fingerprint(system) == final

    def test_roundtrip_under_active_injection(self):
        """The injector's RNG streams are part of checkpoint state: replay
        after restore re-injects the same faults at the same points."""
        system, ckpt = run_with_checkpoint(
            5, gpu_mem_mb=8, inject=True, profile="flaky-interconnect", sanitize=True
        )
        final = timeline_fingerprint(system)
        final_events = list(system.injector.events)
        ckpt.restore_into(system.engine)
        system.engine.resume()
        assert timeline_fingerprint(system) == final
        assert list(system.injector.events) == final_events
        assert system.sanitizer.total_violations == 0

    def test_serialized_roundtrip(self):
        system, ckpt = run_with_checkpoint(5, gpu_mem_mb=8)
        final = timeline_fingerprint(system)
        revived = EngineCheckpoint.from_bytes(ckpt.to_bytes())
        revived.restore_into(system.engine)
        system.engine.resume()
        assert timeline_fingerprint(system) == final

    def test_resume_without_pending_launch_raises(self):
        from repro.errors import SimulationError

        system = UvmSystem(build_config())
        with pytest.raises(SimulationError):
            system.engine.resume()


class TestCrashRecovery:
    """Injected crashes recover from the latest auto-checkpoint and the
    whole run — crash, rewind, replay — is itself deterministic."""

    # stream at 8 MiB runs ~12 batches; crash well inside that
    CRASH_SITES = {"engine.crash": {"at_batch": 6}}

    def crashy_run(self, seed=0):
        return run(
            "stream",
            seed=seed,
            gpu_mem_mb=8,
            inject=True,
            sites=self.CRASH_SITES,
            checkpoint_every=4,
            sanitize=True,
        )

    def test_crash_fires_and_recovers(self):
        system = self.crashy_run()
        summary = system.injector.summary()
        assert summary["crashes"] == 1
        assert summary["recoveries"] == 1
        assert system.sanitizer.total_violations == 0

    def test_recovery_is_deterministic(self):
        a = timeline_fingerprint(self.crashy_run())
        b = timeline_fingerprint(self.crashy_run())
        assert a == b

    def test_crash_without_recovery_raises(self):
        from repro.errors import InjectedCrash

        cfg = build_config(
            gpu_mem_mb=8, inject=True, sites=self.CRASH_SITES, checkpoint_every=4
        )
        cfg.inject.crash_recovery = False
        system = UvmSystem(cfg)
        with pytest.raises(InjectedCrash):
            RegularStream().run(system)
