"""Property tests for the ``contiguous_runs`` sortedness precondition.

``contiguous_runs`` silently miscounts on unsorted or duplicated input:
every inversion splits a run, inflating per-run overhead and transfer
counts without any error.  UVMSan arms an O(n) precondition check
(:func:`repro.gpu.copy_engine.enable_sortedness_checks`); these tests pin
the gated behaviour and verify every real call site feeds sorted input.
"""

import contextlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvariantViolation
from repro.gpu import copy_engine
from repro.gpu.copy_engine import contiguous_runs, enable_sortedness_checks
from repro.units import MB
from repro.workloads import RandomAccess

page_lists = st.lists(st.integers(min_value=0, max_value=4096), min_size=0, max_size=64)


@contextlib.contextmanager
def sortedness(enabled: bool):
    prior = copy_engine._ASSERT_SORTED
    enable_sortedness_checks(enabled)
    try:
        yield
    finally:
        enable_sortedness_checks(prior)


@given(pages=page_lists)
def test_runs_partition_sorted_input(pages):
    pages = sorted(set(pages))
    runs = contiguous_runs(pages)
    assert sum(runs) == len(pages)
    breaks = sum(1 for a, b in zip(pages, pages[1:]) if b != a + 1)
    assert len(runs) == (breaks + 1 if pages else 0)


@settings(max_examples=50)
@given(pages=page_lists)
def test_armed_gate_matches_ungated_on_sorted_input(pages):
    pages = sorted(set(pages))
    with sortedness(False):
        ungated = contiguous_runs(pages)
    with sortedness(True):
        assert contiguous_runs(pages) == ungated


@settings(max_examples=50)
@given(pages=page_lists)
def test_armed_gate_rejects_any_violation(pages):
    violated = any(b <= a for a, b in zip(pages, pages[1:]))
    with sortedness(True):
        if violated:
            with pytest.raises(InvariantViolation, match="strictly increasing"):
                contiguous_runs(pages)
        else:
            contiguous_runs(pages)


def test_unsorted_input_miscounts_without_the_gate():
    """The failure mode the gate exists for: same pages, shuffled, split
    into spurious runs — silently, when the gate is off."""
    with sortedness(False):
        assert contiguous_runs([0, 1, 2, 3]) == [4]
        assert contiguous_runs([2, 3, 0, 1]) == [2, 2]  # silent inflation
    with sortedness(True):
        with pytest.raises(InvariantViolation):
            contiguous_runs([2, 3, 0, 1])


def test_duplicates_rejected_when_armed():
    with sortedness(True):
        with pytest.raises(InvariantViolation):
            contiguous_runs([5, 5])


def test_sanitizer_construction_arms_the_gate():
    from repro.check.sanitizer import make_sanitizer
    from repro.config import CheckConfig
    from repro.sim.clock import SimClock

    with sortedness(False):
        make_sanitizer(CheckConfig(enabled=True), SimClock())
        assert copy_engine._ASSERT_SORTED is True


def test_all_call_sites_sorted_under_armed_gate(system_factory):
    """Driver replay, eviction write-back, prefetch upgrades, and the
    CPU-touch D2H path all decompose runs with the gate armed — an
    oversubscribed irregular workload exercises every one of them.  A
    violation would raise straight out of ``contiguous_runs``."""
    with sortedness(True):
        system = system_factory(gpu_mem_mb=8)
        RandomAccess(nbytes=12 * MB).run(system)
        alloc = system.managed_alloc(1 * MB)
        system.host_touch(alloc)
        system.mem_prefetch(alloc)
        system.host_touch(alloc)  # resident pages: the engine D2H path
