"""Fault-trace capture and open-loop replay.

The paper's artifact (uvm-eval) separates *collection* — the instrumented
driver logging every fault — from *evaluation* — offline analysis and
what-if studies.  This module provides the same workflow for the simulator:

1. run a workload with tracing enabled and :func:`capture_trace` the exact
   fault stream (page, access, SM, arrival window);
2. persist it (:meth:`FaultTrace.to_jsonl`);
3. :func:`replay` it through a *fresh driver with a different
   configuration* — batch size, prefetch policy, eviction policy, cost
   overrides — without re-simulating the GPU side.

Replay is open-loop: the recorded arrival windows are preserved, so driver-
policy changes show their effect on batching and servicing, while the
fault *generation* stays as recorded.  (A closed-loop change — e.g. a
policy that alters which pages fault at all — needs a full re-simulation.)
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Sequence, Tuple, Union

from ..api import UvmSystem
from ..config import SystemConfig
from ..core.instrumentation import BatchLog
from ..gpu.fault import AccessType


@dataclass(frozen=True)
class TracedFault:
    """One recorded fault."""

    page: int
    access: int
    sm_id: int
    warp_uid: int


@dataclass
class FaultTrace:
    """A recorded fault stream, grouped into arrival windows.

    Each window holds the faults fetched together by one original batch —
    the granularity at which the hardware buffer was drained.
    """

    #: (start_page, num_pages) of every managed allocation, in order.
    allocations: List[Tuple[int, int]] = field(default_factory=list)
    #: Fault windows in service order.
    windows: List[List[TracedFault]] = field(default_factory=list)

    @property
    def num_faults(self) -> int:
        return sum(len(w) for w in self.windows)

    # --------------------------------------------------------- persistence

    def to_jsonl(self, path: Union[str, Path]) -> None:
        path = Path(path)
        with path.open("w", encoding="utf-8") as fh:
            fh.write(json.dumps({"allocations": self.allocations}) + "\n")
            for window in self.windows:
                fh.write(
                    json.dumps(
                        [[f.page, f.access, f.sm_id, f.warp_uid] for f in window]
                    )
                    + "\n"
                )

    @classmethod
    def from_jsonl(cls, path: Union[str, Path]) -> "FaultTrace":
        trace = cls()
        with Path(path).open("r", encoding="utf-8") as fh:
            header = json.loads(fh.readline())
            trace.allocations = [tuple(a) for a in header["allocations"]]
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                trace.windows.append(
                    [TracedFault(*entry) for entry in json.loads(line)]
                )
        return trace


def capture_trace(system: UvmSystem) -> FaultTrace:
    """Build a :class:`FaultTrace` from a traced run's "fault" events.

    ``system`` must have been constructed with ``trace=True`` (or a trace
    whose categories include ``"fault"``).
    """
    events = system.trace.select("fault")
    if not events:
        raise ValueError(
            "no fault events recorded — construct UvmSystem(trace=True) "
            "before running the workload"
        )
    trace = FaultTrace(
        allocations=[(a.start_page, a.num_pages) for a in system.allocations]
    )
    current_batch = None
    for event in events:
        batch_id, page, access, sm_id, warp_uid = event.payload
        if batch_id != current_batch:
            trace.windows.append([])
            current_batch = batch_id
        trace.windows[-1].append(TracedFault(page, access, sm_id, warp_uid))
    return trace


def replay(trace: FaultTrace, config: SystemConfig) -> BatchLog:
    """Replay a recorded fault stream through a fresh driver.

    Windows are injected in order; after each injection the driver services
    until its buffer drains (with a larger ``batch_size`` several recorded
    windows may coalesce into one batch when they queue up; with a smaller
    one a window splits).  Returns the new driver's batch log.
    """
    system = UvmSystem(config)
    for start_page, num_pages in trace.allocations:
        system.engine.driver.register_allocation(start_page, num_pages)
    driver = system.engine.driver
    gmmu = system.engine.device.gmmu
    interval = system.engine.cost.fault_arrival_interval_usec
    slept = True
    for window in trace.windows:
        t = system.clock.now
        delivered = 0
        for f in window:
            if system.engine.device.page_table.is_resident(f.page):
                continue  # already brought in by an earlier window's prefetch
            if gmmu.deliver(f.page, AccessType(f.access), f.sm_id, f.warp_uid, t) is not None:
                t += interval
                delivered += 1
        if delivered == 0:
            continue
        system.clock.advance_to(t)
        while len(system.engine.device.fault_buffer) > 0:
            driver.service_next_batch(slept=slept)
            slept = False
    return driver.log
