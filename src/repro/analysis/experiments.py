"""Canned experiment runners: one per paper table/figure, plus ablations.

Every public ``fig*``/``tab*``/``ablation*`` function runs the simulation at
a laptop-friendly scale (problem sizes are the paper's *ratios* of device
memory, device memory is scaled down per DESIGN.md §6), computes the same
statistic the paper plots, and returns an :class:`ExperimentResult` whose
``text`` holds the rows/series and whose ``data`` holds the raw values for
tests and benchmarks.

The registry at the bottom maps experiment ids (``"fig07"``, ``"tab02"``,
...) to runners; ``repro.cli`` and the benchmark harness both consume it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..api import RunResult, UvmSystem
from ..baselines.explicit import ExplicitTransferModel
from ..config import SystemConfig, default_config
from ..hostos.cost_model import CostModel
from ..units import MB, PAGE_SIZE, fmt_bytes, fmt_usec
from ..workloads import (
    CuFft,
    Dgemm,
    GaussSeidel,
    Hpgmg,
    PrefetchVectorKernel,
    RandomAccess,
    RegularStream,
    Sgemm,
    StreamTriad,
    VecAddPageStride,
)
from .fits import fit_time_vs_bytes, partial_fit_blocks_given_bytes
from .report import ascii_series, ascii_table, format_usec_stats
from .stats import (
    batch_size_summary,
    duplicate_summary,
    per_sm_stats,
    vablock_stats,
)
from .timeseries import eviction_groups, phase_segments, split_levels


@dataclass
class ExperimentResult:
    """Outcome of one canned experiment."""

    exp_id: str
    title: str
    text: str
    data: Dict[str, object] = field(default_factory=dict)

    def render(self) -> str:
        return f"== {self.exp_id}: {self.title} ==\n{self.text}\n"


# --------------------------------------------------------------------- setup


def _config(
    prefetch: bool = True,
    batch_size: int = 256,
    gpu_mem_mb: int = 64,
    host_threads: int = 1,
    seed: int = 0,
    **driver_kw,
) -> SystemConfig:
    cfg = default_config(prefetch_enabled=prefetch, batch_size=batch_size, **driver_kw)
    cfg.gpu.memory_bytes = gpu_mem_mb * MB
    cfg.host.num_threads = host_threads
    cfg.seed = seed
    return cfg


def _run(workload, config: SystemConfig, trace: bool = False):
    system = UvmSystem(config, trace=trace)
    result = workload.run(system)
    return system, result


def _suite() -> List:
    """The seven Table 2/3 workloads, each in-core on its own device size.

    Entries are ``(name, workload, gpu_mem_mb)``.  Regular streams one
    1 MiB region per SM (80 regions = 40 VABlocks: Table 3's ~41
    blocks/batch); Random draws from a 512 MiB space so nearly every fault
    lands in its own block (Table 3's ~1 fault/block).
    """
    return [
        ("Regular", RegularStream(nbytes=80 * MB, num_programs=80), 96),
        (
            "Random",
            RandomAccess(
                nbytes=512 * MB,
                num_programs=80,
                accesses_per_program=192,
                host_init=False,
            ),
            768,
        ),
        ("sgemm", Sgemm(n=1536, tile=256), 64),
        ("stream", StreamTriad(nbytes=12 * MB), 64),
        ("cufft", CuFft(nbytes=64 * MB), 128),
        ("gauss-seidel", GaussSeidel(n=1024), 64),
        ("hpgmg", Hpgmg(n=1024, levels=3, cycles=1), 64),
    ]


# ------------------------------------------------------------------ Figure 1


def fig01_latency(nbytes_per_array: int = 8 * MB, sweeps: int = 2) -> ExperimentResult:
    """Fig 1: per-access latency, explicit vs UVM vs UVM+oversubscription.

    Compute time is zeroed on both sides so the comparison isolates memory
    access cost, as the paper's latency framing does.  ``sweeps=2`` gives
    the triad working-set reuse: in-core the second sweep is free (data
    resident), oversubscribed it refaults evicted pages — the "much greater
    cost" of out-of-core (§1).
    """
    rows = []
    data: Dict[str, float] = {}
    accesses = sweeps * 3 * nbytes_per_array // PAGE_SIZE

    def triad():
        return StreamTriad(
            nbytes=nbytes_per_array, sweeps=sweeps, compute_usec_per_page=0.0
        )

    # UVM, in-core.
    _, uvm = _run(triad(), _config(prefetch=True))
    uvm_lat = uvm.total_time_usec / accesses
    # UVM, ~150 % oversubscription (shrink device memory, same problem).
    need_mb = int(np.ceil(3 * nbytes_per_array / MB / 1.5 / 2) * 2)
    _, over = _run(triad(), _config(prefetch=True, gpu_mem_mb=need_mb))
    over_lat = over.total_time_usec / accesses
    # Explicit: one bulk copy in per input, one out; accesses then hit HBM.
    model = ExplicitTransferModel(CostModel())
    explicit_total = model.run_time(
        bytes_in=2 * nbytes_per_array, bytes_out=nbytes_per_array, compute_usec=0.0
    )
    explicit_lat = explicit_total / accesses + model.device_access_usec

    for name, lat in [
        ("explicit (cudaMemcpy)", explicit_lat),
        ("UVM in-core", uvm_lat),
        ("UVM oversubscribed (150%)", over_lat),
    ]:
        rows.append([name, f"{lat:.3f}", f"{lat / explicit_lat:.1f}x"])
        data[name] = lat
    text = ascii_table(
        ["configuration", "per-4KiB-access latency (us)", "vs explicit"], rows
    )
    data["uvm_slowdown"] = uvm_lat / explicit_lat
    data["oversub_slowdown"] = over_lat / explicit_lat
    return ExperimentResult("fig01", "Access latency of the unified space", text, data)


# --------------------------------------------------------------- Figures 3-5


def fig03_vecadd_batches() -> ExperimentResult:
    """Fig 3: vecadd fault batches — 56-fault first batch, reads first."""
    system, res = _run(VecAddPageStride(), _config(prefetch=False), trace=True)
    a, b, c = system.allocations[:3]
    rows = []
    per_batch_comp = []
    migrates = system.trace.select("migrate")
    for r in res.records:
        comp = {"A": 0, "B": 0, "C": 0}
        for e in migrates:
            if e.payload[0] != r.batch_id:
                continue
            _, block_id, lo, hi, n = e.payload
            for name, alloc in (("A", a), ("B", b), ("C", c)):
                if alloc.start_page <= lo < alloc.end_page:
                    comp[name] += n
        per_batch_comp.append(comp)
        rows.append([r.batch_id, r.num_faults_raw, comp["A"], comp["B"], comp["C"]])
    text = ascii_table(["batch", "faults", "A pages", "B pages", "C pages"], rows)
    data = {
        "batch_sizes": [r.num_faults_raw for r in res.records],
        "first_batch_size": res.records[0].num_faults_raw,
        "composition": per_batch_comp,
    }
    return ExperimentResult("fig03", "Vector-add faults by batch (µTLB cap = 56)", text, data)


def fig04_vecadd_timing() -> ExperimentResult:
    """Fig 4: fault arrival timestamps cluster per batch; service gaps."""
    _, res = _run(VecAddPageStride(), _config(prefetch=False))
    rows = []
    for r in res.records:
        rows.append(
            [
                r.batch_id,
                r.num_faults_raw,
                f"{r.t_first_fault:.2f}",
                f"{r.t_last_fault:.2f}",
                f"{r.t_last_fault - r.t_first_fault:.2f}",
                f"{r.duration:.2f}",
            ]
        )
    text = ascii_table(
        ["batch", "faults", "first arrival", "last arrival", "arrival span", "service time"],
        rows,
    )
    spans = [r.t_last_fault - r.t_first_fault for r in res.records]
    services = [r.duration for r in res.records]
    data = {
        "arrival_spans": spans,
        "service_times": services,
        "mean_span_over_service": float(np.mean(spans)) / float(np.mean(services)),
    }
    return ExperimentResult("fig04", "Vector-add fault arrival timing", text, data)


def fig05_prefetch_warp(pages_per_vector: int = 100) -> ExperimentResult:
    """Fig 5: a single warp fills a full batch via prefetch instructions."""
    _, res = _run(PrefetchVectorKernel(pages_per_vector), _config(prefetch=False))
    rows = [
        [r.batch_id, r.num_faults_raw, r.dropped_at_flush] for r in res.records
    ]
    text = ascii_table(["batch", "faults", "dropped at flush"], rows)
    data = {
        "max_batch": max(r.num_faults_raw for r in res.records),
        "dropped": sum(r.dropped_at_flush for r in res.records),
        "num_batches": res.num_batches,
    }
    return ExperimentResult(
        "fig05", "Prefetch instructions escape fault-generation limits", text, data
    )


# ------------------------------------------------------------------- Table 2


def tab02_sm_stats() -> ExperimentResult:
    """Table 2: per-SM source statistics in each batch."""
    rows = []
    data = {}
    for name, workload, gpu_mb in _suite():
        cfg = _config(prefetch=False, gpu_mem_mb=gpu_mb)
        _, res = _run(workload, cfg)
        stats = per_sm_stats(res.records, cfg.gpu.num_sms)
        rows.append([name] + stats.row())
        data[name] = stats
    text = ascii_table(["Benchmark", "Avg Faults/SM", "Std. Dev.", "Min.", "Max."], rows)
    return ExperimentResult("tab02", "Per-SM source statistics in each batch", text, data)


# ------------------------------------------------------------- Figures 6, 7


def fig06_data_movement() -> ExperimentResult:
    """Fig 6: best-fit of batch time vs data migrated, per application."""
    rows = []
    data = {}
    entries = [
        e
        for e in _suite()
        if e[0] != "Random"
    ]
    # Random migrates nothing unless the host initialized it; use a
    # host-resident variant at a size the touch phase handles quickly.
    entries.insert(
        1,
        (
            "Random",
            RandomAccess(nbytes=64 * MB, num_programs=80, accesses_per_program=192),
            128,
        ),
    )
    for name, workload, gpu_mb in entries:
        _, res = _run(workload, _config(prefetch=False, gpu_mem_mb=gpu_mb))
        fit, x, y = fit_time_vs_bytes(res.records)
        rows.append(
            [
                name,
                f"{fit.slope * MB:.1f}",
                f"{fit.intercept:.1f}",
                f"{fit.r2:.2f}",
                fit.n,
            ]
        )
        data[name] = fit
    text = ascii_table(
        ["Benchmark", "slope (us/MB)", "intercept (us)", "R^2", "batches"], rows
    )
    return ExperimentResult("fig06", "Batch cost rises linearly with data moved", text, data)


def fig07_transfer_fraction(n: int = 1536) -> ExperimentResult:
    """Fig 7: % of batch time in data transfer for sgemm (≤ ~25 %)."""
    _, res = _run(Sgemm(n=n, tile=256), _config(prefetch=False))
    fracs = np.array([r.transfer_fraction for r in res.records if r.duration > 0])
    text = "\n".join(
        [
            f"batches: {len(fracs)}",
            f"transfer fraction: mean={fracs.mean():.3f} p95={np.percentile(fracs, 95):.3f} max={fracs.max():.3f}",
            ascii_series(fracs, label="fraction over time"),
        ]
    )
    data = {
        "fractions": fracs,
        "mean": float(fracs.mean()),
        "max": float(fracs.max()),
    }
    return ExperimentResult("fig07", "Transfer time fraction per batch (sgemm)", text, data)


# ------------------------------------------------------------- Figures 8, 9


def fig08_dedup_timeseries() -> ExperimentResult:
    """Fig 8: raw vs deduplicated batch sizes for stream and sgemm."""
    lines = []
    data = {}
    for name, workload in [
        ("stream", StreamTriad(nbytes=12 * MB)),
        ("sgemm", Sgemm(n=1536, tile=256)),
    ]:
        _, res = _run(workload, _config(prefetch=False))
        raw = [r.num_faults_raw for r in res.records]
        uniq = [r.num_faults_unique for r in res.records]
        dup = duplicate_summary(res.records)
        lines.append(f"{name}: batches={len(raw)} dup_fraction={dup.dup_fraction:.2f} "
                     f"(same-uTLB={dup.dup_same_utlb}, cross-uTLB={dup.dup_cross_utlb})")
        lines.append(ascii_series(raw, label=f"  {name} raw   "))
        lines.append(ascii_series(uniq, label=f"  {name} dedup "))
        data[name] = {"raw": raw, "unique": uniq, "summary": dup}
    return ExperimentResult("fig08", "Batch sizes, raw vs duplicates removed", "\n".join(lines), data)


def fig09_batch_size(sizes=(256, 512, 1024, 2048)) -> ExperimentResult:
    """Fig 9: larger batch caps reduce batches and runtime, with
    diminishing returns past ~1024 (generation-rate ceiling)."""
    rows = []
    data = {}
    for size in sizes:
        _, res = _run(Sgemm(n=1536, tile=256), _config(prefetch=False, batch_size=size))
        summary = batch_size_summary(res.records)
        dup = duplicate_summary(res.records)
        rows.append(
            [
                size,
                summary.num_batches,
                fmt_usec(summary.total_batch_time_usec),
                fmt_usec(res.kernel_time_usec),
                f"{dup.dup_fraction:.2f}",
                f"{summary.unique_sizes.mean:.0f}",
            ]
        )
        data[size] = {
            "batches": summary.num_batches,
            "batch_time": summary.total_batch_time_usec,
            "kernel_time": res.kernel_time_usec,
            "dup_fraction": dup.dup_fraction,
            "unique_per_batch": summary.unique_sizes.mean,
        }
    text = ascii_table(
        ["batch cap", "batches", "batch time", "kernel time", "dup frac", "unique/batch"],
        rows,
    )
    return ExperimentResult("fig09", "Batch-size policy evaluation (sgemm)", text, data)


# ------------------------------------------------------------------- Table 3


def tab03_vablock_stats() -> ExperimentResult:
    """Table 3: VABlock source statistics in a batch."""
    rows = []
    data = {}
    for name, workload, gpu_mb in _suite():
        _, res = _run(workload, _config(prefetch=False, gpu_mem_mb=gpu_mb))
        stats = vablock_stats(res.records)
        rows.append([name] + stats.row())
        data[name] = stats
    text = ascii_table(
        ["Benchmark", "VABlock/Batch", "Faults/VABlock", "Std. Dev.", "Min.", "Max."],
        rows,
    )
    return ExperimentResult("tab03", "VABlock source statistics in a batch", text, data)


# ------------------------------------------------------------------ Figure 10


def fig10_vablock_variance() -> ExperimentResult:
    """Fig 10: at equal migration size, more VABlocks ⇒ higher batch cost."""
    rows = []
    data = {}
    for name, workload, gpu_mb in [
        ("Regular", RegularStream(nbytes=80 * MB, num_programs=80), 96),
        ("Random", RandomAccess(nbytes=512 * MB, num_programs=80,
                                accesses_per_program=192, host_init=False), 768),
        ("sgemm", Sgemm(n=1536, tile=256), 64),
        ("cufft", CuFft(nbytes=64 * MB), 128),
    ]:
        _, res = _run(workload, _config(prefetch=False, gpu_mem_mb=gpu_mb))
        fit = partial_fit_blocks_given_bytes(res.records)
        if fit is None:
            continue
        rows.append([name, f"{fit.slope:.2f}", f"{fit.r2:.2f}", fit.n])
        data[name] = fit
    text = ascii_table(
        ["Benchmark", "extra us per VABlock (at fixed bytes)", "R^2", "batches"], rows
    )
    return ExperimentResult("fig10", "VABlock count drives cost variance", text, data)


# ------------------------------------------------------------------ Figure 11


def fig11_hpgmg_unmap(n: int = 1024) -> ExperimentResult:
    """Fig 11: multithreaded host init inflates unmap cost ~2× end-to-end."""
    rows = []
    data = {}
    for label, threads in [("1 thread", 1), ("64 threads (default OpenMP)", 64)]:
        workload = Hpgmg(n=n, levels=3, cycles=2, host_interleaved=True)
        _, res = _run(workload, _config(prefetch=True, host_threads=threads))
        unmap_fracs = [r.unmap_fraction for r in res.records if r.duration > 0]
        rows.append(
            [
                label,
                fmt_usec(res.kernel_time_usec),
                fmt_usec(res.batch_time_usec),
                f"{np.mean(unmap_fracs):.2f}",
                f"{np.max(unmap_fracs):.2f}",
            ]
        )
        data[threads] = {
            "kernel_time": res.kernel_time_usec,
            "batch_time": res.batch_time_usec,
            "unmap_fraction_mean": float(np.mean(unmap_fracs)),
            "unmap_fraction_max": float(np.max(unmap_fracs)),
        }
    data["slowdown"] = data[64]["kernel_time"] / data[1]["kernel_time"]
    rows.append(["multithreaded / single slowdown", f"{data['slowdown']:.2f}x", "", "", ""])
    text = ascii_table(
        ["host threading", "kernel time", "batch time", "unmap frac (mean)", "unmap frac (max)"],
        rows,
    )
    return ExperimentResult("fig11", "Host threading vs GPU fault performance (HPGMG)", text, data)


# ------------------------------------------------------- Figures 12, 13


def fig12_sgemm_oversub(n: int = 3072) -> ExperimentResult:
    """Fig 12: sgemm under oversubscription — eviction batches cost more."""
    _, res = _run(Sgemm(n=n, tile=256), _config(prefetch=False))
    groups = eviction_groups(res.records)
    rows = []
    data = {}
    for evictions in sorted(groups):
        durs = [r.duration for r in groups[evictions]]
        rows.append(
            [evictions, len(durs), fmt_usec(float(np.mean(durs))), fmt_usec(float(np.max(durs)))]
        )
        data[evictions] = {"count": len(durs), "mean": float(np.mean(durs))}
    text = ascii_table(["evictions in batch", "batches", "mean time", "max time"], rows)
    data["total_evictions"] = sum(r.evictions for r in res.records)
    return ExperimentResult("fig12", "sgemm under oversubscription and eviction", text, data)


def fig13_stream_levels(nbytes_per_array: int = 32 * MB, sweeps: int = 3) -> ExperimentResult:
    """Fig 13: same eviction count, multiple cost levels (unmap paid once).

    BabelStream iterates its kernels many times; under oversubscription the
    later sweeps page evicted blocks back in *without* the CPU-unmapping
    cost (their pages are no longer host-mapped), creating the lower cost
    levels at the same eviction count."""
    _, res = _run(
        StreamTriad(nbytes=nbytes_per_array, sweeps=sweeps), _config(prefetch=False)
    )
    groups = eviction_groups(res.records)
    rows = []
    data = {}
    for evictions in sorted(groups):
        if evictions == 0:
            continue
        recs = groups[evictions]
        levels = split_levels([r.duration for r in recs])
        for li, (mean_dur, count) in enumerate(levels):
            # Mean unmap time of members on this level.
            members = [
                r
                for r in recs
                if abs(r.duration - mean_dur) <= max(1.0, 0.5 * mean_dur)
            ]
            unmap = float(np.mean([r.time_unmap for r in members])) if members else 0.0
            rows.append([evictions, li, count, fmt_usec(mean_dur), fmt_usec(unmap)])
        data[evictions] = levels
    evicting = [r for r in res.records if r.evictions > 0]
    data["unmap_free_evicting"] = sum(1 for r in evicting if r.time_unmap == 0.0)
    data["unmap_paying_evicting"] = sum(1 for r in evicting if r.time_unmap > 0.0)
    rows.append(
        [
            "all",
            "-",
            len(evicting),
            f"unmap-free: {data['unmap_free_evicting']}",
            f"unmap-paying: {data['unmap_paying_evicting']}",
        ]
    )
    text = ascii_table(
        ["evictions", "level", "batches", "mean time", "mean unmap time"], rows
    )
    return ExperimentResult("fig13", "Stream oversubscription cost levels", text, data)


# ------------------------------------------------------- Figures 14, 15


def fig14_prefetch_sgemm(n: int = 1536) -> ExperimentResult:
    """Fig 14: prefetching eliminates ~9 in 10 batches; DMA-state batches
    become the dominant outliers."""
    data = {}
    rows = []
    for label, prefetch in [("prefetch off", False), ("prefetch on", True)]:
        _, res = _run(Sgemm(n=n, tile=256), _config(prefetch=prefetch))
        dma_fracs = [r.dma_fraction for r in res.records if r.duration > 0]
        rows.append(
            [
                label,
                res.num_batches,
                fmt_usec(res.batch_time_usec),
                f"{np.max(dma_fracs):.2f}",
                f"{np.mean([r.num_faults_raw for r in res.records]):.0f}",
            ]
        )
        data[prefetch] = {
            "batches": res.num_batches,
            "batch_time": res.batch_time_usec,
            "dma_fraction_max": float(np.max(dma_fracs)),
        }
    reduction = 1.0 - data[True]["batches"] / data[False]["batches"]
    data["batch_reduction"] = reduction
    rows.append([f"batch reduction: {reduction:.0%}", "", "", "", ""])
    text = ascii_table(
        ["config", "batches", "batch time", "max DMA fraction", "mean batch size"], rows
    )
    return ExperimentResult("fig14", "sgemm with prefetching enabled", text, data)


def fig15_evict_prefetch(n: int = 2048, gpu_mem_mb: int = 48) -> ExperimentResult:
    """Fig 15: dgemm with eviction + prefetching — four batch populations."""
    _, res = _run(Dgemm(n=n, tile=256), _config(prefetch=True, gpu_mem_mb=gpu_mem_mb))
    recs = res.records
    populations = {
        "prefetching (pages_prefetched > 0)": [r for r in recs if r.pages_prefetched > 0],
        "evicting (evictions > 0)": [r for r in recs if r.evictions > 0],
        "CPU unmapping (unmap_calls > 0)": [r for r in recs if r.unmap_calls > 0],
        "DMA-state setup (new_dma_blocks > 0)": [r for r in recs if r.new_dma_blocks > 0],
    }
    rows = []
    data = {"total_batches": len(recs)}
    for name, members in populations.items():
        durs = [r.duration for r in members] or [0.0]
        bytes_h2d = [r.bytes_h2d for r in members] or [0]
        rows.append(
            [
                name,
                len(members),
                fmt_usec(float(np.mean(durs))),
                fmt_bytes(float(np.mean(bytes_h2d))),
            ]
        )
        data[name] = len(members)
    text = ascii_table(["population", "batches", "mean time", "mean migration"], rows)
    return ExperimentResult("fig15", "dgemm with eviction + prefetching", text, data)


# ------------------------------------------------------------------- Table 4


def tab04_batch_kernel_times() -> ExperimentResult:
    """Table 4: batch & kernel times with/without prefetching under modest
    oversubscription (GS ~16 %, HPGMG ~25 %)."""
    rows = []
    data = {}
    cases = [
        ("Gauss-Seidel", GaussSeidel(n=2048, sweeps=2), 54),
        ("HPGMG", Hpgmg(n=1536, levels=3, cycles=2), 40),
    ]
    for name, workload, gpu_mb in cases:
        entry = {}
        for prefetch in (False, True):
            _, res = _run(workload, _config(prefetch=prefetch, gpu_mem_mb=gpu_mb))
            entry[prefetch] = {
                "batch": res.batch_time_usec,
                "kernel": res.kernel_time_usec,
            }
        speedup = entry[False]["kernel"] / entry[True]["kernel"]
        rows.append(
            [
                name,
                fmt_usec(entry[False]["batch"]),
                fmt_usec(entry[False]["kernel"]),
                fmt_usec(entry[True]["batch"]),
                fmt_usec(entry[True]["kernel"]),
                f"{speedup:.2f}x",
            ]
        )
        entry["speedup"] = speedup
        data[name] = entry
    text = ascii_table(
        [
            "Benchmark",
            "Batch (no pf)",
            "Kernel (no pf)",
            "Batch (pf)",
            "Kernel (pf)",
            "pf speedup",
        ],
        rows,
    )
    return ExperimentResult("tab04", "Batch and kernel execution times", text, data)


# ------------------------------------------------------- Figures 16, 17


def _case_study(name: str, workload, gpu_mb: int) -> ExperimentResult:
    system, res = _run(workload, _config(prefetch=True, gpu_mem_mb=gpu_mb), trace=True)
    recs = res.records
    prefetch_series = [r.pages_prefetched for r in recs]
    evict_series = [r.evictions for r in recs]
    segments = phase_segments(prefetch_series, threshold=0, min_len=1)

    # LRU check: eviction order should track allocation order (Fig 16c/17c:
    # first evictions hit the earliest-allocated pages).
    evicts = system.trace.select("evict")
    alloc_order: Dict[int, int] = {}
    for e in system.trace.select("migrate"):
        block = e.payload[1]
        alloc_order.setdefault(block, len(alloc_order))
    eviction_blocks = [e.payload[1] for e in evicts]
    first_k = eviction_blocks[: max(1, len(eviction_blocks) // 4)]
    ranks = [alloc_order.get(b, 0) for b in first_k]
    median_rank = float(np.median(ranks)) if ranks else 0.0
    total_blocks = max(1, len(alloc_order))

    lines = [
        f"batches={len(recs)} evictions={sum(evict_series):.0f} "
        f"prefetched_pages={sum(prefetch_series):.0f}",
        ascii_series(prefetch_series, label="(a) prefetch pages "),
        ascii_series(evict_series, label="(b) evictions      "),
        ascii_series([r.duration for r in recs], label="(t) batch time     "),
        f"(c) LRU banding: first 25% of evictions target allocation-rank "
        f"median {median_rank:.0f} of {total_blocks} blocks "
        f"(earliest-allocated => small rank)",
        f"prefetch-active segments: {len(segments)}",
    ]
    data = {
        "prefetch_series": prefetch_series,
        "evict_series": evict_series,
        "segments": segments,
        "lru_median_rank_fraction": median_rank / total_blocks,
        "evictions": int(sum(evict_series)),
    }
    return ExperimentResult(
        name, f"Case study: batch profile + fault behaviour", "\n".join(lines), data
    )


def fig16_gauss_seidel_case() -> ExperimentResult:
    """Fig 16: Gauss-Seidel at ~16-19 % oversubscription."""
    result = _case_study("fig16", GaussSeidel(n=2048, sweeps=2), gpu_mb=54)
    result.title = "Gauss-Seidel case study (~16% oversubscription)"
    return result


def fig17_hpgmg_case() -> ExperimentResult:
    """Fig 17: HPGMG at ~25 % oversubscription."""
    result = _case_study("fig17", Hpgmg(n=1536, levels=3, cycles=2), gpu_mb=40)
    result.title = "HPGMG case study (~25% oversubscription)"
    return result


# ----------------------------------------------------------------- Ablations


def ablation_dup_adaptive() -> ExperimentResult:
    """§6: tune batch size based on the duplicate rate."""
    rows = []
    data = {}
    for label, adaptive in [("fixed 256", False), ("duplicate-adaptive", True)]:
        _, res = _run(
            Sgemm(n=1536, tile=256),
            _config(prefetch=False, adaptive_batch=adaptive, batch_size=1024),
        )
        dup = duplicate_summary(res.records)
        rows.append(
            [label, res.num_batches, fmt_usec(res.batch_time_usec), f"{dup.dup_fraction:.2f}"]
        )
        data[label] = {
            "batches": res.num_batches,
            "batch_time": res.batch_time_usec,
            "dup_fraction": dup.dup_fraction,
        }
    text = ascii_table(["policy", "batches", "batch time", "dup fraction"], rows)
    return ExperimentResult("ablation_dup_adaptive", "Duplicate-adaptive batch sizing", text, data)


def ablation_driver_parallel() -> ExperimentResult:
    """§6: per-VABlock driver parallelism is workload-imbalanced."""
    rows = []
    data = {}
    for name, workload in [
        ("gauss-seidel (2.3 blk/batch)", GaussSeidel(n=1024)),
        ("Random (many blk/batch)", RandomAccess(nbytes=24 * MB, num_programs=80, accesses_per_program=192)),
    ]:
        per = {}
        for threads in (1, 2, 4, 8):
            _, res = _run(
                workload, _config(prefetch=False, service_threads=threads)
            )
            per[threads] = res.batch_time_usec
        speedup = {t: per[1] / per[t] for t in per}
        rows.append(
            [name] + [f"{speedup[t]:.2f}x" for t in (1, 2, 4, 8)]
        )
        data[name] = speedup
    text = ascii_table(
        ["workload", "1 thread", "2 threads", "4 threads", "8 threads"], rows
    )
    return ExperimentResult(
        "ablation_driver_parallel", "Per-VABlock driver parallelism speedup", text, data
    )


def ablation_async_unmap() -> ExperimentResult:
    """§6: perform CPU unmapping asynchronously, off the fault path."""
    rows = []
    data = {}
    for label, async_unmap in [("on fault path (UVM)", False), ("asynchronous", True)]:
        workload = Hpgmg(n=1024, levels=3, cycles=2, host_interleaved=True)
        _, res = _run(
            workload, _config(prefetch=True, host_threads=64, async_unmap=async_unmap)
        )
        rows.append([label, fmt_usec(res.kernel_time_usec), fmt_usec(res.batch_time_usec)])
        data[label] = res.kernel_time_usec
    data["speedup"] = data["on fault path (UVM)"] / data["asynchronous"]
    rows.append([f"async speedup: {data['speedup']:.2f}x", "", ""])
    text = ascii_table(["unmap policy", "kernel time", "batch time"], rows)
    return ExperimentResult("ablation_async_unmap", "Asynchronous CPU unmapping", text, data)


def ablation_prefetch_scope() -> ExperimentResult:
    """§6: increase the prefetcher's scope beyond one VABlock."""
    rows = []
    data = {}
    for scope in (1, 2, 4):
        _, res = _run(
            StreamTriad(nbytes=12 * MB),
            _config(prefetch=True, prefetch_scope_blocks=scope),
        )
        rows.append([scope, res.num_batches, fmt_usec(res.batch_time_usec)])
        data[scope] = {"batches": res.num_batches, "batch_time": res.batch_time_usec}
    text = ascii_table(["scope (VABlocks)", "batches", "batch time"], rows)
    return ExperimentResult("ablation_prefetch_scope", "Enlarged prefetch scope", text, data)


def sweep_oversubscription() -> ExperimentResult:
    """§5.3/§5.4 hypothesis test: prefetching's gain shrinks as
    oversubscription grows, and "the combination of prefetching and eviction
    can harm performance for applications with irregular access patterns".

    Sweeps device memory for two patterns:

    * dense (Gauss-Seidel): every prefetched page is eventually needed, so
      demand faulting and prefetching degrade *together* (flat ratio after
      the LRU-cyclic cliff);
    * irregular (Random): the prefetcher's 64 KiB upgrades drag in unused
      pages that consume scarce capacity — the gain decays and can invert.
    """
    rows = []
    data = {}
    cases = [
        ("dense (gauss-seidel)", lambda: GaussSeidel(n=1024, sweeps=2), 16),
        (
            "irregular (random)",
            lambda: RandomAccess(
                nbytes=16 * MB, num_programs=80, accesses_per_program=96
            ),
            16,
        ),
    ]
    for label, make_workload, problem_mb in cases:
        series = {}
        for gpu_mb in (16, 12, 8, 6):
            ratio = problem_mb / gpu_mb
            times = {}
            evictions = 0
            for prefetch in (False, True):
                _, res = _run(
                    make_workload(), _config(prefetch=prefetch, gpu_mem_mb=gpu_mb)
                )
                times[prefetch] = res.kernel_time_usec
                if prefetch:
                    evictions = sum(r.evictions for r in res.records)
            speedup = times[False] / times[True]
            series[round(ratio, 2)] = speedup
            rows.append(
                [
                    label,
                    f"{ratio:.2f}x",
                    fmt_usec(times[False]),
                    fmt_usec(times[True]),
                    f"{speedup:.2f}x",
                    evictions,
                ]
            )
        data[label] = series
    text = ascii_table(
        ["pattern", "oversub", "kernel (no pf)", "kernel (pf)", "pf speedup", "evictions (pf)"],
        rows,
    )
    return ExperimentResult(
        "sweep_oversubscription",
        "Prefetch gain vs oversubscription (§5.3/§5.4 hypotheses)",
        text,
        data,
    )


def ablation_faster_interconnect() -> ExperimentResult:
    """§6 claim test: "improvements to basic hardware, such as interconnect
    bandwidth and latency, would still improve performance but would not
    resolve the underlying issues."  Runs sgemm (no prefetch) on platform
    presets from PCIe 3 to an ideal free wire and reports how little of the
    batch time the wire actually was."""
    from ..hostos.platforms import PLATFORM_PRESETS

    rows = []
    data = {}
    base_time = None
    for preset in ("x86-pcie3", "x86-pcie4", "power9-nvlink2", "ideal-interconnect"):
        cfg = _config(prefetch=False)
        cfg.cost_overrides = dict(PLATFORM_PRESETS[preset])
        _, res = _run(Sgemm(n=1536, tile=256), cfg)
        if base_time is None:
            base_time = res.batch_time_usec
        speedup = base_time / res.batch_time_usec
        rows.append(
            [preset, fmt_usec(res.batch_time_usec), fmt_usec(res.kernel_time_usec), f"{speedup:.2f}x"]
        )
        data[preset] = {
            "batch_time": res.batch_time_usec,
            "kernel_time": res.kernel_time_usec,
            "speedup": speedup,
        }
    text = ascii_table(
        ["platform preset", "batch time", "kernel time", "speedup vs PCIe3"], rows
    )
    return ExperimentResult(
        "ablation_faster_interconnect",
        "Interconnect sensitivity (§6: hardware cannot fix the fault path)",
        text,
        data,
    )


def fig_pointer_chase() -> ExperimentResult:
    """Driver-serialization endpoint (§6): a dependent pointer chase ships
    one fault per batch, paying a full driver round trip per page — versus a
    streaming read whose faults amortize across 60+-fault batches."""
    from ..workloads import PointerChase

    rows = []
    data = {}
    # Pointer chase: one dependent page per hop.
    _, chase = _run(PointerChase(num_pages=512, hops=256), _config(prefetch=False))
    chase_per_page = chase.kernel_time_usec / 256
    rows.append(
        [
            "pointer chase (dependent)",
            chase.num_batches,
            f"{np.mean([r.num_faults_raw for r in chase.records]):.1f}",
            f"{chase_per_page:.2f}",
        ]
    )
    data["chase_per_page"] = chase_per_page
    data["chase_batches"] = chase.num_batches
    # Streaming read of the same page count.
    _, stream = _run(StreamTriad(nbytes=2 * MB), _config(prefetch=False))
    pages = 3 * (2 * MB) // PAGE_SIZE
    stream_per_page = stream.kernel_time_usec / pages
    rows.append(
        [
            "stream (independent)",
            stream.num_batches,
            f"{np.mean([r.num_faults_raw for r in stream.records]):.1f}",
            f"{stream_per_page:.2f}",
        ]
    )
    data["stream_per_page"] = stream_per_page
    data["serialization_penalty"] = chase_per_page / stream_per_page
    text = ascii_table(
        ["access pattern", "batches", "mean faults/batch", "us per page"], rows
    )
    return ExperimentResult(
        "fig_pointer_chase",
        "Fault serialization: dependent vs independent accesses",
        text,
        data,
    )


#: Registry: experiment id → runner.
EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "fig01": fig01_latency,
    "fig03": fig03_vecadd_batches,
    "fig04": fig04_vecadd_timing,
    "fig05": fig05_prefetch_warp,
    "tab02": tab02_sm_stats,
    "fig06": fig06_data_movement,
    "fig07": fig07_transfer_fraction,
    "fig08": fig08_dedup_timeseries,
    "fig09": fig09_batch_size,
    "tab03": tab03_vablock_stats,
    "fig10": fig10_vablock_variance,
    "fig11": fig11_hpgmg_unmap,
    "fig12": fig12_sgemm_oversub,
    "fig13": fig13_stream_levels,
    "fig14": fig14_prefetch_sgemm,
    "fig15": fig15_evict_prefetch,
    "tab04": tab04_batch_kernel_times,
    "fig16": fig16_gauss_seidel_case,
    "fig17": fig17_hpgmg_case,
    "sweep_oversubscription": sweep_oversubscription,
    "ablation_faster_interconnect": ablation_faster_interconnect,
    "fig_pointer_chase": fig_pointer_chase,
    "ablation_dup_adaptive": ablation_dup_adaptive,
    "ablation_driver_parallel": ablation_driver_parallel,
    "ablation_async_unmap": ablation_async_unmap,
    "ablation_prefetch_scope": ablation_prefetch_scope,
}


def run_experiment(exp_id: str, **kwargs) -> ExperimentResult:
    """Run a registered experiment by id."""
    if exp_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {exp_id!r}; choose from {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[exp_id](**kwargs)
