"""Plain-text rendering: tables, histograms, and series for the benches.

The benchmark harness prints "the same rows/series the paper reports";
these helpers keep that output aligned and dependency-free.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from ..units import fmt_usec


def ascii_table(headers: Sequence[str], rows: Iterable[Sequence], title: str = "") -> str:
    """Render an aligned text table.

    >>> print(ascii_table(["a", "b"], [[1, 2]]))  # doctest: +NORMALIZE_WHITESPACE
    a | b
    --+--
    1 | 2
    """
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def ascii_hist(
    values: Sequence[float],
    bins: int = 10,
    width: int = 40,
    label: str = "",
) -> str:
    """Text histogram with proportional bars."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return f"{label}: (no data)"
    counts, edges = np.histogram(arr, bins=bins)
    peak = counts.max() if counts.max() > 0 else 1
    lines = [label] if label else []
    for c, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * max(0, round(width * c / peak))
        lines.append(f"[{lo:12.2f}, {hi:12.2f}) {c:6d} {bar}")
    return "\n".join(lines)


def ascii_series(
    values: Sequence[float],
    width: int = 60,
    height_chars: str = " .:-=+*#%@",
    label: str = "",
) -> str:
    """One-line density strip of a series (coarse time-series view)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return f"{label}: (no data)"
    # Downsample to `width` buckets by mean.
    idx = np.linspace(0, arr.size, width + 1).astype(int)
    buckets = [arr[a:b].mean() if b > a else 0.0 for a, b in zip(idx[:-1], idx[1:])]
    lo, hi = min(buckets), max(buckets)
    span = (hi - lo) or 1.0
    chars = [
        height_chars[min(len(height_chars) - 1, int((v - lo) / span * (len(height_chars) - 1)))]
        for v in buckets
    ]
    prefix = f"{label} " if label else ""
    return f"{prefix}[{lo:.1f}..{hi:.1f}] |{''.join(chars)}|"


def format_usec_stats(values: Sequence[float]) -> str:
    """'mean / p50 / p95 / max' summary of durations in human units."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return "(no data)"
    return (
        f"mean={fmt_usec(float(arr.mean()))} p50={fmt_usec(float(np.percentile(arr, 50)))} "
        f"p95={fmt_usec(float(np.percentile(arr, 95)))} max={fmt_usec(float(arr.max()))}"
    )
