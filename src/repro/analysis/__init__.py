"""Analysis tooling: the statistics, fits, and renderers behind every
table and figure, plus canned experiment runners (`repro.analysis.experiments`).
"""

from .stats import (
    SummaryStats,
    per_sm_stats,
    vablock_stats,
    duplicate_summary,
    batch_size_summary,
)
from .fits import LinearFit, fit_time_vs_bytes
from .timeseries import batch_series, eviction_groups, moving_mean, split_levels
from .report import ascii_table, ascii_hist, format_usec_stats
from .breakdown import cost_breakdown, host_os_share, render_breakdown, wire_share
from .export import export_batch_timeline, export_scatter, export_sm_histogram
from .traces import FaultTrace, capture_trace, replay

__all__ = [
    "SummaryStats",
    "per_sm_stats",
    "vablock_stats",
    "duplicate_summary",
    "batch_size_summary",
    "LinearFit",
    "fit_time_vs_bytes",
    "batch_series",
    "eviction_groups",
    "moving_mean",
    "split_levels",
    "ascii_table",
    "ascii_hist",
    "format_usec_stats",
    "cost_breakdown",
    "host_os_share",
    "render_breakdown",
    "wire_share",
    "export_batch_timeline",
    "export_scatter",
    "export_sm_histogram",
    "FaultTrace",
    "capture_trace",
    "replay",
]
