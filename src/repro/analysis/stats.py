"""Batch statistics: the machinery behind Tables 2 and 3.

Table 2 ("Per-SM Source Statistics in Each Batch") reports, per workload,
the distribution over batches of *faults contributed per SM*: with the
256-fault default batch and 80 SMs the ceiling is 3.2, hit by the synthetic
Regular/Random workloads whose every SM saturates its throttle quota.

Table 3 ("VABlock Source Statistics in a Batch") reports VABlocks touched
per batch and the distribution of faults per (batch, VABlock) pair — the
workload-imbalance evidence against naïve per-VABlock driver parallelism
(§4.3, §6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np

from ..core.batch_record import BatchRecord


@dataclass(frozen=True)
class SummaryStats:
    """mean / std / min / max summary of a sample."""

    mean: float
    std: float
    min: float
    max: float
    count: int

    @classmethod
    def of(cls, values: Sequence[float]) -> "SummaryStats":
        arr = np.asarray(values, dtype=float)
        if arr.size == 0:
            return cls(0.0, 0.0, 0.0, 0.0, 0)
        return cls(
            mean=float(arr.mean()),
            std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
            min=float(arr.min()),
            max=float(arr.max()),
            count=int(arr.size),
        )

    def row(self, ndigits: int = 2) -> List[str]:
        return [
            f"{self.mean:.{ndigits}f}",
            f"{self.std:.{ndigits}f}",
            f"{self.min:.{ndigits}f}",
            f"{self.max:.{ndigits}f}",
        ]


def per_sm_stats(records: Iterable[BatchRecord], num_sms: int) -> SummaryStats:
    """Table 2 statistic: per-batch average faults per SM.

    For each batch, the statistic is ``raw faults / num_sms`` — the mean SM
    contribution; its distribution across batches gives the table's
    avg/std/min/max.  The max is bounded by ``batch_size / num_sms`` (≈3.2
    for 256/80), the throttle-and-fair-service ceiling.
    """
    series = [r.num_faults_raw / num_sms for r in records]
    return SummaryStats.of(series)


@dataclass(frozen=True)
class VABlockStats:
    """Table 3 row: blocks per batch + pooled faults per (batch, block)."""

    vablocks_per_batch: float
    faults_per_vablock: SummaryStats

    def row(self) -> List[str]:
        return [f"{self.vablocks_per_batch:.2f}"] + [
            f"{self.faults_per_vablock.mean:.2f}",
            f"{self.faults_per_vablock.std:.2f}",
            f"{self.faults_per_vablock.min:.0f}",
            f"{self.faults_per_vablock.max:.0f}",
        ]


def vablock_stats(records: Iterable[BatchRecord]) -> VABlockStats:
    """Table 3 statistics from batch records."""
    records = list(records)
    blocks_per_batch = [r.num_vablocks for r in records if r.num_vablocks > 0]
    pooled: List[int] = []
    for r in records:
        if r.vablock_fault_counts is not None:
            pooled.extend(int(x) for x in r.vablock_fault_counts)
    return VABlockStats(
        vablocks_per_batch=float(np.mean(blocks_per_batch)) if blocks_per_batch else 0.0,
        faults_per_vablock=SummaryStats.of(pooled),
    )


@dataclass(frozen=True)
class DuplicateSummary:
    """Raw/unique/duplicate totals over a record set (Fig 8 aggregates)."""

    total_raw: int
    total_unique: int
    dup_same_utlb: int
    dup_cross_utlb: int

    @property
    def dup_total(self) -> int:
        return self.dup_same_utlb + self.dup_cross_utlb

    @property
    def dup_fraction(self) -> float:
        return self.dup_total / self.total_raw if self.total_raw else 0.0


def duplicate_summary(records: Iterable[BatchRecord]) -> DuplicateSummary:
    records = list(records)
    return DuplicateSummary(
        total_raw=sum(r.num_faults_raw for r in records),
        total_unique=sum(r.num_faults_unique for r in records),
        dup_same_utlb=sum(r.dup_same_utlb for r in records),
        dup_cross_utlb=sum(r.dup_cross_utlb for r in records),
    )


@dataclass(frozen=True)
class BatchSizeSummary:
    """Per-run batch-size profile (Fig 9 columns)."""

    num_batches: int
    raw_sizes: SummaryStats
    unique_sizes: SummaryStats
    total_batch_time_usec: float

    @property
    def mean_unique_per_batch(self) -> float:
        return self.unique_sizes.mean


def batch_size_summary(records: Iterable[BatchRecord]) -> BatchSizeSummary:
    records = list(records)
    return BatchSizeSummary(
        num_batches=len(records),
        raw_sizes=SummaryStats.of([r.num_faults_raw for r in records]),
        unique_sizes=SummaryStats.of([r.num_faults_unique for r in records]),
        total_batch_time_usec=sum(r.duration for r in records),
    )
