"""Figure-data export: CSV series for external plotting.

The benchmark harness prints ASCII renderings; for publication-quality
plots, these helpers dump the exact (x, y, series) data each figure uses as
CSV — dependency-free, loadable by pandas/matplotlib/gnuplot alike.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Union

from ..core.batch_record import BatchRecord

PathLike = Union[str, Path]


def write_csv(path: PathLike, header: Sequence[str], rows: Iterable[Sequence]) -> Path:
    """Write rows to ``path``; returns the resolved path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(header)
        for row in rows:
            writer.writerow(row)
    return path


def export_batch_timeline(records: Iterable[BatchRecord], path: PathLike) -> Path:
    """Per-batch series behind Figs 8/12-17: one row per batch."""
    header = [
        "batch_id",
        "t_start_usec",
        "duration_usec",
        "faults_raw",
        "faults_unique",
        "vablocks",
        "bytes_h2d",
        "pages_prefetched",
        "evictions",
        "unmap_usec",
        "dma_usec",
        "transfer_usec",
        "hinted",
    ]
    rows = [
        [
            r.batch_id,
            f"{r.t_start:.3f}",
            f"{r.duration:.3f}",
            r.num_faults_raw,
            r.num_faults_unique,
            r.num_vablocks,
            r.bytes_h2d,
            r.pages_prefetched,
            r.evictions,
            f"{r.time_unmap:.3f}",
            f"{r.time_dma:.3f}",
            f"{r.time_transfer_h2d + r.time_transfer_d2h:.3f}",
            int(r.hinted),
        ]
        for r in records
    ]
    return write_csv(path, header, rows)


def export_scatter(
    records: Iterable[BatchRecord],
    path: PathLike,
    x: str = "bytes_h2d",
    y: str = "duration",
) -> Path:
    """Two-column scatter (Fig 6/10-style): any two record attributes or
    properties by name."""
    rows = []
    for r in records:
        rows.append([getattr(r, x), getattr(r, y)])
    return write_csv(path, [x, y], rows)


def export_sm_histogram(records: Iterable[BatchRecord], path: PathLike) -> Path:
    """Per-SM fault totals across a run (Table 2's raw material)."""
    totals: Dict[int, int] = {}
    for r in records:
        if r.sm_fault_counts is None:
            continue
        for sm, count in enumerate(r.sm_fault_counts):
            totals[sm] = totals.get(sm, 0) + int(count)
    rows = sorted(totals.items())
    return write_csv(path, ["sm_id", "total_faults"], rows)
