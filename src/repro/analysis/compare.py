"""A/B comparison of driver configurations over one workload.

The paper's methodology is comparative: the same workload under two driver
configurations (prefetch on/off, batch caps, host threading), attributing
the delta to fault-path components.  :func:`compare_configs` packages that
workflow: it runs a workload factory under two configurations and reports
totals plus the per-component cost deltas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..api import RunResult, UvmSystem
from ..config import SystemConfig
from ..units import fmt_usec
from .breakdown import COMPONENTS, cost_breakdown
from .report import ascii_table


@dataclass
class ComparisonRow:
    """One metric compared across the two runs."""

    metric: str
    a: float
    b: float

    @property
    def ratio(self) -> float:
        return self.a / self.b if self.b else float("inf")


@dataclass
class Comparison:
    """Outcome of an A/B configuration comparison."""

    label_a: str
    label_b: str
    result_a: RunResult
    result_b: RunResult
    rows: List[ComparisonRow] = field(default_factory=list)

    def render(self) -> str:
        table_rows = []
        for row in self.rows:
            table_rows.append(
                [
                    row.metric,
                    fmt_usec(row.a) if "time" in row.metric else f"{row.a:.0f}",
                    fmt_usec(row.b) if "time" in row.metric else f"{row.b:.0f}",
                    f"{row.ratio:.2f}x" if row.b else "-",
                ]
            )
        return ascii_table(
            ["metric", self.label_a, self.label_b, "A/B"],
            table_rows,
            title=f"{self.label_a} vs {self.label_b}",
        )

    def metric(self, name: str) -> ComparisonRow:
        for row in self.rows:
            if row.metric == name:
                return row
        raise KeyError(name)


def compare_configs(
    workload_factory: Callable,
    config_a: SystemConfig,
    config_b: SystemConfig,
    label_a: str = "A",
    label_b: str = "B",
) -> Comparison:
    """Run ``workload_factory()`` under both configs and compare.

    The factory is called once per run so workloads with internal state
    (seeded data structures) are rebuilt identically.
    """
    results = []
    for config in (config_a, config_b):
        system = UvmSystem(config)
        results.append(workload_factory().run(system))
    result_a, result_b = results

    comparison = Comparison(label_a, label_b, result_a, result_b)
    rows = comparison.rows
    rows.append(ComparisonRow("batches", result_a.num_batches, result_b.num_batches))
    rows.append(ComparisonRow("faults (raw)", result_a.total_faults, result_b.total_faults))
    rows.append(
        ComparisonRow("batch time", result_a.batch_time_usec, result_b.batch_time_usec)
    )
    rows.append(
        ComparisonRow("kernel time", result_a.kernel_time_usec, result_b.kernel_time_usec)
    )
    shares_a = {s.attr: s.total_usec for s in cost_breakdown(result_a.records)}
    shares_b = {s.attr: s.total_usec for s in cost_breakdown(result_b.records)}
    for attr, label in COMPONENTS:
        if shares_a.get(attr, 0.0) or shares_b.get(attr, 0.0):
            rows.append(
                ComparisonRow(f"time: {label}", shares_a.get(attr, 0.0), shares_b.get(attr, 0.0))
            )
    return comparison
