"""Batch-cost decomposition: where does fault-path time actually go?

The paper's central analytical move is attributing batch time to its
constituents (fetch, preprocessing, allocation, population, DMA + radix,
CPU unmapping, transfer, eviction, replay) and showing that host-OS
components dominate where least expected.  This module aggregates the
per-batch component timers across a run into that attribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from ..core.batch_record import BatchRecord
from ..units import fmt_usec
from .report import ascii_table

#: (record attribute, human label) in servicing order.
COMPONENTS: List[Tuple[str, str]] = [
    ("time_wake", "worker wakeup"),
    ("time_fetch", "fault-buffer fetch"),
    ("time_preprocess", "preprocess/dedup"),
    ("time_block_base", "per-page fault service + block locks"),
    ("time_alloc", "chunk allocation"),
    ("time_eviction", "eviction (restart + page tables)"),
    ("time_transfer_d2h", "eviction copy-back (wire)"),
    ("time_population", "page population (zero-fill)"),
    ("time_dma", "DMA mappings + radix tree"),
    ("time_unmap", "unmap_mapping_range (host OS)"),
    ("time_prefetch_decide", "prefetch tree decision"),
    ("time_migrate_prep", "migration staging"),
    ("time_transfer_h2d", "migration copy (wire)"),
    ("time_pagetable", "GPU page-table update"),
    ("time_replay", "replay push + fence"),
    ("time_retry_backoff", "retry backoff + wasted transfers (chaos)"),
]


@dataclass(frozen=True)
class ComponentShare:
    """One component's aggregate cost over a run."""

    attr: str
    label: str
    total_usec: float
    fraction: float


def cost_breakdown(records: Iterable[BatchRecord]) -> List[ComponentShare]:
    """Aggregate component timers over ``records``, largest share first."""
    records = list(records)
    totals: Dict[str, float] = {attr: 0.0 for attr, _ in COMPONENTS}
    for r in records:
        for attr in totals:
            totals[attr] += getattr(r, attr)
    grand = sum(totals.values()) or 1.0
    shares = [
        ComponentShare(attr, label, totals[attr], totals[attr] / grand)
        for attr, label in COMPONENTS
    ]
    return sorted(shares, key=lambda s: -s.total_usec)


def render_breakdown(records: Iterable[BatchRecord], title: str = "") -> str:
    """ASCII table of the run's cost attribution."""
    shares = cost_breakdown(records)
    rows = [
        [s.label, fmt_usec(s.total_usec), f"{s.fraction:.1%}"]
        for s in shares
        if s.total_usec > 0
    ]
    return ascii_table(["component", "total time", "share"], rows, title=title)


def host_os_share(records: Iterable[BatchRecord]) -> float:
    """Fraction of accounted time in host-OS components (unmap + DMA/radix)
    — the costs §6 flags as common to every HMM implementation."""
    shares = {s.attr: s for s in cost_breakdown(records)}
    host = shares["time_unmap"].total_usec + shares["time_dma"].total_usec
    grand = sum(s.total_usec for s in shares.values()) or 1.0
    return host / grand


def wire_share(records: Iterable[BatchRecord]) -> float:
    """Fraction of accounted time actually on the interconnect (Fig 7's
    division between transfer and management)."""
    shares = {s.attr: s for s in cost_breakdown(records)}
    wire = shares["time_transfer_h2d"].total_usec + shares["time_transfer_d2h"].total_usec
    grand = sum(s.total_usec for s in shares.values()) or 1.0
    return wire / grand
