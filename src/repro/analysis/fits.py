"""Least-squares fits: batch cost vs. data moved (Fig 6) and friends.

Figure 6 plots, per application, the best-fit line of batch servicing time
against bytes migrated: the paper's point is that every app's cost rises
*linearly* with data moved but with app-specific slope and high variance —
data movement "sets the trend" without being the dominant term (§4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

import numpy as np

from ..core.batch_record import BatchRecord


@dataclass(frozen=True)
class LinearFit:
    """y = slope * x + intercept with goodness-of-fit."""

    slope: float
    intercept: float
    r2: float
    n: int

    def predict(self, x: float) -> float:
        return self.slope * x + self.intercept


def linear_fit(x: Iterable[float], y: Iterable[float]) -> LinearFit:
    """Ordinary least squares fit of ``y`` on ``x``.

    >>> fit = linear_fit([0, 1, 2], [1, 3, 5])
    >>> round(fit.slope, 6), round(fit.intercept, 6), round(fit.r2, 6)
    (2.0, 1.0, 1.0)
    """
    xa = np.asarray(list(x), dtype=float)
    ya = np.asarray(list(y), dtype=float)
    if xa.size != ya.size:
        raise ValueError("x and y must have equal length")
    if xa.size < 2 or np.allclose(xa, xa[0]):
        return LinearFit(0.0, float(ya.mean()) if ya.size else 0.0, 0.0, int(xa.size))
    slope, intercept = np.polyfit(xa, ya, 1)
    pred = slope * xa + intercept
    ss_res = float(np.sum((ya - pred) ** 2))
    ss_tot = float(np.sum((ya - ya.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return LinearFit(float(slope), float(intercept), r2, int(xa.size))


def fit_time_vs_bytes(
    records: Iterable[BatchRecord],
    include_zero_migration: bool = False,
) -> Tuple[LinearFit, np.ndarray, np.ndarray]:
    """Fig 6 fit: batch duration (µs) vs bytes migrated host→device.

    Returns the fit plus the (bytes, duration) samples used.
    """
    xs, ys = [], []
    for r in records:
        if r.bytes_h2d == 0 and not include_zero_migration:
            continue
        xs.append(float(r.bytes_h2d))
        ys.append(r.duration)
    x = np.asarray(xs)
    y = np.asarray(ys)
    return linear_fit(x, y), x, y


def fit_time_vs_blocks(records: Iterable[BatchRecord]) -> LinearFit:
    """Fig 10 companion: batch duration vs VABlocks touched."""
    recs = [r for r in records if r.num_vablocks > 0]
    return linear_fit([r.num_vablocks for r in recs], [r.duration for r in recs])


def partial_fit_blocks_given_bytes(
    records: Iterable[BatchRecord],
) -> Optional[LinearFit]:
    """Fig 10's claim, isolated: regress duration residual (after removing
    the bytes trend) on VABlock count.  A positive slope means more blocks
    cost more *at the same migration size*."""
    recs = [r for r in records if r.bytes_h2d > 0]
    if len(recs) < 3:
        return None
    base, x, y = fit_time_vs_bytes(recs)
    residuals = y - np.array([base.predict(v) for v in x])
    blocks = [r.num_vablocks for r in recs]
    return linear_fit(blocks, residuals)
