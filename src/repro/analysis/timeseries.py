"""Time-series utilities for batch profiles (Figs 8, 12, 13, 15, 16, 17)."""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from ..core.batch_record import BatchRecord


def batch_series(records: Iterable[BatchRecord], field: str) -> np.ndarray:
    """Extract a per-batch series by attribute/property name.

    >>> # batch_series(records, "num_faults_raw") etc.
    """
    return np.asarray([getattr(r, field) for r in records], dtype=float)


def moving_mean(series: Sequence[float], window: int) -> np.ndarray:
    """Simple moving average (shrinks at the edges).

    >>> moving_mean([1, 2, 3, 4], 2).tolist()
    [1.0, 1.5, 2.5, 3.5]
    """
    arr = np.asarray(series, dtype=float)
    if window <= 1 or arr.size == 0:
        return arr
    out = np.empty_like(arr)
    csum = np.cumsum(arr)
    for i in range(arr.size):
        lo = max(0, i - window + 1)
        total = csum[i] - (csum[lo - 1] if lo > 0 else 0.0)
        out[i] = total / (i - lo + 1)
    return out


def eviction_groups(records: Iterable[BatchRecord]) -> Dict[int, List[BatchRecord]]:
    """Batches grouped by their eviction count (Fig 12/13 colouring)."""
    groups: Dict[int, List[BatchRecord]] = defaultdict(list)
    for r in records:
        groups[r.evictions].append(r)
    return dict(groups)


def split_levels(
    durations: Sequence[float],
    gap_factor: float = 1.8,
) -> List[Tuple[float, int]]:
    """Detect cost "levels": clusters of batch durations separated by gaps.

    Figure 13 shows batches with the *same* eviction count landing on
    distinct duration levels (unmap paid vs. skipped).  This sorts the
    durations and starts a new level wherever a value exceeds the previous
    by more than ``gap_factor``×.  Returns ``(level mean, member count)``
    pairs, cheapest level first.

    >>> split_levels([1.0, 1.1, 5.0, 5.2])
    [(1.05, 2), (5.1, 2)]
    """
    vals = sorted(float(v) for v in durations)
    if not vals:
        return []
    levels: List[List[float]] = [[vals[0]]]
    for v in vals[1:]:
        if levels[-1] and v > levels[-1][-1] * gap_factor and v - levels[-1][-1] > 1e-9:
            levels.append([v])
        else:
            levels[-1].append(v)
    return [(float(np.mean(level)), len(level)) for level in levels]


def phase_segments(
    series: Sequence[float],
    threshold: float,
    min_len: int = 2,
) -> List[Tuple[int, int]]:
    """Contiguous index ranges where ``series`` exceeds ``threshold``.

    Used for the Fig 17 observation of ~four intensive prefetch/eviction
    segments: returns ``[(start, stop), ...]`` half-open ranges.

    >>> phase_segments([0, 5, 6, 0, 0, 7, 8, 9], threshold=1)
    [(1, 3), (5, 8)]
    """
    segments: List[Tuple[int, int]] = []
    start = None
    for i, v in enumerate(series):
        if v > threshold:
            if start is None:
                start = i
        else:
            if start is not None and i - start >= min_len:
                segments.append((start, i))
            start = None
    if start is not None and len(series) - start >= min_len:
        segments.append((start, len(series)))
    return segments
