"""Run validation: invariant checks over a simulated system and its log.

A production simulator needs a way to *prove a run made sense*.  This module
checks the cross-cutting invariants the design guarantees — residency
consistency between the driver's VABlock state and the GPU page table,
physical-memory accounting, fault conservation through the hardware buffer,
and per-record timing sanity — and reports violations instead of silently
producing plausible-looking numbers.

Use :func:`validate_system` after any run::

    violations = validate_system(system)
    assert not violations, "\\n".join(str(v) for v in violations)

The engine's own tests run these checks on every property-test workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from .api import UvmSystem
from .core.batch_record import BatchRecord
from .units import PAGE_SIZE


@dataclass(frozen=True)
class Violation:
    """One failed invariant."""

    rule: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.rule}] {self.detail}"


# --------------------------------------------------------------- system state


def check_residency_consistency(system: UvmSystem) -> List[Violation]:
    """Driver block state and GPU page table must agree exactly."""
    out: List[Violation] = []
    pt = system.engine.device.page_table
    driver = system.engine.driver
    block_pages = set()
    for block in driver.vablocks.blocks():
        for page in block.resident_pages:
            block_pages.add(page)
            if not pt.is_resident(page):
                out.append(
                    Violation(
                        "residency",
                        f"page {page} in block {block.block_id} residency "
                        "but absent from the GPU page table",
                    )
                )
        block_pages.update(block.remote_pages)
    for page in pt.resident:
        if page not in block_pages:
            out.append(
                Violation(
                    "residency",
                    f"page {page} mapped on the GPU but tracked by no VABlock",
                )
            )
    return out


def check_memory_accounting(system: UvmSystem) -> List[Violation]:
    """Chunk usage must equal allocated blocks; capacity must hold."""
    out: List[Violation] = []
    driver = system.engine.driver
    chunks = system.engine.device.chunks
    allocated_blocks = [b for b in driver.vablocks.blocks() if b.is_gpu_allocated]
    if len(allocated_blocks) != chunks.used_chunks:
        out.append(
            Violation(
                "memory",
                f"{len(allocated_blocks)} GPU-allocated blocks vs "
                f"{chunks.used_chunks} used chunks",
            )
        )
    chunk_ids = [b.gpu_chunk for b in allocated_blocks]
    if len(chunk_ids) != len(set(chunk_ids)):
        out.append(Violation("memory", "two blocks share a physical chunk"))
    migrated = driver.vablocks.total_resident_pages()
    capacity = system.config.gpu.memory_bytes // PAGE_SIZE
    if migrated > capacity:
        out.append(
            Violation(
                "memory",
                f"{migrated} resident pages exceed capacity {capacity}",
            )
        )
    return out


def check_fault_conservation(system: UvmSystem) -> List[Violation]:
    """Every pushed fault was fetched, flushed, or still sits in the buffer."""
    out: List[Violation] = []
    buf = system.engine.device.fault_buffer
    fetched = sum(r.num_faults_raw for r in system.records)
    balance = (
        buf.total_pushed
        + buf.total_injected
        - buf.total_flush_dropped
        - buf.total_injector_dropped
        - len(buf)
    )
    if fetched != balance:
        out.append(
            Violation(
                "conservation",
                f"fetched {fetched} != pushed {buf.total_pushed} + injected "
                f"{buf.total_injected} - flushed {buf.total_flush_dropped} - "
                f"injector-dropped {buf.total_injector_dropped} - residual "
                f"{len(buf)}",
            )
        )
    return out


def check_host_state(system: UvmSystem) -> List[Violation]:
    """Host-mapped pages of GPU-resident data only under read-mostly."""
    out: List[Violation] = []
    host_vm = system.engine.host_vm
    driver = system.engine.driver
    for block in driver.vablocks.blocks():
        if block.read_mostly:
            continue
        overlap = host_vm.mapped & block.resident_pages
        if overlap:
            sample = next(iter(overlap))
            out.append(
                Violation(
                    "host-state",
                    f"page {sample} is GPU-resident and host-mapped without "
                    "read-mostly duplication",
                )
            )
    return out


# ------------------------------------------------------------------- sanitizer


def check_sanitizer_report(system: UvmSystem) -> List[Violation]:
    """Fold UVMSan's accumulated report-mode violations into the validation
    output.  Empty when the run had the sanitizer disabled (the common case)
    or when every runtime invariant held."""
    out: List[Violation] = []
    san = system.engine.sanitizer
    for v in san.violations:
        out.append(Violation(f"uvmsan/{v.rule}", v.detail))
    overflow = san.total_violations - len(san.violations)
    if overflow > 0:
        out.append(
            Violation(
                "uvmsan/overflow",
                f"{overflow} further violations beyond the report cap",
            )
        )
    return out


# --------------------------------------------------------------- batch records


def check_records(records: Iterable[BatchRecord]) -> List[Violation]:
    """Per-record and cross-record log sanity."""
    out: List[Violation] = []
    prev_end = None
    for r in records:
        if r.t_end < r.t_start:
            out.append(Violation("timing", f"batch {r.batch_id} ends before it starts"))
        if prev_end is not None and r.t_start < prev_end - 1e-6:
            out.append(
                Violation("timing", f"batch {r.batch_id} overlaps its predecessor")
            )
        prev_end = r.t_end
        if r.num_faults_unique > r.num_faults_raw:
            out.append(
                Violation("counts", f"batch {r.batch_id}: unique exceeds raw faults")
            )
        if r.num_faults_raw > 0 and (
            r.num_faults_unique + r.duplicate_count != r.num_faults_raw
        ):
            out.append(
                Violation(
                    "counts",
                    f"batch {r.batch_id}: unique+dups != raw",
                )
            )
        if r.vablock_fault_counts is not None and r.num_faults_unique:
            if int(r.vablock_fault_counts.sum()) != r.num_faults_unique:
                out.append(
                    Violation(
                        "counts",
                        f"batch {r.batch_id}: per-block fault counts do not "
                        "sum to the unique count",
                    )
                )
        if r.bytes_h2d != r.pages_migrated_h2d * PAGE_SIZE:
            out.append(
                Violation("counts", f"batch {r.batch_id}: bytes/pages mismatch")
            )
    return out


def validate_system(system: UvmSystem, include_records: bool = True) -> List[Violation]:
    """Run every invariant check; returns all violations found."""
    out: List[Violation] = []
    out.extend(check_residency_consistency(system))
    out.extend(check_memory_accounting(system))
    out.extend(check_fault_conservation(system))
    out.extend(check_host_state(system))
    out.extend(check_sanitizer_report(system))
    if include_records:
        out.extend(check_records(system.records))
    return out
