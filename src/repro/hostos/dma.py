"""DMA mapping layer backed by the radix tree.

When a VABlock is first touched by the GPU, the driver must "(1) create DMA
mappings for every page in the VABlock to the GPU, so that the GPU can copy
data between the host and GPU within that region, and (2) create reverse DMA
address mappings and store them in a radix tree" (paper §5.2).  These
batches are compulsory per block and cannot be eliminated by prefetching.

:class:`DmaMapper` performs both steps for a set of pages and reports the
numbers the cost model charges: mappings created, radix nodes allocated, and
slab refills crossed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..errors import DmaMapFault
from .cost_model import CostModel
from .radix_tree import RadixTree


@dataclass(frozen=True)
class DmaMapResult:
    """Accounting from one mapping burst."""

    new_mappings: int
    new_nodes: int
    slab_refills: int
    cost_usec: float


class DmaMapper:
    """Creates per-page DMA mappings with reverse lookups in a radix tree."""

    #: Fake IOMMU base so DMA addresses are distinguishable from page ids.
    DMA_BASE = 1 << 40

    def __init__(self, cost_model: CostModel) -> None:
        self.cost_model = cost_model
        self.reverse = RadixTree()
        self.total_mappings = 0
        self._slab_refills_done = 0
        #: Attached fault injector, or None (the common, zero-cost case).
        self._inj = None
        #: Injected transient mapping failures (chaos testing only).
        self.failed_maps = 0

    def attach_injector(self, injector) -> None:
        """Enable the ``dma.map_fail`` injection site on this mapper."""
        self._inj = injector

    def dma_address_of(self, page: int) -> int:
        """Deterministic DMA address assigned to ``page``."""
        return self.DMA_BASE + (page << 12)

    def is_mapped(self, page: int) -> bool:
        return page in self.reverse

    def map_pages(self, pages: Iterable[int]) -> DmaMapResult:
        """Create mappings for every not-yet-mapped page in ``pages``.

        Under chaos testing the whole burst may fail transiently
        (:class:`repro.errors.DmaMapFault`, the IOMMU/IOVA-exhaustion
        model).  The failure fires *before* the radix tree is touched, so a
        retried call sees untouched state.
        """
        pages = list(pages)
        if self._inj is not None and self._inj.fire("dma.map_fail"):
            self.failed_maps += 1
            raise DmaMapFault(len(pages))
        nodes_before = self.reverse.nodes_allocated
        new_mappings = 0
        for page in pages:
            if self.reverse.insert(page, self.dma_address_of(page)):
                new_mappings += 1
        new_nodes = self.reverse.nodes_allocated - nodes_before
        slab_refills = self._consume_slab(new_nodes)
        cost = self.cost_model.dma_cost(new_mappings, new_nodes, slab_refills)
        self.total_mappings += new_mappings
        return DmaMapResult(new_mappings, new_nodes, slab_refills, cost)

    def unmap_pages(self, pages: Iterable[int]) -> int:
        """Destroy mappings (teardown path); returns mappings removed."""
        removed = 0
        for page in pages:
            if self.reverse.delete(page) is not None:
                removed += 1
        self.total_mappings -= removed
        return removed

    def _consume_slab(self, new_nodes: int) -> int:
        """Number of slab refills crossed by allocating ``new_nodes``."""
        if new_nodes <= 0:
            return 0
        slab = self.cost_model.radix_slab_size
        before = self.reverse.nodes_allocated - new_nodes
        return (self.reverse.nodes_allocated // slab) - (before // slab)
