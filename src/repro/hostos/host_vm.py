"""Host virtual-memory state for managed pages.

UVM is "built on top of the existing virtual memory system in the Linux
kernel" (paper §4.4): when the GPU touches a VABlock that is partially
resident on the CPU, the driver calls ``unmap_mapping_range()`` to unmap all
host-resident pages of that block on the fault path — the single most
surprising cost the paper identifies.

Per managed page we track:

* ``mapped`` — a host PTE exists (the CPU has touched the page since
  allocation, or re-touched it after migration).  Only mapped pages incur
  unmap cost; this is what creates the Fig 13 "levels": a block that was
  evicted from the GPU is *not* remapped on the host unless the CPU accesses
  it, so paging it back in skips the unmap cost.
* ``valid`` — the host copy of the page holds current data (set by CPU
  writes and by evictions; cleared when the GPU takes ownership by writing).
* ``touch_thread`` — the CPU thread that first touched the page, which
  determines TLB-shootdown spread during unmapping (Fig 11).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Set, Tuple


@dataclass(frozen=True)
class UnmapStats:
    """What one ``unmap_mapping_range()`` call had to do."""

    pages_unmapped: int
    distinct_threads: int


class HostVm:
    """Host-side page state table."""

    def __init__(self) -> None:
        self.mapped: Set[int] = set()
        self.valid: Set[int] = set()
        self.touch_thread: Dict[int, int] = {}
        self.total_unmap_calls = 0
        self.total_pages_unmapped = 0

    # ------------------------------------------------------------ CPU side

    def cpu_touch(self, pages: Iterable[int], thread_of) -> int:
        """CPU accesses ``pages``; ``thread_of(page) -> thread id``.

        Marks pages mapped and valid, recording the first-touch thread.
        Returns the number of pages newly mapped.
        """
        newly = 0
        for page in pages:
            if page not in self.mapped:
                newly += 1
                self.mapped.add(page)
                self.touch_thread[page] = thread_of(page)
            self.valid.add(page)
        return newly

    # --------------------------------------------------------- driver side

    def mapped_pages_of(self, pages: Iterable[int]) -> Set[int]:
        return self.mapped.intersection(pages)

    def unmap_range(self, pages: Iterable[int]) -> UnmapStats:
        """unmap_mapping_range() over a VABlock's pages.

        Clears host mappings (data validity is unaffected; migration is a
        separate copy) and reports the distinct first-touch threads whose
        cores need TLB shootdowns.
        """
        victims = self.mapped.intersection(pages)
        threads = {self.touch_thread[p] for p in victims if p in self.touch_thread}
        self.mapped.difference_update(victims)
        self.total_unmap_calls += 1
        self.total_pages_unmapped += len(victims)
        return UnmapStats(pages_unmapped=len(victims), distinct_threads=len(threads))

    def mark_valid(self, pages: Iterable[int]) -> None:
        """Host copy became current (eviction landed data back on host)."""
        self.valid.update(pages)

    def invalidate(self, pages: Iterable[int]) -> None:
        """Host copy went stale (GPU gained write ownership)."""
        self.valid.difference_update(pages)

    def has_valid_data(self, page: int) -> bool:
        return page in self.valid
