"""Calibrated microsecond cost model for every fault-path operation.

Every simulated cost lives here, in one documented place, so experiments can
override any constant via ``SystemConfig.cost_overrides`` and ablations can
reason about exactly one knob at a time.

Calibration targets (the paper's *measured shapes*, not absolute numbers):

* **Transfer is a minority cost** — Fig 7: data transfer is at most ~25 % of
  batch time and typically far lower.  Per 4 KiB page, management costs
  (fetch + preprocess + page-table + population + DMA map + amortized unmap)
  sum to several times the ~0.33 µs wire time.
* **Host OS costs dominate first-touch batches** — §4.4/§5.2:
  ``unmap_mapping_range()`` bursts and VABlock DMA-state initialization are
  the largest single components when they occur.
* **Multithreaded first-touch inflates unmapping** — Fig 11: pages mapped by
  many CPU threads require cross-core TLB shootdowns; HPGMG with default
  OpenMP threading is ~2× slower end-to-end than single-threaded.
* **Radix-tree growth causes intermittent spikes** — Fig 14/15: node
  allocations hit a slab-refill slow path periodically.
* **Fault arrival is fast** — Fig 4: faults from a warp arrive within
  fractions of a µs of each other; batch servicing dwarfs generation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..units import GB


@dataclass
class CostModel:
    """All simulated cost constants (µs unless noted)."""

    # ------------------------------------------------------------ driver path
    #: Worker-thread wakeup after an interrupt when it was sleeping (§2.2).
    interrupt_wake_usec: float = 15.0
    #: Fixed cost of starting a fault-buffer fetch: worker dispatch, fault
    #: buffer GET/PUT pointer MMIO reads over the interconnect, VA-space
    #: lock acquisition.
    fetch_base_usec: float = 10.0
    #: Per-fault cost of reading entries out of the GPU fault buffer.
    #: Entries are read in bulk (cache-line-sized MMIO bursts), so the
    #: amortized per-entry cost is small — which is why accepting extra
    #: duplicates in a large batch beats paying another batch's fixed
    #: overhead (§4.2 / Fig 9).
    fetch_per_fault_usec: float = 0.08
    #: Fixed cost of batch preprocessing (sort by address, dedup pass).
    preprocess_base_usec: float = 2.0
    #: Per-fault preprocessing cost.
    preprocess_per_fault_usec: float = 0.02
    #: Per-unique-faulted-page servicing cost: VMA/policy lookup, residency
    #: decision, per-page service bookkeeping (uvm_va_block_service paths).
    #: Pages added by the prefetcher ride along in the block's bulk
    #: operations and skip this — a large part of why prefetching's
    #: batch-elimination wins ~3× end-to-end (Table 4).
    fault_service_per_page_usec: float = 2.0
    #: Per-batch per-VABlock lookup/lock cost (each block in a batch is a
    #: distinct processing step, §2.2: range-tree lookup, block lock, state
    #: machine entry).
    vablock_base_usec: float = 8.0
    #: Pushing the fault replay onto the GPU command push-buffer and waiting
    #: for its fence: a full driver→GPU round trip per batch (§2.1).
    replay_usec: float = 25.0

    # ------------------------------------------------------- memory management
    #: Allocating a 2 MiB physical chunk from the resource manager.
    chunk_alloc_usec: float = 5.0
    #: Zero-filling one newly-allocated GPU page ("page population", §5.1).
    population_per_page_usec: float = 0.15
    #: GPU page-table update per page (map or unmap).
    pagetable_per_page_usec: float = 0.08
    #: Per-page migration staging (driver-side pinning, staging-buffer and
    #: tracking-metadata work before the copy engine runs).  Calibrated so
    #: wire time stays ≤ ~25 % of batch time even for pure-transfer batches
    #: (Fig 7: "at most approximately 25% ... typically far lower").
    migration_prep_per_page_usec: float = 0.6
    #: Failed allocation + block-migration restart overhead on eviction (§5.1).
    evict_restart_usec: float = 15.0
    #: Prefetcher bitmap/tree examination per 64 KiB region (§5.2).
    prefetch_decision_per_region_usec: float = 0.10

    # ---------------------------------------------------------------- host OS
    #: Base cost of one unmap_mapping_range() call on a VABlock (§4.4).
    unmap_base_usec: float = 12.0
    #: Per-CPU-mapped-page unmap cost (PTE clear + local TLB invalidate).
    unmap_per_page_usec: float = 0.12
    #: Extra inflation per additional distinct first-touch thread: remote
    #: cores require IPI-based TLB shootdowns (Fig 11).
    unmap_thread_inflation: float = 0.6
    #: Cap on the counted distinct threads (shootdown batching saturates).
    unmap_thread_cap: int = 32
    #: Creating one DMA mapping (IOMMU/page pinning) per page (§5.2).
    dma_map_per_page_usec: float = 0.40
    #: Inserting one reverse mapping into the kernel radix tree.
    radix_insert_usec: float = 0.05
    #: Allocating one radix-tree node from the slab cache.
    radix_node_alloc_usec: float = 0.90
    #: Every ``radix_slab_size``-th node allocation refills the slab from the
    #: page allocator — the intermittent spike of Fig 14/15.
    radix_slab_size: int = 64
    #: Cost of one slab refill (slow path).
    radix_slab_refill_usec: float = 35.0

    # ------------------------------------------------------------ interconnect
    #: Host↔device bandwidth (PCIe 3.0 x16 effective, ~12 GB/s).
    link_bandwidth_bytes_per_sec: float = 12.0 * GB
    #: Per-copy-engine-operation setup latency.
    transfer_latency_usec: float = 4.0
    #: Device↔device peer bandwidth for multi-GPU migration (PCIe P2P on
    #: the paper's platform; set ~40-50 GB/s to model NVLink instead).
    peer_bandwidth_bytes_per_sec: float = 10.0 * GB
    #: Per-peer-copy setup latency.
    peer_latency_usec: float = 5.0

    # ------------------------------------------------------------- GPU timing
    #: Spacing between consecutive fault insertions into the buffer (Fig 4:
    #: "faults from the same warp happen in rapid succession").
    fault_arrival_interval_usec: float = 0.15
    #: Replay-to-refault latency (µTLB replays the miss, GMMU re-delivers).
    refault_latency_usec: float = 2.0
    #: Effective parallelism divisor for per-SM compute backlog: warps on an
    #: SM overlap, so backlog drains faster than serially.
    gpu_compute_parallelism: float = 8.0
    #: Launch skew between successive thread blocks dispatched to one SM:
    #: blocks do not start in perfect lockstep on real hardware, which
    #: staggers their first fault bursts (one reason application batches sit
    #: below the Table 2 ceiling).
    launch_stagger_usec: float = 1.5

    # ----------------------------------------------------------------- jitter
    #: Multiplicative jitter applied to batch-level costs (deterministic via
    #: the seeded RNG); models scheduling noise without losing reproducibility.
    jitter_frac: float = 0.05

    # ------------------------------------------------------------ composites

    @property
    def link_bandwidth_bytes_per_usec(self) -> float:
        return self.link_bandwidth_bytes_per_sec / 1e6

    @property
    def peer_bandwidth_bytes_per_usec(self) -> float:
        return self.peer_bandwidth_bytes_per_sec / 1e6

    def fetch_cost(self, num_faults: int) -> float:
        return self.fetch_base_usec + num_faults * self.fetch_per_fault_usec

    def preprocess_cost(self, num_faults: int) -> float:
        return self.preprocess_base_usec + num_faults * self.preprocess_per_fault_usec

    def population_cost(self, num_pages: int) -> float:
        return num_pages * self.population_per_page_usec

    def pagetable_cost(self, num_pages: int) -> float:
        return num_pages * self.pagetable_per_page_usec

    def prefetch_decision_cost(self, num_regions: int) -> float:
        return num_regions * self.prefetch_decision_per_region_usec

    def unmap_cost(self, num_mapped_pages: int, distinct_threads: int) -> float:
        """One unmap_mapping_range() call over a VABlock (§4.4).

        ``distinct_threads`` is the number of distinct CPU threads that
        first-touched the block's mapped pages; more threads spread the PTEs'
        TLB entries across more cores, inflating shootdown cost (Fig 11).
        """
        if num_mapped_pages <= 0:
            return 0.0
        k = min(max(distinct_threads, 1), self.unmap_thread_cap)
        inflation = 1.0 + self.unmap_thread_inflation * (k - 1)
        return self.unmap_base_usec + num_mapped_pages * self.unmap_per_page_usec * inflation

    def dma_cost(self, num_mappings: int, new_nodes: int, slab_refills: int) -> float:
        """VABlock DMA-state initialization (§5.2): per-page mapping creation
        plus radix-tree insertion with node allocations and slab refills."""
        return (
            num_mappings * (self.dma_map_per_page_usec + self.radix_insert_usec)
            + new_nodes * self.radix_node_alloc_usec
            + slab_refills * self.radix_slab_refill_usec
        )

    def jitter(self, rng: Optional[np.random.Generator], base: float) -> float:
        """Apply deterministic multiplicative jitter to ``base`` µs."""
        if rng is None or self.jitter_frac <= 0.0 or base <= 0.0:
            return base
        factor = 1.0 + self.jitter_frac * float(rng.standard_normal())
        return base * max(0.1, factor)

    def apply_overrides(self, overrides: dict) -> "CostModel":
        """Return self after assigning ``{field: value}`` overrides."""
        for key, value in overrides.items():
            if not hasattr(self, key):
                raise AttributeError(f"unknown CostModel field {key!r}")
            setattr(self, key, value)
        return self
