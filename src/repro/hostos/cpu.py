"""Host CPU threading model: first-touch page→thread assignment.

Figure 11 of the paper shows that *how an application parallelizes its host
code* changes GPU fault performance: HPGMG initialized with one OpenMP
thread runs ~2× faster than with one thread per logical core, because
multithreaded first-touch spreads a VABlock's PTEs across many cores and
``unmap_mapping_range()`` must shoot down TLBs on all of them.

:func:`static_first_touch` reproduces OpenMP's default ``schedule(static)``
loop partitioning: a contiguous index range is split into ``num_threads``
equal chunks, so pages land on threads in large contiguous spans — but a
2 MiB VABlock still straddles several spans once arrays are larger than
``num_threads`` blocks.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..config import HostConfig


def static_first_touch(num_pages: int, num_threads: int) -> Callable[[int], int]:
    """Thread-of-page function for OpenMP static scheduling over a range.

    ``page`` arguments are *offsets within the allocation* (0-based).

    >>> f = static_first_touch(8, 2)
    >>> [f(i) for i in range(8)]
    [0, 0, 0, 0, 1, 1, 1, 1]
    """
    if num_threads <= 1 or num_pages <= 0:
        return lambda page: 0
    chunk = max(1, (num_pages + num_threads - 1) // num_threads)
    return lambda page: min(page // chunk, num_threads - 1)


def interleaved_first_touch(num_threads: int, granularity: int = 1) -> Callable[[int], int]:
    """Round-robin page→thread mapping (models ``schedule(static, chunk)``
    with a small chunk — the worst case for unmap shootdown spread)."""
    if num_threads <= 1:
        return lambda page: 0
    return lambda page: (page // max(1, granularity)) % num_threads


class HostCpu:
    """Host CPU configuration plus helpers to run touch phases."""

    def __init__(self, config: HostConfig) -> None:
        config.validate()
        self.config = config

    @property
    def num_threads(self) -> int:
        return self.config.num_threads

    def first_touch_fn(
        self,
        num_pages: int,
        interleaved: bool = False,
        granularity: int = 1,
    ) -> Callable[[int], int]:
        """Page→thread function for a parallel init over ``num_pages``."""
        if interleaved:
            return interleaved_first_touch(self.num_threads, granularity)
        return static_first_touch(num_pages, self.num_threads)

    def touch_cost_usec(self, num_pages: int, per_page_usec: float = 0.05) -> float:
        """Wall time of the host touch itself (parallelized across threads).

        Small relative to fault servicing; included so host phases advance
        the clock realistically.
        """
        if num_pages <= 0:
            return 0.0
        return num_pages * per_page_usec / self.num_threads
