"""Platform presets: interconnect/host variants as cost-model overrides.

The paper's testbed is x86 + PCIe 3.0 (§3.1); its related work compares
Power9 + NVLink systems (Gayatri et al. [16], Knap et al. [22]) and §6
argues that "improvements to basic hardware, such as interconnect bandwidth
and latency, would still improve performance but would not resolve the
underlying issues".  These presets make that comparison one line::

    cfg = default_config()
    cfg.cost_overrides = PLATFORM_PRESETS["power9-nvlink2"]

Each preset is a plain dict of :class:`~repro.hostos.cost_model.CostModel`
field overrides, so presets compose with further experiment-specific
overrides by dict union.
"""

from __future__ import annotations

from typing import Dict

from ..units import GB

#: The paper's testbed: AMD Epyc + Titan V over PCIe 3.0 x16.
X86_PCIE3: Dict[str, float] = {}

#: PCIe 4.0 x16: double the link bandwidth, slightly lower latency.
X86_PCIE4: Dict[str, float] = {
    "link_bandwidth_bytes_per_sec": 24.0 * GB,
    "transfer_latency_usec": 3.0,
    "peer_bandwidth_bytes_per_sec": 20.0 * GB,
}

#: Power9 + NVLink 2.0 (Summit-class): ~3-4x PCIe 3 bandwidth and much
#: lower per-transfer latency; host unmap costs stay (they are host-OS
#: work, the point of §4.4).
POWER9_NVLINK2: Dict[str, float] = {
    "link_bandwidth_bytes_per_sec": 45.0 * GB,
    "transfer_latency_usec": 1.5,
    "peer_bandwidth_bytes_per_sec": 45.0 * GB,
    "peer_latency_usec": 2.0,
}

#: A hypothetical "free wire": near-infinite bandwidth, zero setup — the
#: §6 thought experiment isolating how much of UVM's cost hardware could
#: ever remove.
IDEAL_INTERCONNECT: Dict[str, float] = {
    "link_bandwidth_bytes_per_sec": 10_000.0 * GB,
    "transfer_latency_usec": 0.0,
    "peer_bandwidth_bytes_per_sec": 10_000.0 * GB,
    "peer_latency_usec": 0.0,
}

PLATFORM_PRESETS: Dict[str, Dict[str, float]] = {
    "x86-pcie3": X86_PCIE3,
    "x86-pcie4": X86_PCIE4,
    "power9-nvlink2": POWER9_NVLINK2,
    "ideal-interconnect": IDEAL_INTERCONNECT,
}
