"""A Linux-kernel-style radix tree.

The UVM driver stores reverse DMA address mappings "in a radix tree data
structure implemented in the mainline Linux kernel" (paper §5.2), and inline
timing in the paper attributes the majority of high-cost DMA batches to this
structure.  We implement the real thing — 6-bit fanout (64 slots per node),
height growth on demand — and surface *node allocation counts* so the cost
model can charge slab allocations and periodic slab refills exactly where
the kernel would.

Keys are non-negative integers (page indexes); values are arbitrary (DMA
addresses in our use).
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

#: Linux RADIX_TREE_MAP_SHIFT default.
MAP_SHIFT = 6
MAP_SIZE = 1 << MAP_SHIFT  # 64
MAP_MASK = MAP_SIZE - 1


class _Node:
    __slots__ = ("slots", "count")

    def __init__(self) -> None:
        self.slots: List[Any] = [None] * MAP_SIZE
        self.count = 0


class RadixTree:
    """Path-growing radix tree with allocation accounting.

    >>> t = RadixTree()
    >>> t.insert(5, "x")
    True
    >>> t.lookup(5)
    'x'
    >>> t.lookup(6) is None
    True
    """

    def __init__(self) -> None:
        self._root: Optional[_Node] = None
        self._height = 0  # levels below root; 0 = empty tree
        self._size = 0
        #: Total nodes ever allocated (drives the slab cost model).
        self.nodes_allocated = 0
        #: Nodes currently live.
        self.nodes_live = 0

    # ----------------------------------------------------------------- stats

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        return self._height

    def _alloc_node(self) -> _Node:
        self.nodes_allocated += 1
        self.nodes_live += 1
        return _Node()

    def _free_node(self, node: _Node) -> None:
        self.nodes_live -= 1

    # ------------------------------------------------------------------- ops

    def _max_key(self) -> int:
        """Largest key representable at the current height."""
        if self._height == 0:
            return -1
        return (1 << (MAP_SHIFT * self._height)) - 1

    def insert(self, key: int, value: Any) -> bool:
        """Insert ``key`` → ``value``; False if the key already existed
        (value is replaced either way)."""
        if key < 0:
            raise ValueError("radix tree keys must be non-negative")
        if value is None:
            raise ValueError("radix tree cannot store None")
        if self._root is None:
            # Fresh tree: allocate a root already tall enough for the key
            # (wrapping an empty root would leak a dangling node).
            height = 1
            while key > (1 << (MAP_SHIFT * height)) - 1:
                height += 1
            self._root = self._alloc_node()
            self._height = height
        # Grow the tree until the key fits (a live root is never empty).
        while key > self._max_key():
            new_root = self._alloc_node()
            new_root.slots[0] = self._root
            new_root.count = 1
            self._root = new_root
            self._height += 1
        node = self._root
        shift = MAP_SHIFT * (self._height - 1)
        while shift > 0:
            idx = (key >> shift) & MAP_MASK
            child = node.slots[idx]
            if child is None:
                child = self._alloc_node()
                node.slots[idx] = child
                node.count += 1
            node = child
            shift -= MAP_SHIFT
        idx = key & MAP_MASK
        existed = node.slots[idx] is not None
        if not existed:
            node.count += 1
            self._size += 1
        node.slots[idx] = value
        return not existed

    def lookup(self, key: int) -> Any:
        """Value stored at ``key`` or None."""
        if key < 0:
            raise ValueError("radix tree keys must be non-negative")
        if self._root is None or key > self._max_key():
            return None
        node = self._root
        shift = MAP_SHIFT * (self._height - 1)
        while shift > 0:
            node = node.slots[(key >> shift) & MAP_MASK]
            if node is None:
                return None
            shift -= MAP_SHIFT
        return node.slots[key & MAP_MASK]

    def __contains__(self, key: int) -> bool:
        return self.lookup(key) is not None

    def delete(self, key: int) -> Any:
        """Remove ``key``; returns the old value or None.  Frees nodes whose
        last slot empties (as the kernel's does on the shrink path)."""
        if key < 0 or self._root is None or key > self._max_key():
            return None
        path: List[Tuple[_Node, int]] = []
        node = self._root
        shift = MAP_SHIFT * (self._height - 1)
        while shift > 0:
            idx = (key >> shift) & MAP_MASK
            child = node.slots[idx]
            if child is None:
                return None
            path.append((node, idx))
            node = child
            shift -= MAP_SHIFT
        idx = key & MAP_MASK
        value = node.slots[idx]
        if value is None:
            return None
        node.slots[idx] = None
        node.count -= 1
        self._size -= 1
        # Free emptied nodes bottom-up.
        child = node
        while child.count == 0 and path:
            parent, pidx = path.pop()
            parent.slots[pidx] = None
            parent.count -= 1
            self._free_node(child)
            child = parent
        if child.count == 0 and child is self._root:
            self._free_node(child)
            self._root = None
            self._height = 0
        return value

    def items(self) -> Iterator[Tuple[int, Any]]:
        """Iterate ``(key, value)`` pairs in ascending key order."""
        if self._root is None:
            return
        yield from self._walk(self._root, self._height - 1, 0)

    def _walk(self, node: _Node, level: int, prefix: int) -> Iterator[Tuple[int, Any]]:
        for idx in range(MAP_SIZE):
            slot = node.slots[idx]
            if slot is None:
                continue
            key = (prefix << MAP_SHIFT) | idx
            if level == 0:
                yield key, slot
            else:
                yield from self._walk(slot, level - 1, key)
