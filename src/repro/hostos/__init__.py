"""Host OS substrate: virtual memory, DMA mapping, and the cost model.

Models the Linux-kernel components the UVM driver depends on (paper §2.1,
§4.4, §5.2): the host virtual-memory system whose ``unmap_mapping_range()``
sits on the fault path, the DMA API whose reverse mappings live in a radix
tree, and the calibrated microsecond cost model for every fault-path
operation.
"""

from .cost_model import CostModel
from .radix_tree import RadixTree
from .dma import DmaMapper
from .host_vm import HostVm
from .cpu import HostCpu, static_first_touch
from .platforms import PLATFORM_PRESETS

__all__ = [
    "CostModel",
    "RadixTree",
    "DmaMapper",
    "HostVm",
    "HostCpu",
    "static_first_touch",
    "PLATFORM_PRESETS",
]
