"""uvm-repro: a reproduction of "In-Depth Analyses of Unified Virtual Memory
System for GPU Accelerated Computing" (Allen & Ge, SC '21).

The package simulates the full UVM stack — GPU fault generation hardware,
the nvidia-uvm driver's batch servicing path, and the host-OS components on
the fault path — with per-batch instrumentation equivalent to the paper's
modified driver, plus the workloads, analyses, and benchmarks that
regenerate every table and figure in the paper's evaluation.

Quick start::

    from repro import UvmSystem, default_config
    from repro.workloads import StreamTriad

    system = UvmSystem(default_config())
    result = StreamTriad(nbytes=8 << 20).run(system)
    print(result.num_batches, result.batch_time_usec)
"""

from .api import ManagedAllocation, RunResult, UvmSystem
from .config import (
    DriverConfig,
    GpuConfig,
    HostConfig,
    InjectConfig,
    SystemConfig,
    default_config,
)
from .core.batch_record import BatchRecord
from .core.instrumentation import BatchLog
from .gpu.warp import KernelLaunch, Phase, WarpProgram
from .sim.checkpoint import EngineCheckpoint
from .sim.engine import LaunchResult

__version__ = "1.0.0"

__all__ = [
    "UvmSystem",
    "ManagedAllocation",
    "RunResult",
    "LaunchResult",
    "SystemConfig",
    "GpuConfig",
    "DriverConfig",
    "HostConfig",
    "InjectConfig",
    "default_config",
    "EngineCheckpoint",
    "BatchRecord",
    "BatchLog",
    "KernelLaunch",
    "Phase",
    "WarpProgram",
    "__version__",
]
