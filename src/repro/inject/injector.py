"""The fault injector: seeded per-site Bernoulli draws over a site catalogue.

Each site models one documented failure mode of the UVM stack:

``fault_buffer.overflow``
    An incoming fault is dropped as if the hardware buffer were full — the
    paper's footnote-1 drop-and-reissue path — regardless of actual
    occupancy (forced overflow storm).
``fault_buffer.duplicate``
    The GMMU writes a spurious duplicate entry for an accepted fault,
    inflating the batch's duplicate count (§4.3's duplicate sources).
``utlb.stall``
    A µTLB issue port stalls for one replay window: its SM issues no
    translation faults this round.
``utlb.early_cancel``
    An outstanding µTLB entry is cancelled before replay; later misses on
    that page re-request a fresh entry (extra pressure on the 56-entry cap).
``ce.transfer_fault``
    A copy-engine burst aborts mid-flight; time is wasted, no bytes move,
    and the driver retries with backoff.
``ce.brownout``
    The burst completes but the interconnect browns out: wire time is
    multiplied by the site's ``factor``.
``ce.stuck``
    The burst hangs past the driver's per-phase deadline; the driver
    charges the deadline and fails over to the sibling copy engine.
``dma.map_fail``
    ``dma_map_pages`` fails transiently before touching the radix tree;
    the driver retries with backoff, then degrades (defers the VABlock).
``host.populate_enomem``
    Host page population hits ENOMEM; the driver applies eviction pressure
    and retries (the oversubscription reclaim path of §5.1).
``engine.crash``
    A simulated whole-process crash at a batch boundary (``at_batch``);
    recovered from the engine's latest checkpoint when
    ``InjectConfig.crash_recovery`` is on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..sim.rng import spawn_rng

#: Every site the injector knows how to fire, in catalogue order.
INJECTION_SITES: Tuple[str, ...] = (
    "fault_buffer.overflow",
    "fault_buffer.duplicate",
    "utlb.stall",
    "utlb.early_cancel",
    "ce.transfer_fault",
    "ce.brownout",
    "ce.stuck",
    "dma.map_fail",
    "host.populate_enomem",
    "engine.crash",
)

#: Sites where a permanent (rate = 1) failure would livelock the engine:
#: every fault dropped / no fault ever issued means replay can never drain.
_LIVELOCK_SITES = ("fault_buffer.overflow", "utlb.stall")


@dataclass(frozen=True)
class SiteSpec:
    """Resolved parameters for one injection site."""

    #: Probability of firing per opportunity (per push / burst / map call).
    rate: float = 0.0
    #: Brownout multiplier on the burst's wire time (``ce.brownout``).
    factor: float = 1.0
    #: Fraction of the burst cost wasted before an injected abort
    #: (``ce.transfer_fault``).
    waste_frac: float = 0.5
    #: Batch boundary at which ``engine.crash`` fires (one-shot).
    at_batch: Optional[int] = None


class FaultInjector:
    """Deterministic, seeded fault injector.

    One lazily-spawned RNG stream per site (``"inject:" + site`` under the
    system seed) makes the per-site schedule a pure function of (seed,
    profile, opportunity sequence).  Counters and a bounded (clock, site)
    event log feed the chaos report and the schedule-determinism property
    tests.
    """

    enabled = True

    def __init__(self, config, seed: int, clock, obs=None) -> None:
        from .profiles import resolve_profile

        self.config = config
        self.seed = seed
        self.clock = clock
        self.sites: Dict[str, SiteSpec] = resolve_profile(config)
        self._rngs: Dict[str, object] = {}
        #: Per-site draw counts (every chance the site had to fire).
        self.opportunities: Dict[str, int] = {}
        #: Per-site injected-event counts.
        self.fired: Dict[str, int] = {}
        #: Bounded (clock_usec, site) schedule of injected events.
        self.events: List[Tuple[float, str]] = []
        #: One-shot crash bookkeeping.  Deliberately *outside* checkpoint
        #: state: a crash that already fired must not refire after restore.
        self.crashes_fired = 0
        self.recoveries = 0
        self._max_events = config.max_events
        self._m_injected = None
        self._m_recoveries = None
        if obs is not None:
            metrics = obs.metrics
            self._m_injected = metrics.counter(
                "uvm_injected_total", "Injected faults by site", labels=("site",)
            )
            self._m_recoveries = metrics.counter(
                "uvm_crash_recoveries_total",
                "Injected crashes recovered from a checkpoint",
            )

    # ------------------------------------------------------------- firing

    def active(self, site: str) -> bool:
        """Whether the profile configures ``site`` at all."""
        return site in self.sites

    def _rng_for(self, site: str):
        rng = self._rngs.get(site)
        if rng is None:
            rng = self._rngs[site] = spawn_rng(self.seed, "inject:" + site)
        return rng

    def fire(self, site: str) -> bool:
        """One Bernoulli draw for ``site``; True ⇒ the failure happens now.

        Sites absent from the profile never draw, so enabling one site
        cannot shift another site's schedule.
        """
        spec = self.sites.get(site)
        if spec is None or spec.rate <= 0.0:
            return False
        self.opportunities[site] = self.opportunities.get(site, 0) + 1
        if float(self._rng_for(site).random()) >= spec.rate:
            return False
        self._record(site)
        return True

    def _record(self, site: str) -> None:
        self.fired[site] = self.fired.get(site, 0) + 1
        if len(self.events) < self._max_events:
            self.events.append((self.clock.now, site))
        if self._m_injected is not None:
            self._m_injected.labels(site).inc()

    def factor(self, site: str) -> float:
        spec = self.sites.get(site)
        return spec.factor if spec is not None else 1.0

    def waste_frac(self, site: str) -> float:
        spec = self.sites.get(site)
        return spec.waste_frac if spec is not None else 0.5

    # -------------------------------------------------------------- crash

    def crash_due(self, batch_id: int) -> bool:
        """Whether the one-shot ``engine.crash`` site fires at this batch."""
        spec = self.sites.get("engine.crash")
        return (
            spec is not None
            and spec.at_batch is not None
            and self.crashes_fired == 0
            and batch_id >= spec.at_batch
        )

    def record_crash(self) -> None:
        self.crashes_fired += 1
        self._record("engine.crash")

    def record_recovery(self) -> None:
        self.recoveries += 1
        if self._m_recoveries is not None:
            self._m_recoveries.inc()

    # --------------------------------------------------- checkpoint support

    def snapshot(self) -> dict:
        """Checkpointable state: RNG streams, counters, event-log length.

        ``crashes_fired``/``recoveries`` are excluded on purpose (see
        ``__init__``).
        """
        return {
            "rng_states": {
                site: self._rngs[site].bit_generator.state
                for site in sorted(self._rngs)
            },
            "opportunities": dict(self.opportunities),
            "fired": dict(self.fired),
            "num_events": len(self.events),
        }

    def restore_state(self, snap: dict) -> None:
        for site in sorted(snap["rng_states"]):
            self._rng_for(site).bit_generator.state = snap["rng_states"][site]
        self.opportunities = dict(snap["opportunities"])
        self.fired = dict(snap["fired"])
        del self.events[snap["num_events"]:]

    # -------------------------------------------------------------- report

    def summary(self) -> dict:
        return {
            "enabled": True,
            "profile": self.config.profile,
            "sites": {
                site: {
                    "rate": self.sites[site].rate,
                    "opportunities": self.opportunities.get(site, 0),
                    "fired": self.fired.get(site, 0),
                }
                for site in sorted(self.sites)
            },
            "fired_total": sum(self.fired[site] for site in sorted(self.fired)),
            "crashes": self.crashes_fired,
            "recoveries": self.recoveries,
        }


class NullInjector:
    """No-op injector installed when :class:`InjectConfig` is disabled.

    Mirrors UVMSan's ``NullSanitizer``: components never hold a reference
    to it (they guard on ``_inj is not None``), so the disabled hot path is
    byte-identical to a build without the inject layer.
    """

    enabled = False
    crashes_fired = 0
    recoveries = 0
    events: Tuple[Tuple[float, str], ...] = ()

    def active(self, site: str) -> bool:
        return False

    def fire(self, site: str) -> bool:
        return False

    def factor(self, site: str) -> float:
        return 1.0

    def waste_frac(self, site: str) -> float:
        return 0.5

    def crash_due(self, batch_id: int) -> bool:
        return False

    def record_crash(self) -> None:  # pragma: no cover - never reached
        raise AssertionError("null injector cannot crash")

    def record_recovery(self) -> None:  # pragma: no cover - never reached
        raise AssertionError("null injector cannot recover")

    def snapshot(self) -> None:
        return None

    def restore_state(self, snap) -> None:
        pass

    def summary(self) -> dict:
        return {
            "enabled": False,
            "profile": None,
            "sites": {},
            "fired_total": 0,
            "crashes": 0,
            "recoveries": 0,
        }


#: Shared null instance (stateless, safe to share across engines).
NULL_INJECTOR = NullInjector()


def make_injector(config, seed: int, clock, obs=None):
    """Injector for ``config``: real when enabled, the shared null otherwise."""
    if not config.enabled:
        return NULL_INJECTOR
    return FaultInjector(config, seed, clock, obs)
