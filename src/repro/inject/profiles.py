"""Chaos profiles: named site tables and JSON profile loading.

A profile is a mapping from injection-site name to its parameter dict.
Built-in profiles cover each failure family; ``examples/chaos/*.json``
bundles the same shapes as files (the format a deployment would check in
next to its workloads):

.. code-block:: json

    {
      "name": "flaky-interconnect",
      "description": "transient CE aborts + brownouts + a rare stuck engine",
      "sites": {
        "ce.transfer_fault": {"rate": 0.05, "waste_frac": 0.5},
        "ce.brownout": {"rate": 0.15, "factor": 3.0},
        "ce.stuck": {"rate": 0.01}
      }
    }

Resolution order: builtin-or-file profile first, then
``InjectConfig.sites`` merged over it (inline overrides win per site).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict

from ..errors import ConfigError
from .injector import _LIVELOCK_SITES, INJECTION_SITES, SiteSpec

#: Named profiles bundled with the package.  Rates are calibrated so every
#: tier-1 workload completes with bounded retries: transient-failure rates
#: stay far below ``retry_max_attempts`` consecutive-failure territory, and
#: livelock-capable sites (overflow, stall) stay well under 1.0.
BUILTIN_PROFILES: Dict[str, Dict[str, dict]] = {
    "overflow-storm": {
        "fault_buffer.overflow": {"rate": 0.35},
        "fault_buffer.duplicate": {"rate": 0.20},
    },
    "utlb-churn": {
        "utlb.stall": {"rate": 0.25},
        "utlb.early_cancel": {"rate": 0.15},
    },
    "flaky-interconnect": {
        "ce.transfer_fault": {"rate": 0.05, "waste_frac": 0.5},
        "ce.brownout": {"rate": 0.15, "factor": 3.0},
        "ce.stuck": {"rate": 0.01},
    },
    "dma-flaky": {
        "dma.map_fail": {"rate": 0.08},
    },
    "memory-pressure": {
        "host.populate_enomem": {"rate": 0.10},
    },
    "crashy": {
        "engine.crash": {"at_batch": 12},
    },
    "kitchen-sink": {
        "fault_buffer.overflow": {"rate": 0.15},
        "fault_buffer.duplicate": {"rate": 0.10},
        "utlb.stall": {"rate": 0.10},
        "utlb.early_cancel": {"rate": 0.05},
        "ce.transfer_fault": {"rate": 0.03},
        "ce.brownout": {"rate": 0.10, "factor": 2.0},
        "ce.stuck": {"rate": 0.005},
        "dma.map_fail": {"rate": 0.03},
        "host.populate_enomem": {"rate": 0.05},
        "engine.crash": {"at_batch": 16},
    },
}

_SPEC_KEYS = frozenset(("rate", "factor", "waste_frac", "at_batch"))


def load_profile_file(path) -> Dict[str, dict]:
    """Load a JSON chaos-profile file and return its site table."""
    p = Path(path)
    try:
        doc = json.loads(p.read_text())
    except OSError as exc:
        raise ConfigError(f"cannot read chaos profile {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigError(f"chaos profile {path!r} is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) or "sites" not in doc:
        raise ConfigError(f"chaos profile {path!r} must be an object with 'sites'")
    sites = doc["sites"]
    if not isinstance(sites, dict):
        raise ConfigError(f"chaos profile {path!r}: 'sites' must be an object")
    return sites


def _build_spec(site: str, params: dict) -> SiteSpec:
    if not isinstance(params, dict):
        raise ConfigError(f"site {site!r}: parameters must be a mapping")
    unknown = sorted(set(params) - _SPEC_KEYS)
    if unknown:
        raise ConfigError(f"site {site!r}: unknown parameters {unknown}")
    spec = SiteSpec(**params)
    if not 0.0 <= spec.rate <= 1.0:
        raise ConfigError(f"site {site!r}: rate must be in [0, 1]")
    if site in _LIVELOCK_SITES and spec.rate >= 1.0:
        raise ConfigError(
            f"site {site!r}: rate 1.0 would livelock the engine (replay "
            "could never drain); use a rate below 1.0"
        )
    if spec.factor < 1.0:
        raise ConfigError(f"site {site!r}: factor must be >= 1")
    if not 0.0 <= spec.waste_frac <= 1.0:
        raise ConfigError(f"site {site!r}: waste_frac must be in [0, 1]")
    if spec.at_batch is not None and spec.at_batch < 1:
        raise ConfigError(f"site {site!r}: at_batch must be >= 1")
    if site == "engine.crash" and spec.at_batch is None:
        raise ConfigError("site 'engine.crash' requires at_batch")
    return spec


def resolve_profile(config) -> Dict[str, SiteSpec]:
    """Resolve ``InjectConfig`` into a validated site → :class:`SiteSpec` map."""
    merged: Dict[str, dict] = {}
    if config.profile:
        if config.profile in BUILTIN_PROFILES:
            base = BUILTIN_PROFILES[config.profile]
        else:
            base = load_profile_file(config.profile)
        for site in sorted(base):
            merged[site] = dict(base[site])
    for site in sorted(config.sites):
        merged[site] = dict(config.sites[site])
    known = frozenset(INJECTION_SITES)
    out: Dict[str, SiteSpec] = {}
    for site in sorted(merged):
        if site not in known:
            raise ConfigError(
                f"unknown injection site {site!r}; known sites: "
                f"{', '.join(INJECTION_SITES)}"
            )
        out[site] = _build_spec(site, merged[site])
    return out


def validate_inject_config(config) -> None:
    """Raise :class:`ConfigError` on any bad profile/site parameter."""
    resolve_profile(config)
