"""Chaos-run reporting: one structured verdict per injected workload run.

``uvm-repro chaos`` runs a workload with a fault-injection profile active
and UVMSan in report mode, then assembles the verdict this module builds:
what was injected (per site), how the driver coped (retries, backoffs,
failovers, degradations, crash recoveries), and whether every invariant
held.  The report's ``ok`` flag drives the CLI exit code — the same
contract as ``uvm-repro validate``.
"""

from __future__ import annotations

from typing import List

#: Per-record resilience counters summed into the report.
_RESILIENCE_COUNTERS = (
    "retries_dma",
    "retries_transfer",
    "retries_populate",
    "ce_failovers",
    "prefetch_fallbacks",
    "blocks_deferred",
)


def build_chaos_report(system, result, workload: str) -> dict:
    """Assemble the chaos verdict for a completed run.

    ``system`` is the :class:`~repro.api.UvmSystem` the workload ran on
    (with injection and report-mode UVMSan enabled); ``result`` the
    workload's run result exposing ``num_batches``/``total_faults``.
    """
    from ..validate import validate_system

    engine = system.engine
    records = engine.driver.log.records
    violations = [str(v) for v in validate_system(system)]
    sanitizer = engine.sanitizer.summary()
    resilience = {
        name: sum(getattr(r, name) for r in records)
        for name in _RESILIENCE_COUNTERS
    }
    resilience["time_retry_backoff_usec"] = sum(
        r.time_retry_backoff for r in records
    )
    # Engine-side (non-batch) accounting: the CPU-touch D2H retry path has
    # no BatchRecord, so its counters live on the engine itself.
    resilience.update(engine.counters.as_dict())
    resilience["batches_aborted"] = sum(1 for r in records if r.aborted)
    ok = not violations and sanitizer["violations"] == 0
    return {
        "workload": workload,
        "seed": system.config.seed,
        "batches": result.num_batches,
        "faults": result.total_faults,
        "clock_usec": engine.clock.now,
        "injection": engine.injector.summary(),
        "resilience": resilience,
        "sanitizer": sanitizer,
        "violations": violations,
        "ok": ok,
    }


def crash_report(workload: str, profile: str, exc: BaseException) -> dict:
    """Verdict for a run that died before completing (fail-fast exhaustion,
    unrecovered injected crash, raise-mode invariant violation, ...)."""
    return {
        "workload": workload,
        "profile": profile,
        "error": f"{type(exc).__name__}: {exc}",
        "violations": [],
        "ok": False,
    }


def render_chaos_report(report: dict) -> str:
    """Human-readable rendering of :func:`build_chaos_report` output."""
    lines: List[str] = []
    if "error" in report:
        lines.append(f"{report['workload']}: run FAILED — {report['error']}")
        return "\n".join(lines)
    inj = report["injection"]
    lines.append(
        f"{report['workload']}: {report['batches']} batches, "
        f"{report['faults']} faults under profile "
        f"{inj['profile'] or '(inline sites)'}"
    )
    lines.append(
        f"injected: {inj['fired_total']} events, {inj['crashes']} crashes "
        f"({inj['recoveries']} recovered)"
    )
    for site in sorted(inj["sites"]):
        stats = inj["sites"][site]
        lines.append(
            f"  {site}: {stats['fired']}/{stats['opportunities']} fired "
            f"(rate {stats['rate']})"
        )
    res = report["resilience"]
    lines.append(
        "driver resilience: "
        + ", ".join(f"{name}={res[name]}" for name in _RESILIENCE_COUNTERS)
        + f", backoff {res['time_retry_backoff_usec']:.1f}us"
    )
    lines.append(
        "engine resilience: "
        f"d2h_retries={res['engine_d2h_retries']}, "
        f"d2h_failovers={res['engine_d2h_failovers']}, "
        f"d2h backoff {res['engine_d2h_backoff_usec']:.1f}us, "
        f"aborted batches {res['batches_aborted']}"
    )
    san = report["sanitizer"]
    lines.append(f"UVMSan: {san['violations']} runtime violations")
    if report["violations"]:
        lines.append(f"validation FAILED ({len(report['violations'])} violations):")
        for v in report["violations"]:
            lines.append(f"  {v}")
    if report["ok"]:
        lines.append("chaos run OK: every invariant held under injection")
    else:
        lines.append("chaos run FAILED")
    return "\n".join(lines)
