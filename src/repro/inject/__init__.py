"""Deterministic fault injection (chaos) for the simulated UVM stack.

The paper's fault path is *failure-shaped by design* — faults are dropped on
µTLB caps and fault-buffer overflow and must survive via replay (§4–5) — but
the simulator normally exercises only the happy path of those rules.  This
package perturbs the stack on purpose: forced buffer overflow storms,
duplicate fault entries, µTLB stalls and early cancellations, transient
copy-engine failures, bandwidth brownouts, stuck-engine timeouts, DMA-map
failures, host-population ENOMEM, and whole-process crashes at batch
boundaries.

Everything is deterministic: each injection site draws from its own
:func:`repro.sim.rng.spawn_rng` stream keyed off ``SystemConfig.seed`` and
the site name, so the same (seed, profile) pair always yields the same
injected-event schedule, and adding a site never perturbs another site's
draws.  With :class:`repro.config.InjectConfig` disabled the engine installs
:data:`NULL_INJECTOR` and no component carries an injector reference — the
simulated timeline is byte-identical to a build without this package.
"""

from .injector import (
    INJECTION_SITES,
    NULL_INJECTOR,
    FaultInjector,
    NullInjector,
    SiteSpec,
    make_injector,
)
from .profiles import (
    BUILTIN_PROFILES,
    load_profile_file,
    resolve_profile,
    validate_inject_config,
)

__all__ = [
    "INJECTION_SITES",
    "FaultInjector",
    "NullInjector",
    "NULL_INJECTOR",
    "SiteSpec",
    "make_injector",
    "BUILTIN_PROFILES",
    "load_profile_file",
    "resolve_profile",
    "validate_inject_config",
]
