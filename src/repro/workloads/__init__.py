"""Workload models: page-granularity access patterns of the paper's apps.

Table 1 of the paper lists the benchmarks used in its evaluation; each has a
model here that generates the same page-access structure (phase ordering,
locality, spatial spread, host first-touch) the real kernels exhibit:

=============== =============================================== ===========
Workload        Model                                           Module
=============== =============================================== ===========
vecadd          Listing 1: page-strided vector add, one warp    microbench
prefetch kernel Fig 5: prefetch.global.L2 upfront               microbench
Regular         independent per-SM streaming (Tables 2/3)       synthetic
Random          uniform random pages, no locality (Tables 2/3)  synthetic
stream          BabelStream triad, grid-stride lockstep         stream
sgemm/dgemm     cuBLAS-style tiled GEMM with k-panel reuse      sgemm
cufft           radix-2 butterfly passes with strided partners  fft
Gauss-Seidel    red-black stencil sweeps, narrow row frontier   gauss_seidel
HPGMG-FV        geometric multigrid V-cycles + host phases      hpgmg
=============== =============================================== ===========
"""

from .base import Workload, pages_of_byte_range
from .microbench import CoalescedVecAdd, PrefetchVectorKernel, VecAddPageStride
from .synthetic import RandomAccess, RegularStream
from .stream import StreamTriad
from .sgemm import Gemm, Sgemm, Dgemm
from .fft import CuFft
from .gauss_seidel import GaussSeidel
from .hpgmg import Hpgmg
from .pointer_chase import PointerChase
from .graph import BfsWorkload, SpmvWorkload

#: Named workload factories at CLI-friendly default scales
#: (``uvm-repro breakdown <name>`` etc.).
WORKLOAD_REGISTRY = {
    "vecadd": VecAddPageStride,
    "prefetch-kernel": PrefetchVectorKernel,
    "regular": lambda: RegularStream(nbytes=24 << 20),
    "random": lambda: RandomAccess(nbytes=24 << 20),
    "stream": lambda: StreamTriad(nbytes=12 << 20),
    "sgemm": lambda: Sgemm(n=1536, tile=256),
    "dgemm": lambda: Dgemm(n=1024, tile=256),
    "cufft": lambda: CuFft(nbytes=32 << 20),
    "gauss-seidel": lambda: GaussSeidel(n=1024),
    "hpgmg": lambda: Hpgmg(n=1024, levels=3, cycles=1),
    "pointer-chase": PointerChase,
    "bfs": lambda: BfsWorkload(num_nodes=1 << 14),
    "spmv": lambda: SpmvWorkload(n=1 << 14),
}

__all__ = [
    "Workload",
    "pages_of_byte_range",
    "VecAddPageStride",
    "CoalescedVecAdd",
    "PrefetchVectorKernel",
    "RegularStream",
    "RandomAccess",
    "StreamTriad",
    "Gemm",
    "Sgemm",
    "Dgemm",
    "CuFft",
    "GaussSeidel",
    "Hpgmg",
    "PointerChase",
    "BfsWorkload",
    "SpmvWorkload",
    "WORKLOAD_REGISTRY",
]
