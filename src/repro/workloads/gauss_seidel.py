"""Red-black Gauss-Seidel stencil sweeps (paper Table 1: HPCG/AMR kernels).

A 2-D five-point Gauss-Seidel smoother: each sweep updates every grid row
using its vertical neighbours.  Rows are page-contiguous, so the faulting
frontier is a narrow band of rows moving down the grid — the highest
per-VABlock locality of the suite (Table 3: 2.31 blocks/batch, 22.4
faults/block).

Repeated sweeps re-touch the whole grid, which under oversubscription turns
into the allocation-ordered ("LRU = earliest allocated") eviction bands and
the eviction→prefetch interplay of Fig 16: freshly re-paged VABlocks fault
densely and re-trigger prefetching.
"""

from __future__ import annotations

from typing import List

from ..api import UvmSystem
from ..gpu.warp import KernelLaunch, Phase, WarpProgram
from ..units import PAGE_SIZE
from .base import Workload


class GaussSeidel(Workload):
    """Red-black Gauss-Seidel sweeps over an n×n float64 grid."""

    name = "gauss-seidel"

    def __init__(
        self,
        n: int = 1024,
        sweeps: int = 2,
        num_programs: int = 8,
        band_rows: int = 32,
        host_init: bool = True,
        compute_usec_per_row: float = 2.0,
    ):
        row_bytes = 8 * n
        if row_bytes % PAGE_SIZE:
            raise ValueError("n must give page-aligned float64 rows (n % 512 == 0)")
        if band_rows % num_programs:
            raise ValueError("band_rows must divide evenly among programs")
        self.n = n
        self.sweeps = sweeps
        self.num_programs = num_programs
        self.band_rows = band_rows
        self.host_init = host_init
        self.compute_usec_per_row = compute_usec_per_row

    @property
    def pages_per_row(self) -> int:
        return (8 * self.n) // PAGE_SIZE

    def required_bytes(self) -> int:
        return 2 * 8 * self.n * self.n

    def _row_pages(self, alloc, row: int) -> List[int]:
        pr = self.pages_per_row
        return [alloc.page(row * pr + i) for i in range(pr)]

    def steps(self, system: UvmSystem) -> List:
        nbytes = 8 * self.n * self.n
        u = system.managed_alloc(nbytes, "u")  # solution grid (read+write)
        f = system.managed_alloc(nbytes, "f")  # right-hand side (read)
        n = self.n
        rows_per_prog = self.band_rows // self.num_programs

        programs = [[] for _ in range(self.num_programs)]
        for _sweep in range(self.sweeps):
            # Two half-sweeps (red, black); at page granularity both touch
            # the same row bands, so each colours' phases look alike.
            for _colour in range(2):
                for band0 in range(0, n, self.band_rows):
                    for k in range(self.num_programs):
                        lo = band0 + k * rows_per_prog
                        hi = min(lo + rows_per_prog, n)
                        if lo >= hi:
                            continue
                        reads: List[int] = []
                        writes: List[int] = []
                        for row in range(lo, hi):
                            reads.extend(self._row_pages(f, row))
                            if row > 0:
                                reads.extend(self._row_pages(u, row - 1))
                            if row + 1 < n:
                                reads.extend(self._row_pages(u, row + 1))
                            writes.extend(self._row_pages(u, row))
                        programs[k].append(
                            Phase.of(
                                reads,
                                writes,
                                compute_usec=self.compute_usec_per_row * (hi - lo),
                            )
                        )

        kernel = KernelLaunch(
            self.name,
            [WarpProgram(ph, label=f"gs{k}") for k, ph in enumerate(programs) if ph],
        )
        steps: List = []
        if self.host_init:
            steps.append(lambda s: s.host_touch(u))
            steps.append(lambda s: s.host_touch(f))
        steps.append(kernel)
        return steps
