"""Workload abstraction and shared access-pattern builders.

A :class:`Workload` owns its problem parameters and knows how to set itself
up on a :class:`~repro.api.UvmSystem`: allocate managed memory, run host
initialization phases, and emit :class:`~repro.gpu.warp.KernelLaunch` steps.
``run`` executes the whole sequence and returns the system's
:class:`~repro.api.RunResult`.

The helpers at the bottom capture the two faulting concurrency archetypes
the paper's Table 3 distinguishes:

* :func:`lockstep_programs` — all programs sweep one moving window together
  (grid-stride kernels like BabelStream): the faulting frontier is narrow,
  so batches touch *few* VABlocks with *many* faults each.
* :func:`independent_programs` — each program streams its own contiguous
  region (one per SM): batches mix ~every SM's region, touching *many*
  VABlocks with few faults each.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence, Tuple

from ..api import ManagedAllocation, RunResult, UvmSystem
from ..gpu.warp import KernelLaunch, Phase, WarpProgram
from ..units import PAGE_SIZE


class Workload(abc.ABC):
    """Base class for paper workload models."""

    #: Short name used in logs, tables, and experiment ids.
    name: str = "workload"

    @abc.abstractmethod
    def steps(self, system: UvmSystem) -> List:
        """Allocate on ``system`` and return the run steps (kernels and
        host-phase callables) in execution order."""

    def run(self, system: UvmSystem) -> RunResult:
        """Set up and execute the workload on ``system``."""
        return system.run(self.steps(system), name=self.name)

    def required_bytes(self) -> int:
        """Total managed bytes the workload will allocate (best effort)."""
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self.name!r})"


def pages_of_byte_range(alloc: ManagedAllocation, byte_start: int, byte_stop: int) -> List[int]:
    """Global page ids covering bytes ``[byte_start, byte_stop)`` of ``alloc``.

    >>> # doctest setup omitted; spans inclusive of partial pages
    """
    if byte_stop <= byte_start:
        return []
    first = byte_start // PAGE_SIZE
    last = (byte_stop - 1) // PAGE_SIZE
    return [alloc.page(i) for i in range(first, last + 1)]


def lockstep_programs(
    read_allocs: Sequence[ManagedAllocation],
    write_allocs: Sequence[ManagedAllocation],
    npages: int,
    num_programs: int,
    window_pages: int,
    compute_usec_per_page: float = 0.02,
    overlap_pages: int = 1,
) -> List[WarpProgram]:
    """Grid-stride sweep: every program advances through the same windows.

    Window ``s`` covers pages ``[s*window, (s+1)*window)``; program ``k``
    handles an equal slice of each window.  All programs fault within the
    same narrow frontier — matching stream/stencil kernels where threads
    sweep memory in lockstep (few VABlocks per batch, Table 3).

    ``overlap_pages`` extends each program's read slice into its neighbour's:
    a page straddling two thread chunks is faulted by both warps, the
    within-batch duplicate source that roughly halves stream's deduplicated
    batch sizes in Fig 8 (§4.2 type-1/2 duplicates).
    """
    if window_pages % num_programs:
        raise ValueError("window_pages must be a multiple of num_programs")
    per = window_pages // num_programs
    num_windows = npages // window_pages
    programs = []
    for k in range(num_programs):
        phases = []
        for s in range(num_windows):
            base = s * window_pages + k * per
            stop = min(base + per + overlap_pages, npages)
            reads: List[int] = []
            for alloc in read_allocs:
                reads.extend(alloc.pages(base, stop))
            writes: List[int] = []
            for alloc in write_allocs:
                writes.extend(alloc.pages(base, base + per))
            phases.append(
                Phase.of(reads, writes, compute_usec=compute_usec_per_page * per)
            )
        programs.append(WarpProgram(phases, label=f"stride{k}"))
    return programs


def independent_programs(
    read_allocs: Sequence[ManagedAllocation],
    write_allocs: Sequence[ManagedAllocation],
    npages: int,
    num_programs: int,
    pages_per_phase: int,
    compute_usec_per_page: float = 0.02,
) -> List[WarpProgram]:
    """Region-per-program streaming: program ``k`` owns the contiguous page
    range ``[k*npages/num_programs, ...)`` and walks it phase by phase.

    With one program per SM the fault population of every batch mixes all
    SMs' (distant) regions — many VABlocks per batch (Table 3 "Regular").
    """
    per_prog = npages // num_programs
    if per_prog == 0:
        raise ValueError("npages must be >= num_programs")
    programs = []
    for k in range(num_programs):
        start = k * per_prog
        stop = npages if k == num_programs - 1 else start + per_prog
        phases = []
        pos = start
        while pos < stop:
            end = min(pos + pages_per_phase, stop)
            reads: List[int] = []
            for alloc in read_allocs:
                reads.extend(alloc.pages(pos, end))
            writes: List[int] = []
            for alloc in write_allocs:
                writes.extend(alloc.pages(pos, end))
            phases.append(
                Phase.of(reads, writes, compute_usec=compute_usec_per_page * (end - pos))
            )
            pos = end
        programs.append(WarpProgram(phases, label=f"region{k}"))
    return programs
