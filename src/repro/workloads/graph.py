"""Graph and sparse workloads: BFS and SpMV.

The paper's related work fights UVM's worst case — irregular access — with
remote mappings and reordering (Gera et al. [17], EMOGI [26], UVMBench
[18]).  These two workloads generate that pattern from *real* seeded data
structures, so their page offsets are genuine adjacency/sparsity offsets:

* :class:`BfsWorkload` — level-synchronous BFS over a random graph in CSR
  form: each level gathers the frontier's adjacency segments (clustered
  reads into ``col_idx``) and scatters visited flags (random writes).
* :class:`SpmvWorkload` — CSR ``y = A·x``: streaming reads of the matrix
  arrays plus a random gather into ``x`` — the classic mixed
  regular/irregular pattern.

Both expose the structures they built (``graph_csr`` / ``matrix_csr``) so
the app layer can run the actual algorithm over the same data.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..api import UvmSystem
from ..gpu.warp import KernelLaunch, Phase, WarpProgram
from ..sim.rng import spawn_rng
from ..units import PAGE_SIZE
from .base import Workload, pages_of_byte_range


def random_csr_graph(
    num_nodes: int, avg_degree: int, seed: int
) -> Tuple[np.ndarray, np.ndarray]:
    """A seeded random directed graph in CSR form (row_ptr, col_idx)."""
    rng = spawn_rng(seed, "csr-graph")
    degrees = rng.poisson(avg_degree, size=num_nodes).astype(np.int64)
    degrees = np.maximum(degrees, 1)
    row_ptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(degrees, out=row_ptr[1:])
    col_idx = rng.integers(0, num_nodes, size=int(row_ptr[-1]), dtype=np.int64)
    return row_ptr, col_idx


class BfsWorkload(Workload):
    """Level-synchronous BFS over a random CSR graph."""

    name = "bfs"

    def __init__(
        self,
        num_nodes: int = 1 << 15,
        avg_degree: int = 8,
        num_programs: int = 16,
        max_levels: int = 6,
        source: int = 0,
        seed: int = 7,
        host_init: bool = True,
        compute_usec_per_node: float = 0.02,
    ):
        self.num_nodes = num_nodes
        self.avg_degree = avg_degree
        self.num_programs = num_programs
        self.max_levels = max_levels
        self.source = source
        self.seed = seed
        self.host_init = host_init
        self.compute_usec_per_node = compute_usec_per_node
        self.row_ptr, self.col_idx = random_csr_graph(num_nodes, avg_degree, seed)

    @property
    def graph_csr(self) -> Tuple[np.ndarray, np.ndarray]:
        return self.row_ptr, self.col_idx

    def required_bytes(self) -> int:
        return (
            self.row_ptr.nbytes + self.col_idx.nbytes + 2 * 4 * self.num_nodes
        )

    def _bfs_levels(self) -> List[np.ndarray]:
        """Frontier node sets per level (the access pattern's skeleton)."""
        visited = np.zeros(self.num_nodes, dtype=bool)
        frontier = np.array([self.source], dtype=np.int64)
        visited[self.source] = True
        levels = []
        for _ in range(self.max_levels):
            if frontier.size == 0:
                break
            levels.append(frontier)
            neighbours = np.concatenate(
                [
                    self.col_idx[self.row_ptr[v] : self.row_ptr[v + 1]]
                    for v in frontier
                ]
            ) if frontier.size else np.empty(0, dtype=np.int64)
            fresh = np.unique(neighbours[~visited[neighbours]])
            visited[fresh] = True
            frontier = fresh
        return levels

    def steps(self, system: UvmSystem) -> List:
        row_alloc = system.managed_alloc(self.row_ptr.nbytes, "row_ptr")
        col_alloc = system.managed_alloc(self.col_idx.nbytes, "col_idx")
        dist_alloc = system.managed_alloc(4 * self.num_nodes, "dist")

        levels = self._bfs_levels()
        programs: List[List[Phase]] = [[] for _ in range(self.num_programs)]
        for frontier in levels:
            chunks = np.array_split(frontier, self.num_programs)
            for k, chunk in enumerate(chunks):
                if chunk.size == 0:
                    continue
                reads: List[int] = []
                writes: List[int] = []
                for v in chunk:
                    v = int(v)
                    # Gather the adjacency segment of v.
                    reads.extend(
                        pages_of_byte_range(row_alloc, 8 * v, 8 * (v + 2))
                    )
                    b0 = int(self.row_ptr[v]) * 8
                    b1 = int(self.row_ptr[v + 1]) * 8
                    reads.extend(pages_of_byte_range(col_alloc, b0, max(b1, b0 + 1)))
                    # Scatter distance updates for the discovered neighbours
                    # (sampled: the page of each neighbour's dist entry).
                    for u in self.col_idx[self.row_ptr[v] : self.row_ptr[v + 1]][:4]:
                        writes.extend(
                            pages_of_byte_range(dist_alloc, 4 * int(u), 4 * int(u) + 4)
                        )
                programs[k].append(
                    Phase.of(
                        reads,
                        writes,
                        compute_usec=self.compute_usec_per_node * chunk.size,
                    )
                )
        kernel = KernelLaunch(
            self.name,
            [WarpProgram(ph, label=f"bfs{k}") for k, ph in enumerate(programs) if ph],
        )
        steps: List = []
        if self.host_init:
            steps.append(lambda s: s.host_touch(row_alloc))
            steps.append(lambda s: s.host_touch(col_alloc))
        steps.append(kernel)
        return steps


def random_csr_matrix(
    n: int, nnz_per_row: int, seed: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """A seeded random sparse matrix in CSR form (row_ptr, col_idx, values)."""
    rng = spawn_rng(seed, "csr-matrix")
    row_ptr = np.arange(0, (n + 1) * nnz_per_row, nnz_per_row, dtype=np.int64)
    col_idx = rng.integers(0, n, size=n * nnz_per_row, dtype=np.int64)
    values = rng.standard_normal(n * nnz_per_row)
    return row_ptr, col_idx, values


class SpmvWorkload(Workload):
    """CSR sparse matrix-vector product ``y = A·x``."""

    name = "spmv"

    def __init__(
        self,
        n: int = 1 << 15,
        nnz_per_row: int = 16,
        num_programs: int = 16,
        rows_per_phase: int = 256,
        seed: int = 11,
        host_init: bool = True,
        compute_usec_per_row: float = 0.01,
    ):
        self.n = n
        self.nnz_per_row = nnz_per_row
        self.num_programs = num_programs
        self.rows_per_phase = rows_per_phase
        self.seed = seed
        self.host_init = host_init
        self.compute_usec_per_row = compute_usec_per_row
        self.row_ptr, self.col_idx, self.values = random_csr_matrix(
            n, nnz_per_row, seed
        )

    @property
    def matrix_csr(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        return self.row_ptr, self.col_idx, self.values

    def required_bytes(self) -> int:
        return (
            self.row_ptr.nbytes
            + self.col_idx.nbytes
            + self.values.nbytes
            + 2 * 8 * self.n
        )

    def steps(self, system: UvmSystem) -> List:
        col_alloc = system.managed_alloc(self.col_idx.nbytes, "col_idx")
        val_alloc = system.managed_alloc(self.values.nbytes, "values")
        x_alloc = system.managed_alloc(8 * self.n, "x")
        y_alloc = system.managed_alloc(8 * self.n, "y")

        rows_per_prog = self.n // self.num_programs
        programs: List[WarpProgram] = []
        for k in range(self.num_programs):
            phases: List[Phase] = []
            start = k * rows_per_prog
            stop = self.n if k == self.num_programs - 1 else start + rows_per_prog
            for lo in range(start, stop, self.rows_per_phase):
                hi = min(lo + self.rows_per_phase, stop)
                reads: List[int] = []
                # Streaming reads: the rows' nonzeros (col_idx + values).
                b0 = int(self.row_ptr[lo]) * 8
                b1 = int(self.row_ptr[hi]) * 8
                reads.extend(pages_of_byte_range(col_alloc, b0, max(b1, b0 + 1)))
                reads.extend(pages_of_byte_range(val_alloc, b0, max(b1, b0 + 1)))
                # Irregular gather into x: sample the distinct pages the
                # rows' column indices hit.
                cols = self.col_idx[self.row_ptr[lo] : self.row_ptr[hi]]
                pages = {int(c) * 8 // PAGE_SIZE for c in cols[:: max(1, len(cols) // 64)]}
                for pg in sorted(pages):
                    reads.append(x_alloc.page(pg))
                writes = pages_of_byte_range(y_alloc, 8 * lo, 8 * hi)
                phases.append(
                    Phase.of(
                        reads,
                        writes,
                        compute_usec=self.compute_usec_per_row * (hi - lo),
                    )
                )
            programs.append(WarpProgram(phases, label=f"spmv{k}"))
        kernel = KernelLaunch(self.name, programs)
        steps: List = []
        if self.host_init:
            steps.append(lambda s: s.host_touch(col_alloc))
            steps.append(lambda s: s.host_touch(val_alloc))
            steps.append(lambda s: s.host_touch(x_alloc))
        steps.append(kernel)
        return steps
