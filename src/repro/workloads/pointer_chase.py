"""Pointer chase: the worst case for batched fault servicing.

A linked-list traversal makes every access *data-dependent on the previous
one* — the register scoreboard serializes them completely, so each fault
ships alone: one fault, one batch, one replay round-trip, repeat.  This is
the extreme endpoint of the paper's §6 "Driver Serialization" discussion
(the GPU is stalled during every driver turn-around), and the pattern
graph-traversal papers in the related work ([17, 26, 28]) fight with
remote-mapping tricks.

The chase's node order is a seeded permutation, so consecutive hops land on
random pages (no 64 KiB-upgrade locality for the prefetcher to exploit).
"""

from __future__ import annotations

from typing import List

from ..api import UvmSystem
from ..gpu.warp import KernelLaunch, Phase, WarpProgram
from ..sim.rng import spawn_rng
from ..units import PAGE_SIZE
from .base import Workload


class PointerChase(Workload):
    """Serial dependent-page traversal (one page per hop)."""

    name = "pointer-chase"

    def __init__(
        self,
        num_pages: int = 256,
        hops: int = 128,
        num_chains: int = 1,
        seed: int = 99,
        host_init: bool = True,
        compute_usec_per_hop: float = 0.2,
    ):
        if hops > num_pages:
            raise ValueError("hops cannot exceed the page pool")
        self.num_pages = num_pages
        self.hops = hops
        self.num_chains = num_chains
        self.seed = seed
        self.host_init = host_init
        self.compute_usec_per_hop = compute_usec_per_hop

    def required_bytes(self) -> int:
        return self.num_pages * PAGE_SIZE

    def steps(self, system: UvmSystem) -> List:
        data = system.managed_alloc(self.num_pages * PAGE_SIZE, "list")
        rng = spawn_rng(self.seed, "pointer-chase")
        programs = []
        for chain in range(self.num_chains):
            order = rng.permutation(self.num_pages)[: self.hops]
            # One phase per hop: the next load's address comes from the
            # previous load's data — total scoreboard serialization.
            phases = [
                Phase.of([data.page(int(p))], compute_usec=self.compute_usec_per_hop)
                for p in order
            ]
            programs.append(WarpProgram(phases, label=f"chain{chain}"))
        kernel = KernelLaunch(self.name, programs)
        steps: List = []
        if self.host_init:
            steps.append(lambda s: s.host_touch(data))
        steps.append(kernel)
        return steps
