"""Targeted microbenchmarks from paper §3.2 (Listings 1-2, Figs 3-5).

Three kernels that expose the GPU's fault-generation machinery:

* :class:`VecAddPageStride` — Listing 1 verbatim: 32 threads, each
  separating its accesses by one page, three page-strided additions.
  Produces the 56-fault first batch (µTLB cap) and the read-before-write
  scoreboard serialization of Figs 3-4.
* :class:`CoalescedVecAdd` — the "coalescing version" the paper notes
  "implies that each faulting warp (or block) requires at least two full
  fault batches to complete its work": lanes share pages, so reads form one
  batch and the dependent writes another.
* :class:`PrefetchVectorKernel` — the PTX ``prefetch.global.L2`` kernel of
  Fig 5: a single warp prefetches whole vectors upfront, bypassing the
  scoreboard, the µTLB cap, and the SM throttle, filling an entire batch.
"""

from __future__ import annotations

from typing import List

from ..api import UvmSystem
from ..gpu.warp import KernelLaunch, Phase, WarpProgram
from ..units import PAGE_SIZE
from .base import Workload

#: Listing 1: #define FPSIZE 512  (4096 bytes / sizeof(float)) — one page.
FPSIZE_BYTES = PAGE_SIZE
#: Listing 1: #define TSIZE 32 — one warp.
TSIZE = 32


class VecAddPageStride(Workload):
    """Listing 1: ``c[p] = a[p] + b[p]`` with one page per thread, 3 rounds."""

    name = "vecadd-pagestride"

    def __init__(self, tsize: int = TSIZE, rounds: int = 3, compute_usec: float = 1.0):
        self.tsize = tsize
        self.rounds = rounds
        self.compute_usec = compute_usec

    def required_bytes(self) -> int:
        return 3 * self.tsize * self.rounds * PAGE_SIZE

    def steps(self, system: UvmSystem) -> List:
        npages = self.tsize * self.rounds
        a = system.managed_alloc(npages * PAGE_SIZE, "a")
        b = system.managed_alloc(npages * PAGE_SIZE, "b")
        c = system.managed_alloc(npages * PAGE_SIZE, "c")
        phases = []
        for j in range(self.rounds):
            # SASS order (Listing 2): LDG a for all lanes, LDG b, FADD
            # scoreboard stall, then STG c.
            reads = [a.page(j * self.tsize + t) for t in range(self.tsize)]
            reads += [b.page(j * self.tsize + t) for t in range(self.tsize)]
            writes = [c.page(j * self.tsize + t) for t in range(self.tsize)]
            phases.append(Phase.of(reads, writes, compute_usec=self.compute_usec))
        kernel = KernelLaunch(self.name, [WarpProgram(phases, label="warp0")])
        return [
            lambda s: s.host_touch(a),
            lambda s: s.host_touch(b),
            kernel,
        ]


class CoalescedVecAdd(Workload):
    """Coalesced vector add: many warps, lanes within a warp share pages.

    Each warp covers ``pages_per_warp`` consecutive pages of each vector;
    reads must complete before the dependent writes issue, so every warp
    needs at least two fault rounds (paper §3.2).
    """

    name = "vecadd-coalesced"

    def __init__(self, num_warps: int = 8, pages_per_warp: int = 4, compute_usec: float = 0.5):
        self.num_warps = num_warps
        self.pages_per_warp = pages_per_warp
        self.compute_usec = compute_usec

    def required_bytes(self) -> int:
        return 3 * self.num_warps * self.pages_per_warp * PAGE_SIZE

    def steps(self, system: UvmSystem) -> List:
        npages = self.num_warps * self.pages_per_warp
        a = system.managed_alloc(npages * PAGE_SIZE, "a")
        b = system.managed_alloc(npages * PAGE_SIZE, "b")
        c = system.managed_alloc(npages * PAGE_SIZE, "c")
        programs = []
        for w in range(self.num_warps):
            lo = w * self.pages_per_warp
            hi = lo + self.pages_per_warp
            # Spatial locality within the warp: lanes repeat pages — the
            # paper's type-1 duplicate source (§4.2).  Two lanes per page.
            reads = [p for i in range(lo, hi) for p in (a.page(i), a.page(i))]
            reads += [p for i in range(lo, hi) for p in (b.page(i), b.page(i))]
            writes = [c.page(i) for i in range(lo, hi)]
            programs.append(
                WarpProgram([Phase.of(reads, writes, compute_usec=self.compute_usec)])
            )
        kernel = KernelLaunch(self.name, programs)
        return [lambda s: s.host_touch(a), lambda s: s.host_touch(b), kernel]


class PrefetchVectorKernel(Workload):
    """Fig 5: one warp issues ``prefetch.global.L2`` for whole vectors.

    Prefetch faults escape every generation limit; only the driver's batch
    size cap bounds the batch, and overflowing faults are dropped
    (footnote 1 of the paper).
    """

    name = "prefetch-kernel"

    def __init__(self, pages_per_vector: int = 100, touch_after: bool = False):
        self.pages_per_vector = pages_per_vector
        #: Optionally read the vectors after prefetching (hits, no faults).
        self.touch_after = touch_after

    def required_bytes(self) -> int:
        return 3 * self.pages_per_vector * PAGE_SIZE

    def steps(self, system: UvmSystem) -> List:
        n = self.pages_per_vector
        a = system.managed_alloc(n * PAGE_SIZE, "a")
        b = system.managed_alloc(n * PAGE_SIZE, "b")
        c = system.managed_alloc(n * PAGE_SIZE, "c")
        prefetches = list(a.pages()) + list(b.pages()) + list(c.pages())
        phases = [Phase.of(prefetches=prefetches)]
        if self.touch_after:
            phases.append(
                Phase.of(
                    reads=list(a.pages()) + list(b.pages()),
                    writes=list(c.pages()),
                    compute_usec=1.0,
                )
            )
        kernel = KernelLaunch(self.name, [WarpProgram(phases, label="warp0")])
        return [lambda s: s.host_touch(a), lambda s: s.host_touch(b), kernel]
