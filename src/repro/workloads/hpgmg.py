"""HPGMG-FV: geometric multigrid V-cycles (paper Table 1, Figs 11 & 17).

Models NVIDIA's UVM-optimized HPGMG port [32]: a hierarchy of grids
(each level ¼ the points of the finer one in 2-D), V-cycles of
smooth → restrict → coarse-solve → prolong → smooth, with two traits the
paper exploits:

* **a setup phase with few GPU faults** — the host initializes every level
  (OpenMP-parallel when ``HostConfig.num_threads > 1``), so faults only
  start when the first kernel runs (Fig 17a/b cut the x-axis for this);
* **host work between V-cycles** (residual norms, boundary exchanges) that
  re-touches part of the fine grid on the CPU, re-arming
  ``unmap_mapping_range()`` on the fault path — the behaviour whose cost
  multithreaded first-touch doubles in Fig 11.
"""

from __future__ import annotations

from typing import List, Optional

from ..api import UvmSystem
from ..gpu.warp import KernelLaunch, Phase, WarpProgram
from ..units import PAGE_SIZE
from .base import Workload, pages_of_byte_range


class Hpgmg(Workload):
    """2-D geometric multigrid with V-cycles on float64 grids."""

    name = "hpgmg"

    def __init__(
        self,
        n: int = 1024,
        levels: int = 3,
        cycles: int = 2,
        pre_smooth: int = 1,
        post_smooth: int = 1,
        coarse_smooth: int = 4,
        num_programs: int = 8,
        band_rows: int = 32,
        host_phase_rows: Optional[int] = None,
        host_interleaved: bool = True,
        compute_usec_per_row: float = 2.0,
    ):
        if (8 * n) % PAGE_SIZE:
            raise ValueError("n must give page-aligned float64 rows (n % 512 == 0)")
        if (n >> (levels - 1)) <= 0:
            raise ValueError("too many levels for this grid size")
        self.n = n
        self.levels = levels
        self.cycles = cycles
        self.pre_smooth = pre_smooth
        self.post_smooth = post_smooth
        self.coarse_smooth = coarse_smooth
        self.num_programs = num_programs
        self.band_rows = band_rows
        #: Rows of the fine grid the host re-touches between cycles
        #: (default: one band of boundary rows).
        self.host_phase_rows = host_phase_rows if host_phase_rows is not None else n // 4
        self.host_interleaved = host_interleaved
        self.compute_usec_per_row = compute_usec_per_row

    def required_bytes(self) -> int:
        total = 0
        for l in range(self.levels):
            nl = self.n >> l
            total += 2 * 8 * nl * nl
        return total

    # ------------------------------------------------------------- helpers

    def _row_pages(self, alloc, level_n: int, row: int) -> List[int]:
        # Coarse-level rows can be smaller than a page; map byte extents.
        row_bytes = 8 * level_n
        b0 = row * row_bytes
        return pages_of_byte_range(alloc, b0, b0 + row_bytes)

    def _smooth_phases(self, u, f, level_n: int, programs: List[List[Phase]]) -> None:
        """One Gauss-Seidel-like smoother sweep over a level."""
        rows_per_prog = max(1, self.band_rows // self.num_programs)
        for band0 in range(0, level_n, self.band_rows):
            for k in range(self.num_programs):
                lo = band0 + k * rows_per_prog
                hi = min(lo + rows_per_prog, level_n, band0 + self.band_rows)
                if lo >= hi:
                    continue
                reads: List[int] = []
                writes: List[int] = []
                for row in range(lo, hi):
                    reads.extend(self._row_pages(f, level_n, row))
                    if row > 0:
                        reads.extend(self._row_pages(u, level_n, row - 1))
                    if row + 1 < level_n:
                        reads.extend(self._row_pages(u, level_n, row + 1))
                    writes.extend(self._row_pages(u, level_n, row))
                programs[k].append(
                    Phase.of(reads, writes, compute_usec=self.compute_usec_per_row * (hi - lo))
                )

    def _transfer_phases(
        self, src, src_n: int, dst, dst_n: int, programs: List[List[Phase]]
    ) -> None:
        """Restriction (fine→coarse) or prolongation (coarse→fine)."""
        coarse_n = min(src_n, dst_n)
        rows_per_prog = max(1, self.band_rows // self.num_programs)
        ratio_src = src_n // coarse_n
        ratio_dst = dst_n // coarse_n
        for band0 in range(0, coarse_n, self.band_rows):
            for k in range(self.num_programs):
                lo = band0 + k * rows_per_prog
                hi = min(lo + rows_per_prog, coarse_n, band0 + self.band_rows)
                if lo >= hi:
                    continue
                reads: List[int] = []
                writes: List[int] = []
                for row in range(lo, hi):
                    for rr in range(ratio_src):
                        reads.extend(self._row_pages(src, src_n, row * ratio_src + rr))
                    for rr in range(ratio_dst):
                        writes.extend(self._row_pages(dst, dst_n, row * ratio_dst + rr))
                programs[k].append(
                    Phase.of(reads, writes, compute_usec=self.compute_usec_per_row * (hi - lo))
                )

    # --------------------------------------------------------------- steps

    def steps(self, system: UvmSystem) -> List:
        # Allocate the level hierarchy: u (solution) and f (rhs) per level.
        us, fs, ns = [], [], []
        for l in range(self.levels):
            nl = self.n >> l
            ns.append(nl)
            us.append(system.managed_alloc(8 * nl * nl, f"u{l}"))
            fs.append(system.managed_alloc(8 * nl * nl, f"f{l}"))

        steps: List = []

        # Setup: host initializes every level (OpenMP first-touch — the
        # knob Fig 11 turns).  Few GPU faults until the first kernel.
        for l in range(self.levels):
            u, f = us[l], fs[l]
            steps.append(
                lambda s, u=u: s.host_touch(u, interleaved=self.host_interleaved)
            )
            steps.append(
                lambda s, f=f: s.host_touch(f, interleaved=self.host_interleaved)
            )

        pr_fine = (8 * self.n) // PAGE_SIZE
        for cycle in range(self.cycles):
            programs: List[List[Phase]] = [[] for _ in range(self.num_programs)]
            # Downstroke: smooth + restrict per level.
            for l in range(self.levels - 1):
                for _ in range(self.pre_smooth):
                    self._smooth_phases(us[l], fs[l], ns[l], programs)
                self._transfer_phases(us[l], ns[l], fs[l + 1], ns[l + 1], programs)
            # Coarse solve.
            for _ in range(self.coarse_smooth):
                self._smooth_phases(us[-1], fs[-1], ns[-1], programs)
            # Upstroke: prolong + smooth.
            for l in range(self.levels - 2, -1, -1):
                self._transfer_phases(us[l + 1], ns[l + 1], us[l], ns[l], programs)
                for _ in range(self.post_smooth):
                    self._smooth_phases(us[l], fs[l], ns[l], programs)
            kernel = KernelLaunch(
                f"{self.name}-vcycle{cycle}",
                [WarpProgram(ph, label=f"mg{k}") for k, ph in enumerate(programs) if ph],
            )
            steps.append(kernel)
            # Host work between cycles: norm/boundary handling re-touches
            # part of the fine grid, re-arming the unmap cost (§4.4).
            if self.host_phase_rows > 0 and cycle + 1 < self.cycles:
                stop = self.host_phase_rows * pr_fine
                steps.append(
                    lambda s, u0=us[0], stop=stop: s.host_touch(
                        u0, 0, stop, interleaved=self.host_interleaved
                    )
                )
        return steps
