"""cuFFT-style radix-2 transform passes (paper Table 1: "cuFFT").

A large 1-D complex transform decomposes into log2(N) butterfly passes; pass
``p`` pairs element ``i`` with ``i + 2^p``.  At page granularity the early
passes (stride < one page) touch each page once per pass, while later passes
pair pages across exponentially-growing distances — scattering each batch
over many VABlocks (Table 3: ~25 blocks/batch, ~3 faults/block) with a
moderate twiddle-table hot set.

All programs advance through pair windows in lockstep, like cuFFT's
grid-stride butterfly kernels.
"""

from __future__ import annotations

from typing import List

from ..api import UvmSystem
from ..gpu.warp import KernelLaunch, Phase, WarpProgram
from ..units import PAGE_SIZE
from .base import Workload


class CuFft(Workload):
    """Radix-2 out-of-place-free (in-place) FFT access pattern."""

    name = "cufft"

    def __init__(
        self,
        nbytes: int = 32 << 20,
        num_programs: int = 64,
        pairs_per_phase: int = 4,
        host_init: bool = True,
        compute_usec_per_page: float = 2.0,
    ):
        npages = nbytes // PAGE_SIZE
        if npages & (npages - 1):
            raise ValueError("nbytes must give a power-of-two page count")
        self.nbytes = nbytes
        self.num_programs = num_programs
        self.pairs_per_phase = pairs_per_phase
        self.host_init = host_init
        self.compute_usec_per_page = compute_usec_per_page

    def required_bytes(self) -> int:
        return self.nbytes + (self.nbytes // 64)

    def steps(self, system: UvmSystem) -> List:
        npages = self.nbytes // PAGE_SIZE
        data = system.managed_alloc(self.nbytes, "signal")
        twiddle = system.managed_alloc(max(PAGE_SIZE, self.nbytes // 64), "twiddle")
        tw_pages = twiddle.num_pages

        import math

        num_passes = int(math.log2(npages))
        programs = [[] for _ in range(self.num_programs)]

        # Bit-reversal permutation: each program owns a contiguous region of
        # the signal (cuFFT batches independent sub-transforms), reading it
        # sequentially and scattering writes to page bitrev(i) — spraying
        # each batch across many VABlocks (Table 3's ~25 blocks/batch).
        bits = num_passes
        per = self.pairs_per_phase
        region = npages // self.num_programs
        for step in range(0, max(1, region), per):
            for k in range(self.num_programs):
                lo = k * region + step
                hi = min(lo + per, (k + 1) * region, npages)
                if lo >= hi:
                    continue
                reads = [data.page(i) for i in range(lo, hi)]
                writes = [
                    data.page(int(f"{i:0{bits}b}"[::-1], 2)) for i in range(lo, hi)
                ]
                programs[k].append(
                    Phase.of(
                        reads,
                        writes,
                        compute_usec=self.compute_usec_per_page * (hi - lo),
                    )
                )

        # Pass 0: sub-page strides — every page read-modify-written once.
        window = self.num_programs * self.pairs_per_phase
        for base in range(0, npages, window):
            for k in range(self.num_programs):
                lo = base + k * self.pairs_per_phase
                hi = min(lo + self.pairs_per_phase, npages)
                if lo >= hi:
                    continue
                pages = [data.page(i) for i in range(lo, hi)]
                tw = [twiddle.page(base // window % tw_pages)]
                programs[k].append(
                    Phase.of(
                        reads=pages + tw,
                        writes=pages,
                        compute_usec=self.compute_usec_per_page * len(pages),
                    )
                )

        # Page-strided passes: stride 2^p pages.  cuFFT's butterfly kernels
        # process independent sub-transforms concurrently, so pair work is
        # spread across distant regions of the signal — each batch touches
        # many VABlocks (Table 3's ~25 blocks/batch for cufft).
        num_regions = 12
        for p in range(num_passes):
            stride = 1 << p
            seq = [i for i in range(npages) if not (i & stride)]
            rlen = max(1, len(seq) // num_regions)
            slices = [seq[r * rlen : (r + 1) * rlen] for r in range(num_regions)]
            slices.append(seq[num_regions * rlen :])
            pairs = []
            for j in range(max(len(sl) for sl in slices)):
                for sl in slices:
                    if j < len(sl):
                        pairs.append(sl[j])
            per = self.pairs_per_phase
            idx = 0
            while idx < len(pairs):
                for k in range(self.num_programs):
                    chunk = pairs[idx : idx + per]
                    idx += per
                    if not chunk:
                        continue
                    pages = []
                    for i in chunk:
                        pages.append(data.page(i))
                        pages.append(data.page(i + stride))
                    tw = [twiddle.page((p * 7 + idx // per) % tw_pages)]
                    programs[k].append(
                        Phase.of(
                            reads=pages + tw,
                            writes=pages,
                            compute_usec=self.compute_usec_per_page * len(pages),
                        )
                    )

        kernel = KernelLaunch(
            self.name,
            [WarpProgram(ph, label=f"fft{k}") for k, ph in enumerate(programs) if ph],
        )
        steps: List = []
        if self.host_init:
            steps.append(lambda s: s.host_touch(data))
            steps.append(lambda s: s.host_touch(twiddle))
        steps.append(kernel)
        return steps
