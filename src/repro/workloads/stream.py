"""BabelStream triad (paper Table 1: "stream — Memory bandwidth
(triad-only)").

The CUDA BabelStream triad kernel ``a[i] = b[i] + scalar * c[i]`` uses a
grid-stride loop: the whole grid sweeps the arrays together, so the faulting
frontier at any instant is a narrow moving window — few VABlocks per batch
with many faults each (Table 3: 3.93 blocks/batch, 15.4 faults/block), and
a flat batch-size time series (Fig 8, stream's "simple" profile).
"""

from __future__ import annotations

from typing import List

from ..api import UvmSystem
from ..gpu.warp import KernelLaunch, WarpProgram
from ..units import PAGE_SIZE
from .base import Workload, lockstep_programs


class StreamTriad(Workload):
    """Grid-stride triad over three equal arrays."""

    name = "stream"

    def __init__(
        self,
        nbytes: int = 16 << 20,
        num_programs: int = 24,
        window_pages: int = 24,
        host_init: bool = True,
        compute_usec_per_page: float = 5.0,
        sweeps: int = 1,
    ):
        if window_pages % num_programs:
            raise ValueError("window_pages must divide evenly among programs")
        self.nbytes = nbytes
        self.num_programs = num_programs
        self.window_pages = window_pages
        self.host_init = host_init
        self.compute_usec_per_page = compute_usec_per_page
        #: BabelStream repeats the triad many times; > 1 makes working-set
        #: reuse visible (oversubscription refaults evicted pages, Fig 1).
        self.sweeps = sweeps

    def required_bytes(self) -> int:
        return 3 * self.nbytes

    def steps(self, system: UvmSystem) -> List:
        npages = self.nbytes // PAGE_SIZE
        a = system.managed_alloc(self.nbytes, "a")  # written
        b = system.managed_alloc(self.nbytes, "b")  # read
        c = system.managed_alloc(self.nbytes, "c")  # read
        programs = lockstep_programs(
            [b, c],
            [a],
            npages,
            self.num_programs,
            self.window_pages,
            compute_usec_per_page=self.compute_usec_per_page,
        )
        if self.sweeps > 1:
            programs = [
                WarpProgram(tuple(p.phases) * self.sweeps, label=p.label)
                for p in programs
            ]
        kernel = KernelLaunch(self.name, programs)
        steps: List = []
        if self.host_init:
            steps.append(lambda s: s.host_touch(b))
            steps.append(lambda s: s.host_touch(c))
        steps.append(kernel)
        return steps
