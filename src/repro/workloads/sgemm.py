"""Tiled GEMM: the paper's cuBLAS sgemm/dgemm workload.

``C = A · B`` with row-major n×n matrices, computed by one program per C
tile.  Each program iterates the k dimension: phase ``k`` reads the A row
panel ``A[iT:(i+1)T, kT:(k+1)T]`` and the B panel ``B[kT:(k+1)T, jT:(j+1)T]``
and accumulates; the final phase writes the C tile.

This reproduces the GEMM traits the paper leans on:

* panel *reuse*: every tile in C-tile-row ``i`` reads the same A panels, and
  every tile-column ``j`` the same B panels — concurrent blocks on different
  SMs fault the same pages (cross-µTLB duplicates, §4.2), and under
  oversubscription the reuse turns into eviction-driven refaults (Fig 12);
* clustered page footprints: a panel's rows are page-sparse across the
  matrix but VABlock-clustered, giving sgemm's ~7 VABlocks/batch (Table 3)
  and its "phases" of batching behaviour over time (Fig 8);
* a moderate-size working set swept repeatedly — the paper's default
  subject for the batch-size (Fig 9), transfer-fraction (Fig 7), and
  prefetching (Fig 14) experiments.
"""

from __future__ import annotations

from typing import List

from ..api import UvmSystem
from ..gpu.warp import KernelLaunch, Phase, WarpProgram
from .base import Workload, pages_of_byte_range


class Gemm(Workload):
    """Tiled GEMM with configurable element size (4 = sgemm, 8 = dgemm)."""

    name = "gemm"

    def __init__(
        self,
        n: int = 1536,
        tile: int = 256,
        elem_bytes: int = 4,
        host_init: bool = True,
        flops_per_usec: float = 0.2e6,
        pages_per_burst: int = 48,
    ):
        if n % tile:
            raise ValueError("tile must divide n")
        self.n = n
        self.tile = tile
        self.elem_bytes = elem_bytes
        self.host_init = host_init
        #: Effective per-block GEMM throughput (one SM's share, ~0.2 GFLOP/ms):
        #: a 256-cubed k-phase computes for ~170 us, desynchronizing blocks'
        #: fault rounds as on real hardware.
        self.flops_per_usec = flops_per_usec
        #: A k-phase's panel loads issue in bursts of this many pages,
        #: interleaved with the accumulating FMAs (double-buffered tiles):
        #: each block's instantaneous fault demand stays modest, which is
        #: why sgemm's per-SM batch contribution sits far below the
        #: synthetic ceiling (Table 2: 0.85 vs 3.06).
        self.pages_per_burst = pages_per_burst

    def required_bytes(self) -> int:
        return 3 * self.n * self.n * self.elem_bytes

    # ------------------------------------------------------------- helpers

    def _panel_pages(self, alloc, row0: int, nrows: int, col0: int, ncols: int) -> List[int]:
        """Pages of the row-major submatrix rows [row0, row0+nrows) ×
        cols [col0, col0+ncols)."""
        es = self.elem_bytes
        row_bytes = self.n * es
        pages: List[int] = []
        for r in range(row0, row0 + nrows):
            b0 = r * row_bytes + col0 * es
            b1 = b0 + ncols * es
            pages.extend(pages_of_byte_range(alloc, b0, b1))
        return pages

    # --------------------------------------------------------------- steps

    def steps(self, system: UvmSystem) -> List:
        nbytes = self.n * self.n * self.elem_bytes
        a = system.managed_alloc(nbytes, "A")
        b = system.managed_alloc(nbytes, "B")
        c = system.managed_alloc(nbytes, "C")
        t = self.tile
        ntiles = self.n // t
        phase_flops = 2.0 * t * t * t
        compute = phase_flops / self.flops_per_usec

        burst = max(1, self.pages_per_burst)
        programs = []
        for i in range(ntiles):
            for j in range(ntiles):
                # Blocks progress at different effective rates (cache hits,
                # scheduling), drifting apart in k: concurrent blocks then
                # work on *different* panels, spreading each batch's faults
                # over several VABlocks (Table 3: ~7 blocks/batch for sgemm).
                drift = 0.6 + 0.8 * ((i * ntiles + j) * 5 % 9) / 8.0
                phases = []
                for k in range(ntiles):
                    reads = self._panel_pages(a, i * t, t, k * t, t)
                    reads += self._panel_pages(b, k * t, t, j * t, t)
                    # Panel loads stream in bursts interleaved with the
                    # accumulation FMAs (double buffering).
                    nbursts = max(1, (len(reads) + burst - 1) // burst)
                    per_burst_compute = compute * drift / nbursts
                    for off in range(0, len(reads), burst):
                        phases.append(
                            Phase.of(
                                reads[off : off + burst],
                                compute_usec=per_burst_compute,
                            )
                        )
                writes = self._panel_pages(c, i * t, t, j * t, t)
                for off in range(0, len(writes), burst):
                    phases.append(
                        Phase.of(writes=writes[off : off + burst], compute_usec=0.5)
                    )
                programs.append(WarpProgram(phases, label=f"tile({i},{j})"))
        kernel = KernelLaunch(self.name, programs)
        steps: List = []
        if self.host_init:
            steps.append(lambda s: s.host_touch(a))
            steps.append(lambda s: s.host_touch(b))
        steps.append(kernel)
        return steps


class Sgemm(Gemm):
    """Single-precision GEMM (cuBLAS sgemm)."""

    name = "sgemm"

    def __init__(self, n: int = 1536, tile: int = 256, **kwargs):
        super().__init__(n=n, tile=tile, elem_bytes=4, **kwargs)


class Dgemm(Gemm):
    """Double-precision GEMM (the Fig 15 dgemm oversubscription subject)."""

    name = "dgemm"

    def __init__(self, n: int = 1536, tile: int = 256, **kwargs):
        super().__init__(n=n, tile=tile, elem_bytes=8, **kwargs)
