"""Synthetic access patterns: the paper's "Regular" and "Random" rows.

Tables 2 and 3 include two synthetic benchmarks that bracket the locality
spectrum:

* **Regular** — every SM streams its own contiguous region; each batch mixes
  faults from ~all SMs' distant regions → many VABlocks per batch, a
  handful of faults per block, per-SM fault counts at the
  ``batch_size/num_sms`` ceiling (~3.2).
* **Random** — uniformly random page accesses with no locality → the most
  VABlocks per batch, ~1 fault per block, and per-SM counts at the same
  ceiling.
"""

from __future__ import annotations

from typing import List

from ..api import UvmSystem
from ..gpu.warp import KernelLaunch, Phase, WarpProgram
from ..sim.rng import spawn_rng
from ..units import PAGE_SIZE
from .base import Workload, independent_programs


class RegularStream(Workload):
    """Per-SM independent streaming read+write over a large array."""

    name = "regular"

    def __init__(
        self,
        nbytes: int = 32 << 20,
        num_programs: int = 80,
        pages_per_phase: int = 16,
        host_init: bool = True,
        write_output: bool = False,
    ):
        self.nbytes = nbytes
        self.num_programs = num_programs
        self.pages_per_phase = pages_per_phase
        self.host_init = host_init
        #: Also stream a same-size output array (doubles the footprint).
        self.write_output = write_output

    def required_bytes(self) -> int:
        return (2 if self.write_output else 1) * self.nbytes

    def steps(self, system: UvmSystem) -> List:
        npages = self.nbytes // PAGE_SIZE
        src = system.managed_alloc(self.nbytes, "src")
        writes = []
        if self.write_output:
            writes = [system.managed_alloc(self.nbytes, "dst")]
        programs = independent_programs(
            [src], writes, npages, self.num_programs, self.pages_per_phase
        )
        kernel = KernelLaunch(self.name, programs)
        steps: List = []
        if self.host_init:
            steps.append(lambda s: s.host_touch(src))
        steps.append(kernel)
        return steps


class RandomAccess(Workload):
    """Uniform random page reads: no spatial locality at any granularity."""

    name = "random"

    def __init__(
        self,
        nbytes: int = 32 << 20,
        num_programs: int = 80,
        accesses_per_program: int = 256,
        pages_per_phase: int = 8,
        seed: int = 1234,
        host_init: bool = True,
    ):
        self.nbytes = nbytes
        self.num_programs = num_programs
        self.accesses_per_program = accesses_per_program
        self.pages_per_phase = pages_per_phase
        self.seed = seed
        self.host_init = host_init

    def required_bytes(self) -> int:
        return self.nbytes

    def steps(self, system: UvmSystem) -> List:
        npages = self.nbytes // PAGE_SIZE
        data = system.managed_alloc(self.nbytes, "data")
        rng = spawn_rng(self.seed, "random-access")
        programs = []
        for k in range(self.num_programs):
            draws = rng.integers(0, npages, size=self.accesses_per_program)
            phases = []
            for i in range(0, len(draws), self.pages_per_phase):
                reads = [data.page(int(p)) for p in draws[i : i + self.pages_per_phase]]
                phases.append(Phase.of(reads, compute_usec=0.1))
            programs.append(WarpProgram(phases, label=f"rand{k}"))
        kernel = KernelLaunch(self.name, programs)
        steps: List = []
        if self.host_init:
            steps.append(lambda s: s.host_touch(data))
        steps.append(kernel)
        return steps
