"""Correctness tooling: determinism lint + UVMSan runtime sanitizer.

Two complementary halves guard the reproduction's fidelity guarantee:

* :mod:`repro.check.lint` — a static AST pass over the simulator flagging
  nondeterminism hazards (wall-clock reads, unseeded randomness, set-order
  iteration, per-iteration set rebuilds, ``id()`` sorts, mutable defaults)
  with per-rule allowlists and ``# repro: lint-ok[rule]`` suppressions.
  Run it with ``uvm-repro lint``.
* :mod:`repro.check.sanitizer` — UVMSan, a config-gated runtime invariant
  layer (``CheckConfig``; null object when off) hooked into the driver, the
  GPU models, and the engine, asserting the paper's reverse-engineered
  hardware invariants on every batch.
"""

from .lint import (
    DEFAULT_ALLOWLIST_PATH,
    AllowEntry,
    LintFinding,
    RULES,
    findings_to_json,
    lint_file,
    lint_paths,
    lint_source,
    load_allowlist,
    render_findings,
)
from .sanitizer import NULL_SANITIZER, NullSanitizer, Sanitizer, make_sanitizer

__all__ = [
    "AllowEntry",
    "DEFAULT_ALLOWLIST_PATH",
    "LintFinding",
    "RULES",
    "findings_to_json",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_allowlist",
    "render_findings",
    "NULL_SANITIZER",
    "NullSanitizer",
    "Sanitizer",
    "make_sanitizer",
]
