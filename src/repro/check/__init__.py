"""Correctness tooling: static analysis + UVMSan runtime sanitizer.

Three complementary layers guard the reproduction's fidelity guarantee:

* :mod:`repro.check.lint` — the per-file AST rules flagging nondeterminism
  hazards (wall-clock reads, unseeded randomness, set-order iteration,
  per-iteration set rebuilds, ``id()`` sorts, mutable defaults) with
  per-rule allowlists and ``# repro: lint-ok[rule]`` suppressions.
* :mod:`repro.check.program` — the whole-program engine: a project IR
  (module index, symbol tables, intra-package call graph) feeding the
  interprocedural passes — ``sim-taint`` (wall-clock/unseeded-RNG values
  flowing into the simulated timeline), ``metric-drift`` (call sites vs
  the :mod:`repro.obs.catalog` declarations), ``mp-shared-state``
  (module-global mutation reachable from campaign pool workers), and
  ``suppression-hygiene`` — plus the committed baseline and SARIF export.
  The per-file rules run as one more pass on the same engine; everything
  is reachable through ``uvm-repro lint``.
* :mod:`repro.check.sanitizer` — UVMSan, a config-gated runtime invariant
  layer (``CheckConfig``; null object when off) hooked into the driver, the
  GPU models, and the engine, asserting the paper's reverse-engineered
  hardware invariants on every batch.
"""

from .lint import (
    DEFAULT_ALLOWLIST_PATH,
    AllowEntry,
    LintFinding,
    RULES,
    findings_to_json,
    lint_file,
    lint_paths,
    lint_source,
    load_allowlist,
    render_findings,
)
from .sanitizer import NULL_SANITIZER, NullSanitizer, Sanitizer, make_sanitizer

__all__ = [
    "AllowEntry",
    "DEFAULT_ALLOWLIST_PATH",
    "LintFinding",
    "RULES",
    "findings_to_json",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_allowlist",
    "render_findings",
    "NULL_SANITIZER",
    "NullSanitizer",
    "Sanitizer",
    "make_sanitizer",
]
