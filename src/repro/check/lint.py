"""Determinism lint: an AST pass over the simulator for fidelity hazards.

The reproduction's load-bearing guarantee is that a run is a pure function
of its :class:`~repro.config.SystemConfig` — the paper's per-batch numbers
are only trustworthy if two runs with the same seed produce the same
timeline.  This linter statically flags the hazard classes that historically
break that guarantee in simulation code:

* ``wall-clock`` — real-time sources (``time.time``, ``time.perf_counter``,
  argless ``datetime.now`` and friends) leaking into simulated logic;
* ``unseeded-random`` — the stdlib ``random`` module (global, process-seeded
  state), legacy ``numpy.random`` global functions, and
  ``np.random.default_rng()`` with no seed.  All randomness must flow from
  :func:`repro.sim.rng.spawn_rng` streams;
* ``set-iter`` — iterating directly over a ``set`` literal/comprehension or
  ``set()``/``frozenset()`` call.  Set order is insertion- and
  history-dependent; when the loop body has side effects the event order of
  the run depends on it.  Wrap in ``sorted(...)``;
* ``dict-values`` — a ``for`` *statement* over ``.values()``: legal and
  deterministic on its own (dicts preserve insertion order), but a frequent
  carrier of accidental order dependence when the dict was populated from
  unordered sources.  Comprehensions (usually order-free reductions) are
  not flagged;
* ``set-in-loop`` — a membership test ``x in set(expr)`` inside a loop or
  comprehension: the set is rebuilt on every iteration (the exact hazard of
  the historic ``driver.py`` ``f.page in set(work.pages)`` filter).  Hoist
  the set;
* ``id-sort`` — sorting with ``key=id`` (or a lambda over ``id()``):
  ``id()`` is an address, different every run;
* ``mutable-default`` — mutable default arguments, shared across calls and
  a classic source of state bleeding between "independent" runs.

Suppression: append ``# repro: lint-ok[rule]`` (comma-separated rules, or
bare ``lint-ok`` for all) to the flagged line.  Repository-intentional
exceptions live in the allowlist file (one ``path: rule  # why`` per line);
the default allowlist ships next to this module as ``lint_allow.txt``.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: rule id → one-line description (also the catalog `repro lint --list-rules`
#: prints and docs/static-analysis.md documents).
RULES: Dict[str, str] = {
    "wall-clock": "real-time source (time.time/perf_counter/datetime.now) in sim code",
    "unseeded-random": "stdlib random, legacy numpy.random globals, or unseeded default_rng()",
    "set-iter": "iteration directly over a set expression (order is history-dependent)",
    "dict-values": "for-statement over dict .values() (order-dependence carrier)",
    "set-in-loop": "membership test rebuilds set(...) every loop iteration",
    "id-sort": "sort key uses id() (address-dependent, differs every run)",
    "mutable-default": "mutable default argument (state shared across calls)",
}

DEFAULT_ALLOWLIST_PATH = Path(__file__).with_name("lint_allow.txt")

_WALLCLOCK_TIME_FNS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
    }
)
_WALLCLOCK_DATETIME_FNS = frozenset({"now", "utcnow", "today"})
_NUMPY_LEGACY_RANDOM = frozenset(
    {
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "choice",
        "shuffle",
        "permutation",
        "seed",
        "uniform",
        "normal",
        "poisson",
        "exponential",
    }
)
_SUPPRESS_RE = re.compile(r"#\s*repro:\s*lint-ok(?:\[([A-Za-z0-9_,\s-]+)\])?")


@dataclass(frozen=True)
class LintFinding:
    """One flagged hazard."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass(frozen=True)
class AllowEntry:
    """One allowlist line: a path suffix, a rule (or ``*``), a reason."""

    path_suffix: str
    rule: str
    reason: str

    def matches(self, finding: LintFinding) -> bool:
        if self.rule != "*" and self.rule != finding.rule:
            return False
        normalized = finding.path.replace("\\", "/")
        return normalized.endswith(self.path_suffix)


class _HazardVisitor(ast.NodeVisitor):
    """Single-pass visitor implementing every rule.

    Loop context (``for``/``while`` bodies and comprehension generators) is
    tracked with a depth counter so per-iteration hazards (``set-in-loop``)
    only fire where the expression is actually re-evaluated.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: List[LintFinding] = []
        self._loop_depth = 0

    # ------------------------------------------------------------- helpers

    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(
            LintFinding(
                rule=rule,
                path=self.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                message=message,
            )
        )

    @staticmethod
    def _root_name(node: ast.AST) -> Optional[str]:
        """Leftmost name of an attribute chain (``np.random.rand`` → np)."""
        while isinstance(node, ast.Attribute):
            node = node.value
        if isinstance(node, ast.Name):
            return node.id
        return None

    @staticmethod
    def _is_set_expr(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        )

    # --------------------------------------------------------------- calls

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            base = func.value
            # wall-clock: time.<fn>()
            if (
                isinstance(base, ast.Name)
                and base.id == "time"
                and func.attr in _WALLCLOCK_TIME_FNS
            ):
                self._flag(
                    node,
                    "wall-clock",
                    f"time.{func.attr}() reads the host clock; sim code must "
                    "use SimClock",
                )
            # wall-clock: datetime.now() / datetime.datetime.now() etc.
            if func.attr in _WALLCLOCK_DATETIME_FNS and not node.args:
                base_names = {"datetime", "date"}
                if (isinstance(base, ast.Name) and base.id in base_names) or (
                    isinstance(base, ast.Attribute) and base.attr in base_names
                ):
                    self._flag(
                        node,
                        "wall-clock",
                        f"argless datetime {func.attr}() reads the host clock",
                    )
            # unseeded-random: stdlib random module calls.
            if isinstance(base, ast.Name) and base.id == "random":
                self._flag(
                    node,
                    "unseeded-random",
                    f"stdlib random.{func.attr}() uses global process state; "
                    "draw from repro.sim.rng.spawn_rng streams",
                )
            # unseeded-random: numpy legacy globals np.random.<fn>(...).
            if (
                isinstance(base, ast.Attribute)
                and base.attr == "random"
                and self._root_name(base) in ("np", "numpy")
                and func.attr in _NUMPY_LEGACY_RANDOM
            ):
                self._flag(
                    node,
                    "unseeded-random",
                    f"numpy.random.{func.attr}() mutates the legacy global "
                    "generator; use a seeded Generator",
                )
            # unseeded-random: default_rng() without a seed argument.
            if func.attr == "default_rng" and not node.args and not node.keywords:
                self._flag(
                    node,
                    "unseeded-random",
                    "default_rng() with no seed draws OS entropy; pass a "
                    "seed or use repro.sim.rng.spawn_rng",
                )
            # id-sort: somelist.sort(key=id / key=lambda: id(...)).
            if func.attr == "sort":
                self._check_sort_key(node)
        elif isinstance(func, ast.Name):
            if func.id in ("sorted", "min", "max"):
                self._check_sort_key(node)
        # set-in-loop fires on Compare nodes, handled in visit_Compare.
        self.generic_visit(node)

    def _check_sort_key(self, node: ast.Call) -> None:
        for kw in node.keywords:
            if kw.arg != "key":
                continue
            value = kw.value
            is_id = isinstance(value, ast.Name) and value.id == "id"
            if isinstance(value, ast.Lambda):
                is_id = any(
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Name)
                    and sub.func.id == "id"
                    for sub in ast.walk(value.body)
                )
            if is_id:
                self._flag(
                    node,
                    "id-sort",
                    "sort key uses id(): object addresses differ run to run",
                )

    # ---------------------------------------------------------- comparisons

    def visit_Compare(self, node: ast.Compare) -> None:
        if self._loop_depth > 0:
            for op, comparator in zip(node.ops, node.comparators):
                if isinstance(op, (ast.In, ast.NotIn)) and self._is_set_expr(
                    comparator
                ):
                    self._flag(
                        node,
                        "set-in-loop",
                        "membership test rebuilds its set on every "
                        "iteration; hoist the set out of the loop",
                    )
        self.generic_visit(node)

    # --------------------------------------------------------------- loops

    def _check_iter_expr(self, iter_node: ast.AST, statement: bool) -> None:
        if self._is_set_expr(iter_node):
            self._flag(
                iter_node,
                "set-iter",
                "iterating a set expression: order is insertion-history "
                "dependent; wrap in sorted(...)",
            )
        elif (
            statement
            and isinstance(iter_node, ast.Call)
            and isinstance(iter_node.func, ast.Attribute)
            and iter_node.func.attr == "values"
            and not iter_node.args
            and not iter_node.keywords
        ):
            self._flag(
                iter_node,
                "dict-values",
                "for-statement over .values(): make the ordering explicit "
                "(sorted(...) or .items()) if the body has side effects",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter_expr(node.iter, statement=True)
        # The iterable itself is evaluated once, outside the loop.
        self.visit(node.iter)
        self.visit(node.target)
        self._loop_depth += 1
        for child in node.body + node.orelse:
            self.visit(child)
        self._loop_depth -= 1

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:  # pragma: no cover
        self.visit_For(node)  # type: ignore[arg-type]

    def visit_While(self, node: ast.While) -> None:
        self.visit(node.test)
        self._loop_depth += 1
        for child in node.body + node.orelse:
            self.visit(child)
        self._loop_depth -= 1

    def _visit_comprehension(self, node) -> None:
        for i, gen in enumerate(node.generators):
            self._check_iter_expr(gen.iter, statement=False)
            if i == 0:
                # The first generator's iterable is evaluated once.
                self.visit(gen.iter)
            else:
                self._loop_depth += 1
                self.visit(gen.iter)
                self._loop_depth -= 1
        self._loop_depth += 1
        for gen in node.generators:
            self.visit(gen.target)
            for cond in gen.ifs:
                self.visit(cond)
        if isinstance(node, ast.DictComp):
            self.visit(node.key)
            self.visit(node.value)
        else:
            self.visit(node.elt)
        self._loop_depth -= 1

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension
    visit_DictComp = _visit_comprehension

    # ----------------------------------------------------------- functions

    def _check_defaults(self, node) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in ("list", "dict", "set", "bytearray")
            )
            if mutable:
                self._flag(
                    default,
                    "mutable-default",
                    "mutable default argument is shared across calls; "
                    "default to None and build inside",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self.generic_visit(node)


# ------------------------------------------------------------------ front end


def _apply_suppressions(
    findings: List[LintFinding], source_lines: Sequence[str]
) -> List[LintFinding]:
    """Drop findings whose source line carries ``# repro: lint-ok[...]``."""
    out = []
    for finding in findings:
        if 1 <= finding.line <= len(source_lines):
            match = _SUPPRESS_RE.search(source_lines[finding.line - 1])
            if match is not None:
                rules = match.group(1)
                if rules is None:
                    continue  # bare lint-ok: suppress every rule
                allowed = {r.strip() for r in rules.split(",")}
                if finding.rule in allowed:
                    continue
        out.append(finding)
    return out


def lint_source(source: str, path: str = "<string>") -> List[LintFinding]:
    """Lint one module's source text; returns findings (suppressions applied)."""
    tree = ast.parse(source, filename=path)
    visitor = _HazardVisitor(path)
    visitor.visit(tree)
    findings = _apply_suppressions(visitor.findings, source.splitlines())
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_file(path) -> List[LintFinding]:
    path = Path(path)
    return lint_source(path.read_text(encoding="utf-8"), str(path))


def iter_python_files(paths: Iterable) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[Path] = []
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            out.extend(sorted(entry.rglob("*.py")))
        else:
            out.append(entry)
    return out


def load_allowlist(path) -> List[AllowEntry]:
    """Parse an allowlist file: ``path-suffix: rule  # justification``."""
    entries: List[AllowEntry] = []
    for raw in Path(path).read_text(encoding="utf-8").splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        body, _, reason = line.partition("#")
        body = body.strip()
        if ":" not in body:
            raise ValueError(f"malformed allowlist line (missing ':'): {raw!r}")
        path_suffix, _, rule = body.rpartition(":")
        path_suffix = path_suffix.strip()
        rule = rule.strip()
        if rule != "*" and rule not in RULES:
            raise ValueError(f"allowlist names unknown rule {rule!r}: {raw!r}")
        entries.append(
            AllowEntry(path_suffix=path_suffix, rule=rule, reason=reason.strip())
        )
    return entries


def lint_paths(
    paths: Iterable,
    allowlist: Optional[Sequence[AllowEntry]] = None,
) -> List[LintFinding]:
    """Lint every ``.py`` file under ``paths``, filtering allowlisted hits."""
    allowlist = list(allowlist) if allowlist else []
    findings: List[LintFinding] = []
    for file_path in iter_python_files(paths):
        for finding in lint_file(file_path):
            if any(entry.matches(finding) for entry in allowlist):
                continue
            findings.append(finding)
    return findings


def render_findings(findings: Sequence[LintFinding]) -> str:
    """Human-readable report (one line per finding + a summary)."""
    lines = [str(f) for f in findings]
    by_rule: Dict[str, int] = {}
    for f in findings:
        by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
    if findings:
        summary = ", ".join(f"{rule}: {n}" for rule, n in sorted(by_rule.items()))
        lines.append(f"{len(findings)} finding(s) ({summary})")
    else:
        lines.append("clean: no determinism hazards found")
    return "\n".join(lines)


def findings_to_json(findings: Sequence[LintFinding]) -> str:
    """Machine-readable report (the CI gate's format)."""
    return json.dumps(
        {
            "findings": [f.to_dict() for f in findings],
            "count": len(findings),
            "rules": RULES,
        },
        indent=2,
        sort_keys=True,
    )
