"""UVMSan: runtime invariant sanitizer for the simulated fault path.

The reproduction replaces the paper's instrumented driver with a
deterministic simulator, so its trustworthiness rests on the simulated
invariants actually holding on every run: the 56-outstanding-fault µTLB cap
(§3.2, Fig 3), fault-buffer drop-on-overflow accounting (§2.1, footnote 1),
the VABlock allocate/evict state machine (§2.2/§5.1), residency agreement
between driver state and the GPU page table, copy-engine byte conservation,
and exact reconciliation of each :class:`BatchRecord`'s component timers
against the simulated clock (§3.1's per-batch timers).  UVMSan asserts all
of them *while the simulation runs*, so a refactor that silently breaks
reproduction fidelity fails loudly instead of producing plausible numbers.

Enablement comes from :class:`~repro.config.CheckConfig` (default off).
When disabled the engine installs :data:`NULL_SANITIZER`, whose hooks are
no-op methods — mirroring the ``obs`` layer's null instruments — and the
per-fault hot paths guard their hook calls on an attached-sanitizer ``None``
check, so a regular run pays nothing.  The sanitizer only ever *reads*
simulator state: the simulated timeline is bit-identical with it on or off.

Violations raise :class:`repro.errors.InvariantViolation` with clock/batch
context ("raise" mode) or accumulate on :attr:`Sanitizer.violations`
("report" mode, used by ``repro validate``), and always increment the
``uvm_san_violations_total`` metric.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import InvariantViolation
from ..units import PAGE_SIZE
from ..core.vablock import VABlockPhase, legal_transition

#: Absolute + relative float tolerance for timer reconciliation: component
#: costs are summed in a different order by the clock than by
#: ``BatchRecord.service_time``, so allow double-rounding slack only.
_ABS_TOL = 1e-6
_REL_TOL = 1e-9


class NullSanitizer:
    """Disabled sanitizer: every hook is a no-op (the ``CheckConfig`` off
    path).  Kept attribute-compatible with :class:`Sanitizer` so call sites
    never branch on configuration."""

    enabled = False
    violations: List[InvariantViolation] = []
    total_violations = 0

    def on_batch_start(self, driver, record) -> None:
        pass

    def on_batch_end(self, driver, record, outcome=None) -> None:
        pass

    def on_batch_abort(self, driver, record) -> None:
        pass

    def on_block_allocated(self, block) -> None:
        pass

    def on_block_evicted(self, block) -> None:
        pass

    def on_utlb(self, utlb) -> None:
        pass

    def on_fault_buffer(self, buffer) -> None:
        pass

    def on_ce_burst(self, direction, run_lengths, nbytes, cost) -> None:
        pass

    def on_round(self, engine) -> None:
        pass

    def check_system(self, engine) -> None:
        pass

    def resync(self, engine) -> None:
        pass

    def summary(self) -> dict:
        return {"enabled": False, "violations": 0, "by_rule": {}}


NULL_SANITIZER = NullSanitizer()


class Sanitizer:
    """Active UVMSan checker (see module docstring for the invariant set)."""

    enabled = True

    def __init__(self, config, clock, obs=None) -> None:
        """``config`` is a :class:`~repro.config.CheckConfig` with
        ``enabled=True``; ``clock`` the system's :class:`SimClock`; ``obs``
        an optional :class:`~repro.obs.Observability` for the violation
        counter."""
        self.config = config
        self.clock = clock
        self.mode = config.mode
        self.violations: List[InvariantViolation] = []
        self.total_violations = 0
        if obs is not None:
            self._m_violations = obs.metrics.counter(
                "uvm_san_violations_total",
                "UVMSan invariant violations detected",
                labels=("rule",),
            )
        else:  # standalone use (tests driving the sanitizer directly)
            from ..obs.metrics import MetricsRegistry

            self._m_violations = MetricsRegistry(enabled=False).counter(
                "uvm_san_violations_total", "", labels=("rule",)
            )
        from ..obs.flight import NULL_FLIGHT

        #: Flight recorder: violations land in the crash-bundle ring too.
        self._flight = obs.flight if obs is not None else NULL_FLIGHT
        #: Monotonicity watermark for the shared simulated clock.
        self._last_clock = clock.now
        #: Context: batch currently being serviced (None between batches).
        self._batch_id: Optional[int] = None
        self._last_batch_id = -1
        #: Copy-engine byte counters snapshotted at batch start.
        self._ce_h2d0 = 0
        self._ce_d2h0 = 0
        #: Last phase observed per block — transitions that bypass the
        #: allocate/evict hooks (illegal REGISTERED→RESIDENT jumps) show up
        #: as illegal edges at the next scan.
        self._phases: Dict[int, VABlockPhase] = {}
        #: Highest allocation stamp seen (stamps must be strictly monotonic).
        self._max_stamp = 0

    # ------------------------------------------------------------ reporting

    def _violate(self, rule: str, detail: str, **context) -> None:
        violation = InvariantViolation(
            rule,
            detail,
            clock_usec=self.clock.now,
            batch_id=self._batch_id,
            context=context,
        )
        self._m_violations.labels(rule).inc()
        self._flight.record("san.violation", rule, self._batch_id)
        self.total_violations += 1
        if self.mode == "raise":
            raise violation
        if len(self.violations) < self.config.max_violations:
            self.violations.append(violation)

    def summary(self) -> dict:
        """Violation roll-up for ``repro validate`` output."""
        by_rule: Dict[str, int] = {}
        for v in self.violations:
            by_rule[v.rule] = by_rule.get(v.rule, 0) + 1
        return {
            "enabled": True,
            "mode": self.mode,
            "violations": self.total_violations,
            "by_rule": by_rule,
        }

    # ----------------------------------------------------------- primitives

    def _check_clock(self) -> None:
        now = self.clock.now
        if now < self._last_clock:
            self._violate(
                "clock",
                f"simulated clock moved backwards: {now:.6f} < "
                f"{self._last_clock:.6f}",
            )
        self._last_clock = max(self._last_clock, now)

    def on_utlb(self, utlb) -> None:
        """Per-µTLB cap and bookkeeping agreement (paper §3.2, Fig 3)."""
        if utlb.outstanding < 0 or utlb.outstanding > utlb.limit:
            self._violate(
                "utlb-cap",
                f"uTLB {utlb.utlb_id} outstanding={utlb.outstanding} outside "
                f"[0, {utlb.limit}]",
                utlb=utlb.utlb_id,
            )
        if utlb.outstanding != len(utlb.pending_pages):
            self._violate(
                "utlb-cap",
                f"uTLB {utlb.utlb_id} outstanding={utlb.outstanding} != "
                f"{len(utlb.pending_pages)} pending pages",
                utlb=utlb.utlb_id,
            )

    def on_fault_buffer(self, buffer) -> None:
        """Occupancy bound and push/fetch/flush conservation (§2.1).

        Under chaos testing (:mod:`repro.inject`) the identity gains two
        terms: entries the injector fabricated (``total_injected``, spurious
        duplicates) enter on the left, and arrivals an injected overflow
        storm swallowed (``total_injector_dropped``) leave on the right.
        Both are zero when injection is off, reducing to the plain identity.
        """
        occupancy = len(buffer)
        if occupancy > buffer.capacity:
            self._violate(
                "fault-buffer",
                f"buffer occupancy {occupancy} exceeds capacity "
                f"{buffer.capacity}",
            )
        pushed = buffer.total_pushed + buffer.total_injected
        balance = (
            buffer.total_fetched
            + buffer.total_flush_dropped
            + buffer.total_injector_dropped
            + occupancy
        )
        if pushed != balance:
            self._violate(
                "fault-buffer",
                f"fault conservation broken: pushed {buffer.total_pushed} + "
                f"injected {buffer.total_injected} != fetched "
                f"{buffer.total_fetched} + flushed "
                f"{buffer.total_flush_dropped} + injector-dropped "
                f"{buffer.total_injector_dropped} + residual {occupancy}",
            )

    def on_ce_burst(self, direction, run_lengths, nbytes, cost) -> None:
        """Copy-engine burst sanity: page/byte agreement, non-negative cost."""
        expected = sum(n for n in run_lengths if n > 0) * PAGE_SIZE
        if nbytes != expected:
            self._violate(
                "ce-bytes",
                f"{direction} burst accounted {nbytes} bytes but runs total "
                f"{expected}",
                direction=direction,
            )
        if cost < 0.0 or (nbytes > 0 and cost <= 0.0):
            self._violate(
                "ce-bytes",
                f"{direction} burst of {nbytes} bytes has non-positive cost "
                f"{cost}",
                direction=direction,
            )

    # ---------------------------------------------------------- block events

    def on_block_allocated(self, block) -> None:
        """A VABlock just received a physical chunk (§5.1 allocate edge)."""
        old = self._phases.get(block.block_id, VABlockPhase.REGISTERED)
        if old is not VABlockPhase.REGISTERED:
            # Unlike the generic scan, the allocate hook permits no
            # self-transition: granting a fresh chunk to a block already in
            # phase `old` is a double allocation (or an eviction the
            # sanitizer never saw).
            self._violate(
                "vablock-state",
                f"block {block.block_id} illegal transition {old.value} -> "
                "allocated",
                block=block.block_id,
            )
        if block.gpu_chunk is None:
            self._violate(
                "vablock-state",
                f"block {block.block_id} reported allocated without a chunk",
                block=block.block_id,
            )
        if block.resident_pages:
            self._violate(
                "vablock-state",
                f"block {block.block_id} allocated a fresh chunk while "
                f"{len(block.resident_pages)} pages were already resident",
                block=block.block_id,
            )
        if block.alloc_stamp <= self._max_stamp:
            # Stamps come from VABlockManager.next_stamp and must strictly
            # increase across allocations (LRU ordering depends on it).
            self._violate(
                "vablock-state",
                f"block {block.block_id} allocation stamp "
                f"{block.alloc_stamp} not monotonic (last {self._max_stamp})",
                block=block.block_id,
            )
        self._max_stamp = max(self._max_stamp, block.alloc_stamp)
        self._phases[block.block_id] = VABlockPhase.ALLOCATED

    def on_block_evicted(self, block) -> None:
        """A VABlock just lost its chunk (§5.1 evict edge)."""
        if block.gpu_chunk is not None:
            self._violate(
                "vablock-state",
                f"block {block.block_id} evicted but still holds chunk "
                f"{block.gpu_chunk}",
                block=block.block_id,
            )
        if block.resident_pages:
            self._violate(
                "vablock-state",
                f"block {block.block_id} evicted with "
                f"{len(block.resident_pages)} pages still resident",
                block=block.block_id,
            )
        if block.evict_count < 1:
            self._violate(
                "vablock-state",
                f"block {block.block_id} evicted but evict_count is "
                f"{block.evict_count}",
                block=block.block_id,
            )
        self._phases[block.block_id] = VABlockPhase.REGISTERED

    # --------------------------------------------------------- batch bounds

    def on_batch_start(self, driver, record) -> None:
        self._check_clock()
        self._batch_id = record.batch_id
        if record.batch_id <= self._last_batch_id:
            self._violate(
                "batch-record",
                f"batch id {record.batch_id} not monotonic (last "
                f"{self._last_batch_id})",
            )
        self._last_batch_id = max(self._last_batch_id, record.batch_id)
        # Sum over the copy-engine pair: a mid-batch stuck-burst failover
        # moves traffic to the sibling, but byte conservation holds for the
        # pair as a whole.
        self._ce_h2d0 = sum(ce.bytes_h2d for ce in driver.device.copy_engines)
        self._ce_d2h0 = sum(ce.bytes_d2h for ce in driver.device.copy_engines)

    def on_batch_end(self, driver, record, outcome=None) -> None:
        self._check_clock()
        self._check_record(driver, record, outcome)
        self._check_ce_reconciliation(driver, record)
        self._check_retry_bounds(driver, record)
        self.on_fault_buffer(driver.device.fault_buffer)
        for utlb in driver.device.utlbs:
            self.on_utlb(utlb)
        self._scan_blocks(driver)
        self._batch_id = None

    def on_batch_abort(self, driver, record) -> None:
        """A batch raised mid-service (fail-fast exhaustion, injected fault).

        The record is partial — component timers stopped wherever the
        exception unwound, counters cover only the work that happened — so
        the reconciliation identities of :meth:`on_batch_end` do not apply.
        Only the envelope and the abort marking are checkable.
        """
        self._check_clock()
        if not record.aborted:
            self._violate(
                "batch-record",
                f"batch {record.batch_id} closed via the abort path without "
                "being marked aborted",
            )
        if record.t_end < record.t_start:
            self._violate(
                "batch-record",
                f"aborted batch {record.batch_id} ends ({record.t_end:.6f}) "
                f"before it starts ({record.t_start:.6f})",
            )
        self._batch_id = None

    def _check_record(self, driver, record, outcome) -> None:
        """Counter identities and timer reconciliation for one record."""
        if record.t_end < record.t_start:
            self._violate(
                "batch-record",
                f"batch {record.batch_id} ends ({record.t_end:.6f}) before "
                f"it starts ({record.t_start:.6f})",
            )
        if record.num_faults_unique > record.num_faults_raw:
            self._violate(
                "batch-record",
                f"batch {record.batch_id}: {record.num_faults_unique} unique "
                f"faults exceed {record.num_faults_raw} raw",
            )
        if record.num_faults_raw > 0:
            if (
                record.num_faults_unique + record.duplicate_count
                != record.num_faults_raw
            ):
                self._violate(
                    "batch-record",
                    f"batch {record.batch_id}: unique "
                    f"{record.num_faults_unique} + duplicates "
                    f"{record.duplicate_count} != raw {record.num_faults_raw}",
                )
            if record.t_first_fault > record.t_last_fault:
                self._violate(
                    "batch-record",
                    f"batch {record.batch_id}: first fault arrives after the "
                    "last",
                )
            if record.vablock_fault_counts is not None and not record.hinted:
                total = int(record.vablock_fault_counts.sum())
                if total != record.num_faults_unique:
                    self._violate(
                        "batch-record",
                        f"batch {record.batch_id}: per-block fault counts sum "
                        f"to {total}, not {record.num_faults_unique}",
                    )
        if record.bytes_h2d != record.pages_migrated_h2d * PAGE_SIZE:
            self._violate(
                "batch-record",
                f"batch {record.batch_id}: {record.bytes_h2d} h2d bytes vs "
                f"{record.pages_migrated_h2d} pages",
            )
        if outcome is not None and record.dropped_at_flush != len(
            outcome.dropped_faults
        ):
            self._violate(
                "batch-record",
                f"batch {record.batch_id}: dropped_at_flush "
                f"{record.dropped_at_flush} != {len(outcome.dropped_faults)} "
                "flushed faults",
            )
        # Exact timer reconciliation (§3.1): for the serial driver with
        # synchronous unmapping, the component timers must tile the batch
        # envelope exactly.  The parallel-driver and async-unmap ablations
        # account work the clock does not serialize, so the sum may only
        # exceed the envelope.
        duration = record.duration
        service = record.service_time
        tol = _ABS_TOL + _REL_TOL * max(abs(duration), abs(service))
        serial = (
            driver.config.driver.service_threads == 1
            and not driver.config.driver.async_unmap
        )
        if serial and abs(service - duration) > tol:
            self._violate(
                "time-reconcile",
                f"batch {record.batch_id}: component timers sum to "
                f"{service:.6f}us but the batch envelope is "
                f"{duration:.6f}us",
            )
        elif not serial and service < duration - tol:
            self._violate(
                "time-reconcile",
                f"batch {record.batch_id}: component timers ({service:.6f}us) "
                f"cover less than the batch envelope ({duration:.6f}us)",
            )

    def _check_retry_bounds(self, driver, record) -> None:
        """Resilience counters must respect the configured retry policy.

        With injection off every resilience counter (and the retry-backoff
        timer) must be exactly zero — a non-zero value means the retry path
        ran without a fault source, i.e. phantom failures.  With injection
        on, each retry loop counts at most ``max_attempts`` failures per
        invocation; the number of loop invocations in one batch
        is bounded by the serviced VABlocks, evictions, and the prefetch
        scope fan-out, so a generous structural ceiling catches unbounded
        retry loops without false positives.
        """
        counters = (
            ("retries_dma", record.retries_dma),
            ("retries_transfer", record.retries_transfer),
            ("retries_populate", record.retries_populate),
            ("ce_failovers", record.ce_failovers),
            ("prefetch_fallbacks", record.prefetch_fallbacks),
            ("blocks_deferred", record.blocks_deferred),
        )
        if not driver.inj.enabled:
            for name, value in counters:
                if value != 0:
                    self._violate(
                        "retry-bounds",
                        f"batch {record.batch_id}: {name}={value} with fault "
                        "injection disabled",
                    )
            if record.time_retry_backoff != 0.0:
                self._violate(
                    "retry-bounds",
                    f"batch {record.batch_id}: time_retry_backoff="
                    f"{record.time_retry_backoff} with fault injection "
                    "disabled",
                )
            return
        cfg = driver.config.driver
        scope = cfg.prefetch_scope_blocks
        # Retry-loop invocations: one DMA map + one transfer per serviced
        # block, one d2h per eviction, one DMA + transfer per speculative
        # scope neighbour, plus slack for hinted/advise paths.
        loops = (record.num_vablocks + record.evictions + 2) * (2 * scope + 2)
        bound = cfg.retry_max_attempts * max(loops, 1)
        for name, value in counters[:4]:
            if value > bound:
                self._violate(
                    "retry-bounds",
                    f"batch {record.batch_id}: {name}={value} exceeds the "
                    f"structural retry ceiling {bound} "
                    f"(max_attempts={cfg.retry_max_attempts})",
                )
        if record.retries_populate > max(record.num_vablocks, 1):
            self._violate(
                "retry-bounds",
                f"batch {record.batch_id}: retries_populate="
                f"{record.retries_populate} exceeds one ENOMEM per serviced "
                f"VABlock ({record.num_vablocks})",
            )

    def _check_ce_reconciliation(self, driver, record) -> None:
        """Bytes the copy engines moved during the batch must equal the
        record's migration accounting (byte conservation)."""
        ces = driver.device.copy_engines
        h2d_delta = sum(ce.bytes_h2d for ce in ces) - self._ce_h2d0
        d2h_delta = sum(ce.bytes_d2h for ce in ces) - self._ce_d2h0
        if h2d_delta != record.bytes_h2d:
            self._violate(
                "ce-bytes",
                f"batch {record.batch_id}: copy engine moved {h2d_delta} h2d "
                f"bytes but the record accounts {record.bytes_h2d}",
            )
        if d2h_delta != record.bytes_d2h:
            self._violate(
                "ce-bytes",
                f"batch {record.batch_id}: copy engine moved {d2h_delta} d2h "
                f"bytes but the record accounts {record.bytes_d2h}",
            )

    # --------------------------------------------------------- global scans

    def _scan_blocks(self, driver) -> None:
        """VABlock state machine + residency/page-table/chunk consistency."""
        device = driver.device
        seen_chunks: Dict[int, int] = {}
        tracked_pages = set()
        allocated_blocks = 0
        for block in driver.vablocks.blocks():
            phase = block.phase
            old = self._phases.get(block.block_id, VABlockPhase.REGISTERED)
            if not legal_transition(old, phase):
                self._violate(
                    "vablock-state",
                    f"block {block.block_id} jumped {old.value} -> "
                    f"{phase.value} without passing the allocation path",
                    block=block.block_id,
                )
            self._phases[block.block_id] = phase
            if not block.resident_pages <= block.valid_pages:
                stray = next(iter(block.resident_pages - block.valid_pages))
                self._violate(
                    "residency",
                    f"block {block.block_id} has resident page {stray} "
                    "outside its valid range",
                    block=block.block_id,
                )
            if block.gpu_chunk is None and block.resident_pages:
                self._violate(
                    "vablock-state",
                    f"block {block.block_id} has "
                    f"{len(block.resident_pages)} resident pages but no "
                    "physical chunk",
                    block=block.block_id,
                )
            if block.gpu_chunk is not None:
                allocated_blocks += 1
                if block.gpu_chunk in seen_chunks:
                    self._violate(
                        "memory",
                        f"blocks {seen_chunks[block.gpu_chunk]} and "
                        f"{block.block_id} share physical chunk "
                        f"{block.gpu_chunk}",
                        block=block.block_id,
                    )
                seen_chunks[block.gpu_chunk] = block.block_id
            double = block.resident_pages & block.remote_pages
            if double:
                self._violate(
                    "residency",
                    f"block {block.block_id} page {next(iter(double))} is "
                    "both migrated and remote-mapped",
                    block=block.block_id,
                )
            tracked_pages |= block.resident_pages
            tracked_pages |= block.remote_pages
        if allocated_blocks != device.chunks.used_chunks:
            self._violate(
                "memory",
                f"{allocated_blocks} GPU-allocated blocks vs "
                f"{device.chunks.used_chunks} chunks in use",
            )
        resident = device.page_table.resident
        missing = tracked_pages - resident
        if missing:
            self._violate(
                "residency",
                f"page {next(iter(missing))} tracked as resident by its "
                "VABlock but absent from the GPU page table "
                f"({len(missing)} total)",
            )
        orphaned = resident - tracked_pages
        if orphaned:
            self._violate(
                "residency",
                f"page {next(iter(orphaned))} mapped in the GPU page table "
                f"but tracked by no VABlock ({len(orphaned)} total)",
            )

    # ------------------------------------------------------------ engine

    def on_round(self, engine) -> None:
        """Cheap per-round checks after each GPU fault-generation window."""
        self._check_clock()
        for utlb in engine.device.utlbs:
            self.on_utlb(utlb)
        self.on_fault_buffer(engine.device.fault_buffer)

    def check_system(self, engine) -> None:
        """Full consistency sweep (end of launch / on demand)."""
        self._check_clock()
        for utlb in engine.device.utlbs:
            self.on_utlb(utlb)
        self.on_fault_buffer(engine.device.fault_buffer)
        self._scan_blocks(engine.driver)
        self._check_engine_counters(engine)

    def _check_engine_counters(self, engine) -> None:
        """Engine-side resilience counters obey the no-phantom-failure rule.

        Same contract as the per-batch retry-bounds check: with injection
        off, the CPU-touch D2H retry path must never have fired.
        """
        counters = getattr(engine, "counters", None)
        if counters is None or engine.injector.enabled:
            return
        for name, value in counters.as_dict().items():
            if value != 0:
                self._violate(
                    "retry-bounds",
                    f"engine counter {name}={value} with fault injection "
                    "disabled",
                )

    def resync(self, engine) -> None:
        """Re-baseline internal watermarks after a checkpoint restore.

        A restore legitimately rewinds the simulated clock, batch ids, block
        phases, and allocation stamps; without a resync the monotonicity
        checks would flag the rewind itself.  Violations already recorded
        stay recorded — restore never launders a real violation.
        """
        driver = engine.driver
        self._last_clock = engine.clock.now
        self._batch_id = None
        self._last_batch_id = driver._batch_id - 1
        self._phases = {
            block.block_id: block.phase for block in driver.vablocks.blocks()
        }
        self._max_stamp = driver.vablocks._stamp
        self._ce_h2d0 = sum(ce.bytes_h2d for ce in driver.device.copy_engines)
        self._ce_d2h0 = sum(ce.bytes_d2h for ce in driver.device.copy_engines)


def make_sanitizer(config, clock, obs=None):
    """Build the configured sanitizer: active, or the shared null object."""
    if config is None or not config.enabled:
        return NULL_SANITIZER
    # Arm the copy-engine run-builder's sortedness assertion alongside the
    # sanitizer (sticky for the process: a cheap precondition check, and
    # other engines in the process may share the copy-engine module).
    from ..gpu.copy_engine import enable_sortedness_checks

    enable_sortedness_checks(True)
    return Sanitizer(config, clock, obs=obs)
