"""Analysis engine: one IR build, every pass, one filtered report.

Pipeline (the order matters and is part of the contract):

1. build the :class:`~repro.check.program.ir.ProjectIR` over the target
   paths (optionally restricted to *reporting* on changed files only —
   the IR is always whole-program so interprocedural passes keep their
   cross-file view);
2. run the analysis passes → raw findings;
3. run :class:`~repro.check.program.hygiene.SuppressionHygienePass`
   against the raw findings (staleness is judged before anything is
   filtered away);
4. apply ``# repro: lint-ok[...]`` line suppressions, then the allowlist,
   then fingerprint what remains;
5. subtract the committed baseline, keeping counts and stale entries for
   the report.

``uvm-repro lint`` keeps its exit-code contract on top of the result:
0 = no new findings, 1 = new findings, 2 = usage/configuration error.
"""

from __future__ import annotations

import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import time

from ..lint import AllowEntry, LintFinding, _SUPPRESS_RE
from .base import AnalysisPass, Finding, Rule, fingerprint_findings, normalize_path
from .baseline import BaselineEntry, apply_baseline
from .dimensions import DimensionsPass
from .hygiene import SuppressionHygienePass
from .ir import ProjectIR, build_project_ir
from .lifecycle import LifecyclePass
from .local_rules import LocalRulesPass
from .metric_drift import MetricDriftPass
from .parity import ParityPass
from .shared_state import SharedStatePass
from .snapshot import SnapshotCoveragePass
from .taint import SimTaintPass


def default_passes() -> List[AnalysisPass]:
    """The standard pass roster, hygiene excluded (the engine appends it)."""
    return [
        LocalRulesPass(),
        SimTaintPass(),
        MetricDriftPass(),
        SharedStatePass(),
        DimensionsPass(),
        LifecyclePass(),
        SnapshotCoveragePass(),
        ParityPass(),
    ]


#: Analysis-seed files: editing one changes what the passes report in
#: *other* files (unit signatures, the metric catalog, the protocol
#: catalog, the checkpoint capture lists), so a ``--changed-only`` run
#: restricted to the diff would report a silently stale clean result.
SEED_SUFFIXES = (
    "repro/units.py",
    "repro/obs/catalog.py",
    "repro/check/program/protocols.py",
    "repro/sim/checkpoint.py",
    "repro/check/lint_allow.txt",
    "repro/check/lint_baseline.json",
)


def seeds_in_changed(changed: Sequence[str]) -> List[str]:
    """The analysis seeds present in a changed-file list."""
    out = []
    for name in changed:
        norm = normalize_path(name)
        if any(norm.endswith(seed) for seed in SEED_SUFFIXES):
            out.append(name)
    return out


def all_rules(passes: Sequence[AnalysisPass] = None) -> List[Rule]:
    """Every rule the engine can report, hygiene included, id-sorted."""
    roster = list(passes) if passes is not None else default_passes()
    roster.append(SuppressionHygienePass(known_rules=()))
    rules: Dict[str, Rule] = {}
    for p in roster:
        for rule in p.rules:
            rules[rule.id] = rule
    return [rules[k] for k in sorted(rules)]


@dataclass
class AnalysisReport:
    """Everything one engine run produced."""

    findings: List[Finding]            # new findings (post-everything)
    baselined: List[Finding]           # matched by the committed baseline
    stale_baseline: List[BaselineEntry]
    rules: List[Rule]
    stats: Dict[str, int] = field(default_factory=dict)
    changed_only: bool = False
    #: pass name → findings it contributed to ``findings``.
    by_pass: Dict[str, int] = field(default_factory=dict)
    #: on-disk path → checkout-independent path used in fingerprints.
    stable_paths: Dict[str, str] = field(default_factory=dict)
    #: pass name → wall seconds spent in its ``run`` (plus ``"ir"`` for the
    #: IR build and ``"total"``); the bench gate holds the sum under a
    #: ceiling so the analysis cannot quietly outgrow CI.
    timings: Dict[str, float] = field(default_factory=dict)
    #: pass name → raw finding count before suppression/allowlist/baseline
    #: filtering (``by_pass`` only counts what survived).
    raw_by_pass: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.findings


def _apply_line_suppressions(
    findings: List[Finding], sources: Dict[str, List[str]]
) -> List[Finding]:
    out: List[Finding] = []
    for f in findings:
        lines = sources.get(f.path)
        if lines and 1 <= f.line <= len(lines):
            match = _SUPPRESS_RE.search(lines[f.line - 1])
            if match is not None:
                named = match.group(1)
                if named is None:
                    continue
                allowed = {r.strip() for r in named.split(",")}
                if f.rule in allowed:
                    continue
        out.append(f)
    return out


def _apply_allowlist(
    findings: List[Finding], allowlist: Sequence[AllowEntry]
) -> List[Finding]:
    if not allowlist:
        return list(findings)
    out = []
    for f in findings:
        shim = LintFinding(rule=f.rule, path=f.path, line=f.line, col=f.col,
                           message=f.message)
        if any(entry.matches(shim) for entry in allowlist):
            continue
        out.append(f)
    return out


def changed_files(base_ref: str = "HEAD",
                  cwd: Optional[Path] = None) -> Optional[List[str]]:
    """``git diff --name-only <base_ref>`` plus untracked files, or ``None``
    when git is unavailable / not a checkout (callers fall back to full)."""
    try:
        diff = subprocess.run(
            ["git", "diff", "--name-only", base_ref],
            capture_output=True, text=True, timeout=30,
            cwd=str(cwd) if cwd else None,
        )
        if diff.returncode != 0:
            return None
        untracked = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard"],
            capture_output=True, text=True, timeout=30,
            cwd=str(cwd) if cwd else None,
        )
        names = diff.stdout.splitlines()
        if untracked.returncode == 0:
            names += untracked.stdout.splitlines()
        return sorted({n.strip() for n in names if n.strip()})
    except (OSError, subprocess.SubprocessError):
        return None


def stable_path_map(ir: ProjectIR) -> Dict[str, str]:
    """On-disk module path → checkout-independent form (``repro/obs/spans.py``)
    so fingerprints — and therefore committed baselines — survive cloning the
    repo to a different absolute location."""
    out: Dict[str, str] = {}
    root = Path(ir.root).resolve()
    prefix = f"{ir.package}/" if ir.package else ""
    for _name, mod in sorted(ir.modules.items()):
        p = Path(mod.path)
        try:
            rel = p.resolve().relative_to(root).as_posix()
            out[str(mod.path)] = normalize_path(prefix + rel)
        except (ValueError, OSError):
            out[str(mod.path)] = p.name
    return out


def _restrict_to_changed(findings: List[Finding],
                         changed: List[str]) -> List[Finding]:
    suffixes = tuple(normalize_path(c) for c in changed)
    out = []
    for f in findings:
        norm = normalize_path(f.path)
        if any(norm.endswith(s) for s in suffixes):
            out.append(f)
    return out


def run_analysis(
    paths: Sequence,
    allowlist: Sequence[AllowEntry] = (),
    allowlist_path: str = "",
    baseline: Sequence[BaselineEntry] = (),
    passes: Optional[Sequence[AnalysisPass]] = None,
    changed: Optional[List[str]] = None,
    ir: Optional[ProjectIR] = None,
) -> AnalysisReport:
    """Run the whole-program analysis; see the module docstring for order."""
    # Wall timing is observability about the analysis itself, not simulated
    # state; the clock never feeds a finding or a fingerprint.
    t0 = time.perf_counter()  # repro: lint-ok[wall-clock]
    timings: Dict[str, float] = {}
    raw_by_pass: Dict[str, int] = {}
    if ir is None:
        ir = build_project_ir(paths)
    timings["ir"] = time.perf_counter() - t0  # repro: lint-ok[wall-clock]
    roster: List[AnalysisPass] = (
        list(passes) if passes is not None else default_passes()
    )

    raw: List[Finding] = []
    for p in roster:
        t_pass = time.perf_counter()  # repro: lint-ok[wall-clock]
        produced = p.run(ir)
        timings[p.name] = time.perf_counter() - t_pass  # repro: lint-ok[wall-clock]
        raw_by_pass[p.name] = len(produced)
        raw.extend(produced)

    hygiene = SuppressionHygienePass(
        known_rules=[r.id for p in roster for r in p.rules],
        allowlist=allowlist,
        allowlist_path=allowlist_path,
    )
    hygiene.raw_findings = list(raw)
    t_pass = time.perf_counter()  # repro: lint-ok[wall-clock]
    hygiene_findings = hygiene.run(ir)
    timings[hygiene.name] = time.perf_counter() - t_pass  # repro: lint-ok[wall-clock]
    raw_by_pass[hygiene.name] = len(hygiene_findings)
    raw.extend(hygiene_findings)

    sources: Dict[str, List[str]] = {
        str(mod.path): mod.lines for mod in ir.modules.values()
    }
    stable = stable_path_map(ir)
    filtered = _apply_line_suppressions(raw, sources)
    filtered = _apply_allowlist(filtered, allowlist)
    filtered = fingerprint_findings(filtered, sources, stable)

    report_changed = False
    if changed is not None:
        filtered = _restrict_to_changed(filtered, changed)
        report_changed = True

    new, baselined, stale = apply_baseline(filtered, baseline)
    if report_changed:
        # A partial view can't judge staleness: an entry whose finding
        # lives outside the diff is absent, not paid off.
        stale = []
    new.sort(key=lambda f: (f.path, f.line, f.col, f.rule))

    by_pass: Dict[str, int] = {}
    for f in new:
        by_pass[f.pass_name] = by_pass.get(f.pass_name, 0) + 1

    rule_catalog: Dict[str, Rule] = {}
    for p in list(roster) + [hygiene]:
        for rule in p.rules:
            rule_catalog[rule.id] = rule

    timings["total"] = time.perf_counter() - t0  # repro: lint-ok[wall-clock]
    return AnalysisReport(
        findings=new,
        baselined=baselined,
        stale_baseline=stale,
        rules=[rule_catalog[k] for k in sorted(rule_catalog)],
        stats=ir.stats(),
        changed_only=report_changed,
        by_pass=by_pass,
        stable_paths=stable,
        timings=timings,
        raw_by_pass=raw_by_pass,
    )


# ----------------------------------------------------------------- rendering


def render_report(report: AnalysisReport) -> str:
    """Human-readable multi-pass report."""
    lines = [str(f) for f in report.findings]
    if report.findings:
        per_pass = ", ".join(
            f"{name}: {n}" for name, n in sorted(report.by_pass.items())
        )
        lines.append(f"{len(report.findings)} finding(s) ({per_pass})")
    else:
        lines.append("clean: no determinism hazards found")
    if report.baselined:
        lines.append(
            f"baseline: absorbing {len(report.baselined)} known finding(s)"
        )
    if report.stale_baseline:
        lines.append(
            f"baseline: {len(report.stale_baseline)} stale entr"
            f"{'y' if len(report.stale_baseline) == 1 else 'ies'} — the "
            "debt was paid; prune with --write-baseline"
        )
    if report.changed_only:
        lines.append("(scope: changed files only; IR was whole-program)")
    return "\n".join(lines)


def report_to_json_dict(report: AnalysisReport) -> dict:
    """The machine-readable report (see docs/schemas/lint.schema.json)."""
    return {
        "version": 1,
        "findings": [f.to_dict() for f in report.findings],
        "count": len(report.findings),
        "rules": {rule.id: rule.description for rule in report.rules},
        "passes": sorted({rule.pass_name for rule in report.rules}),
        "baseline": {
            "matched": len(report.baselined),
            "stale": [entry.to_dict() for entry in report.stale_baseline],
        },
        "stats": report.stats,
        "changed_only": report.changed_only,
        "ok": report.ok,
        "timings": {
            name: round(seconds, 6)
            for name, seconds in sorted(report.timings.items())
        },
        "pass_findings": {
            name: {
                "raw": report.raw_by_pass.get(name, 0),
                "new": report.by_pass.get(name, 0),
            }
            for name in sorted(report.raw_by_pass)
        },
    }
