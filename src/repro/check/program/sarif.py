"""SARIF 2.1.0 export: findings as code-scanning annotations.

SARIF (Static Analysis Results Interchange Format, OASIS 2.1.0) is what CI
code-scanning UIs ingest; ``uvm-repro lint --format sarif`` emits one run
with the full rule catalog (ids, descriptions, default severity levels)
and one ``result`` per finding, carrying the engine's stable fingerprint
in ``partialFingerprints`` so scanning backends track findings across
commits the same way the committed baseline does.

Paths are emitted repo-relative against ``SRCROOT`` when the analyzed
files live under the current working directory, absolute otherwise.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence

from .base import Finding, Rule

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {"error": "error", "warning": "warning", "note": "note"}


def _artifact_uri(path: str, root: Path) -> Dict[str, str]:
    p = Path(path)
    try:
        rel = p.resolve().relative_to(root.resolve())
        return {"uri": rel.as_posix(), "uriBaseId": "SRCROOT"}
    except ValueError:
        return {"uri": p.as_posix()}


def to_sarif(
    findings: Sequence[Finding],
    rules: Sequence[Rule],
    tool_version: str = "1.0.0",
    root: Path = None,
) -> dict:
    """The findings as a SARIF 2.1.0 log dict (``json.dumps``-ready)."""
    root = root or Path.cwd()
    rule_index = {rule.id: i for i, rule in enumerate(rules)}
    results: List[dict] = []
    for f in findings:
        result = {
            "ruleId": f.rule,
            "level": _LEVELS.get(f.severity, "warning"),
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": _artifact_uri(f.path, root),
                        "region": {
                            "startLine": max(1, f.line),
                            "startColumn": max(1, f.col + 1),
                        },
                    }
                }
            ],
        }
        if f.rule in rule_index:
            result["ruleIndex"] = rule_index[f.rule]
        if f.fingerprint:
            result["partialFingerprints"] = {"uvmLint/v1": f.fingerprint}
        if f.pass_name:
            result["properties"] = {"pass": f.pass_name}
        results.append(result)

    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "uvm-repro-lint",
                        "informationUri":
                            "https://github.com/uvm-repro/uvm-repro",
                        "version": tool_version,
                        "rules": [
                            {
                                "id": rule.id,
                                "shortDescription": {"text": rule.description},
                                "defaultConfiguration": {
                                    "level": _LEVELS.get(rule.severity,
                                                         "warning")
                                },
                                "properties": {"pass": rule.pass_name},
                            }
                            for rule in rules
                        ],
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {"uri": root.resolve().as_uri() + "/"}
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }


def sarif_to_json(doc: dict) -> str:
    return json.dumps(doc, indent=2, sort_keys=True)
