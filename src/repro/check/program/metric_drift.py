"""``metric-drift``: cross-check metric/span usage against the obs catalog.

The observability layer registers families lazily at call sites
(``metrics.counter("uvm_faults_total", ..., labels=("kind",))``), which is
ergonomic but lets names and label sets drift silently: a renamed family
keeps "working" while every dashboard, reconciliation identity, and
cross-run diff quietly loses the series.  :mod:`repro.obs.catalog` is the
single declarative source of truth; this pass statically extracts every
registration and ``.span(...)`` site from the project IR and checks:

* ``metric-undeclared`` — a family name registered anywhere in the project
  that the catalog does not declare;
* ``metric-mismatch`` — kind or label-key set at a call site disagreeing
  with the declaration (including ``.labels(...)`` arity on chained calls);
* ``metric-unused`` — a declared family or span no call site ever emits
  (dead declaration, or the drifted half of a rename);
* ``span-undeclared`` — a ``.span("name", ...)`` name missing from
  ``SPAN_CATALOG``;
* ``metric-no-unit`` — a catalog entry (metric or span) without a ``unit``
  in the known vocabulary, which would leave the ``dimensions`` pass unable
  to check its emission arguments.

The catalog is discovered *inside the analyzed project*: any module-level
``METRIC_CATALOG`` / ``SPAN_CATALOG`` dict literal (parsed statically, no
import of analyzed code).  Projects without a catalog — loose files handed
to ``uvm-repro lint`` — skip the pass entirely.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .base import AnalysisPass, Finding, Rule
from .dims import UNIT_VOCAB
from .ir import ModuleInfo, ProjectIR

_REGISTER_METHODS = {"counter": "counter", "gauge": "gauge",
                     "histogram": "histogram"}

#: Span-recording call attributes: ``obs.span(...)``, ``spans.span(...)``
#: and the manual ``spans.record(...)`` variant.
_SPAN_METHODS = frozenset({"span"})
_SPAN_RECORD_METHODS = frozenset({"record"})


@dataclass
class _Declaration:
    kind: str
    labels: Tuple[str, ...]
    module: str
    line: int
    #: Declared measurement unit (``"bytes"``/``"pages"``/``"us"``/…), or
    #: None when the entry omits one.  The ``dimensions`` pass checks
    #: emission arguments against it; this pass checks it exists and is in
    #: :data:`repro.check.program.dims.UNIT_VOCAB`.
    unit: Optional[str] = None


@dataclass
class _UseSite:
    name: str
    kind: str
    labels: Optional[Tuple[str, ...]]  # None: no labels= literal at the site
    chained_arity: Optional[int]  # .labels(...) argument count when chained
    module: ModuleInfo
    line: int
    col: int


def _literal_str(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _literal_str_tuple(node: ast.AST) -> Optional[Tuple[str, ...]]:
    if isinstance(node, (ast.Tuple, ast.List)):
        out = []
        for elt in node.elts:
            value = _literal_str(elt)
            if value is None:
                return None
            out.append(value)
        return tuple(out)
    return None


def extract_catalogs(
    ir: ProjectIR,
) -> Tuple[Dict[str, _Declaration], Dict[str, _Declaration], Optional[str]]:
    """Statically parse METRIC_CATALOG / SPAN_CATALOG dict literals."""
    metrics: Dict[str, _Declaration] = {}
    spans: Dict[str, _Declaration] = {}
    catalog_module: Optional[str] = None
    for _name, mod in sorted(ir.modules.items()):
        for stmt in mod.tree.body:
            if not isinstance(stmt, ast.Assign):
                continue
            names = [t.id for t in stmt.targets if isinstance(t, ast.Name)]
            if "METRIC_CATALOG" in names and isinstance(stmt.value, ast.Dict):
                catalog_module = mod.name
                for key, value in zip(stmt.value.keys, stmt.value.values):
                    name = _literal_str(key)
                    if name is None:
                        continue
                    try:
                        spec = ast.literal_eval(value)
                    except (ValueError, SyntaxError):
                        continue
                    if not isinstance(spec, dict):
                        continue
                    unit = spec.get("unit")
                    metrics[name] = _Declaration(
                        kind=str(spec.get("kind", "counter")),
                        labels=tuple(spec.get("labels", ())),
                        module=mod.name,
                        line=key.lineno,
                        unit=str(unit) if unit is not None else None,
                    )
            if "SPAN_CATALOG" in names and isinstance(stmt.value, ast.Dict):
                catalog_module = catalog_module or mod.name
                for key, value in zip(stmt.value.keys, stmt.value.values):
                    name = _literal_str(key)
                    if name is None:
                        continue
                    unit: Optional[str] = None
                    try:
                        spec = ast.literal_eval(value)
                    except (ValueError, SyntaxError):
                        spec = None
                    if isinstance(spec, dict) and spec.get("unit") is not None:
                        unit = str(spec["unit"])
                    spans[name] = _Declaration(
                        kind="span", labels=(), module=mod.name,
                        line=key.lineno, unit=unit,
                    )
    return metrics, spans, catalog_module


def _iter_use_sites(ir: ProjectIR):
    """Yield every metric registration and span call in the project."""
    for _name, mod in sorted(ir.modules.items()):
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            attr = func.attr
            if attr in _REGISTER_METHODS and node.args:
                name = _literal_str(node.args[0])
                if name is None:
                    continue  # np.histogram(arr, bins) and friends
                labels: Optional[Tuple[str, ...]] = None
                for kw in node.keywords:
                    if kw.arg == "labels":
                        labels = _literal_str_tuple(kw.value)
                if labels is None and len(node.args) >= 3:
                    labels = _literal_str_tuple(node.args[2])
                yield _UseSite(
                    name=name, kind=_REGISTER_METHODS[attr], labels=labels,
                    chained_arity=None, module=mod, line=node.lineno,
                    col=node.col_offset,
                )
            elif attr == "labels" and isinstance(func.value, ast.Call):
                inner = func.value
                if (
                    isinstance(inner.func, ast.Attribute)
                    and inner.func.attr in _REGISTER_METHODS
                    and inner.args
                ):
                    name = _literal_str(inner.args[0])
                    if name is not None:
                        yield _UseSite(
                            name=name, kind=_REGISTER_METHODS[inner.func.attr],
                            labels=None, chained_arity=len(node.args),
                            module=mod, line=node.lineno, col=node.col_offset,
                        )
            elif attr in _SPAN_METHODS and node.args:
                name = _literal_str(node.args[0])
                if name is not None and _looks_like_span_receiver(func.value):
                    yield _UseSite(
                        name=name, kind="span", labels=None,
                        chained_arity=None, module=mod, line=node.lineno,
                        col=node.col_offset,
                    )
            elif attr in _SPAN_RECORD_METHODS and node.args:
                name = _literal_str(node.args[0])
                if name is not None and _is_spans_receiver(func.value):
                    yield _UseSite(
                        name=name, kind="span", labels=None,
                        chained_arity=None, module=mod, line=node.lineno,
                        col=node.col_offset,
                    )


def _looks_like_span_receiver(node: ast.AST) -> bool:
    """``obs.span`` / ``self.obs.span`` / ``spans.span`` — the receiver tail
    names an observability handle, so ``soup.span(...)`` elsewhere is not
    mistaken for a profiler call."""
    tail = node.attr if isinstance(node, ast.Attribute) else (
        node.id if isinstance(node, ast.Name) else ""
    )
    return tail in ("obs", "spans", "profiler") or tail.endswith("_spans")


def _is_spans_receiver(node: ast.AST) -> bool:
    tail = node.attr if isinstance(node, ast.Attribute) else (
        node.id if isinstance(node, ast.Name) else ""
    )
    return tail in ("spans", "profiler")


class MetricDriftPass(AnalysisPass):
    """Catalog ↔ call-site consistency for metric families and spans."""

    name = "metric-drift"
    RULE_UNDECLARED = Rule(
        "metric-undeclared", "metric-drift", "error",
        "metric family registered at a call site but missing from "
        "repro.obs METRIC_CATALOG",
    )
    RULE_MISMATCH = Rule(
        "metric-mismatch", "metric-drift", "error",
        "metric call site disagrees with the catalog declaration "
        "(kind, label keys, or .labels() arity)",
    )
    RULE_UNUSED = Rule(
        "metric-unused", "metric-drift", "warning",
        "declared metric family or span never emitted by any call site",
    )
    RULE_SPAN_UNDECLARED = Rule(
        "span-undeclared", "metric-drift", "error",
        "span name used at a call site but missing from SPAN_CATALOG",
    )
    RULE_NO_UNIT = Rule(
        "metric-no-unit", "metric-drift", "error",
        "catalog entry declares no measurement unit (or one outside the "
        "known unit vocabulary) — the dimensions pass cannot check its "
        "emission arguments",
    )
    rules = (RULE_UNDECLARED, RULE_MISMATCH, RULE_UNUSED,
             RULE_SPAN_UNDECLARED, RULE_NO_UNIT)

    def run(self, ir: ProjectIR) -> List[Finding]:
        metrics, spans, catalog_module = extract_catalogs(ir)
        if catalog_module is None:
            return []
        findings: List[Finding] = []
        used_metrics: Dict[str, int] = {}
        used_spans: Dict[str, int] = {}

        for site in _iter_use_sites(ir):
            if site.kind == "span":
                used_spans[site.name] = used_spans.get(site.name, 0) + 1
                if spans and site.name not in spans:
                    findings.append(
                        self.make_finding(
                            self.RULE_SPAN_UNDECLARED,
                            path=str(site.module.path),
                            line=site.line, col=site.col,
                            message=f"span {site.name!r} is not declared in "
                                    f"SPAN_CATALOG ({catalog_module})",
                        )
                    )
                continue
            decl = metrics.get(site.name)
            if site.chained_arity is None:
                used_metrics[site.name] = used_metrics.get(site.name, 0) + 1
            if decl is None:
                if site.chained_arity is None:
                    findings.append(
                        self.make_finding(
                            self.RULE_UNDECLARED,
                            path=str(site.module.path),
                            line=site.line, col=site.col,
                            message=f"metric family {site.name!r} is not "
                                    f"declared in METRIC_CATALOG "
                                    f"({catalog_module})",
                        )
                    )
                continue
            if site.kind != decl.kind:
                findings.append(
                    self.make_finding(
                        self.RULE_MISMATCH,
                        path=str(site.module.path),
                        line=site.line, col=site.col,
                        message=f"{site.name!r} declared as {decl.kind} but "
                                f"registered here as {site.kind}",
                    )
                )
            if site.labels is not None and site.labels != decl.labels:
                findings.append(
                    self.make_finding(
                        self.RULE_MISMATCH,
                        path=str(site.module.path),
                        line=site.line, col=site.col,
                        message=f"{site.name!r} declared with label keys "
                                f"{decl.labels!r} but registered here with "
                                f"{site.labels!r}",
                    )
                )
            if site.chained_arity is not None \
                    and site.chained_arity != len(decl.labels):
                findings.append(
                    self.make_finding(
                        self.RULE_MISMATCH,
                        path=str(site.module.path),
                        line=site.line, col=site.col,
                        message=f"{site.name!r}.labels() called with "
                                f"{site.chained_arity} value(s) but the "
                                f"family declares {len(decl.labels)} "
                                f"label key(s)",
                    )
                )

        for name, decl in metrics.items():
            if name not in used_metrics:
                mod = ir.modules.get(decl.module)
                findings.append(
                    self.make_finding(
                        self.RULE_UNUSED,
                        path=str(mod.path) if mod else decl.module,
                        line=decl.line, col=0,
                        message=f"metric family {name!r} is declared but no "
                                "call site ever registers or emits it",
                    )
                )
        for name, decl in spans.items():
            if name not in used_spans:
                mod = ir.modules.get(decl.module)
                findings.append(
                    self.make_finding(
                        self.RULE_UNUSED,
                        path=str(mod.path) if mod else decl.module,
                        line=decl.line, col=0,
                        message=f"span {name!r} is declared but never "
                                "recorded by any call site",
                    )
                )
        for catalog, what in ((metrics, "metric family"), (spans, "span")):
            for name, decl in catalog.items():
                if decl.unit in UNIT_VOCAB:
                    continue
                mod = ir.modules.get(decl.module)
                detail = (
                    "declares no unit"
                    if decl.unit is None
                    else f"declares unknown unit {decl.unit!r}"
                )
                findings.append(
                    self.make_finding(
                        self.RULE_NO_UNIT,
                        path=str(mod.path) if mod else decl.module,
                        line=decl.line, col=0,
                        message=f"{what} {name!r} {detail}; pick one of the "
                                "units in repro.check.program.dims.UNIT_VOCAB",
                    )
                )
        return findings
