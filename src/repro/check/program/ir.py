"""Project IR: module index, symbol tables, and the intra-package call graph.

The whole-program passes (:mod:`repro.check.program`) need to see across
module boundaries — a wall-clock read laundered through a helper in another
file, a metric name used three packages away from its declaration, a global
mutated five calls below a multiprocessing worker entry point.  This module
builds the shared substrate they all walk:

* :class:`ModuleInfo` — one parsed module: source, AST, an import table
  mapping every local alias to its fully qualified target, the module-level
  globals (with a mutability classification), and every function/method as
  a :class:`FunctionInfo`;
* :class:`ProjectIR` — the package as a whole: the module index keyed by
  dotted name, a flat function table keyed by qualified name, and the
  direct call graph (``qname → set of callee qnames``) produced by
  :func:`resolve_call` over every call site.

Resolution is intentionally *direct-call* precise: plain names, imported
names (including one level of re-export chasing through ``__init__``
modules), dotted module attributes, ``self.``/``cls.`` methods of the
enclosing class, and class instantiation (edged to ``__init__``).  Dynamic
dispatch (``registry[name]()``, instance attributes holding callables) is
left unresolved — the passes that ride on the graph treat unresolved calls
conservatively instead of guessing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

#: Module-level value expressions classified as mutable containers for the
#: shared-state pass.  Classes are deliberately absent: a module-level
#: instance *may* be mutable, but flagging every one drowns the signal.
_MUTABLE_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter",
     "OrderedDict"}
)


@dataclass
class CallSite:
    """One call expression inside a function body."""

    node: ast.Call
    #: Fully qualified callee (``repro.sim.clock.SimClock.advance``) when the
    #: target resolved statically, else ``None``.
    callee: Optional[str]
    #: Textual form of the call target (``self._service_batch`` /
    #: ``pool.map``) — kept for diagnostics and name-based heuristics.
    raw: str

    @property
    def line(self) -> int:
        return self.node.lineno


@dataclass
class FunctionInfo:
    """One function or method, addressable by qualified name."""

    qname: str
    module: str
    #: Dotted name inside the module (``UvmDriver.service_batch``).
    local_name: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    #: Positional parameter names, ``self``/``cls`` included for methods.
    params: List[str] = field(default_factory=list)
    #: Enclosing class local name, or None for module-level functions.
    owner_class: Optional[str] = None
    calls: List[CallSite] = field(default_factory=list)

    @property
    def line(self) -> int:
        return self.node.lineno


@dataclass
class GlobalVar:
    """One module-level binding."""

    qname: str
    module: str
    name: str
    line: int
    mutable: bool


@dataclass
class ModuleInfo:
    """One parsed module of the analyzed project."""

    name: str
    path: Path
    source: str
    tree: ast.Module
    #: local alias → fully qualified target.  Targets are either module
    #: names (``import x.y as z`` → ``z: x.y``) or symbol names
    #: (``from .spec import CampaignCell`` → ``repro.campaign.spec.CampaignCell``).
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: class local name → {method name → FunctionInfo}
    classes: Dict[str, Dict[str, FunctionInfo]] = field(default_factory=dict)
    globals: Dict[str, GlobalVar] = field(default_factory=dict)

    @property
    def lines(self) -> List[str]:
        return self.source.splitlines()


@dataclass
class ProjectIR:
    """The analyzed project: modules, functions, and the direct call graph."""

    root: Path
    #: Dotted package prefix of the analyzed tree ("repro", or "" for a
    #: loose collection of standalone files).
    package: str
    modules: Dict[str, ModuleInfo] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    call_graph: Dict[str, Set[str]] = field(default_factory=dict)

    # -------------------------------------------------------------- queries

    def module_of(self, qname: str) -> Optional[ModuleInfo]:
        """The module containing a qualified function/global name."""
        parts = qname.split(".")
        for cut in range(len(parts), 0, -1):
            mod = self.modules.get(".".join(parts[:cut]))
            if mod is not None:
                return mod
        return None

    def reachable_from(self, roots: Iterable[str]) -> Set[str]:
        """Transitive closure of the call graph from ``roots``."""
        seen: Set[str] = set()
        frontier = [r for r in roots if r in self.functions]
        while frontier:
            fn = frontier.pop()
            if fn in seen:
                continue
            seen.add(fn)
            frontier.extend(self.call_graph.get(fn, ()))
        return seen

    def stats(self) -> Dict[str, int]:
        edges = sum(len(v) for v in self.call_graph.values())
        resolved = sum(
            1 for f in self.functions.values() for c in f.calls if c.callee
        )
        total = sum(len(f.calls) for f in self.functions.values())
        return {
            "modules": len(self.modules),
            "functions": len(self.functions),
            "call_sites": total,
            "resolved_calls": resolved,
            "call_edges": edges,
        }


# ---------------------------------------------------------------- building


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_mutable_value(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        fn = node.func
        name = fn.id if isinstance(fn, ast.Name) else (
            fn.attr if isinstance(fn, ast.Attribute) else None
        )
        return name in _MUTABLE_CONSTRUCTORS
    return False


def _collect_imports(module_name: str, tree: ast.Module) -> Dict[str, str]:
    table: Dict[str, str] = {}
    pkg_parts = module_name.split(".")[:-1]  # the containing package
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                table[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                # Relative: level 1 = containing package, 2 = its parent, …
                base_parts = pkg_parts[: len(pkg_parts) - (node.level - 1)]
                if node.module:
                    base_parts = base_parts + node.module.split(".")
                base = ".".join(base_parts)
            else:
                base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                table[local] = f"{base}.{alias.name}" if base else alias.name
    return table


def _positional_params(node) -> List[str]:
    args = node.args
    names = [a.arg for a in getattr(args, "posonlyargs", [])]
    names += [a.arg for a in args.args]
    return names


def _index_module(name: str, path: Path, source: str) -> ModuleInfo:
    tree = ast.parse(source, filename=str(path))
    info = ModuleInfo(
        name=name, path=path, source=source, tree=tree,
        imports=_collect_imports(name, tree),
    )

    def add_function(node, local_name: str, owner: Optional[str]) -> None:
        fn = FunctionInfo(
            qname=f"{name}.{local_name}",
            module=name,
            local_name=local_name,
            node=node,
            params=_positional_params(node),
            owner_class=owner,
        )
        info.functions[local_name] = fn
        if owner is not None:
            info.classes.setdefault(owner, {})[node.name] = fn

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            add_function(node, node.name, owner=None)
        elif isinstance(node, ast.ClassDef):
            info.classes.setdefault(node.name, {})
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    add_function(sub, f"{node.name}.{sub.name}", owner=node.name)
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            value = node.value
            for target in targets:
                if isinstance(target, ast.Name):
                    info.globals[target.id] = GlobalVar(
                        qname=f"{name}.{target.id}",
                        module=name,
                        name=target.id,
                        line=node.lineno,
                        mutable=value is not None and _is_mutable_value(value),
                    )
    return info


def _chase_reexport(ir: ProjectIR, symbol: str, depth: int = 0) -> str:
    """Follow ``from .x import y`` re-export chains to the defining module."""
    if depth > 4:
        return symbol
    head, _, leaf = symbol.rpartition(".")
    mod = ir.modules.get(head)
    if mod is None:
        return symbol
    if leaf in mod.functions or leaf in mod.classes or leaf in mod.globals:
        return symbol
    onward = mod.imports.get(leaf)
    if onward is not None and onward != symbol:
        return _chase_reexport(ir, onward, depth + 1)
    return symbol


def resolve_symbol(ir: ProjectIR, module: ModuleInfo, dotted: str) -> Optional[str]:
    """Resolve a dotted name used in ``module`` to a project qualified name.

    Returns the qname of a function, class (``module.Class``), or global the
    name denotes, or ``None`` when it points outside the project or cannot
    be resolved statically.
    """
    head, _, rest = dotted.partition(".")
    # Module-local definitions win over imports (shadowing).
    if not rest:
        if head in module.functions:
            return module.functions[head].qname
        if head in module.classes:
            return f"{module.name}.{head}"
    else:
        if head in module.classes and rest in module.classes[head]:
            return module.classes[head][rest].qname
    target = module.imports.get(head)
    if target is None:
        return None
    full = f"{target}.{rest}" if rest else target
    full = _chase_reexport(ir, full)
    # A module name, a symbol in a known module, or nothing we know.
    if full in ir.modules:
        return full
    holder = ir.module_of(full)
    if holder is None:
        return None
    remainder = full[len(holder.name) + 1:]
    if not remainder:
        return full
    if remainder in holder.functions or remainder in holder.classes:
        return f"{holder.name}.{remainder}"
    if remainder in holder.globals:
        return holder.globals[remainder].qname
    first, _, second = remainder.partition(".")
    if first in holder.classes and second and second in holder.classes[first]:
        return holder.classes[first][second].qname
    return None


def resolve_call(ir: ProjectIR, module: ModuleInfo, fn: FunctionInfo,
                 node: ast.Call) -> Optional[str]:
    """Resolve one call expression to a callee qname (or None)."""
    raw = _dotted(node.func)
    if raw is None:
        # self.method() — func is Attribute over Name 'self'/'cls' handled by
        # _dotted already; anything else (subscripts, call results) is dynamic.
        return None
    head, _, rest = raw.partition(".")
    if head in ("self", "cls") and fn.owner_class is not None and rest:
        methods = module.classes.get(fn.owner_class, {})
        first, _, _deeper = rest.partition(".")
        target = methods.get(first)
        if target is not None and not _deeper:
            return target.qname
        return None
    resolved = resolve_symbol(ir, module, raw)
    if resolved is None:
        return None
    # Instantiating a project class edges to its __init__ when one exists.
    holder = ir.module_of(resolved)
    if holder is not None:
        local = resolved[len(holder.name) + 1:]
        if local in holder.classes:
            init = holder.classes[local].get("__init__")
            return init.qname if init is not None else resolved
    return resolved


class _CallCollector(ast.NodeVisitor):
    """Collect every Call inside one function body (not nested defs)."""

    def __init__(self) -> None:
        self.calls: List[ast.Call] = []

    def visit_Call(self, node: ast.Call) -> None:
        self.calls.append(node)
        self.generic_visit(node)

    def visit_FunctionDef(self, node) -> None:  # do not descend into nested defs
        pass

    visit_AsyncFunctionDef = visit_FunctionDef
    visit_ClassDef = visit_FunctionDef


def _derive_module_name(root: Path, file_path: Path, package: str) -> str:
    rel = file_path.relative_to(root)
    parts = list(rel.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if package:
        parts = [package] + parts
    return ".".join(parts) if parts else package


def _package_name_of(root: Path) -> str:
    """Dotted package name of ``root`` by walking up ``__init__.py`` parents."""
    if not (root / "__init__.py").exists():
        return ""
    parts = [root.name]
    parent = root.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    return ".".join(reversed(parts))


def build_project_ir(paths: Iterable) -> ProjectIR:
    """Parse and index every ``.py`` file under ``paths`` into one IR.

    A single package directory is rooted at that package (module names get
    its dotted prefix, e.g. ``repro.core.driver``); loose files are indexed
    standalone under their stem.  Files that fail to parse are skipped — the
    engine surfaces those as findings separately.
    """
    path_list = [Path(p) for p in paths]
    root: Optional[Path] = None
    package = ""
    if len(path_list) == 1 and path_list[0].is_dir():
        root = path_list[0].resolve()
        package = _package_name_of(root)

    ir = ProjectIR(root=root or Path("."), package=package)

    files: List[Tuple[str, Path]] = []
    seen: Set[Path] = set()
    for entry in path_list:
        entry = entry.resolve()
        if entry.is_dir():
            for file_path in sorted(entry.rglob("*.py")):
                if file_path in seen:
                    continue
                seen.add(file_path)
                base = root if root is not None else entry
                pkg = package if root is not None else _package_name_of(entry)
                files.append((_derive_module_name(base, file_path, pkg), file_path))
        else:
            if entry in seen:
                continue
            seen.add(entry)
            files.append((entry.stem, entry))

    for mod_name, file_path in files:
        try:
            source = file_path.read_text(encoding="utf-8")
            info = _index_module(mod_name, file_path, source)
        except (SyntaxError, UnicodeDecodeError, OSError):
            continue
        ir.modules[mod_name] = info
        for _local, fn in sorted(info.functions.items()):
            ir.functions[fn.qname] = fn

    # Second phase: resolve every call site now that all modules are known.
    for _name, info in sorted(ir.modules.items()):
        for _local, fn in sorted(info.functions.items()):
            collector = _CallCollector()
            for stmt in fn.node.body:
                collector.visit(stmt)
            edges = ir.call_graph.setdefault(fn.qname, set())
            for call in collector.calls:
                callee = resolve_call(ir, info, fn, call)
                raw = _dotted(call.func) or "<dynamic>"
                fn.calls.append(CallSite(node=call, callee=callee, raw=raw))
                if callee is not None and callee in ir.functions:
                    edges.add(callee)
    return ir
