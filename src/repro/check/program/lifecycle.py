"""Resource-linearity pass: every acquire must release on every path.

For each :class:`~.protocols.ResourceProtocol` in the catalog, this pass
finds acquisition sites (``record = BatchRecord(...)``, ``tmp =
f"{path}.tmp.{pid}"``, ``directory.mkdir(...)``) and symbolically walks the
enclosing function's statement tree, tracking one abstract state per path —
``pre`` (not yet acquired), ``open``, ``done`` (released or ownership
transferred).  A function exit that can carry ``open`` is a finding:

* ``lifecycle-leak`` — a fall-through / ``return`` path (or a rebound /
  discarded handle) never releases;
* ``lifecycle-exception-leak`` — an exception can escape with the resource
  open (any call may raise; ``try`` handlers and ``finally`` blocks are
  walked with the states live at the raise points).

Releases are recognized three ways: a catalog release method on the
resource (``conn.close()``), a catalog call taking the resource as an
argument (``os.replace(tmp, path)``), or — interprocedurally — a project
callee whose own walk proves it releases that parameter on all of *its*
paths (``self._abort_record(record)`` releases because its body
unconditionally reaches ``log.append``).  ``with`` acquisition, returning
the resource, and storing it into an object/container discharge the
obligation per the protocol's escape flags.

Known limits (deliberate): handlers are assumed to catch whatever the body
raises (exception *types* are not modeled); generator functions are
skipped; aliasing (``r2 = record``) conservatively transfers ownership.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .base import AnalysisPass, Finding, Rule
from .ir import FunctionInfo, ModuleInfo, ProjectIR, _dotted, resolve_call
from .protocols import PROTOCOLS, ResourceProtocol, matches_any

#: Path states.
_PRE, _OPEN, _DONE = "pre", "open", "done"

#: Container-mutation method names that store their argument: passing the
#: resource to one of these transfers ownership (escape_stores).
_STORE_METHODS = frozenset(
    {"append", "add", "insert", "appendleft", "put", "put_nowait",
     "setdefault", "push", "register"}
)

_RULES = {
    "leak": Rule(
        id="lifecycle-leak",
        pass_name="lifecycle",
        severity="error",
        description=(
            "A protocol resource can reach a normal function exit (or be "
            "rebound/discarded) without its release being called."
        ),
    ),
    "exception": Rule(
        id="lifecycle-exception-leak",
        pass_name="lifecycle",
        severity="error",
        description=(
            "An exception can escape the enclosing function while a "
            "protocol resource is still open: no handler/finally path "
            "guarantees the release."
        ),
    ),
}


class _Acquire:
    """One acquisition site inside a function."""

    __slots__ = ("stmt", "name", "line", "col")

    def __init__(self, stmt: ast.stmt, name: str, line: int, col: int) -> None:
        self.stmt = stmt
        self.name = name
        self.line = line
        self.col = col


def _calls_in(node: ast.AST) -> List[ast.Call]:
    """Every call expression in ``node``, not descending into nested
    function/class definitions or lambdas."""
    out: List[ast.Call] = []
    stack = [node]
    while stack:
        cur = stack.pop()
        for child in ast.iter_child_nodes(cur):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
            ):
                continue
            if isinstance(child, ast.Call):
                out.append(child)
            stack.append(child)
    return out


def _names_in(node: ast.AST) -> Set[str]:
    return {
        n.id for n in ast.walk(node)
        if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
    }


def _has_string_fragment(node: ast.AST, fragment: str) -> bool:
    for n in ast.walk(node):
        if isinstance(n, ast.Constant) and isinstance(n.value, str):
            if fragment in n.value:
                return True
    return False


def _is_generator(node: ast.AST) -> bool:
    for n in ast.walk(node):
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            if n is not node:
                continue
        if isinstance(n, (ast.Yield, ast.YieldFrom)):
            return True
    return False


class _Walker:
    """Symbolic walk of one function for one protocol + resource name.

    ``live`` sets hold path states; ``walk_body`` returns outcome tuples
    ``(kind, state)`` with kind in fall/return/raise/break/continue.
    """

    def __init__(
        self,
        owner: "LifecyclePass",
        ir: ProjectIR,
        module: ModuleInfo,
        fn: FunctionInfo,
        protocol: ResourceProtocol,
        res: str,
        acquire_stmt: Optional[ast.stmt],
    ) -> None:
        self.owner = owner
        self.ir = ir
        self.module = module
        self.fn = fn
        self.protocol = protocol
        self.res = res
        self.acquire_stmt = acquire_stmt
        self.rebind_leaks: List[ast.stmt] = []

    # ---------------------------------------------------------- matching

    def _is_release_call(self, call: ast.Call) -> bool:
        proto = self.protocol
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == self.res
            and func.attr in proto.release_methods
        ):
            return True
        arg_idx = self._resource_arg_index(call)
        if arg_idx is None:
            return False
        raw = _dotted(func)
        if raw is not None and matches_any(raw, proto.release_arg_calls):
            return True
        callee = resolve_call(self.ir, self.module, self.fn, call)
        if callee is not None:
            kw = None
            if arg_idx < 0:
                kw = call.keywords[-arg_idx - 1].arg
                arg_idx = 0
            return self.owner.releases_param(
                self.ir, self.protocol, callee, arg_idx, kw
            )
        return False

    def _resource_arg_index(self, call: ast.Call) -> Optional[int]:
        """Positional index of the resource among the call's args, or a
        negative ``-(kw_index+1)`` marker for keyword args, or None."""
        for i, a in enumerate(call.args):
            if isinstance(a, ast.Name) and a.id == self.res:
                return i
        for i, kw in enumerate(call.keywords):
            v = kw.value
            if kw.arg is not None and isinstance(v, ast.Name) and v.id == self.res:
                return -(i + 1)
        return None

    def _escapes(self, st: ast.stmt) -> bool:
        proto = self.protocol
        if isinstance(st, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = st.value
            if value is not None and self.res in _names_in(value):
                targets = st.targets if isinstance(st, ast.Assign) else [st.target]
                if proto.escape_stores and any(
                    isinstance(t, (ast.Attribute, ast.Subscript, ast.Tuple, ast.List))
                    for t in targets
                ):
                    return True
                # Alias (`r2 = record`): stop tracking conservatively.
                if any(
                    isinstance(t, ast.Name) and t.id != self.res for t in targets
                ):
                    return True
        if proto.escape_stores:
            for call in _calls_in(st):
                func = call.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _STORE_METHODS
                    and self._resource_arg_index(call) is not None
                    and not self._is_release_call(call)
                ):
                    return True
        return False

    def _guard_kind(self, test: ast.expr) -> Optional[str]:
        """Recognize `if res:` / `if res is not None:` ('taken') and
        `if res is None:` / `if not res:` ('skipped') guards on the
        resource name itself."""
        if isinstance(test, ast.Name) and test.id == self.res:
            return "taken"
        if (
            isinstance(test, ast.UnaryOp)
            and isinstance(test.op, ast.Not)
            and isinstance(test.operand, ast.Name)
            and test.operand.id == self.res
        ):
            return "skipped"
        if (
            isinstance(test, ast.Compare)
            and isinstance(test.left, ast.Name)
            and test.left.id == self.res
            and len(test.ops) == 1
            and len(test.comparators) == 1
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None
        ):
            if isinstance(test.ops[0], ast.IsNot):
                return "taken"
            if isinstance(test.ops[0], ast.Is):
                return "skipped"
        return None

    # ------------------------------------------------------------ walking

    def walk_body(
        self, stmts: Sequence[ast.stmt], live: FrozenSet[str]
    ) -> Set[Tuple[str, str]]:
        out: Set[Tuple[str, str]] = set()
        cur = set(live)
        for st in stmts:
            if not cur:
                break
            cur, exits = self._walk_stmt(st, frozenset(cur))
            cur = set(cur)
            out |= exits
        for s in cur:
            out.add(("fall", s))
        return out

    def _generic(
        self, st: ast.stmt, live: FrozenSet[str]
    ) -> Tuple[Set[str], Set[Tuple[str, str]]]:
        """Effects of a straight-line statement: releases, escapes, raises."""
        calls = _calls_in(st)
        releases = any(self._is_release_call(c) for c in calls)
        non_release_calls = [c for c in calls if not self._is_release_call(c)]
        may_raise = bool(non_release_calls)
        escapes = self._escapes(st)
        is_acquire = st is self.acquire_stmt

        new_live: Set[str] = set()
        exits: Set[Tuple[str, str]] = set()
        for s in live:
            if may_raise:
                exits.add(("raise", s))
            s2 = s
            if s == _OPEN and (releases or escapes):
                s2 = _DONE
            if is_acquire:
                if s2 == _OPEN:
                    # Second acquisition while open: the first handle is
                    # overwritten and lost.
                    self.rebind_leaks.append(st)
                s2 = _OPEN
            elif s2 == _OPEN and self._rebinds(st):
                self.rebind_leaks.append(st)
                s2 = _DONE
            new_live.add(s2)
        return new_live, exits

    def _rebinds(self, st: ast.stmt) -> bool:
        if isinstance(st, ast.Assign):
            targets = st.targets
        elif isinstance(st, (ast.AnnAssign, ast.AugAssign)):
            targets = [st.target]
        elif isinstance(st, (ast.For, ast.AsyncFor)):
            targets = [st.target]
        else:
            return False
        for t in targets:
            for n in ast.walk(t):
                if (
                    isinstance(n, ast.Name)
                    and n.id == self.res
                    and isinstance(n.ctx, ast.Store)
                ):
                    return True
        return False

    def _walk_stmt(
        self, st: ast.stmt, live: FrozenSet[str]
    ) -> Tuple[Set[str], Set[Tuple[str, str]]]:
        if isinstance(st, ast.Return):
            exits: Set[Tuple[str, str]] = set()
            calls = _calls_in(st)
            may_raise = any(not self._is_release_call(c) for c in calls)
            releases = any(self._is_release_call(c) for c in calls)
            returns_res = st.value is not None and self.res in _names_in(st.value)
            for s in live:
                if may_raise:
                    exits.add(("raise", s))
                s2 = s
                if s == _OPEN and (
                    releases or (returns_res and self.protocol.escape_returns)
                ):
                    s2 = _DONE
                exits.add(("return", s2))
            return set(), exits

        if isinstance(st, ast.Raise):
            _live2, exits = self._generic(st, live)
            for s in live:
                exits.add(("raise", s))
            return set(), exits

        if isinstance(st, (ast.Break, ast.Continue)):
            kind = "break" if isinstance(st, ast.Break) else "continue"
            return set(), {(kind, s) for s in live}

        if isinstance(st, ast.If):
            live2, exits = self._test_effects(st.test, live)
            guard = self._guard_kind(st.test)
            body_out = self.walk_body(st.body, frozenset(live2))
            if guard == "taken":
                # `if res is not None:` — on tracked paths the branch is
                # taken; the skip path belongs to never-acquired runs.
                merged = body_out
            elif guard == "skipped":
                merged = {("fall", s) for s in live2}
                if st.orelse:
                    merged = self.walk_body(st.orelse, frozenset(live2))
            else:
                merged = set(body_out)
                if st.orelse:
                    merged |= self.walk_body(st.orelse, frozenset(live2))
                else:
                    merged |= {("fall", s) for s in live2}
            after = {s for k, s in merged if k == "fall"}
            exits |= {(k, s) for k, s in merged if k != "fall"}
            return after, exits

        if isinstance(st, (ast.While, ast.For, ast.AsyncFor)):
            return self._walk_loop(st, live)

        if isinstance(st, (ast.Try, getattr(ast, "TryStar", ast.Try))):
            return self._walk_try(st, live)

        if isinstance(st, (ast.With, ast.AsyncWith)):
            exits = set()
            live2 = set(live)
            for item in st.items:
                l2, ex = self._test_effects(item.context_expr, frozenset(live2))
                live2 = l2
                exits |= ex
            body_out = self.walk_body(st.body, frozenset(live2))
            after = {s for k, s in body_out if k == "fall"}
            exits |= {(k, s) for k, s in body_out if k != "fall"}
            return after, exits

        if isinstance(st, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return set(live), set()

        return self._generic(st, live)

    def _test_effects(
        self, expr: ast.expr, live: FrozenSet[str]
    ) -> Tuple[Set[str], Set[Tuple[str, str]]]:
        calls = _calls_in(expr)
        releases = any(self._is_release_call(c) for c in calls)
        may_raise = any(not self._is_release_call(c) for c in calls)
        exits: Set[Tuple[str, str]] = set()
        out: Set[str] = set()
        for s in live:
            if may_raise:
                exits.add(("raise", s))
            out.add(_DONE if (s == _OPEN and releases) else s)
        return out, exits

    def _walk_loop(
        self, st: ast.stmt, live: FrozenSet[str]
    ) -> Tuple[Set[str], Set[Tuple[str, str]]]:
        exits: Set[Tuple[str, str]] = set()
        if isinstance(st, ast.While):
            head = st.test
            infinite = isinstance(head, ast.Constant) and bool(head.value)
        else:
            head = st.iter
            infinite = False
        cur, head_exits = self._test_effects(head, live)
        exits |= head_exits
        if self._rebinds(st):
            # `for record in ...:` rebinding the handle.
            rebound = set()
            for s in cur:
                if s == _OPEN:
                    self.rebind_leaks.append(st)
                    s = _DONE
                rebound.add(s)
            cur = rebound
        breaks: Set[str] = set()
        entry = set(cur)
        while True:
            body_out = self.walk_body(st.body, frozenset(entry))
            breaks |= {s for k, s in body_out if k == "break"}
            exits |= {(k, s) for k, s in body_out if k in ("return", "raise")}
            again = entry | {s for k, s in body_out if k in ("fall", "continue")}
            if again == entry:
                break
            entry = again
        completion = set() if infinite else set(entry)
        if st.orelse and completion:
            else_out = self.walk_body(st.orelse, frozenset(completion))
            completion = {s for k, s in else_out if k == "fall"}
            exits |= {(k, s) for k, s in else_out if k != "fall"}
        return breaks | completion, exits

    def _walk_try(
        self, st: ast.Try, live: FrozenSet[str]
    ) -> Tuple[Set[str], Set[Tuple[str, str]]]:
        body_out = self.walk_body(st.body, live)
        raises = {s for k, s in body_out if k == "raise"}
        outcomes = {(k, s) for k, s in body_out if k != "raise"}

        if st.orelse:
            falls = {s for k, s in outcomes if k == "fall"}
            outcomes = {(k, s) for k, s in outcomes if k != "fall"}
            if falls:
                outcomes |= self.walk_body(st.orelse, frozenset(falls))

        if st.handlers and raises:
            # Types are not modeled: assume each handler can see every raise
            # state and union their outcomes.
            for h in st.handlers:
                outcomes |= self.walk_body(h.body, frozenset(raises))
        else:
            outcomes |= {("raise", s) for s in raises}

        if st.finalbody:
            routed: Set[Tuple[str, str]] = set()
            for k, s in outcomes:
                for fk, fs in self.walk_body(st.finalbody, frozenset({s})):
                    routed.add((k, fs) if fk == "fall" else (fk, fs))
            outcomes = routed

        after = {s for k, s in outcomes if k == "fall"}
        exits = {(k, s) for k, s in outcomes if k != "fall"}
        return after, exits


class LifecyclePass(AnalysisPass):
    """Interprocedural resource-linearity checks over the protocol catalog."""

    name = "lifecycle"
    rules = tuple(_RULES.values())

    def __init__(self, protocols: Sequence[ResourceProtocol] = PROTOCOLS) -> None:
        self.protocols = tuple(protocols)
        #: (protocol.name, callee qname, arg position/kw) → releases?
        self._summaries: Dict[Tuple[str, str, object], bool] = {}
        self._in_progress: Set[Tuple[str, str, object]] = set()

    # ------------------------------------------------- summary computation

    def releases_param(
        self,
        ir: ProjectIR,
        protocol: ResourceProtocol,
        callee: str,
        arg_idx: int,
        kw: Optional[str] = None,
    ) -> bool:
        """True when ``callee`` provably releases the given parameter on
        all of its paths (normal and exceptional)."""
        key = (protocol.name, callee, kw if kw is not None else arg_idx)
        if key in self._summaries:
            return self._summaries[key]
        if key in self._in_progress:
            return False
        fn = ir.functions.get(callee)
        if fn is None or _is_generator(fn.node):
            self._summaries[key] = False
            return False
        params = fn.params
        if kw is not None:
            pname = kw if kw in params else None
        else:
            offset = 1 if fn.owner_class is not None else 0
            pos = arg_idx + offset
            pname = params[pos] if pos < len(params) else None
        if pname is None:
            self._summaries[key] = False
            return False
        module = ir.modules.get(fn.module)
        if module is None:
            self._summaries[key] = False
            return False
        self._in_progress.add(key)
        try:
            walker = _Walker(self, ir, module, fn, protocol, pname, None)
            outcomes = walker.walk_body(fn.node.body, frozenset({_OPEN}))
            ok = all(s != _OPEN for _k, s in outcomes)
        finally:
            self._in_progress.discard(key)
        self._summaries[key] = ok
        return ok

    # ------------------------------------------------------------ running

    def run(self, ir: ProjectIR) -> List[Finding]:
        findings: List[Finding] = []
        seen: Set[Tuple[str, str, int, str]] = set()

        def emit(rule_key: str, module: ModuleInfo, line: int, col: int,
                 message: str) -> None:
            rule = _RULES[rule_key]
            key = (rule.id, str(module.path), line, message)
            if key in seen:
                return
            seen.add(key)
            findings.append(
                self.make_finding(rule, str(module.path), line, col, message)
            )

        for mod_name in sorted(ir.modules):
            module = ir.modules[mod_name]
            last = mod_name.split(".")[-1]
            in_scope = [
                p for p in self.protocols if not p.scope or last in p.scope
            ]
            if not in_scope:
                continue
            for fn in sorted(module.functions.values(), key=lambda f: f.qname):
                if _is_generator(fn.node):
                    continue
                for proto in in_scope:
                    self._check_function(ir, module, fn, proto, emit)
        return findings

    # ------------------------------------------------------ per-function

    def _check_function(self, ir, module, fn, proto, emit) -> None:
        acquires, discarded = _find_acquires(ir, module, fn, proto)
        for node in discarded:
            emit(
                "leak", module, node.lineno, node.col_offset,
                f"[{proto.name}] acquired resource is discarded immediately "
                f"(result of the acquiring call is not bound): {proto.description}",
            )
        for acq in acquires:
            walker = _Walker(self, ir, module, fn, proto, acq.name, acq.stmt)
            outcomes = walker.walk_body(fn.node.body, frozenset({_PRE}))
            kinds = {k for k, s in outcomes if s == _OPEN}
            where = f"'{acq.name}' acquired in {fn.local_name}()"
            if kinds & {"fall", "return", "break", "continue"}:
                emit(
                    "leak", module, acq.line, acq.col,
                    f"[{proto.name}] {where} is not released on every "
                    f"normal exit path: {proto.description}",
                )
            if "raise" in kinds:
                emit(
                    "exception", module, acq.line, acq.col,
                    f"[{proto.name}] {where} leaks when an exception "
                    f"escapes: no handler/finally guarantees the release "
                    f"({proto.description})",
                )
            for st in walker.rebind_leaks:
                emit(
                    "leak", module, st.lineno, st.col_offset,
                    f"[{proto.name}] {where} is rebound while still open "
                    f"— the original handle is lost unreleased",
                )


def _acquire_call_matches(
    ir: ProjectIR, module: ModuleInfo, fn: FunctionInfo,
    call: ast.Call, proto: ResourceProtocol,
) -> bool:
    raw = _dotted(call.func)
    if raw is not None and proto.acquire_raw and matches_any(raw, proto.acquire_raw):
        return True
    if proto.acquire_callees:
        callee = resolve_call(ir, module, fn, call)
        if callee is not None:
            if callee.endswith(".__init__"):
                callee = callee[: -len(".__init__")]
            if matches_any(callee, proto.acquire_callees):
                return True
    return False


def _find_acquires(
    ir: ProjectIR, module: ModuleInfo, fn: FunctionInfo, proto: ResourceProtocol
) -> Tuple[List[_Acquire], List[ast.AST]]:
    """Acquisition sites in ``fn`` for ``proto``; second element is calls
    whose acquired result is immediately discarded."""
    acquires: List[_Acquire] = []
    discarded: List[ast.AST] = []
    managed: Set[ast.Call] = set()

    body_stmts: List[ast.stmt] = []
    stack: List[ast.AST] = list(fn.node.body)
    while stack:
        st = stack.pop()
        if isinstance(st, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        if isinstance(st, ast.stmt):
            body_stmts.append(st)
        for child in ast.iter_child_nodes(st):
            if isinstance(child, ast.stmt):
                stack.append(child)
            elif isinstance(child, (ast.excepthandler,)):
                stack.extend(child.body)

    def matches(call: ast.Call) -> bool:
        return _acquire_call_matches(ir, module, fn, call, proto)

    for st in body_stmts:
        if isinstance(st, (ast.With, ast.AsyncWith)) and proto.with_releases:
            for item in st.items:
                ctx = item.context_expr
                if isinstance(ctx, ast.Call) and matches(ctx):
                    managed.add(ctx)  # `with acquire():` — __exit__ releases

    for st in body_stmts:
        if isinstance(st, ast.Assign) and len(st.targets) == 1 and isinstance(
            st.targets[0], ast.Name
        ):
            name = st.targets[0].id
            value = st.value
            candidates = [value]
            if isinstance(value, ast.IfExp):
                candidates = [value.body, value.orelse]
            hit = any(
                isinstance(c, ast.Call) and c not in managed and matches(c)
                for c in candidates
            )
            if not hit and proto.acquire_str_fragment:
                hit = _has_string_fragment(value, proto.acquire_str_fragment)
            if hit:
                acquires.append(_Acquire(st, name, st.lineno, st.col_offset))
                continue
        if isinstance(st, ast.Expr) and isinstance(st.value, ast.Call):
            if st.value not in managed and matches(st.value):
                discarded.append(st.value)
        if proto.acquire_receiver_methods and isinstance(
            st, (ast.Expr, ast.Assign, ast.AnnAssign, ast.AugAssign)
        ):
            # Simple statements only: every stmt (nested included) appears
            # once in body_stmts, so scanning compound statements here
            # would double-count their children's calls.
            for call in _calls_in(st):
                func = call.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in proto.acquire_receiver_methods
                    and isinstance(func.value, ast.Name)
                ):
                    acquires.append(
                        _Acquire(st, func.value.id, call.lineno, call.col_offset)
                    )
    # Deterministic order; a statement can host at most a handful.
    acquires.sort(key=lambda a: (a.line, a.col, a.name))
    return acquires, discarded
