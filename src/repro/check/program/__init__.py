"""Whole-program static analysis over the simulator package.

PR 2's determinism lint sees one file at a time; this package sees the
project.  A shared IR (:mod:`~repro.check.program.ir`: module index,
symbol tables, intra-package call graph) feeds nine passes through one
engine (:mod:`~repro.check.program.engine`):

* ``determinism`` — the per-file hazard rules, ported onto the IR;
* ``sim-taint`` — interprocedural taint from wall-clock / unseeded-RNG
  sources into sim-clock, event-timestamp, and BatchRecord-timer sinks;
* ``metric-drift`` — metric/span call sites cross-checked against the
  declarative :mod:`repro.obs.catalog` (units included);
* ``mp-shared-state`` — module-global reads/writes reachable from
  multiprocessing worker entry points;
* ``dimensions`` — interprocedural units-and-dimensions inference
  (bytes/page/region/vablock vs sim-µs/wall-s;
  :mod:`~repro.check.program.dimensions`);
* ``lifecycle`` — resource linearity over the declarative protocol
  catalog (:mod:`~repro.check.program.protocols`): BatchRecord
  open→close/abort, spans, SQLite ledgers, atomic-write temp files,
  telemetry monitors (:mod:`~repro.check.program.lifecycle`);
* ``snapshot`` — checkpoint-coverage drift between the engine's mutable
  attributes and ``sim/checkpoint.py`` capture/skip lists
  (:mod:`~repro.check.program.snapshot`);
* ``parity`` — scalar/SoA (and future driver-backend) write-surface
  equivalence via ``# parity:`` annotations
  (:mod:`~repro.check.program.parity`);
* ``suppression-hygiene`` — stale ``lint-ok`` comments and dead
  allowlist entries.

Filtering order: line suppressions → allowlist → committed baseline
(:mod:`~repro.check.program.baseline`).  Output: human, JSON
(``docs/schemas/lint.schema.json``), or SARIF 2.1.0
(:mod:`~repro.check.program.sarif`).  Front end: ``uvm-repro lint``.
"""

from .base import AnalysisPass, Finding, Rule, fingerprint_findings
from .baseline import (
    DEFAULT_BASELINE_PATH,
    BaselineEntry,
    apply_baseline,
    load_baseline,
    save_baseline,
)
from .dimensions import DimensionsPass
from .engine import (
    AnalysisReport,
    SEED_SUFFIXES,
    all_rules,
    changed_files,
    default_passes,
    render_report,
    report_to_json_dict,
    run_analysis,
    seeds_in_changed,
)
from .hygiene import SuppressionHygienePass
from .ir import ProjectIR, build_project_ir
from .lifecycle import LifecyclePass
from .local_rules import LocalRulesPass
from .metric_drift import MetricDriftPass
from .parity import ParityPass
from .protocols import PROTOCOLS, SNAPSHOT, ResourceProtocol
from .sarif import sarif_to_json, to_sarif
from .shared_state import SharedStatePass, find_worker_entry_points
from .snapshot import SnapshotCoveragePass
from .taint import SimTaintPass

__all__ = [
    "AnalysisPass",
    "AnalysisReport",
    "BaselineEntry",
    "DEFAULT_BASELINE_PATH",
    "DimensionsPass",
    "Finding",
    "LifecyclePass",
    "LocalRulesPass",
    "MetricDriftPass",
    "PROTOCOLS",
    "ParityPass",
    "ProjectIR",
    "ResourceProtocol",
    "Rule",
    "SEED_SUFFIXES",
    "SNAPSHOT",
    "SharedStatePass",
    "SimTaintPass",
    "SnapshotCoveragePass",
    "SuppressionHygienePass",
    "all_rules",
    "apply_baseline",
    "build_project_ir",
    "changed_files",
    "default_passes",
    "find_worker_entry_points",
    "fingerprint_findings",
    "load_baseline",
    "render_report",
    "report_to_json_dict",
    "run_analysis",
    "sarif_to_json",
    "save_baseline",
    "seeds_in_changed",
    "to_sarif",
]
