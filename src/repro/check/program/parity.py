"""Dual-path parity pass: shadow implementations must write one surface.

The SoA fault pipeline (and any future driver backend) shadows a scalar
reference path and must update the same counters, metrics, sanitizer hooks,
and record fields.  Variants are declared with a comment on the ``def`` /
``class`` line::

    def assemble_batch(  # parity: batch-assembly/scalar
    def assemble_batch_soa(faults, num_sms):  # parity: batch-assembly/soa
    class FaultBuffer:  # parity: fault-buffer/object

For each group, the pass computes every variant's call-graph closure (class
annotations root at all methods; other variants of the same group are
excluded from traversal, so a scalar entry point that *dispatches* to the
SoA twin does not trivially union the surfaces) and collects its observable
write surface:

* ``field:<name>`` — stores / in-place mutations / constructor kwargs on
  fields of the group's record classes (:data:`~.protocols.PARITY_GROUPS`);
* ``self:<name>`` — plain stores to ``self.<attr>`` in the variant's own
  root functions, when the group compares counter surfaces
  (``self_fields``; closure callees are excluded so a helper class's
  attributes are not imported into the comparison);
* ``metric:<name>`` — stores to cached metric handles (``self._m_*``);
* ``san:<hook>`` — ``on_*`` calls on a sanitizer handle;
* ``inj:<site>`` — literal injection-site names passed to ``.fire(...)``;
* ``flight:<event>`` — literal event names passed to ``flight.record(...)``.

Rules: ``parity-surface`` (a variant misses elements another variant has),
``parity-unpaired`` (a group with a single variant — usually a typo in the
group name), ``parity-annotation`` (malformed marker).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from .base import AnalysisPass, Finding, Rule
from .ir import FunctionInfo, ModuleInfo, ProjectIR, _dotted
from .protocols import (
    DEFAULT_PARITY,
    PARITY_GROUPS,
    PARITY_MARK,
    PARITY_RE,
    ParityGroupSpec,
)

_MUTATORS = frozenset(
    {"append", "add", "insert", "extend", "update", "discard", "remove",
     "clear", "appendleft", "setdefault"}
)

_SAN_RECEIVERS = frozenset({"san", "_san", "sanitizer"})

_RULES = {
    "surface": Rule(
        id="parity-surface",
        pass_name="parity",
        severity="error",
        description=(
            "A parity variant's call-graph closure misses observable "
            "writes (fields / counters / metrics / sanitizer hooks / "
            "injection sites / flight events) that a sibling variant "
            "performs — the shadow implementation has drifted."
        ),
    ),
    "unpaired": Rule(
        id="parity-unpaired",
        pass_name="parity",
        severity="warning",
        description=(
            "A parity group with a single variant: nothing is being "
            "compared (usually a typo in the group name, or a pair whose "
            "twin was removed)."
        ),
    ),
    "annotation": Rule(
        id="parity-annotation",
        pass_name="parity",
        severity="error",
        description=(
            "A '# parity:' marker that does not parse as "
            "'# parity: <group>/<variant>'."
        ),
    ),
}


class _Variant:
    __slots__ = ("group", "name", "roots", "module", "line")

    def __init__(self, group: str, name: str, roots: List[str],
                 module: ModuleInfo, line: int) -> None:
        self.group = group
        self.name = name
        self.roots = roots
        self.module = module
        self.line = line


def _record_fields(ir: ProjectIR, class_names: Tuple[str, ...]) -> Set[str]:
    """Field names of the given record classes: dataclass/annotated fields,
    class-level assignments, and ``__slots__`` entries."""
    fields: Set[str] = set()
    for _name, module in sorted(ir.modules.items()):
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.ClassDef) and node.name in class_names):
                continue
            for st in node.body:
                if isinstance(st, ast.AnnAssign) and isinstance(
                    st.target, ast.Name
                ):
                    fields.add(st.target.id)
                elif isinstance(st, ast.Assign):
                    for t in st.targets:
                        if isinstance(t, ast.Name):
                            if t.id == "__slots__" and st.value is not None:
                                for n in ast.walk(st.value):
                                    if isinstance(n, ast.Constant) and isinstance(
                                        n.value, str
                                    ):
                                        fields.add(n.value)
                            else:
                                fields.add(t.id)
    return fields


def _surface_of_function(
    ir: ProjectIR,
    fn: FunctionInfo,
    spec: ParityGroupSpec,
    record_fields: Set[str],
    record_classes: Tuple[str, ...],
    allow_self: bool,
) -> Set[str]:
    out: Set[str] = set()
    for node in ast.walk(fn.node):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for t in targets:
                if not isinstance(t, ast.Attribute):
                    continue
                attr = t.attr
                if attr.startswith("_m_"):
                    out.add(f"metric:{attr}")
                elif attr in record_fields:
                    out.add(f"field:{attr}")
                elif (
                    spec.self_fields
                    and allow_self
                    and isinstance(t.value, ast.Name)
                    and t.value.id == "self"
                ):
                    out.add(f"self:{attr}")
        elif isinstance(node, ast.Call):
            func = node.func
            if not isinstance(func, ast.Attribute):
                # Record-class constructor by bare name.
                if isinstance(func, ast.Name) and func.id in record_classes:
                    for kw in node.keywords:
                        if kw.arg is not None and kw.arg in record_fields:
                            out.add(f"field:{kw.arg}")
                continue
            attr = func.attr
            if attr in _MUTATORS and isinstance(func.value, ast.Attribute):
                inner = func.value.attr
                if inner in record_fields:
                    out.add(f"field:{inner}")
            if attr.startswith("on_"):
                recv = _dotted(func.value)
                if recv is not None and recv.split(".")[-1] in _SAN_RECEIVERS:
                    out.add(f"san:{attr}")
            if attr == "fire" and node.args:
                lit = node.args[0]
                if isinstance(lit, ast.Constant) and isinstance(lit.value, str):
                    out.add(f"inj:{lit.value}")
            if attr == "record":
                recv = _dotted(func.value)
                if (
                    recv is not None
                    and recv.split(".")[-1] in ("flight", "_flight")
                    and node.args
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)
                ):
                    out.add(f"flight:{node.args[0].value}")
    return out


class ParityPass(AnalysisPass):
    """Compare annotated variant pairs' observable write surfaces."""

    name = "parity"
    rules = tuple(_RULES.values())

    def __init__(self, groups: Dict[str, ParityGroupSpec] = None) -> None:
        self.groups = dict(PARITY_GROUPS if groups is None else groups)

    def run(self, ir: ProjectIR) -> List[Finding]:
        findings: List[Finding] = []
        variants = self._collect_variants(ir, findings)

        by_group: Dict[str, List[_Variant]] = {}
        for v in variants:
            by_group.setdefault(v.group, []).append(v)

        for group in sorted(by_group):
            members = sorted(by_group[group], key=lambda v: v.name)
            merged: Dict[str, _Variant] = {}
            for v in members:
                prior = merged.get(v.name)
                if prior is not None:
                    prior.roots.extend(v.roots)  # multi-root variant
                else:
                    merged[v.name] = v
            members = [merged[k] for k in sorted(merged)]
            if len(members) < 2:
                v = members[0]
                findings.append(
                    self.make_finding(
                        _RULES["unpaired"], str(v.module.path), v.line, 0,
                        f"parity group '{group}' has a single variant "
                        f"'{v.name}' — nothing to compare against",
                    )
                )
                continue
            spec = self.groups.get(group, DEFAULT_PARITY)
            fields = _record_fields(ir, spec.record_classes)
            all_roots = {r for v in members for r in v.roots}
            surfaces: Dict[str, Set[str]] = {}
            for v in members:
                own_roots = set(v.roots)
                closure = self._closure(ir, v.roots, all_roots - own_roots)
                surface: Set[str] = set()
                for qname in closure:
                    fn = ir.functions.get(qname)
                    if fn is not None:
                        # ``self:`` stores only count in the variant's own
                        # roots — a closure that wanders into a helper class
                        # would otherwise import that class's attributes.
                        surface |= _surface_of_function(
                            ir, fn, spec, fields, spec.record_classes,
                            allow_self=qname in own_roots,
                        )
                surfaces[v.name] = surface - set(
                    f"{kind}:{name}" for kind in
                    ("field", "self", "metric", "san", "inj", "flight")
                    for name in spec.ignore
                )
            union: Set[str] = set()
            for vname in sorted(surfaces):
                union |= surfaces[vname]
            for v in members:
                missing = sorted(union - surfaces[v.name])
                if missing:
                    findings.append(
                        self.make_finding(
                            _RULES["surface"], str(v.module.path), v.line, 0,
                            f"parity group '{group}' variant '{v.name}' "
                            f"misses surface elements present in a sibling "
                            f"variant: {', '.join(missing)}",
                        )
                    )
        return findings

    # ------------------------------------------------------------ helpers

    def _collect_variants(
        self, ir: ProjectIR, findings: List[Finding]
    ) -> List[_Variant]:
        out: List[_Variant] = []
        for mod_name in sorted(ir.modules):
            module = ir.modules[mod_name]
            lines = module.lines
            for node in ast.walk(module.tree):
                if not isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    continue
                line = lines[node.lineno - 1] if node.lineno <= len(lines) else ""
                if PARITY_MARK not in line:
                    continue
                match = PARITY_RE.search(line)
                if match is None:
                    findings.append(
                        self.make_finding(
                            _RULES["annotation"], str(module.path),
                            node.lineno, 0,
                            f"malformed parity marker on '{node.name}': "
                            f"expected '# parity: <group>/<variant>'",
                        )
                    )
                    continue
                group, variant = match.group(1), match.group(2)
                if isinstance(node, ast.ClassDef):
                    roots = [
                        f.qname
                        for f in module.classes.get(node.name, {}).values()
                    ]
                else:
                    qname = self._qname_of(module, node)
                    roots = [qname] if qname else []
                out.append(_Variant(group, variant, roots, module, node.lineno))
        return out

    @staticmethod
    def _qname_of(module: ModuleInfo, node: ast.AST) -> Optional[str]:
        for _local, fn in sorted(module.functions.items()):
            if fn.node is node:
                return fn.qname
        return None

    @staticmethod
    def _closure(
        ir: ProjectIR, roots: List[str], exclude: Set[str]
    ) -> Set[str]:
        seen: Set[str] = set()
        frontier = [r for r in roots if r in ir.functions]
        while frontier:
            qname = frontier.pop()
            if qname in seen or qname in exclude:
                continue
            seen.add(qname)
            frontier.extend(ir.call_graph.get(qname, ()))
        return seen
