"""``suppression-hygiene``: stale ``lint-ok`` comments and dead allowlist
entries.

Suppressions are precision debt: every ``# repro: lint-ok[rule]`` and
allowlist line is a hole the linter agreed to look away from.  Holes must
keep paying rent — when the code under a suppression is fixed or deleted,
the suppression should go too, or it will silently absorb the *next*,
unrelated hazard introduced on that line or file.

This pass runs *after* every other pass, against their raw (pre-filter)
findings:

* ``stale-suppression`` — a ``lint-ok`` comment on a line where no rule
  fires at all, or naming specific rules that do not fire on that line;
* ``unknown-suppression-rule`` — a bracketed rule id the engine has never
  heard of (usually a typo that makes the suppression a no-op);
* ``dead-allow-entry`` — an allowlist entry (``path: rule  # why``) that
  matches zero raw findings anywhere in the analyzed project.
"""

from __future__ import annotations

import io
import tokenize
from typing import Dict, Iterator, List, Sequence, Set, Tuple

from ..lint import AllowEntry, LintFinding, _SUPPRESS_RE
from .base import AnalysisPass, Finding, Rule
from .ir import ProjectIR


def iter_suppression_comments(source: str) -> Iterator[Tuple[int, int, str]]:
    """(line, col, comment-text) for every real ``lint-ok`` *comment*.

    Tokenizing (rather than regexing lines) keeps documentation that merely
    *mentions* ``# repro: lint-ok[...]`` inside a docstring from being
    audited as if it were a suppression.
    """
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type == tokenize.COMMENT and _SUPPRESS_RE.search(tok.string):
                yield tok.start[0], tok.start[1], tok.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return


class SuppressionHygienePass(AnalysisPass):
    """Audit the suppression surface itself."""

    name = "suppression-hygiene"
    RULE_STALE = Rule(
        "stale-suppression", "suppression-hygiene", "warning",
        "`# repro: lint-ok` comment suppresses nothing (no rule fires on "
        "its line, or the named rules do not fire there)",
    )
    RULE_UNKNOWN = Rule(
        "unknown-suppression-rule", "suppression-hygiene", "warning",
        "`lint-ok[...]` names a rule id the engine does not define "
        "(the suppression is a silent no-op)",
    )
    RULE_DEAD_ALLOW = Rule(
        "dead-allow-entry", "suppression-hygiene", "warning",
        "allowlist entry matches no finding anywhere in the analyzed "
        "project",
    )
    rules = (RULE_STALE, RULE_UNKNOWN, RULE_DEAD_ALLOW)

    def __init__(
        self,
        known_rules: Sequence[str],
        allowlist: Sequence[AllowEntry] = (),
        allowlist_path: str = "",
    ) -> None:
        self.known_rules = set(known_rules) | {r.id for r in self.rules}
        self.allowlist = list(allowlist)
        self.allowlist_path = allowlist_path
        #: Raw findings from the other passes; the engine injects these
        #: before calling :meth:`run`.
        self.raw_findings: Sequence[Finding] = ()

    def run(self, ir: ProjectIR) -> List[Finding]:
        by_line: Dict[Tuple[str, int], Set[str]] = {}
        for f in self.raw_findings:
            by_line.setdefault((f.path, f.line), set()).add(f.rule)

        findings: List[Finding] = []
        for _name, mod in sorted(ir.modules.items()):
            for lineno, col, comment in iter_suppression_comments(mod.source):
                match = _SUPPRESS_RE.search(comment)
                fired = by_line.get((str(mod.path), lineno), set())
                named = match.group(1)
                if named is None:
                    if not fired:
                        findings.append(
                            self.make_finding(
                                self.RULE_STALE, path=str(mod.path),
                                line=lineno, col=col,
                                message="bare `lint-ok` suppresses nothing: "
                                        "no rule fires on this line",
                            )
                        )
                    continue
                listed = [r.strip() for r in named.split(",") if r.strip()]
                for rule_id in listed:
                    if rule_id not in self.known_rules:
                        findings.append(
                            self.make_finding(
                                self.RULE_UNKNOWN, path=str(mod.path),
                                line=lineno, col=col,
                                message=f"`lint-ok[{rule_id}]` names an "
                                        "unknown rule id",
                            )
                        )
                    elif rule_id not in fired:
                        findings.append(
                            self.make_finding(
                                self.RULE_STALE, path=str(mod.path),
                                line=lineno, col=col,
                                message=f"`lint-ok[{rule_id}]` is stale: "
                                        f"{rule_id} does not fire on this "
                                        "line",
                            )
                        )

        if self.allowlist:
            shims = [
                LintFinding(rule=f.rule, path=f.path, line=f.line,
                            col=f.col, message=f.message)
                for f in self.raw_findings
            ]
            module_paths = [
                str(mod.path).replace("\\", "/")
                for _name, mod in sorted(ir.modules.items())
            ]
            for idx, entry in enumerate(self.allowlist):
                # Entries whose target file isn't in the analyzed scope at
                # all (single-file invocations with the project allowlist)
                # are out of scope, not dead.
                if not any(p.endswith(entry.path_suffix) for p in module_paths):
                    continue
                if not any(entry.matches(s) for s in shims):
                    findings.append(
                        self.make_finding(
                            self.RULE_DEAD_ALLOW,
                            path=self.allowlist_path or "<allowlist>",
                            line=idx + 1, col=0,
                            message=f"allowlist entry "
                                    f"'{entry.path_suffix}: {entry.rule}' "
                                    "matches no finding in the analyzed "
                                    "project",
                        )
                    )
        return findings
