"""``dimensions`` (the *uvm-units* checker): interprocedural
units-and-dimensions inference over the project IR.

Every UVMSan conservation bug fixed in PRs 2–4 was ultimately a quantity
used at the wrong granularity — a page id where a byte address belonged, a
byte count compared against a page count, wall seconds leaking into
simulated microseconds.  The planned structure-of-arrays core rewrite
turns per-fault objects into raw int columns, so the type system loses
what little granularity information it had; this pass recovers it
statically.

Abstract interpretation over :class:`~repro.check.program.ir.ProjectIR`
with the lattice in :mod:`~repro.check.program.dims`.  Facts are seeded
from three places:

* the :mod:`repro.units` helper signatures (``page_of: bytes→page``,
  shifts/multiplies by ``PAGE_SIZE``/``REGION_SIZE``/``VABLOCK_SIZE``,
  ``USEC``/``MSEC``/``SEC``) and wall-clock reads (``time.perf_counter``);
* ``# dim:`` source annotations on assignments and function defs;
* the declared ``unit`` of every metric/span in the obs catalog.

Propagation is summary-based (same fixpoint style as
:mod:`~repro.check.program.taint`): per-function parameter/return dims,
a global attribute-field table, and module-global dims all iterate to a
fixpoint before a final reporting round fires the rules:

* ``dim-mixed-arith`` — ``+``/``-``/comparison across granularities, or an
  argument contradicting a dimension-annotated parameter;
* ``dim-page-index`` — page↔byte confusion in container indexing,
  membership tests, and ``range`` construction;
* ``dim-time-mix`` — simulated-µs and wall-second values meeting in
  arithmetic, comparison, or an annotated time parameter (complements
  sim-taint, which only tracks *nondeterminism*, not unit confusion);
* ``dim-metric-unit`` — a metric ``observe``/``inc``/``set`` argument
  whose dimension contradicts the catalog's declared unit;
* ``dim-shift`` — a shift on a granularity-dimensioned value whose amount
  matches no known conversion constant;
* ``dim-annotation`` — a ``# dim:`` comment that does not parse.

Conflicting evidence joins to ⊤ and stays silent: the pass reports only
positive contradictions between two live facts, which is what lets the
committed baseline for this rule family start — and stay — empty.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..lint import _WALLCLOCK_DATETIME_FNS, _WALLCLOCK_TIME_FNS
from .base import AnalysisPass, Finding, Rule
from .dims import (
    BOT,
    BYTES,
    CHUNK,
    COUNT,
    GRANULAR,
    MULT_CONVERSIONS,
    NONE,
    PAGE,
    REGION,
    SHIFT_LEFT,
    SHIFT_RIGHT,
    STRONG,
    TOP,
    UNKNOWN,
    UNITS_CONSTS,
    UNITS_FUNCS,
    VABLOCK,
    WALL_S,
    DimAnnotation,
    DimValue,
    collect_annotations,
    dv,
    is_mixing,
    is_units_module,
    join,
    mixing_family,
    unit_allows,
)
from .ir import FunctionInfo, ModuleInfo, ProjectIR, _dotted, resolve_symbol
from .metric_drift import extract_catalogs

#: Metric-emission methods whose first argument carries the observed value.
_EMIT_METHODS = frozenset({"inc", "dec", "observe", "set"})
#: Metric-registration methods (receiver is a registry).
_REGISTER_METHODS = frozenset({"counter", "gauge", "histogram"})

#: Builtins whose result preserves the (joined) dimension of their inputs.
_DIM_PRESERVING = frozenset(
    {"min", "max", "abs", "int", "float", "round", "sorted", "reversed",
     "list", "set", "tuple", "frozenset"}
)


@dataclass
class DimSummary:
    """Inferred dimension signature of one function."""

    params: List[DimValue] = field(default_factory=list)
    pinned: List[bool] = field(default_factory=list)
    ret: DimValue = UNKNOWN
    ret_pinned: bool = False

    def snapshot(self) -> Tuple:
        return (tuple(self.params), self.ret)


@dataclass
class _Context:
    """Shared pre-computed facts for every evaluation round."""

    ir: ProjectIR
    #: module name → {line → DimAnnotation}
    annotations: Dict[str, Dict[int, DimAnnotation]]
    #: module name → [(line, bad fragment)]
    annotation_errors: Dict[str, List[Tuple[int, str]]]
    #: attribute name → inferred dim (global, joined across classes).
    attr_dims: Dict[str, DimValue] = field(default_factory=dict)
    #: attribute names pinned by a ``# dim:`` annotation (joins skipped).
    attr_pinned: Set[str] = field(default_factory=set)
    #: module-global qname → dim.
    global_dims: Dict[str, DimValue] = field(default_factory=dict)
    #: cached-handle attribute name → metric family (None = conflicting).
    attr_handles: Dict[str, Optional[str]] = field(default_factory=dict)
    #: property name → getter qnames (reads go through their summaries).
    properties: Dict[str, List[str]] = field(default_factory=dict)
    #: metric family → declared unit (absent unit → not checked here).
    metric_units: Dict[str, str] = field(default_factory=dict)
    summaries: Dict[str, DimSummary] = field(default_factory=dict)

    def attr_read(self, name: str) -> DimValue:
        value = self.attr_dims.get(name, UNKNOWN)
        if value.dim == BOT and name in self.properties:
            out = UNKNOWN
            for qname in self.properties[name]:
                summary = self.summaries.get(qname)
                if summary is not None:
                    out = out.join(summary.ret)
            return out
        return value

    def attr_write(self, name: str, value: DimValue) -> None:
        if name in self.attr_pinned:
            return
        self.attr_dims[name] = self.attr_dims.get(name, UNKNOWN).join(value)


def _const_of(value: DimValue) -> Optional[int]:
    if value.const is None:
        return None
    as_int = int(value.const)
    return as_int if as_int == value.const else None


def _is_wallclock_call(node: ast.Call) -> bool:
    func = node.func
    if not isinstance(func, ast.Attribute):
        return False
    base = func.value
    if isinstance(base, ast.Name) and base.id == "time" \
            and func.attr in _WALLCLOCK_TIME_FNS:
        return True
    if func.attr in _WALLCLOCK_DATETIME_FNS and not node.args:
        names = {"datetime", "date"}
        if (isinstance(base, ast.Name) and base.id in names) or (
            isinstance(base, ast.Attribute) and base.attr in names
        ):
            return True
    return False


def _registration_family(node: ast.Call) -> Optional[str]:
    """``metrics.counter("name", ...)`` → ``"name"`` (literal only)."""
    if (
        isinstance(node.func, ast.Attribute)
        and node.func.attr in _REGISTER_METHODS
        and node.args
        and isinstance(node.args[0], ast.Constant)
        and isinstance(node.args[0].value, str)
    ):
        return node.args[0].value
    return None


class _DimEval(ast.NodeVisitor):
    """One abstract evaluation of a function body (or module top level).

    ``report`` toggles finding emission: fixpoint rounds run silent so
    every summary is stable before anything is reported (mirroring
    :class:`repro.check.program.taint._FunctionTaint`).
    """

    def __init__(
        self,
        owner: "DimensionsPass",
        ctx: _Context,
        module: ModuleInfo,
        fn: Optional[FunctionInfo],
        report: bool,
    ) -> None:
        self.owner = owner
        self.ctx = ctx
        self.module = module
        self.fn = fn
        self.report = report
        self.findings: List[Finding] = []
        self.env: Dict[str, DimValue] = {}
        self.handles: Dict[str, str] = {}  # local name → metric family
        self.summary: Optional[DimSummary] = None
        if fn is not None:
            self.summary = ctx.summaries[fn.qname]
            for i, name in enumerate(fn.params):
                self.env[name] = self.summary.params[i]

    # ------------------------------------------------------------ reporting

    def _emit(self, rule: Rule, node: ast.AST, message: str) -> None:
        if not self.report:
            return
        where = self.fn.qname if self.fn is not None else self.module.name
        self.findings.append(
            self.owner.make_finding(
                rule,
                path=str(self.module.path),
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                message=f"{message} (in {where})",
            )
        )

    def _report_mix(self, node: ast.AST, a: str, b: str, what: str) -> None:
        rule = (
            self.owner.RULE_TIME
            if mixing_family(a, b) == "time"
            else self.owner.RULE_MIXED
        )
        self._emit(rule, node, f"{what}: {a} vs {b}")

    # ----------------------------------------------------------- resolution

    def _annotation_at(self, line: int) -> Optional[DimAnnotation]:
        return self.ctx.annotations.get(self.module.name, {}).get(line)

    def _resolve_name(self, name: str) -> DimValue:
        if name in self.env:
            return self.env[name]
        if is_units_module(self.module.name) and name in UNITS_CONSTS:
            dim, const = UNITS_CONSTS[name]
            return DimValue(dim=dim, const=const, unit_const=name)
        qname = resolve_symbol(self.ctx.ir, self.module, name)
        if qname is None:
            if name in self.module.globals:
                qname = self.module.globals[name].qname
        if qname is not None:
            holder, _, leaf = qname.rpartition(".")
            if is_units_module(holder) and leaf in UNITS_CONSTS:
                dim, const = UNITS_CONSTS[leaf]
                return DimValue(dim=dim, const=const, unit_const=leaf)
            hit = self.ctx.global_dims.get(qname)
            if hit is not None:
                return hit
        return UNKNOWN

    def _callsite_callee(self, node: ast.Call) -> Optional[str]:
        if self.fn is not None:
            for site in self.fn.calls:
                if site.node is node:
                    return site.callee
            return None
        raw = _dotted(node.func)
        if raw is None:
            return None
        return resolve_symbol(self.ctx.ir, self.module, raw)

    def _family_of(self, node: ast.AST) -> Optional[str]:
        """Metric family behind a handle expression, if statically known."""
        if isinstance(node, ast.Call):
            family = _registration_family(node)
            if family is not None:
                return family
            if isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "labels":
                return self._family_of(node.func.value)
            return None
        if isinstance(node, ast.Attribute):
            return self.ctx.attr_handles.get(node.attr)
        if isinstance(node, ast.Name):
            return self.handles.get(node.id)
        return None

    # ------------------------------------------------------------- the eval

    def eval(self, node: Optional[ast.AST]) -> DimValue:
        if node is None:
            return UNKNOWN
        method = getattr(self, f"_eval_{type(node).__name__}", None)
        if method is not None:
            return method(node)
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.eval(child)
        return UNKNOWN

    def _eval_Constant(self, node: ast.Constant) -> DimValue:
        if isinstance(node.value, bool) or not isinstance(
            node.value, (int, float)
        ):
            return dv(NONE)
        return DimValue(dim=NONE, const=float(node.value))

    def _eval_Name(self, node: ast.Name) -> DimValue:
        return self._resolve_name(node.id)

    def _eval_Attribute(self, node: ast.Attribute) -> DimValue:
        # A dotted units constant (units.PAGE_SIZE) resolves like a name.
        raw = _dotted(node)
        if raw is not None and "." in raw:
            qname = resolve_symbol(self.ctx.ir, self.module, raw)
            if qname is not None:
                holder, _, leaf = qname.rpartition(".")
                if is_units_module(holder) and leaf in UNITS_CONSTS:
                    dim, const = UNITS_CONSTS[leaf]
                    return DimValue(dim=dim, const=const, unit_const=leaf)
                hit = self.ctx.global_dims.get(qname)
                if hit is not None:
                    return hit
        self.eval(node.value)
        return self.ctx.attr_read(node.attr)

    def _eval_UnaryOp(self, node: ast.UnaryOp) -> DimValue:
        inner = self.eval(node.operand)
        if isinstance(node.op, ast.USub) and inner.const is not None:
            return DimValue(dim=inner.dim, const=-inner.const)
        if isinstance(node.op, ast.Not):
            return dv(NONE)
        return DimValue(dim=inner.dim)

    def _eval_BoolOp(self, node: ast.BoolOp) -> DimValue:
        out = UNKNOWN
        for value in node.values:
            out = out.join(self.eval(value))
        return out

    def _eval_IfExp(self, node: ast.IfExp) -> DimValue:
        self.eval(node.test)
        return self.eval(node.body).join(self.eval(node.orelse))

    def _eval_NamedExpr(self, node: ast.NamedExpr) -> DimValue:
        value = self.eval(node.value)
        if isinstance(node.target, ast.Name):
            self.env[node.target.id] = value
        return value

    def _eval_Starred(self, node: ast.Starred) -> DimValue:
        return self.eval(node.value)

    def _eval_JoinedStr(self, node: ast.JoinedStr) -> DimValue:
        for child in ast.walk(node):
            if isinstance(child, ast.FormattedValue):
                self.eval(child.value)
        return dv(NONE)

    def _eval_Tuple(self, node: ast.Tuple) -> DimValue:
        elem = BOT
        for elt in node.elts:
            elem = join(elem, self.eval(elt).dim)
        return DimValue(elem=elem)

    _eval_List = _eval_Tuple

    def _eval_Set(self, node: ast.Set) -> DimValue:
        elem = BOT
        for elt in node.elts:
            elem = join(elem, self.eval(elt).dim)
        return DimValue(elem=elem, key=elem)

    def _eval_Dict(self, node: ast.Dict) -> DimValue:
        key = elem = BOT
        for k, v in zip(node.keys, node.values):
            if k is not None:
                key = join(key, self.eval(k).dim)
            elem = join(elem, self.eval(v).dim)
        return DimValue(key=key, elem=elem)

    def _comp_bind(self, generators) -> None:
        for gen in generators:
            source = self.eval(gen.iter)
            self._bind_target(gen.target, dv(source.elem))
            for cond in gen.ifs:
                self.eval(cond)

    def _eval_ListComp(self, node: ast.ListComp) -> DimValue:
        self._comp_bind(node.generators)
        return DimValue(elem=self.eval(node.elt).dim)

    _eval_GeneratorExp = _eval_ListComp

    def _eval_SetComp(self, node: ast.SetComp) -> DimValue:
        self._comp_bind(node.generators)
        elem = self.eval(node.elt).dim
        return DimValue(elem=elem, key=elem)

    def _eval_DictComp(self, node: ast.DictComp) -> DimValue:
        self._comp_bind(node.generators)
        return DimValue(key=self.eval(node.key).dim,
                        elem=self.eval(node.value).dim)

    # -------------------------------------------------------------- binops

    def _eval_BinOp(self, node: ast.BinOp) -> DimValue:
        left = self.eval(node.left)
        right = self.eval(node.right)
        op = node.op
        if isinstance(op, (ast.LShift, ast.RShift)):
            return self._eval_shift(node, left, right)
        if isinstance(op, (ast.Add, ast.Sub)):
            if is_mixing(left.dim, right.dim):
                self._report_mix(
                    node, left.dim, right.dim,
                    "mixed-dimension "
                    + ("addition" if isinstance(op, ast.Add) else "subtraction"),
                )
                return dv(TOP)
            out = join(left.dim, right.dim)
            # id − id is a distance, not an id (page ids: a page count).
            if (
                isinstance(op, ast.Sub)
                and left.dim == right.dim
                and left.dim in (PAGE, REGION, VABLOCK, CHUNK)
            ):
                out = COUNT
            const = None
            if left.const is not None and right.const is not None:
                const = (left.const + right.const
                         if isinstance(op, ast.Add)
                         else left.const - right.const)
            return DimValue(dim=out, const=const)
        if isinstance(op, ast.Mult):
            return self._eval_mult(left, right)
        if isinstance(op, (ast.Div, ast.FloorDiv)):
            return self._eval_div(left, right)
        if isinstance(op, ast.Mod):
            return DimValue(dim=left.dim)
        return dv(NONE)

    def _eval_shift(self, node: ast.BinOp, left: DimValue,
                    right: DimValue) -> DimValue:
        amount = _const_of(right)
        table = (SHIFT_LEFT if isinstance(node.op, ast.LShift)
                 else SHIFT_RIGHT)
        if left.dim in GRANULAR:
            if amount is None:
                return UNKNOWN  # dynamic shift amount: stay silent
            converted = table.get((left.dim, amount))
            if converted is not None:
                return dv(converted)
            arrow = "<<" if isinstance(node.op, ast.LShift) else ">>"
            self._emit(
                self.owner.RULE_SHIFT, node,
                f"shift of a {left.dim}-dimensioned value by {amount} "
                f"({arrow}) matches no known granularity conversion "
                "(PAGE/REGION/VABLOCK_SHIFT or their differences)",
            )
            return dv(TOP)
        const = None
        lc = _const_of(left)
        if lc is not None and amount is not None and 0 <= amount < 63:
            const = float(lc << amount if isinstance(node.op, ast.LShift)
                          else lc >> amount)
        return DimValue(dim=NONE if left.dim in (NONE, BOT) else left.dim,
                        const=const)

    def _eval_mult(self, left: DimValue, right: DimValue) -> DimValue:
        for a, b in ((left, right), (right, left)):
            converted = MULT_CONVERSIONS.get((a.dim, b.unit_const))
            if converted is not None:
                return dv(converted)
        const = None
        if left.const is not None and right.const is not None:
            const = left.const * right.const
        if left.dim in (NONE, COUNT, BOT):
            return DimValue(dim=right.dim, const=const,
                            unit_const=right.unit_const)
        if right.dim in (NONE, COUNT, BOT):
            return DimValue(dim=left.dim, const=const,
                            unit_const=left.unit_const)
        return DimValue(dim=TOP, const=const)

    def _eval_div(self, left: DimValue, right: DimValue) -> DimValue:
        # A ⊥ denominator may carry any dimension (rates like
        # bytes-per-usec are common), so only *known* weak denominators
        # preserve the numerator's dimension.
        if right.dim in (NONE, COUNT):
            return DimValue(dim=left.dim)
        if left.dim == right.dim and left.dim != BOT:
            return dv(COUNT)  # ratio: nbytes // PAGE_SIZE is a page count
        return UNKNOWN

    # ------------------------------------------------------------ compares

    def _eval_Compare(self, node: ast.Compare) -> DimValue:
        left = self.eval(node.left)
        for op, comp in zip(node.ops, node.comparators):
            right = self.eval(comp)
            if isinstance(op, (ast.In, ast.NotIn)):
                self._check_membership(node, left, right)
            elif is_mixing(left.dim, right.dim):
                self._report_mix(node, left.dim, right.dim,
                                 "mixed-dimension comparison")
            left = right
        return dv(NONE)

    def _check_membership(self, node: ast.AST, needle: DimValue,
                          haystack: DimValue) -> None:
        slot = haystack.key or haystack.elem
        if needle.dim in STRONG and slot in STRONG and needle.dim != slot:
            if mixing_family(needle.dim, slot) == "time":
                self._report_mix(node, needle.dim, slot,
                                 "membership test across time domains")
            else:
                self._emit(
                    self.owner.RULE_INDEX, node,
                    f"membership test with a {needle.dim} value against a "
                    f"container keyed by {slot}",
                )

    # ------------------------------------------------------------ subscript

    def _eval_Subscript(self, node: ast.Subscript) -> DimValue:
        container = self.eval(node.value)
        if isinstance(node.slice, ast.Slice):
            for bound in (node.slice.lower, node.slice.upper,
                          node.slice.step):
                self.eval(bound)
            return container
        index = self.eval(node.slice)
        self._check_index(node, index, container)
        return dv(container.elem)

    def _check_index(self, node: ast.AST, index: DimValue,
                     container: DimValue) -> None:
        if (
            index.dim in STRONG
            and container.key in STRONG
            and index.dim != container.key
        ):
            if mixing_family(index.dim, container.key) == "time":
                self._report_mix(node, index.dim, container.key,
                                 "index across time domains")
            else:
                self._emit(
                    self.owner.RULE_INDEX, node,
                    f"container keyed by {container.key} indexed with a "
                    f"{index.dim} value",
                )

    # ---------------------------------------------------------------- calls

    def _eval_Call(self, node: ast.Call) -> DimValue:
        if _is_wallclock_call(node):
            for arg in node.args:
                self.eval(arg)
            return dv(WALL_S)

        func = node.func
        arg_values = [self.eval(a) for a in node.args]
        kw_values = [(kw.arg, self.eval(kw.value)) for kw in node.keywords]

        if isinstance(func, ast.Name):
            builtin = self._eval_builtin(func.id, node, arg_values)
            if builtin is not None:
                return builtin

        if isinstance(func, ast.Attribute):
            handled = self._eval_method(node, func, arg_values)
            if handled is not None:
                return handled

        callee = self._callsite_callee(node)
        if callee is not None:
            sig = self._units_signature(callee)
            if sig is not None:
                self._check_signature_args(node, sig.params, arg_values,
                                           callee.rpartition(".")[2])
                return sig.ret
            summary = self.ctx.summaries.get(callee)
            if summary is not None:
                self._flow_into_summary(node, callee, summary, arg_values,
                                        kw_values)
                return summary.ret
        self.eval(func)
        return UNKNOWN

    def _units_signature(self, callee: str):
        holder, _, leaf = callee.rpartition(".")
        if is_units_module(holder):
            return UNITS_FUNCS.get(leaf)
        return None

    def _brand(self, arg_node: ast.AST, got: DimValue, want: str) -> None:
        """Back-inference: a ⊥ local handed to a dimension-typed parameter
        *is* that dimension (``page_of(addr)`` brands ``addr`` as bytes)."""
        if (
            want in STRONG
            and got.dim == BOT
            and isinstance(arg_node, ast.Name)
        ):
            prior = self.env.get(arg_node.id, UNKNOWN)
            if prior.dim == BOT:
                self.env[arg_node.id] = DimValue(
                    dim=want, elem=prior.elem, key=prior.key
                )

    def _check_signature_args(
        self, node: ast.Call, expected: Sequence[str],
        args: Sequence[DimValue], fn_name: str,
    ) -> None:
        for i, (want, got) in enumerate(zip(expected, args)):
            if i < len(node.args):
                self._brand(node.args[i], got, want)
            if want in STRONG and got.dim in STRONG and got.dim != want:
                if mixing_family(want, got.dim) == "time":
                    self._report_mix(
                        node, got.dim, want,
                        f"argument {i} of {fn_name}() expects {want}",
                    )
                elif {want, got.dim} & {BYTES, PAGE}:
                    self._emit(
                        self.owner.RULE_INDEX, node,
                        f"argument {i} of {fn_name}() expects {want}, "
                        f"got {got.dim} (page/byte confusion)",
                    )
                else:
                    self._emit(
                        self.owner.RULE_MIXED, node,
                        f"argument {i} of {fn_name}() expects {want}, "
                        f"got {got.dim}",
                    )

    def _arg_offset(self, callee_fn: Optional[FunctionInfo],
                    node: ast.Call) -> int:
        if callee_fn is None or callee_fn.owner_class is None:
            return 0
        raw = _dotted(node.func) or ""
        parts = raw.split(".")
        # Instantiation resolved to __init__: the class name is the call
        # target, so positional args start at the parameter after self.
        if callee_fn.node.name == "__init__" and parts[-1] != "__init__":
            return 1
        if isinstance(node.func, ast.Attribute):
            head = parts[0]
            return 0 if head and head[0].isupper() else 1
        return 0

    def _flow_into_summary(
        self,
        node: ast.Call,
        callee: str,
        summary: DimSummary,
        args: Sequence[DimValue],
        kwargs: Sequence[Tuple[Optional[str], DimValue]],
    ) -> None:
        callee_fn = self.ctx.ir.functions.get(callee)
        offset = self._arg_offset(callee_fn, node)
        names = callee_fn.params if callee_fn is not None else []
        for i, value in enumerate(args):
            idx = i + offset
            if idx >= len(summary.params):
                continue
            self._flow_param(node, callee, summary, idx, value,
                             names[idx] if idx < len(names) else f"#{idx}",
                             arg_node=node.args[i])
        for kw in node.keywords:
            if kw.arg in names:
                idx = names.index(kw.arg)
                value = dict(kwargs).get(kw.arg, UNKNOWN)
                self._flow_param(node, callee, summary, idx, value, kw.arg,
                                 arg_node=kw.value)

    def _flow_param(self, node: ast.Call, callee: str, summary: DimSummary,
                    idx: int, value: DimValue, param_name: str,
                    arg_node: Optional[ast.AST] = None) -> None:
        if summary.pinned[idx]:
            want = summary.params[idx].dim
            if arg_node is not None:
                self._brand(arg_node, value, want)
            if want in STRONG and value.dim in STRONG and value.dim != want:
                leaf = callee.rpartition(".")[2]
                if mixing_family(want, value.dim) == "time":
                    self._report_mix(
                        node, value.dim, want,
                        f"{param_name}= of {leaf}() is annotated {want}",
                    )
                else:
                    self._emit(
                        self.owner.RULE_MIXED, node,
                        f"{param_name}= of {leaf}() is annotated {want}, "
                        f"got {value.dim}",
                    )
            return
        summary.params[idx] = summary.params[idx].join(value)

    def _eval_builtin(self, name: str, node: ast.Call,
                      args: Sequence[DimValue]) -> Optional[DimValue]:
        # Builtins shadowed by a project definition resolve as calls.
        if self._callsite_callee(node) is not None:
            return None
        if name == "len":
            return dv(COUNT)
        if name == "range":
            if len(args) >= 2:
                a, b = args[0], args[1]
                if is_mixing(a.dim, b.dim):
                    if mixing_family(a.dim, b.dim) == "time":
                        self._report_mix(node, a.dim, b.dim,
                                         "range across time domains")
                    else:
                        self._emit(
                            self.owner.RULE_INDEX, node,
                            f"range() constructed across granularities: "
                            f"{a.dim} start vs {b.dim} stop",
                        )
                return DimValue(elem=join(a.dim, b.dim))
            return DimValue(elem=COUNT)
        if name == "sum" and args:
            return dv(args[0].elem or args[0].dim)
        if name in ("min", "max") and len(args) == 1:
            src = args[0]
            return dv(src.elem or src.dim)
        if name in _DIM_PRESERVING:
            out = UNKNOWN
            for value in args:
                out = out.join(value)
            return out
        return None

    def _eval_method(self, node: ast.Call, func: ast.Attribute,
                     args: Sequence[DimValue]) -> Optional[DimValue]:
        attr = func.attr
        if attr in _EMIT_METHODS:
            family = self._family_of(func.value)
            if family is not None:
                self._check_metric_emit(node, family, args)
                return dv(NONE)
        if attr == "labels":
            # Chained handle: family unchanged, value methods follow.
            if self._family_of(func.value) is not None:
                return dv(NONE)
        receiver: Optional[DimValue] = None
        if attr in ("get", "pop", "setdefault") and args:
            receiver = self.eval(func.value)
            self._check_index(node, args[0], receiver)
            default = args[1] if len(args) > 1 else UNKNOWN
            return dv(join(receiver.elem, default.dim))
        if attr in ("add", "append", "discard", "remove") and args:
            receiver = self.eval(func.value)
            grown = DimValue(elem=join(receiver.elem, args[0].dim),
                             key=receiver.key)
            self._store_container(func.value, grown)
            return dv(NONE)
        if attr == "keys":
            receiver = self.eval(func.value)
            return DimValue(elem=receiver.key)
        if attr == "values":
            receiver = self.eval(func.value)
            return DimValue(elem=receiver.elem)
        return None

    def _check_metric_emit(self, node: ast.Call, family: str,
                           args: Sequence[DimValue]) -> None:
        unit = self.ctx.metric_units.get(family)
        if unit is None or not args:
            return
        got = args[0].dim
        if not unit_allows(unit, got):
            self._emit(
                self.owner.RULE_METRIC, node,
                f"metric {family!r} declares unit {unit!r} but this "
                f"argument carries dimension {got!r}",
            )

    # ------------------------------------------------------------- binding

    def _store_container(self, target: ast.AST, value: DimValue) -> None:
        """Join container facts (elem/key) back into the receiver."""
        if isinstance(target, ast.Name):
            prior = self.env.get(target.id, UNKNOWN)
            self.env[target.id] = prior.join(value)
        elif isinstance(target, ast.Attribute):
            self.ctx.attr_write(target.attr, value)

    def _bind_target(self, target: ast.AST, value: DimValue,
                     check: bool = False, stmt: ast.AST = None) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_target(elt, dv(value.elem), check=False)
        elif isinstance(target, ast.Attribute):
            self.eval(target.value)
            self.ctx.attr_write(target.attr, value)
        elif isinstance(target, ast.Subscript):
            container = self.eval(target.value)
            if not isinstance(target.slice, ast.Slice):
                index = self.eval(target.slice)
                self._check_index(stmt or target, index, container)
                self._store_container(
                    target.value,
                    DimValue(key=join(container.key, index.dim),
                             elem=join(container.elem, value.dim)),
                )
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, value)

    # ----------------------------------------------------------- statements

    def _annotated_value(self, stmt: ast.stmt,
                         value: DimValue) -> DimValue:
        """Apply a bare ``# dim: X`` comment on the statement's first line."""
        ann = self._annotation_at(stmt.lineno)
        if ann is not None and ann.default is not None:
            return ann.default
        return value

    def _apply_named_bindings(self, stmt: ast.stmt) -> None:
        ann = self._annotation_at(stmt.lineno)
        if ann is not None:
            for name, value in ann.bindings.items():
                self.env[name] = value

    def visit_Assign(self, node: ast.Assign) -> None:
        value = self._annotated_value(node, self.eval(node.value))
        family = None
        if isinstance(node.value, ast.Call):
            family = self._family_of(node.value)
        for target in node.targets:
            self._bind_target(target, value, stmt=node)
            if family is not None and isinstance(target, ast.Name):
                self.handles[target.id] = family
        self._apply_named_bindings(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            value = self._annotated_value(node, self.eval(node.value))
            self._bind_target(node.target, value, stmt=node)
        self._apply_named_bindings(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        value = self.eval(node.value)
        if isinstance(node.target, ast.Name):
            prior = self.env.get(node.target.id, UNKNOWN)
        elif isinstance(node.target, ast.Attribute):
            prior = self.ctx.attr_read(node.target.attr)
        else:
            prior = UNKNOWN
        if isinstance(node.op, (ast.Add, ast.Sub)) \
                and is_mixing(prior.dim, value.dim):
            self._report_mix(node, prior.dim, value.dim,
                             "mixed-dimension augmented assignment")
        if isinstance(node.target, ast.Name):
            self.env[node.target.id] = prior.join(value)
        elif isinstance(node.target, ast.Attribute):
            self.ctx.attr_write(node.target.attr, value)
        else:
            self._bind_target(node.target, value, stmt=node)
        self._apply_named_bindings(node)

    def visit_Return(self, node: ast.Return) -> None:
        value = self.eval(node.value)
        if self.summary is not None and not self.summary.ret_pinned:
            self.summary.ret = self.summary.ret.join(value)

    def visit_For(self, node: ast.For) -> None:
        source = self.eval(node.iter)
        self._bind_target(node.target, dv(source.elem))
        for child in node.body + node.orelse:
            self.visit(child)

    visit_AsyncFor = visit_For

    def visit_While(self, node: ast.While) -> None:
        self.eval(node.test)
        for child in node.body + node.orelse:
            self.visit(child)

    def visit_If(self, node: ast.If) -> None:
        self.eval(node.test)
        for child in node.body + node.orelse:
            self.visit(child)

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            value = self.eval(item.context_expr)
            if item.optional_vars is not None:
                self._bind_target(item.optional_vars, value)
        for child in node.body:
            self.visit(child)

    visit_AsyncWith = visit_With

    def visit_Try(self, node: ast.Try) -> None:
        for child in node.body:
            self.visit(child)
        for handler in node.handlers:
            for child in handler.body:
                self.visit(child)
        for child in node.orelse + node.finalbody:
            self.visit(child)

    def visit_Expr(self, node: ast.Expr) -> None:
        self.eval(node.value)

    def visit_Assert(self, node: ast.Assert) -> None:
        self.eval(node.test)

    def visit_FunctionDef(self, node) -> None:
        pass  # nested defs carry their own summaries via the module walk

    visit_AsyncFunctionDef = visit_FunctionDef
    visit_ClassDef = visit_FunctionDef

    def run(self, body: Sequence[ast.stmt]) -> List[Finding]:
        # Two sweeps approximate loop-carried dims (a name dimensioned late
        # in a loop body used earlier in the next iteration).
        for _ in range(2):
            for stmt in body:
                self.visit(stmt)
        return self.findings


# --------------------------------------------------------------- pre-passes


def _collect_handle_table(ir: ProjectIR) -> Dict[str, Optional[str]]:
    """attribute name → metric family, resolved through ``.labels`` chains.

    Conflicting families for one attribute name collapse to ``None`` so no
    emission through that handle is ever checked against the wrong unit.
    """
    table: Dict[str, Optional[str]] = {}

    def family_of(node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Call):
            direct = _registration_family(node)
            if direct is not None:
                return direct
            if isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "labels":
                return family_of(node.func.value)
            return None
        if isinstance(node, ast.Attribute):
            return table.get(node.attr)
        return None

    for _round in range(3):
        changed = False
        for _name, mod in sorted(ir.modules.items()):
            for node in ast.walk(mod.tree):
                if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                    continue
                target = node.targets[0]
                if not isinstance(target, ast.Attribute):
                    continue
                family = family_of(node.value)
                if family is None:
                    continue
                prior = table.get(target.attr, family)
                resolved = family if prior == family else None
                if table.get(target.attr, "\0") != resolved:
                    table[target.attr] = resolved
                    changed = True
        if not changed:
            break
    return table


def _collect_properties(ir: ProjectIR) -> Dict[str, List[str]]:
    props: Dict[str, List[str]] = {}
    for qname, fn in sorted(ir.functions.items()):
        node = fn.node
        for dec in getattr(node, "decorator_list", []):
            if isinstance(dec, ast.Name) and dec.id == "property":
                props.setdefault(node.name, []).append(qname)
    return props


def _metric_units(ir: ProjectIR) -> Dict[str, str]:
    metrics, _spans, _module = extract_catalogs(ir)
    return {
        name: decl.unit
        for name, decl in metrics.items()
        if decl.unit is not None
    }


def _seed_class_annotations(ctx: _Context, ir: ProjectIR) -> None:
    """Pin attribute dims from ``# dim:`` comments in class bodies."""
    for _name, mod in sorted(ir.modules.items()):
        anns = ctx.annotations.get(mod.name, {})
        if not anns:
            continue
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for stmt in node.body:
                ann = anns.get(stmt.lineno)
                if ann is None or ann.default is None:
                    continue
                targets: List[str] = []
                if isinstance(stmt, ast.AnnAssign) \
                        and isinstance(stmt.target, ast.Name):
                    targets = [stmt.target.id]
                elif isinstance(stmt, ast.Assign):
                    targets = [t.id for t in stmt.targets
                               if isinstance(t, ast.Name)]
                for name in targets:
                    ctx.attr_dims[name] = ann.default
                    ctx.attr_pinned.add(name)


def _seed_summaries(ctx: _Context, ir: ProjectIR) -> None:
    for qname, fn in ir.functions.items():
        summary = DimSummary(
            params=[UNKNOWN] * len(fn.params),
            pinned=[False] * len(fn.params),
        )
        mod = ir.modules.get(fn.module)
        ann = None
        if mod is not None:
            ann = ctx.annotations.get(mod.name, {}).get(fn.node.lineno)
        if ann is not None:
            for i, name in enumerate(fn.params):
                if name in ann.bindings:
                    summary.params[i] = ann.bindings[name]
                    summary.pinned[i] = True
            if ann.ret is not None:
                summary.ret = ann.ret
                summary.ret_pinned = True
        # units.py's own helpers carry their seeded signatures.
        if mod is not None and is_units_module(mod.name) \
                and fn.local_name in UNITS_FUNCS:
            sig = UNITS_FUNCS[fn.local_name]
            for i, dim in enumerate(sig.params):
                if i < len(summary.params):
                    summary.params[i] = dv(dim)
                    summary.pinned[i] = True
            summary.ret = sig.ret
            summary.ret_pinned = True
        ctx.summaries[qname] = summary


class DimensionsPass(AnalysisPass):
    """Interprocedural units-and-dimensions checking (*uvm-units*)."""

    name = "dimensions"
    RULE_MIXED = Rule(
        "dim-mixed-arith", "dimensions", "error",
        "values of different granularities (bytes/page/region/vablock/"
        "chunk) meet in +, -, a comparison, or a dimension-annotated "
        "parameter",
    )
    RULE_INDEX = Rule(
        "dim-page-index", "dimensions", "error",
        "page/byte confusion in container indexing, membership, range "
        "construction, or a units.py conversion argument",
    )
    RULE_TIME = Rule(
        "dim-time-mix", "dimensions", "error",
        "simulated-microsecond and wall-second values meet in arithmetic, "
        "a comparison, or an annotated time parameter",
    )
    RULE_METRIC = Rule(
        "dim-metric-unit", "dimensions", "error",
        "metric observe/inc/set argument dimension contradicts the "
        "catalog's declared unit",
    )
    RULE_SHIFT = Rule(
        "dim-shift", "dimensions", "error",
        "dimension-changing shift whose amount matches no known "
        "granularity conversion constant",
    )
    RULE_ANNOTATION = Rule(
        "dim-annotation", "dimensions", "warning",
        "`# dim:` comment does not parse (unknown dimension name or "
        "malformed entry)",
    )
    rules = (RULE_MIXED, RULE_INDEX, RULE_TIME, RULE_METRIC, RULE_SHIFT,
             RULE_ANNOTATION)

    #: Fixpoint round cap; the lattice is flat so real code converges in a
    #: handful of rounds — the cap only bounds adversarial inputs.
    MAX_ROUNDS = 12

    def run(self, ir: ProjectIR) -> List[Finding]:
        annotations: Dict[str, Dict[int, DimAnnotation]] = {}
        annotation_errors: Dict[str, List[Tuple[int, str]]] = {}
        for name, mod in sorted(ir.modules.items()):
            parsed, bad = collect_annotations(mod.lines)
            if parsed:
                annotations[name] = parsed
            if bad:
                annotation_errors[name] = bad

        ctx = _Context(ir=ir, annotations=annotations,
                       annotation_errors=annotation_errors)
        ctx.attr_handles = _collect_handle_table(ir)
        ctx.properties = _collect_properties(ir)
        ctx.metric_units = _metric_units(ir)
        _seed_class_annotations(ctx, ir)
        _seed_summaries(ctx, ir)

        def sweep(report: bool) -> List[Finding]:
            findings: List[Finding] = []
            for name, mod in sorted(ir.modules.items()):
                top = _DimEval(self, ctx, mod, fn=None, report=report)
                findings.extend(
                    top.run([s for s in mod.tree.body
                             if not isinstance(s, (ast.FunctionDef,
                                                   ast.AsyncFunctionDef,
                                                   ast.ClassDef))])
                )
                # Record module-global dims for cross-module reads.
                for gname, gvar in mod.globals.items():
                    if gname in top.env:
                        prior = ctx.global_dims.get(gvar.qname, UNKNOWN)
                        ctx.global_dims[gvar.qname] = prior.join(
                            top.env[gname]
                        )
            for qname, fn in sorted(ir.functions.items()):
                mod = ir.modules.get(fn.module)
                if mod is None:
                    continue
                body = _DimEval(self, ctx, mod, fn, report=report)
                findings.extend(body.run(fn.node.body))
            return findings

        for _round in range(self.MAX_ROUNDS):
            before = (
                tuple(s.snapshot() for _q, s in sorted(ctx.summaries.items())),
                tuple(sorted(ctx.attr_dims.items())),
                tuple(sorted(ctx.global_dims.items())),
            )
            sweep(report=False)
            after = (
                tuple(s.snapshot() for _q, s in sorted(ctx.summaries.items())),
                tuple(sorted(ctx.attr_dims.items())),
                tuple(sorted(ctx.global_dims.items())),
            )
            if before == after:
                break

        findings = sweep(report=True)
        for name, errors in sorted(annotation_errors.items()):
            mod = ir.modules.get(name)
            if mod is None:
                continue
            for line, fragment in errors:
                findings.append(
                    self.make_finding(
                        self.RULE_ANNOTATION,
                        path=str(mod.path), line=line, col=0,
                        message=f"unparseable `# dim:` entry {fragment} "
                                "(see docs/static-analysis.md for the "
                                "vocabulary)",
                    )
                )
        # The double sweep inside run() can report one site twice.
        unique = {(f.path, f.line, f.col, f.rule, f.message): f
                  for f in findings}
        return list(unique.values())
