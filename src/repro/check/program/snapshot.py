"""Checkpoint-coverage pass: mutable state must be captured or excluded.

``repro/sim/checkpoint.py`` captures simulation state three ways: generic
``_capture_obj`` over component objects (everything except ``_SKIP_COMMON``
/ ``_SKIP_EXTRA`` / ``_m_*``), verbatim attribute lists for the engine and
driver (``_ENGINE_ATTRS`` / ``_DRIVER_ATTRS``), and explicit reads in
``_build_state`` / ``restore_into``.  This pass re-derives that contract
from the AST and diffs it against the classes' actual mutable-attribute
sets, so "added a field, forgot checkpoint/restore" drift is caught
statically:

* ``snapshot-uncaptured`` — an attr-list class (Engine/UvmDriver) mutates
  ``self.<attr>`` outside ``__init__`` but the attribute is neither in the
  verbatim list, nor skip-excluded, nor referenced by the checkpoint
  module, nor annotated ``# snapshot: skip``;
* ``snapshot-skip-drift`` — a ``# snapshot: skip`` annotation that the
  checkpoint machinery does not actually honor: on a ``_capture_obj``
  component class the attribute is not excluded (so it *is* pickled), or
  on an attr-list class the attribute is captured verbatim anyway;
* ``snapshot-stale-skip`` — a skip-set entry that matches no attribute
  assignment anywhere in the project (dead weight, or a renamed field
  whose exclusion silently stopped applying).

The pass activates only when the analyzed tree contains a module named per
:data:`~.protocols.SnapshotSpec` defining the skip-set global, so fixture
projects without a checkpoint module are unaffected.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from .base import AnalysisPass, Finding, Rule
from .ir import ModuleInfo, ProjectIR
from .protocols import SNAPSHOT, SNAPSHOT_SKIP_RE, SnapshotSpec

#: Method names that mutate a container in place: ``self.X.append(...)``
#: outside ``__init__`` marks ``X`` mutable state.
_MUTATORS = frozenset(
    {"append", "add", "insert", "extend", "update", "pop", "popleft",
     "appendleft", "remove", "discard", "clear", "setdefault"}
)

_RULES = {
    "uncaptured": Rule(
        id="snapshot-uncaptured",
        pass_name="snapshot",
        severity="error",
        description=(
            "A checkpoint-listed class mutates an attribute outside "
            "__init__ that no capture list, skip set, checkpoint-module "
            "reference, or '# snapshot: skip' annotation accounts for — "
            "restore would silently lose it."
        ),
    ),
    "skip-drift": Rule(
        id="snapshot-skip-drift",
        pass_name="snapshot",
        severity="error",
        description=(
            "A '# snapshot: skip' annotation the checkpoint machinery does "
            "not honor: the attribute is captured anyway (missing from the "
            "skip sets, or present in a verbatim attr list)."
        ),
    ),
    "stale-skip": Rule(
        id="snapshot-stale-skip",
        pass_name="snapshot",
        severity="warning",
        description=(
            "A skip-set entry matching no attribute assignment in the "
            "project: dead weight, or a renamed field whose exclusion "
            "silently stopped applying."
        ),
    ),
}


def _string_elements(node: ast.AST) -> Set[str]:
    return {
        n.value for n in ast.walk(node)
        if isinstance(n, ast.Constant) and isinstance(n.value, str)
    }


def _module_global_value(module: ModuleInfo, name: str) -> Optional[ast.expr]:
    for st in module.tree.body:
        if isinstance(st, ast.Assign):
            for t in st.targets:
                if isinstance(t, ast.Name) and t.id == name:
                    return st.value
        elif isinstance(st, ast.AnnAssign):
            if isinstance(st.target, ast.Name) and st.target.id == name:
                return st.value
    return None


def _global_line(module: ModuleInfo, name: str) -> int:
    for st in module.tree.body:
        targets = (
            st.targets if isinstance(st, ast.Assign)
            else [st.target] if isinstance(st, ast.AnnAssign) else ()
        )
        for t in targets:
            if isinstance(t, ast.Name) and t.id == name:
                return st.lineno
    return 1


class _ClassScan:
    """Attribute facts of one class: init/mutation sites, annotations."""

    def __init__(self, module: ModuleInfo, node: ast.ClassDef) -> None:
        self.module = module
        self.node = node
        #: attr → line of first assignment inside __init__.
        self.init_attrs: Dict[str, int] = {}
        #: attr → line of first mutation outside __init__.
        self.mutated: Dict[str, int] = {}
        #: attrs whose assignment line carries ``# snapshot: skip``,
        #: attr → annotation line.
        self.annotated: Dict[str, int] = {}
        lines = module.lines
        for meth in node.body:
            if not isinstance(meth, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            in_init = meth.name == "__init__"
            for sub in ast.walk(meth):
                for attr, line in _self_attr_writes(sub):
                    if in_init:
                        self.init_attrs.setdefault(attr, line)
                    else:
                        self.mutated.setdefault(attr, line)
                    if 1 <= line <= len(lines) and SNAPSHOT_SKIP_RE.search(
                        lines[line - 1]
                    ):
                        self.annotated.setdefault(attr, line)


def _self_attr_writes(node: ast.AST) -> List[Tuple[str, int]]:
    """(attr, line) pairs this single node writes on ``self``."""
    out: List[Tuple[str, int]] = []
    if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for t in targets:
            base = t
            while isinstance(base, ast.Subscript):
                base = base.value
            if (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
            ):
                out.append((base.attr, node.lineno))
    elif isinstance(node, ast.Call):
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATORS
            and isinstance(func.value, ast.Attribute)
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id == "self"
        ):
            out.append((func.value.attr, node.lineno))
    return out


def _find_class(
    ir: ProjectIR, local_name: str
) -> Optional[Tuple[ModuleInfo, ast.ClassDef]]:
    for mod_name in sorted(ir.modules):
        module = ir.modules[mod_name]
        if local_name in module.classes:
            for st in ast.walk(module.tree):
                if isinstance(st, ast.ClassDef) and st.name == local_name:
                    return module, st
    return None


class SnapshotCoveragePass(AnalysisPass):
    """Diff the engine's mutable-attribute set against checkpoint capture."""

    name = "snapshot"
    rules = tuple(_RULES.values())

    def __init__(self, spec: SnapshotSpec = SNAPSHOT) -> None:
        self.spec = spec

    def run(self, ir: ProjectIR) -> List[Finding]:
        spec = self.spec
        ckpt = self._find_checkpoint_module(ir)
        if ckpt is None:
            return []
        findings: List[Finding] = []

        skip_common = self._set_global(ckpt, spec.skip_common_global)
        skip_extra = self._set_global(ckpt, spec.skip_extra_global)
        skips = skip_common | skip_extra
        #: Attribute names the checkpoint module touches explicitly
        #: (``engine.clock``, ``driver.log.records`` …) — coarse but
        #: sufficient as an "explicitly captured" whitelist.
        referenced = {
            n.attr for n in ast.walk(ckpt.tree) if isinstance(n, ast.Attribute)
        }

        scanned: List[_ClassScan] = []

        for list_global, class_name in sorted(spec.attr_lists.items()):
            value = _module_global_value(ckpt, list_global)
            found = _find_class(ir, class_name)
            if value is None or found is None:
                continue
            listed = _string_elements(value)
            module, node = found
            scan = _ClassScan(module, node)
            scanned.append(scan)
            path = str(module.path)
            for attr in sorted(scan.mutated):
                line = scan.mutated[attr]
                if (
                    attr in listed
                    or attr in skips
                    or attr.startswith(spec.metric_prefix)
                    or attr in referenced
                    or attr in scan.annotated
                ):
                    continue
                findings.append(
                    self.make_finding(
                        _RULES["uncaptured"], path, line, 0,
                        f"{class_name}.{attr} is mutated outside __init__ but "
                        f"is not in {list_global}, not skip-excluded, not "
                        f"referenced by the checkpoint module, and not "
                        f"annotated '# snapshot: skip' — checkpoint/restore "
                        f"silently loses it",
                    )
                )
            for attr in sorted(set(scan.annotated) & listed):
                findings.append(
                    self.make_finding(
                        _RULES["skip-drift"], path, scan.annotated[attr], 0,
                        f"{class_name}.{attr} is annotated '# snapshot: skip' "
                        f"but is captured verbatim by {list_global} — the "
                        f"annotation contradicts the capture list",
                    )
                )

        for class_name in spec.component_classes:
            found = _find_class(ir, class_name)
            if found is None:
                continue
            module, node = found
            scan = _ClassScan(module, node)
            scanned.append(scan)
            path = str(module.path)
            for attr in sorted(scan.annotated):
                if attr in skips or attr.startswith(spec.metric_prefix):
                    continue
                findings.append(
                    self.make_finding(
                        _RULES["skip-drift"], path, scan.annotated[attr], 0,
                        f"{class_name}.{attr} is annotated '# snapshot: skip' "
                        f"but no skip set excludes it — _attr_names still "
                        f"captures (and restore still rewinds) this wiring "
                        f"attribute",
                    )
                )

        assigned_anywhere = self._all_self_attrs(ir)
        ckpt_path = str(ckpt.path)
        for name, owner in sorted(
            [(n, spec.skip_common_global) for n in skip_common]
            + [(n, spec.skip_extra_global) for n in skip_extra]
        ):
            if name in assigned_anywhere:
                continue
            findings.append(
                self.make_finding(
                    _RULES["stale-skip"], ckpt_path, _global_line(ckpt, owner), 0,
                    f"skip entry '{name}' in {owner} matches no attribute "
                    f"assignment anywhere in the project",
                )
            )
        return findings

    # ------------------------------------------------------------ helpers

    def _find_checkpoint_module(self, ir: ProjectIR) -> Optional[ModuleInfo]:
        for mod_name in sorted(ir.modules):
            module = ir.modules[mod_name]
            if mod_name.split(".")[-1] != self.spec.checkpoint_module:
                continue
            if _module_global_value(module, self.spec.skip_common_global):
                return module
        return None

    def _set_global(self, module: ModuleInfo, name: str) -> Set[str]:
        value = _module_global_value(module, name)
        if value is None:
            return set()
        if isinstance(value, ast.Dict):
            # _SKIP_EXTRA maps kind → names; only the names are skips.
            out: Set[str] = set()
            for v in value.values:
                out |= _string_elements(v)
            return out
        return _string_elements(value)

    @staticmethod
    def _all_self_attrs(ir: ProjectIR) -> Set[str]:
        out: Set[str] = set()
        for _name, module in sorted(ir.modules.items()):
            for node in ast.walk(module.tree):
                for attr, _line in _self_attr_writes(node):
                    out.add(attr)
        return out
