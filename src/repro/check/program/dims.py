"""Dimension lattice, seed facts, and the ``# dim:`` annotation vocabulary.

The simulator juggles four incompatible granularities — byte addresses,
4 KiB OS pages, 64 KiB upgrade regions, 2 MiB VABlocks (paper §2.2,
mirrored in :mod:`repro.units`) — plus two time domains (simulated µs vs
host wall seconds).  The ``dimensions`` pass
(:mod:`repro.check.program.dimensions`) infers one of the dims below for
every local, parameter, return, and attribute field; this module is the
shared vocabulary: the lattice and its join, the conversion tables for
shifts and multiplies, the seeded :mod:`repro.units` signatures, and the
parser for ``# dim:`` source annotations.

Lattice (⊥ below everything, ⊤ above)::

                     ⊤  (mixed — conflicting evidence, always silent)
      bytes page region vablock chunk us wall      ("strong" dims)
                   count   none                    ("weak" — compatible
                     ⊥  (no information)            with everything)

Weak dims absorb into strong ones on join (``page + 1`` stays a page id);
two *different* strong dims join to ⊤, and only explicit mixing operations
(``+``/``-``/comparisons/known-signature calls) on two live strong dims are
reported — ⊤ itself never fires, which keeps the pass conservative.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

# --------------------------------------------------------------- the lattice

BOT = ""          # no information
TOP = "mixed"     # conflicting evidence — deliberately silent
BYTES = "bytes"   # byte addresses AND byte sizes (flat managed VA space)
PAGE = "page"     # 4 KiB OS page ids
REGION = "region"  # 64 KiB upgrade-region ids
VABLOCK = "vablock"  # 2 MiB VABlock ids
CHUNK = "chunk"   # device-memory chunk ids
SIM_US = "us"     # simulated time, microseconds
WALL_S = "wall"   # host wall-clock time, seconds
COUNT = "count"   # cardinalities (len(), fault counts, loop trip counts)
NONE = "none"     # dimensionless (ratios, literals, flags)

#: Dims that can participate in a reportable mixing.
STRONG = frozenset({BYTES, PAGE, REGION, VABLOCK, CHUNK, SIM_US, WALL_S})
#: The spatial granularities (page↔byte confusion family).
GRANULAR = frozenset({BYTES, PAGE, REGION, VABLOCK, CHUNK})
#: The time domains (sim-vs-wall mixing family).
TIME = frozenset({SIM_US, WALL_S})
#: Weak dims: compatible with everything, absorbed on join.
WEAK = frozenset({COUNT, NONE})

#: Every name the ``# dim:`` annotation vocabulary accepts.
ANNOTATABLE = frozenset(
    {BYTES, PAGE, REGION, VABLOCK, CHUNK, SIM_US, WALL_S, COUNT, NONE}
)


def join(a: str, b: str) -> str:
    """Lattice join.  Weak dims absorb into strong; strong conflict → ⊤."""
    if a == b:
        return a
    if not a:
        return b
    if not b:
        return a
    if a == TOP or b == TOP:
        return TOP
    if a in WEAK:
        return b
    if b in WEAK:
        return a
    return TOP


def is_mixing(a: str, b: str) -> bool:
    """True when two dims meeting in ``+``/``-``/comparison is a bug."""
    return a in STRONG and b in STRONG and a != b


def mixing_family(a: str, b: str) -> str:
    """Which rule family a mixing belongs to: ``"time"`` or ``"granularity"``."""
    return "time" if (a in TIME or b in TIME) else "granularity"


@dataclass(frozen=True)
class DimValue:
    """Abstract value: scalar dim plus optional container element/key dims.

    ``const`` carries a statically-known numeric value (shift amounts,
    conversion constants); ``unit_const`` names the :mod:`repro.units`
    constant it came from so ``page * PAGE_SIZE`` can be recognized as a
    conversion rather than a plain multiply.
    """

    dim: str = BOT
    elem: str = BOT
    key: str = BOT
    const: Optional[float] = None
    unit_const: str = ""

    def join(self, other: "DimValue") -> "DimValue":
        return DimValue(
            dim=join(self.dim, other.dim),
            elem=join(self.elem, other.elem),
            key=join(self.key, other.key),
            const=self.const if self.const == other.const else None,
            unit_const=(self.unit_const
                        if self.unit_const == other.unit_const else ""),
        )


UNKNOWN = DimValue()


def dv(dim: str, **kw) -> DimValue:
    return DimValue(dim=dim, **kw)


# ----------------------------------------------------- conversion constants

#: :mod:`repro.units` module-level constants: name → (dim, numeric value).
#: Sizes are byte quantities; shifts and per-X counts are weak; USEC/MSEC/SEC
#: are simulated-µs conversion factors.
UNITS_CONSTS: Dict[str, Tuple[str, float]] = {
    "KB": (BYTES, 1024.0),
    "MB": (BYTES, 1024.0 ** 2),
    "GB": (BYTES, 1024.0 ** 3),
    "PAGE_SIZE": (BYTES, 4096.0),
    "REGION_SIZE": (BYTES, 65536.0),
    "VABLOCK_SIZE": (BYTES, 2097152.0),
    "PAGE_SHIFT": (NONE, 12.0),
    "REGION_SHIFT": (NONE, 16.0),
    "VABLOCK_SHIFT": (NONE, 21.0),
    "PAGES_PER_REGION": (COUNT, 16.0),
    "PAGES_PER_VABLOCK": (COUNT, 512.0),
    "REGIONS_PER_VABLOCK": (COUNT, 32.0),
    "USEC": (SIM_US, 1.0),
    "MSEC": (SIM_US, 1e3),
    "SEC": (SIM_US, 1e6),
}

#: ``x >> amount`` conversions: (operand dim, amount) → result dim.
SHIFT_RIGHT: Dict[Tuple[str, int], str] = {
    (BYTES, 12): PAGE,
    (BYTES, 16): REGION,
    (BYTES, 21): VABLOCK,
    (PAGE, 4): REGION,
    (PAGE, 9): VABLOCK,
    (REGION, 5): VABLOCK,
}

#: ``x << amount`` conversions: (operand dim, amount) → result dim.
SHIFT_LEFT: Dict[Tuple[str, int], str] = {
    (PAGE, 12): BYTES,
    (REGION, 16): BYTES,
    (VABLOCK, 21): BYTES,
    (REGION, 4): PAGE,
    (VABLOCK, 9): PAGE,
    (VABLOCK, 5): REGION,
}

#: ``id * SIZE_CONST`` conversions: (id dim, units constant) → result dim.
MULT_CONVERSIONS: Dict[Tuple[str, str], str] = {
    (PAGE, "PAGE_SIZE"): BYTES,
    (REGION, "REGION_SIZE"): BYTES,
    (VABLOCK, "VABLOCK_SIZE"): BYTES,
}


@dataclass(frozen=True)
class UnitsSignature:
    """Fixed dimension signature of one :mod:`repro.units` helper."""

    params: Tuple[str, ...]
    ret: DimValue


#: Seeded signatures for every :mod:`repro.units` helper, keyed by function
#: name; they apply when the callee resolves into a module whose dotted name
#: ends in ``units`` (the real ``repro.units`` or a fixture's ``units``).
UNITS_FUNCS: Dict[str, UnitsSignature] = {
    "page_of": UnitsSignature((BYTES,), dv(PAGE)),
    "page_base": UnitsSignature((PAGE,), dv(BYTES)),
    "region_of_page": UnitsSignature((PAGE,), dv(REGION)),
    "vablock_of": UnitsSignature((BYTES,), dv(VABLOCK)),
    "vablock_of_page": UnitsSignature((PAGE,), dv(VABLOCK)),
    "page_index_in_vablock": UnitsSignature((PAGE,), dv(COUNT)),
    "first_page_of_vablock": UnitsSignature((VABLOCK,), dv(PAGE)),
    "pages_spanned": UnitsSignature((BYTES, BYTES), DimValue(elem=PAGE)),
    "align_up": UnitsSignature((BYTES, BYTES), dv(BYTES)),
    "align_down": UnitsSignature((BYTES, BYTES), dv(BYTES)),
    "fmt_bytes": UnitsSignature((BYTES,), dv(NONE)),
    "fmt_usec": UnitsSignature((SIM_US,), dv(NONE)),
}


def is_units_module(module_name: str) -> bool:
    """The seeded vocabulary applies to ``repro.units`` and any fixture
    module named ``units``."""
    return module_name == "units" or module_name.endswith(".units")


# ------------------------------------------------------- metric unit vocab

#: Valid ``unit`` values for catalog entries.  ``bytes``/``us``/``wall_s``
#: map to strong dims; every other unit is a cardinality (count-like), so a
#: strong-dimensioned argument observed into it is a wrong-unit bug.
UNIT_VOCAB = frozenset(
    {"bytes", "pages", "us", "wall_s", "count", "batches", "faults",
     "kernels", "rounds", "vablocks", "bursts", "ops", "retries",
     "violations", "bundles", "recoveries", "evictions", "kills",
     "resumes", "writes"}
)

#: catalog unit → the strong dim an argument is *allowed* to carry.
UNIT_EXPECTED_DIM: Dict[str, str] = {
    "bytes": BYTES,
    "us": SIM_US,
    "wall_s": WALL_S,
}


def unit_allows(unit: str, dim: str) -> bool:
    """Whether a value of ``dim`` may be observed into a ``unit`` metric.

    Weak/unknown dims are always allowed (the pass only reports positive
    contradictions); a strong dim must match the unit's expected strong dim,
    and count-like units accept no strong dim at all — a page *id* is not a
    page *count*.
    """
    if dim not in STRONG:
        return True
    return UNIT_EXPECTED_DIM.get(unit) == dim


# ------------------------------------------------------------- annotations

_DIM_COMMENT_RE = re.compile(r"#\s*dim:\s*(.+?)\s*$")
_ENTRY_RE = re.compile(
    r"^(?:(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*=\s*)?"
    r"(?P<open>[\[{])?(?P<dim>[a-z_]+)(?P<close>[\]}])?$"
)


@dataclass(frozen=True)
class DimAnnotation:
    """One parsed ``# dim:`` comment.

    ``bindings`` maps names (parameters or assignment targets) to abstract
    values; ``default`` is the bare-dim form (``# dim: page``) applied to
    the statement's single assignment target; ``ret`` is the return value
    for ``def``-line annotations (``-> dim``); ``errors`` collects the
    fragments that did not parse (reported as ``dim-annotation``).
    """

    bindings: Dict[str, DimValue]
    default: Optional[DimValue]
    ret: Optional[DimValue]
    errors: Tuple[str, ...]


def _parse_entry(text: str) -> Optional[DimValue]:
    """``page`` → scalar, ``[page]`` → element dim, ``{page}`` → key dim."""
    m = _ENTRY_RE.match(text)
    if m is None:
        return None
    name = m.group("dim")
    if name not in ANNOTATABLE:
        return None
    wrap, close = m.group("open"), m.group("close")
    if wrap == "[" and close == "]":
        return DimValue(elem=name)
    if wrap == "{" and close == "}":
        return DimValue(key=name)
    if wrap or close:
        return None
    return DimValue(dim=name)


def parse_dim_comment(line_text: str) -> Optional[DimAnnotation]:
    """Parse the ``# dim:`` annotation on one source line, if any.

    Vocabulary (entries comma-separated, ``->`` introduces the return)::

        x = faults * 4096          # dim: bytes
        def span(addr, n):         # dim: addr=bytes, n=count -> [page]
        pending = []               # dim: [page]
        residency = {}             # dim: {page}
    """
    m = _DIM_COMMENT_RE.search(line_text)
    if m is None:
        return None
    spec = m.group(1)
    ret: Optional[DimValue] = None
    errors: List[str] = []
    if "->" in spec:
        spec, _, ret_text = spec.partition("->")
        ret = _parse_entry(ret_text.strip())
        if ret is None:
            errors.append(f"return {ret_text.strip()!r}")
    bindings: Dict[str, DimValue] = {}
    default: Optional[DimValue] = None
    for part in filter(None, (p.strip() for p in spec.split(","))):
        m_entry = _ENTRY_RE.match(part)
        if m_entry is None:
            errors.append(repr(part))
            continue
        value = _parse_entry(
            part.partition("=")[2].strip() if m_entry.group("name") else part
        )
        if value is None:
            errors.append(repr(part))
            continue
        if m_entry.group("name"):
            bindings[m_entry.group("name")] = value
        else:
            default = value
    return DimAnnotation(
        bindings=bindings, default=default, ret=ret, errors=tuple(errors)
    )


#: A *comment token* is an annotation only when it opens with the marker —
#: prose comments and docstrings that merely mention ``# dim:`` are not.
_DIM_OPENER_RE = re.compile(r"^#\s*dim:")


def collect_annotations(
    lines: List[str],
) -> Tuple[Dict[int, DimAnnotation], List[Tuple[int, str]]]:
    """All ``# dim:`` annotations in a module, keyed by 1-based line number.

    Real comment tokens only (the source is tokenized, so ``# dim:`` inside
    a docstring or string literal is never an annotation).  Returns the
    parsed map plus (line, fragment) pairs for malformed entries, which the
    pass reports under ``dim-annotation``.
    """
    out: Dict[int, DimAnnotation] = {}
    bad: List[Tuple[int, str]] = []
    source = "\n".join(lines) + "\n"
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return out, bad
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        if _DIM_OPENER_RE.match(tok.string) is None:
            continue
        ann = parse_dim_comment(tok.string)
        if ann is None:
            continue
        line = tok.start[0]
        out[line] = ann
        for err in ann.errors:
            bad.append((line, err))
    return out, bad
