"""``mp-shared-state``: module-level mutable state under pool fan-out.

The campaign runner fans cells across a ``multiprocessing`` pool and
promises byte-identical output for any ``--jobs`` value.  That promise dies
quietly the moment a worker-reachable function leans on module-level
mutable state: under ``fork`` the workers inherit whatever the parent
mutated so far, under ``spawn`` they re-import fresh — either way a global
written at runtime makes the cell a function of *schedule*, not of
``(workload, config, seed)``.

The pass finds worker entry points structurally: any project function
passed by name into ``pool.map`` / ``imap`` / ``imap_unordered`` /
``starmap`` / ``map_async`` / ``apply_async``, or as the ``target=`` of a
``Process(...)`` construction.  From those roots it walks the IR call graph
and flags, inside reachable functions only:

* ``mp-global-write`` — rebinding via ``global``, subscript stores,
  mutating method calls (``append``/``update``/``setdefault``/…), and
  augmented assignment targeting a module-level global (of this module or,
  through the import table, of another project module);
* ``mp-global-read`` — reads of module-level *mutable* globals that some
  reachable function also writes.  Read-only registries populated at import
  time (every worker re-imports them identically) are deliberately not
  flagged.

The call graph covers direct calls, ``self.``-method calls, and class
instantiation; dynamically dispatched work (``REGISTRY[name]().run()``)
is out of reach and documented as such in ``docs/static-analysis.md``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from .base import AnalysisPass, Finding, Rule
from .ir import FunctionInfo, ModuleInfo, ProjectIR, resolve_symbol

_POOL_FANOUT_METHODS = frozenset(
    {"map", "imap", "imap_unordered", "starmap", "starmap_async",
     "map_async", "apply_async", "apply", "submit"}
)

_MUTATING_METHODS = frozenset(
    {"append", "extend", "insert", "add", "update", "setdefault", "pop",
     "popitem", "clear", "remove", "discard", "sort", "reverse",
     "appendleft", "extendleft"}
)


@dataclass(frozen=True)
class _Access:
    """One global access inside a reachable function."""

    global_qname: str
    fn: FunctionInfo
    module: ModuleInfo
    line: int
    col: int
    how: str  # human fragment: "rebinding via `global`", ".append(...)", …


def find_worker_entry_points(ir: ProjectIR) -> List[Tuple[str, FunctionInfo]]:
    """(spawning-call description, entry function) pairs."""
    out: List[Tuple[str, FunctionInfo]] = []
    seen: Set[str] = set()
    for _name, mod in sorted(ir.modules.items()):
        for _local, fn in sorted(mod.functions.items()):
            for site in fn.calls:
                node = site.node
                func = node.func
                target_expr: Optional[ast.AST] = None
                how = ""
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _POOL_FANOUT_METHODS
                    and node.args
                ):
                    target_expr = node.args[0]
                    how = f".{func.attr}(...) fan-out in {fn.qname}"
                elif site.raw.endswith("Process") or site.raw == "Process":
                    for kw in node.keywords:
                        if kw.arg == "target":
                            target_expr = kw.value
                            how = f"Process(target=...) in {fn.qname}"
                if target_expr is None:
                    continue
                dotted = _expr_dotted(target_expr)
                if dotted is None:
                    continue
                resolved = resolve_symbol(ir, mod, dotted)
                if resolved is None and fn.owner_class and dotted.startswith("self."):
                    rest = dotted[5:]
                    method = mod.classes.get(fn.owner_class, {}).get(rest)
                    resolved = method.qname if method else None
                if resolved is not None and resolved in ir.functions \
                        and resolved not in seen:
                    seen.add(resolved)
                    out.append((how, ir.functions[resolved]))
    return sorted(out, key=lambda pair: pair[1].qname)


def _expr_dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _GlobalAccessVisitor(ast.NodeVisitor):
    """Collect global reads/writes inside one function body."""

    def __init__(self, ir: ProjectIR, module: ModuleInfo, fn: FunctionInfo) -> None:
        self.ir = ir
        self.module = module
        self.fn = fn
        self.reads: List[_Access] = []
        self.writes: List[_Access] = []
        self._declared_global: Set[str] = set()
        self._locals: Set[str] = set(fn.params)
        # Pre-scan local bindings so plain `x = ...` / loop targets never
        # count as global reads later in the body.
        for node in ast.walk(fn.node):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node is not fn.node:
                continue
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                self._locals.add(node.id)
            elif isinstance(node, ast.Global):
                self._declared_global.update(node.names)
        self._locals -= self._declared_global

    # ---------------------------------------------------------- resolution

    def _global_of_name(self, name: str) -> Optional[str]:
        if name in self._locals:
            return None
        var = self.module.globals.get(name)
        return var.qname if var is not None else None

    def _global_of_expr(self, node: ast.AST) -> Optional[str]:
        """Resolve ``NAME`` or ``module_alias.NAME`` to a global qname."""
        if isinstance(node, ast.Name):
            return self._global_of_name(node.id)
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            base = node.value.id
            if base in ("self", "cls") or base in self._locals:
                return None
            target = self.module.imports.get(base)
            if target is not None:
                holder = self.ir.modules.get(target)
                if holder is not None and node.attr in holder.globals:
                    return holder.globals[node.attr].qname
        return None

    def _record(self, bucket: List[_Access], qname: str, node: ast.AST,
                how: str) -> None:
        bucket.append(
            _Access(
                global_qname=qname, fn=self.fn, module=self.module,
                line=getattr(node, "lineno", self.fn.line),
                col=getattr(node, "col_offset", 0), how=how,
            )
        )

    # ------------------------------------------------------------- visits

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_store(target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_store(node.target, node)
        self.generic_visit(node)

    def _check_store(self, target: ast.AST, stmt: ast.AST) -> None:
        if isinstance(target, ast.Subscript):
            qname = self._global_of_expr(target.value)
            if qname is not None:
                self._record(self.writes, qname, stmt, "subscript store")
        elif isinstance(target, ast.Attribute):
            qname = self._global_of_expr(target.value)
            if qname is not None:
                self._record(self.writes, qname, stmt,
                             f".{target.attr} attribute store")
        elif isinstance(target, ast.Name) and target.id in self._declared_global:
            qname = self._global_of_name(target.id) \
                or f"{self.module.name}.{target.id}"
            self._record(self.writes, qname, stmt, "assignment via `global`")

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _MUTATING_METHODS:
            qname = self._global_of_expr(func.value)
            if qname is not None:
                self._record(self.writes, qname, node,
                             f".{func.attr}(...) mutation")
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            qname = self._global_of_name(node.id)
            if qname is not None:
                self._record(self.reads, qname, node, "read")

    def visit_Attribute(self, node: ast.Attribute) -> None:
        qname = self._global_of_expr(node)
        if qname is not None and isinstance(node.ctx, ast.Load):
            self._record(self.reads, qname, node, "read")
            return  # don't double-count the base Name
        self.generic_visit(node)

    def visit_FunctionDef(self, node) -> None:
        if node is self.fn.node:
            self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_ClassDef(self, node) -> None:
        pass


class SharedStatePass(AnalysisPass):
    """Module-global mutation reachable from multiprocessing workers."""

    name = "mp-shared-state"
    RULE_WRITE = Rule(
        "mp-global-write", "mp-shared-state", "error",
        "function reachable from a multiprocessing worker entry point "
        "writes a module-level global (schedule-dependent under pool "
        "fan-out)",
    )
    RULE_READ = Rule(
        "mp-global-read", "mp-shared-state", "warning",
        "worker-reachable function reads a module-level mutable global "
        "that worker-reachable code also writes",
    )
    rules = (RULE_WRITE, RULE_READ)

    def run(self, ir: ProjectIR) -> List[Finding]:
        entries = find_worker_entry_points(ir)
        if not entries:
            return []
        roots = [fn.qname for _, fn in entries]
        reachable = ir.reachable_from(roots)

        reads: List[_Access] = []
        writes: List[_Access] = []
        for qname in sorted(reachable):
            fn = ir.functions[qname]
            module = ir.modules.get(fn.module)
            if module is None:
                continue
            visitor = _GlobalAccessVisitor(ir, module, fn)
            for stmt in fn.node.body:
                visitor.visit(stmt)
            reads.extend(visitor.reads)
            writes.extend(visitor.writes)

        findings: List[Finding] = []
        for access in writes:
            findings.append(
                self.make_finding(
                    self.RULE_WRITE,
                    path=str(access.module.path),
                    line=access.line, col=access.col,
                    message=(
                        f"{access.fn.qname} (worker-reachable) writes "
                        f"module global {access.global_qname} "
                        f"({access.how})"
                    ),
                )
            )
        written = {a.global_qname for a in writes}
        mutable = {
            var.qname
            for mod in ir.modules.values()
            for var in mod.globals.values()
            if var.mutable
        }
        write_sites = {(a.global_qname, a.module.name, a.line) for a in writes}
        seen_reads: Set[Tuple[str, str]] = set()
        for access in reads:
            if access.global_qname not in written \
                    or access.global_qname not in mutable:
                continue
            # The receiver of a mutation (`VERDICTS.append(x)`) loads the
            # global too; that line is already reported as the write.
            if (access.global_qname, access.module.name, access.line) \
                    in write_sites:
                continue
            key = (access.fn.qname, access.global_qname)
            if key in seen_reads:
                continue
            seen_reads.add(key)
            findings.append(
                self.make_finding(
                    self.RULE_READ,
                    path=str(access.module.path),
                    line=access.line, col=access.col,
                    message=(
                        f"{access.fn.qname} (worker-reachable) reads "
                        f"mutable module global {access.global_qname}, "
                        "which worker-reachable code also writes"
                    ),
                )
            )
        return findings
