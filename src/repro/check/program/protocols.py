"""Declarative protocol catalog for the lifecycle / snapshot / parity passes.

The simulator's hand-maintained contracts live here as *data* so the three
protocol passes stay generic:

* :data:`PROTOCOLS` — linear resources the :class:`~.lifecycle.LifecyclePass`
  tracks: how each is acquired, what discharges the close obligation, and
  which module names are in scope.
* :data:`SNAPSHOT` — how ``repro/sim/checkpoint.py`` is shaped (skip-set and
  verbatim attr-list globals, component classes captured by ``_capture_obj``)
  so the :class:`~.snapshot.SnapshotCoveragePass` can diff the engine's
  mutable-attribute set against what a checkpoint actually captures.
* :data:`PARITY_GROUPS` — per-group surface configuration for the
  ``# parity: <group>/<variant>`` annotations the
  :class:`~.parity.ParityPass` compares.

Names are matched by *dotted suffix* (``"log.append"`` matches
``self.log.append``; a callee pattern ``"BatchRecord"`` matches the resolved
``repro.core.batch_record.BatchRecord``), so the catalog works unchanged on
the real tree and on the test fixture projects.

This module is an **analysis seed**: editing it changes what the passes
report in *other* files, so ``lint --changed-only`` widens to a full run
whenever a seed is in the diff (see ``engine.SEED_SUFFIXES``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple


def suffix_match(dotted: str, pattern: str) -> bool:
    """True when the trailing dotted components of ``dotted`` equal
    ``pattern`` (``suffix_match("self.log.append", "log.append")``)."""
    have = dotted.split(".")
    want = pattern.split(".")
    return len(have) >= len(want) and have[-len(want):] == want


def matches_any(dotted: str, patterns: Tuple[str, ...]) -> bool:
    return any(suffix_match(dotted, p) for p in patterns)


# --------------------------------------------------------------- lifecycle


@dataclass(frozen=True)
class ResourceProtocol:
    """One linear resource: acquire forms, release forms, tracking scope."""

    name: str
    description: str
    #: Module-name last components where acquisition is tracked; empty
    #: means every analyzed module.
    scope: Tuple[str, ...] = ()
    #: Resolved callee qname suffixes (class / function names; a class
    #: pattern matches its ``__init__`` edge) whose call acquires.
    acquire_callees: Tuple[str, ...] = ()
    #: Raw dotted-call suffixes for dynamically-dispatched acquires
    #: (``spans.span`` — the receiver's type is not statically known).
    acquire_raw: Tuple[str, ...] = ()
    #: An assignment whose RHS embeds this fragment in a string literal
    #: acquires the bound name (atomic-write temp paths).
    acquire_str_fragment: str = ""
    #: ``x.mkdir(...)`` style: calling one of these methods on a plain
    #: local name acquires that *receiver*.
    acquire_receiver_methods: Tuple[str, ...] = ()
    #: Method names on the resource that release it (``conn.close()``).
    release_methods: Tuple[str, ...] = ()
    #: Call suffixes (raw or resolved) that release a resource passed to
    #: them as an argument (``os.replace(tmp, path)``).  Callees inside the
    #: analyzed project additionally release via interprocedural summary:
    #: a call discharges the obligation when the callee provably releases
    #: that parameter on all of *its* paths.
    release_arg_calls: Tuple[str, ...] = ()
    #: ``with acquire() as x:`` discharges the obligation via ``__exit__``.
    with_releases: bool = True
    #: Returning the resource transfers ownership to the caller.
    escape_returns: bool = True
    #: Storing the resource (attribute, container element) transfers
    #: ownership to the holding object.
    escape_stores: bool = True


PROTOCOLS: Tuple[ResourceProtocol, ...] = (
    ResourceProtocol(
        name="batch-record",
        description=(
            "a BatchRecord opened by the driver must reach the batch log "
            "(log.append) or be aborted (_abort_record) on every path, "
            "exceptions included — an unclosed record corrupts the batch "
            "log and the UVMSan batch phase machine"
        ),
        scope=("driver",),
        acquire_callees=("BatchRecord",),
        release_arg_calls=("log.append",),
        with_releases=False,
    ),
    ResourceProtocol(
        name="span",
        description=(
            "a profiler span must be entered as a context manager; a span "
            "bound outside `with` never records its exit edge"
        ),
        acquire_raw=("spans.span", "obs.span", "profiler.span"),
    ),
    ResourceProtocol(
        name="run-ledger",
        description=(
            "a RunLedger owns a SQLite connection and must be close()d on "
            "every path, or campaign resume can read a hot journal"
        ),
        scope=("runner", "fleet", "cli", "worker"),
        acquire_callees=("RunLedger",),
        release_methods=("close",),
    ),
    ResourceProtocol(
        name="campaign-monitor",
        description=(
            "a CampaignMonitor owns a telemetry queue (and its feeder "
            "thread under mp) and must be close()d on every path"
        ),
        scope=("runner", "fleet", "cli", "worker"),
        acquire_callees=("CampaignMonitor",),
        release_methods=("close",),
    ),
    ResourceProtocol(
        name="sqlite-conn",
        description=(
            "a raw sqlite3.connect() handle must be close()d or handed to "
            "an owner that closes it"
        ),
        scope=("ledger",),
        acquire_raw=("sqlite3.connect",),
        release_methods=("close",),
    ),
    ResourceProtocol(
        name="atomic-temp",
        description=(
            "an atomic-write temp path (a literal containing '.tmp') must "
            "reach os.replace or be unlinked on every path — a leaked temp "
            "file survives as clutter and can shadow the next writer"
        ),
        scope=("worker", "cache", "bundle", "checkpoint", "ledger"),
        acquire_str_fragment=".tmp",
        release_arg_calls=(
            "os.replace",
            "os.rename",
            "os.unlink",
            "os.remove",
            "unlink",
        ),
    ),
    ResourceProtocol(
        name="bundle-dir",
        description=(
            "a crash-bundle directory created by mkdir must either be "
            "finalized (manifest written last) or torn down — a partial "
            "bundle must never be left looking valid"
        ),
        scope=("bundle",),
        acquire_receiver_methods=("mkdir",),
        release_arg_calls=("_finalize_bundle", "shutil.rmtree", "rmtree"),
    ),
)


# ---------------------------------------------------------------- snapshot

#: Marks a deliberately-uncaptured attribute assignment:
#: ``self.last_bundle = None  # snapshot: skip``.
SNAPSHOT_SKIP_RE = re.compile(r"#\s*snapshot:\s*skip\b")
#: A line that *mentions* the vocabulary at all (to flag typos like
#: ``# snapshot:skip-this``)—kept loose on purpose.
SNAPSHOT_MARK = "# snapshot:"


@dataclass(frozen=True)
class SnapshotSpec:
    """Shape of the checkpoint module the coverage pass interprets."""

    #: Module-name last component; the pass activates only when a module
    #: with this name defines ``skip_common_global``.
    checkpoint_module: str = "checkpoint"
    skip_common_global: str = "_SKIP_COMMON"
    skip_extra_global: str = "_SKIP_EXTRA"
    #: Verbatim attr-list global → local name of the class it captures.
    attr_lists: Mapping[str, str] = field(
        default_factory=lambda: {
            "_ENGINE_ATTRS": "Engine",
            "_DRIVER_ATTRS": "UvmDriver",
        }
    )
    #: Classes captured generically by ``_capture_obj``/``_attr_names``
    #: (every non-skip attribute is pickled): a ``# snapshot: skip``
    #: annotation in one of these must be backed by an actual exclusion.
    component_classes: Tuple[str, ...] = (
        "FaultBuffer",
        "SoaFaultBuffer",
        "Gmmu",
        "UTlb",
        "StreamingMultiprocessor",
        "GpuPageTable",
        "ChunkAllocator",
        "CopyEngine",
        "EventTrace",
    )
    #: Cached metric-handle prefix ``_attr_names`` drops unconditionally.
    metric_prefix: str = "_m_"


SNAPSHOT = SnapshotSpec()


# ------------------------------------------------------------------ parity

#: ``def assemble_batch(  # parity: batch-assembly/scalar``
PARITY_RE = re.compile(
    r"#\s*parity:\s*([A-Za-z0-9_.-]+)\s*/\s*([A-Za-z0-9_.-]+)\s*$"
)
PARITY_MARK = "# parity:"


@dataclass(frozen=True)
class ParityGroupSpec:
    """What counts as observable surface for one parity group."""

    #: Local class names whose fields (dataclass fields / __slots__ /
    #: class-level assignments) form the compared write surface.
    record_classes: Tuple[str, ...] = ()
    #: Compare plain stores to ``self.<attr>`` (counter surface).
    self_fields: bool = False
    #: Surface elements excluded from comparison (representation-specific
    #: internals that legitimately differ between variants).
    ignore: Tuple[str, ...] = ()


#: Per-group overrides; annotated groups not listed here use DEFAULT_PARITY.
PARITY_GROUPS: Dict[str, ParityGroupSpec] = {
    "batch-assembly": ParityGroupSpec(
        record_classes=("AssembledBatch", "BlockWork"),
    ),
    "fault-buffer": ParityGroupSpec(self_fields=True),
}

DEFAULT_PARITY = ParityGroupSpec(self_fields=True)
