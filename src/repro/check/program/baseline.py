"""Committed finding baseline: incremental adoption without losing the gate.

A baseline is the set of *known, individually justified* findings the
project has agreed to carry for now.  The engine subtracts baselined
findings from the report, so ``uvm-repro lint`` stays a hard 0/1 gate on
**new** findings while old debt is paid down entry by entry:

* a finding whose fingerprint matches a baseline entry is filtered out
  (and counted, so the report shows what the baseline is absorbing);
* a baseline entry matching no current finding is *stale* — the debt was
  paid; CI reports it as an improvement and the entry should be deleted
  (``--write-baseline`` rewrites the file to match reality);
* every entry carries a one-line ``reason``; entries without one are
  rejected at load time so the file cannot silently accrete.

Fingerprints hash rule + path + the flagged line's text + occurrence
index (see :func:`repro.check.program.base.fingerprint_findings`), so
unrelated edits that shift line numbers do not invalidate the baseline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from ...errors import ConfigError
from .base import Finding

BASELINE_VERSION = 1

#: The committed project baseline (applies when linting the default target).
DEFAULT_BASELINE_PATH = Path(__file__).resolve().parent.parent / "lint_baseline.json"


@dataclass(frozen=True)
class BaselineEntry:
    fingerprint: str
    rule: str
    path: str
    reason: str

    def to_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "rule": self.rule,
            "path": self.path,
            "reason": self.reason,
        }


def load_baseline(path) -> List[BaselineEntry]:
    path = Path(path)
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ConfigError(f"baseline {path} is not valid JSON: {exc}")
    if not isinstance(doc, dict) or doc.get("version") != BASELINE_VERSION:
        raise ConfigError(
            f"baseline {path} must be a dict with version={BASELINE_VERSION}"
        )
    entries: List[BaselineEntry] = []
    for raw in doc.get("entries", []):
        reason = str(raw.get("reason", "")).strip()
        if not reason:
            raise ConfigError(
                f"baseline {path}: entry {raw.get('fingerprint')!r} has no "
                "reason — every carried finding needs a one-line "
                "justification"
            )
        entries.append(
            BaselineEntry(
                fingerprint=str(raw["fingerprint"]),
                rule=str(raw.get("rule", "")),
                path=str(raw.get("path", "")),
                reason=reason,
            )
        )
    return entries


def save_baseline(path, findings: Sequence[Finding],
                  reasons: Dict[str, str] = None,
                  stable_paths: Dict[str, str] = None) -> None:
    """Write the current findings as the new baseline (sorted, stable).

    ``stable_paths`` (from the engine report) rewrites on-disk paths to
    their checkout-independent form so the committed file has no absolute
    paths in it; matching is by fingerprint, the path is documentation.
    """
    reasons = reasons or {}
    stable_paths = stable_paths or {}
    entries = [
        {
            "fingerprint": f.fingerprint,
            "rule": f.rule,
            "path": stable_paths.get(f.path, f.path).replace("\\", "/"),
            "reason": reasons.get(f.fingerprint, "baselined pending fix"),
        }
        for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule))
    ]
    doc = {"version": BASELINE_VERSION, "entries": entries}
    Path(path).write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def apply_baseline(
    findings: Sequence[Finding], entries: Sequence[BaselineEntry]
) -> Tuple[List[Finding], List[Finding], List[BaselineEntry]]:
    """Split findings into (new, baselined) and return stale entries."""
    by_fp = {entry.fingerprint: entry for entry in entries}
    new: List[Finding] = []
    baselined: List[Finding] = []
    matched = set()
    for f in findings:
        if f.fingerprint in by_fp:
            matched.add(f.fingerprint)
            baselined.append(f)
        else:
            new.append(f)
    stale = [entry for entry in entries if entry.fingerprint not in matched]
    return new, baselined, stale
