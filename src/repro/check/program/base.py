"""Shared vocabulary of the whole-program analysis: findings, passes, rules.

Every pass — the ported per-file determinism rules and the four
interprocedural ones — emits :class:`Finding` objects through the same
funnel, so suppression comments, the allowlist, the baseline, and every
output format (human / JSON / SARIF) treat them uniformly.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

#: Severity ladder; ordering matters for sorting and the SARIF level map.
SEVERITIES = ("error", "warning", "note")


@dataclass(frozen=True)
class Rule:
    """One reportable rule: id, owning pass, severity, description."""

    id: str
    pass_name: str
    severity: str
    description: str


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a pass."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    pass_name: str = ""
    severity: str = "error"
    #: Stable identity for baselining: hash of rule + path + the source
    #: line's stripped text + occurrence index (line *numbers* drift with
    #: unrelated edits; line *text* mostly doesn't).
    fingerprint: str = ""

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "pass": self.pass_name,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }


def normalize_path(path: str) -> str:
    return path.replace("\\", "/")


def fingerprint_findings(
    findings: Sequence[Finding],
    sources: Dict[str, Sequence[str]],
    stable_paths: Optional[Dict[str, str]] = None,
) -> List[Finding]:
    """Attach stable fingerprints; identical (rule, path, line-text) tuples
    are disambiguated by occurrence index in path order.

    ``stable_paths`` maps on-disk paths to checkout-independent forms
    (``repro/gpu/copy_engine.py``) so a committed baseline matches in any
    clone, whatever the absolute working-tree location.
    """
    stable_paths = stable_paths or {}
    seen: Dict[tuple, int] = {}
    out: List[Finding] = []
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule)):
        norm = stable_paths.get(f.path) or normalize_path(f.path)
        lines = sources.get(f.path) or sources.get(norm) or ()
        text = lines[f.line - 1].strip() if 1 <= f.line <= len(lines) else ""
        key = (f.rule, norm, text)
        index = seen.get(key, 0)
        seen[key] = index + 1
        digest = hashlib.sha256(
            "\x1f".join((f.rule, norm, text, str(index))).encode("utf-8")
        ).hexdigest()[:16]
        out.append(
            Finding(
                rule=f.rule, path=f.path, line=f.line, col=f.col,
                message=f.message, pass_name=f.pass_name,
                severity=f.severity, fingerprint=digest,
            )
        )
    return out


class AnalysisPass:
    """Base class: a pass declares its rules and walks the project IR.

    Subclasses set ``name`` and ``rules`` (a list of :class:`Rule`) and
    implement :meth:`run`, returning raw findings — the engine owns
    suppression, allowlist, baseline filtering, and fingerprinting.
    """

    name: str = ""
    rules: Sequence[Rule] = ()

    def run(self, ir) -> List[Finding]:  # pragma: no cover - interface
        raise NotImplementedError

    def make_finding(
        self,
        rule: Rule,
        path: str,
        line: int,
        col: int,
        message: str,
    ) -> Finding:
        return Finding(
            rule=rule.id,
            path=str(path),
            line=line,
            col=col,
            message=message,
            pass_name=self.name,
            severity=rule.severity,
        )
