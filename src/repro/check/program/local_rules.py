"""``determinism``: the PR-2 per-file lint rules as a pass on the shared IR.

The original :mod:`repro.check.lint` visitor stays the single source of
truth for the per-file hazard rules (and its module API keeps working for
callers and tests); this adapter re-runs it over the already-parsed
modules of the project IR so one engine invocation produces every finding
through the same suppression/allowlist/baseline/SARIF funnel.
"""

from __future__ import annotations

from typing import List

from .. import lint as _lint
from .base import AnalysisPass, Finding, Rule


class LocalRulesPass(AnalysisPass):
    """Per-file determinism hazards (wall-clock, unseeded-random, …)."""

    name = "determinism"
    rules = tuple(
        Rule(id=rule_id, pass_name="determinism", severity="error",
             description=description)
        for rule_id, description in sorted(_lint.RULES.items())
    )

    def run(self, ir) -> List[Finding]:
        findings: List[Finding] = []
        for _name, mod in sorted(ir.modules.items()):
            visitor = _lint._HazardVisitor(str(mod.path))
            visitor.visit(mod.tree)
            for raw in visitor.findings:
                findings.append(
                    Finding(
                        rule=raw.rule, path=raw.path, line=raw.line,
                        col=raw.col, message=raw.message,
                        pass_name=self.name, severity="error",
                    )
                )
        return findings
